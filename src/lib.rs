//! # twobit — atomic read/write registers from two-bit messages
//!
//! A reproduction of **Mostéfaoui & Raynal, "Two-Bit Messages are Sufficient
//! to Implement Atomic Read/Write Registers in Crash-prone Systems"**
//! (IRISA TR #2034 / PODC'16 line of work): a single-writer multi-reader
//! atomic register for asynchronous message-passing systems with up to
//! `t < n/2` crash failures, whose messages carry **two bits of control
//! information** — just their type (`WRITE0`, `WRITE1`, `READ`, `PROCEED`).
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`core`] — the paper's algorithm ([`TwoBitProcess`]) and
//!   its machine-checked invariants;
//! * [`baselines`] — unbounded ABD (SWMR/MWMR) and
//!   cost-faithful emulations of the bounded baselines of Table 1;
//! * [`simnet`] — a deterministic discrete-event simulator
//!   of the `CAMP_{n,t}` model (non-FIFO channels, crash injection);
//! * [`runtime`] — a live threaded runtime with chaos
//!   links and blocking [`RegisterClient`] handles;
//! * [`lincheck`] — atomicity checking for recorded
//!   histories;
//! * [`harness`] — the experiments regenerating the
//!   paper's Table 1 and in-text claims.
//!
//! ## Quickstart
//!
//! ```
//! use twobit::{ClusterBuilder, ProcessId, SystemConfig, TwoBitProcess};
//!
//! // A 5-process system tolerating 2 crashes; p0 is the writer.
//! let cfg = SystemConfig::new(5, 2)?;
//! let writer = ProcessId::new(0);
//! let cluster = ClusterBuilder::new(cfg)
//!     .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
//!
//! let mut w = cluster.client(writer);
//! let mut r = cluster.client(ProcessId::new(3));
//! w.write(7)?;
//! assert_eq!(r.read()?, 7);
//!
//! // Crash-tolerance within t:
//! cluster.crash(ProcessId::new(4));
//! w.write(8)?;
//! assert_eq!(r.read()?, 8);
//!
//! // The recorded history is atomic (checked, not assumed):
//! let (history, _) = cluster.shutdown();
//! twobit::lincheck::check_swmr(&history)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for more: a versioned KV cache, a read-dominated
//! workload comparison, crash injection, and a synchronizer probe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use twobit_baselines as baselines;
pub use twobit_core as core;
pub use twobit_harness as harness;
pub use twobit_lincheck as lincheck;
pub use twobit_proto as proto;
pub use twobit_runtime as runtime;
pub use twobit_simnet as simnet;

pub use twobit_baselines::{AbdProcess, MwmrProcess, PhasedProcess};
pub use twobit_core::{TwoBitOptions, TwoBitProcess};
pub use twobit_proto::{
    Automaton, Effects, History, OpId, OpOutcome, Operation, Payload, ProcessId, SystemConfig,
};
pub use twobit_runtime::{ClientError, Cluster, ClusterBuilder, RegisterClient};
pub use twobit_simnet::{ClientPlan, CrashPlan, CrashPoint, DelayModel, SimBuilder};
