//! # twobit — atomic read/write registers from two-bit messages
//!
//! A reproduction of **Mostéfaoui & Raynal, "Two-Bit Messages are Sufficient
//! to Implement Atomic Read/Write Registers in Crash-prone Systems"**
//! (IRISA TR #2034 / PODC'16 line of work): a single-writer multi-reader
//! atomic register for asynchronous message-passing systems with up to
//! `t < n/2` crash failures, whose messages carry **two bits of control
//! information** — just their type (`WRITE0`, `WRITE1`, `READ`, `PROCEED`) —
//! grown here into a multi-register, multi-backend system.
//!
//! The public API is organized around two abstractions:
//!
//! * **[`Driver`]** — the backend-agnostic driving interface
//!   (`invoke`/`poll`/`crash`/`history`/`stats`), implemented by the
//!   deterministic simulator ([`Simulation`], [`SimSpace`]), the live
//!   threaded runtime ([`Cluster`]), and the real-socket TCP backend
//!   ([`TcpCluster`]). Workloads, checkers, and benchmarks are written
//!   once and run on every backend.
//! * **[`RegisterSpace`]** — many independent *named* registers multiplexed
//!   over one deployment. Each register runs the paper's protocol
//!   unchanged (two control bits per message); the shard tag on the wire is
//!   accounted separately as *routing* bits (see [`proto::NetStats`]).
//!
//! ## Quickstart: one workload, two backends
//!
//! The paper's automaton ([`TwoBitProcess`]) is the default throughout,
//! but registers are pluggable: the multi-writer ABD baseline
//! ([`MwmrProcess`]) and the latency-optimal Oh-RAM hybrid read
//! ([`OhRamProcess`], one round in the common case) host on every
//! backend through the same builders. `docs/algorithms.md` lays out the
//! three protocols' round/bit/generality trade-offs, the Oh-RAM wire
//! layout, and which checker verdict applies to each mode.
//!
//! ```
//! use twobit::{
//!     Driver, Operation, ProcessId, RegisterId, SpaceBuilder, SystemConfig, TwoBitProcess,
//!     Workload,
//! };
//!
//! let cfg = SystemConfig::new(5, 2)?; // 5 processes, up to 2 crashes
//! let writer = ProcessId::new(0);
//! let r0 = RegisterId::ZERO;
//!
//! // A portable operation script — no backend-specific code.
//! let workload = Workload::new()
//!     .step(0, r0, Operation::Write(7u64))
//!     .step(3, r0, Operation::Read);
//!
//! // Run it on the deterministic simulator...
//! let mut sim = SpaceBuilder::new(cfg)
//!     .seed(42)
//!     .build(0u64, |_reg, id| TwoBitProcess::new(id, cfg, writer, 0u64));
//! workload.run_on(&mut sim)?;
//! twobit::lincheck::check_swmr_sharded(&sim.history())?;
//!
//! // ...and, unchanged, on the live threaded runtime.
//! let mut cluster = twobit::ClusterBuilder::new(cfg)
//!     .seed(42)
//!     .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
//! workload.run_on(&mut cluster)?;
//! twobit::lincheck::check_swmr_sharded(&Driver::history(&cluster))?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Many named registers on one cluster
//!
//! ```
//! use twobit::{ClusterBuilder, ProcessId, RegisterSpace, SystemConfig, TwoBitProcess};
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! // Each register gets its own writer (round-robin over processes), and
//! // its own independent instance of the paper's automaton.
//! let cluster = ClusterBuilder::new(cfg)
//!     .registers(4)
//!     .build_sharded(0u64, |reg, id| {
//!         TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % 3), 0u64)
//!     })?;
//! let mut space = RegisterSpace::new(cluster, ["alpha", "beta", "gamma", "delta"])?;
//!
//! space.write(1, "beta", 9)?; // p1 is beta's writer (r1)
//! assert_eq!(space.read(2, "beta")?, 9);
//!
//! // Per-register atomicity, checked not assumed:
//! twobit::lincheck::check_swmr(&space.history_of("beta").unwrap())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Multi-writer registers
//!
//! A register is declared [`RegisterMode::Swmr`] (the default — the
//! paper's protocol, one writer) or [`RegisterMode::Mwmr`]: *any* process
//! may issue `write`, served by the ABD-style multi-writer automaton
//! ([`MwmrProcess`], timestamps ⟨counter, process-id⟩). There is no global
//! write lock to lift — the model's sequentiality, and with it
//! [`ClientError::OperationInFlight`], is enforced per
//! `(process, register)` pair, so each writer owns its own in-flight slot
//! and concurrent writes from distinct processes pipeline freely.
//! Verification dispatches on the declared mode:
//! [`lincheck::check_mwmr_sharded`] checks every register as MWMR
//! (timestamp-order linearizability), [`lincheck::check_sharded_modes`]
//! routes each register of a mixed space to the right checker. For mixed
//! deployments — SWMR and MWMR registers on one cluster — host
//! [`baselines::MixedProcess`] per register
//! (`MixedProcess::for_mode(mode, ...)`):
//!
//! ```
//! use twobit::lincheck::{check_mwmr_sharded, check_sharded_modes};
//! use twobit::{
//!     MwmrProcess, Operation, RegisterMode, RegisterSpace, SpaceBuilder, SystemConfig,
//! };
//!
//! let cfg = SystemConfig::new(5, 2)?;
//! // Host the MWMR automaton and declare the register multi-writer.
//! let sim = SpaceBuilder::new(cfg)
//!     .seed(1)
//!     .wire_codec(true) // MwmrMsg is codec-capable: frames cross as bytes
//!     .build(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64));
//! let mut space = RegisterSpace::new_with_modes(sim, [("counter", RegisterMode::Mwmr)])?;
//!
//! // Three *different* processes write concurrently — no OperationInFlight:
//! // the in-flight slot is per (process, register), i.e. per writer.
//! let t0 = space.issue(0, "counter", Operation::Write(10u64))?;
//! let t1 = space.issue(1, "counter", Operation::Write(20))?;
//! let t2 = space.issue(2, "counter", Operation::Write(30))?;
//! for t in [t0, t1, t2] {
//!     space.wait(&t)?;
//! }
//! assert!([10, 20, 30].contains(&space.read(4, "counter")?));
//!
//! // Timestamp-order linearizability, checked not assumed — per register,
//! // or dispatched by each register's declared mode.
//! check_mwmr_sharded(&space.histories())?;
//! check_sharded_modes(&space.histories(), space.modes())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Blocking clients still exist and gained pipelining: [`RegisterClient`]
//! splits into [`RegisterClient::issue`] → [`runtime::OpHandle::wait`], so
//! one caller can overlap operations on *different* registers while each
//! register stays sequential. Concurrent operations on the same
//! `(process, register)` pair are rejected with a typed
//! [`ClientError::OperationInFlight`] instead of wedging the process.
//!
//! ## The wire codec and the TCP backend
//!
//! The unit of exchange on every link is bytes, not clones: a frame is one
//! contiguous, length-prefixed byte blob ([`Frame::encode`] /
//! [`Frame::decode`] — layout in `docs/wire-format.md`), and every message
//! type implements a bit-exact codec through the `WireMessage`
//! `encoded_bits`/`encode_into`/`decode` methods. For the paper's
//! automaton the encoding *is* the cost model — exactly two control bits
//! per message in the byte stream. The deterministic backends prove
//! fidelity on demand (`SpaceBuilder::wire_codec(true)`,
//! `ClusterBuilder::wire_codec(true)`: every frame is delivered from its
//! decoded bytes); [`TcpCluster`] has no other mode — one loopback TCP
//! connection per ordered process pair, one frame blob per socket write:
//!
//! ```
//! use twobit::{Driver, ProcessId, RegisterId, SystemConfig, TcpClusterBuilder, TwoBitProcess};
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let writer = ProcessId::new(0);
//! let mut tcp = TcpClusterBuilder::new(cfg)
//!     .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
//! tcp.write(writer, RegisterId::ZERO, 9)?;
//! assert_eq!(tcp.read(ProcessId::new(2), RegisterId::ZERO)?, 9);
//! assert!(tcp.stats().wire_bytes() > 0); // real bytes, real sockets
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Scaling out: the reactor transport
//!
//! [`TcpCluster`] spends a reader + writer thread per ordered link —
//! transparent at `n = 3`, untenable at `n = 64` (4032 links). The
//! reactor backend ([`ReactorClusterBuilder`] / [`ReactorNodeBuilder`],
//! crate `twobit-reactor`) multiplexes every link over a small fixed pool
//! of event-loop threads (`poll(2)`-based, no new dependencies), so a
//! node runs `hosted processes + pool_size + 1` threads no matter how
//! many links it owns. It adds two things the thread-per-link backend
//! cannot do: **cross-host deployment** (split `listen(addr)` → report
//! the bound port → `join(peer_map)`) and **reconnect-and-resend** —
//! a transiently failed socket re-dials with backoff and replays un-acked
//! frames from a bounded resend buffer, with sequence-number dedup on
//! the receive side, all visible in [`proto::NetStats`] (`reconnects`,
//! `frames_resent`, `frames_deduped`, `resend_buffer_high_water`).
//!
//! ```
//! use twobit::{Driver, ProcessId, RegisterId, ReactorClusterBuilder, SystemConfig, TwoBitProcess};
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let writer = ProcessId::new(0);
//! let mut node = ReactorClusterBuilder::new(cfg)
//!     .pool_size(2) // 3 procs + 2 reactors + 1 dialer = 6 threads
//!     .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
//! node.write(writer, RegisterId::ZERO, 9)?;
//! assert_eq!(node.read(ProcessId::new(2), RegisterId::ZERO)?, 9);
//! assert_eq!(node.thread_count(), 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! **Migrating from `TcpClusterBuilder`:** `ReactorClusterBuilder` is a
//! drop-in for the all-local case — same `registers` / `flush_policy` /
//! `cache_mode` / `op_timeout` knobs, same `Driver` surface, same
//! history and stats semantics. For multi-host deployments switch to
//! `ReactorNodeBuilder::new(cfg).host([..]).listen(addr)?.join(&peers,
//! ..)` and drive each process through the node that hosts it (a
//! non-hosted process is a typed `DriverError::Backend`). See
//! `docs/transport.md` for the architecture and deployment guide.
//!
//! ## Migrating to the byte-level frame API
//!
//! * `Frame::encode()` returns the length-prefixed blob; `Frame::decode`
//!   expects the prefix included. `FrameHeader::bits()`/`encode()` now
//!   include the header-codec-v2 mode bit (delta/gamma vs span bitmap,
//!   whichever is smaller per frame); `bits_gamma()` reports the forced
//!   delta/gamma figure for comparison.
//! * `FrameDecodeError` is an alias of `proto::WireError` (the old
//!   `Truncated`/`Overflow` variants remain, with new ones alongside).
//! * Custom `WireMessage`/`Payload` impls keep compiling — the codec
//!   methods have defaults — but must override them to cross [`TcpCluster`]
//!   or a `wire_codec(true)` backend. See `docs/wire-format.md`.
//!
//! ## Flush semantics: static and adaptive holds
//!
//! How aggressively a link coalesces envelopes into frames is a
//! [`FlushPolicy`]: flush on **size** (`max_batch` pending), on **hold**
//! (the oldest envelope waited out the window), or on **shutdown** —
//! every backend records which, per frame
//! ([`proto::NetStats::flushes`]), plus the observed-hold summary. The
//! hold is [`HoldPolicy::Static`] or [`HoldPolicy::Adaptive`]`{ floor,
//! ceil }`, which EWMA-tracks each link's inter-arrival gap so an idle
//! link flushes a lone message immediately while a bursty link converges
//! toward full frames. One shared state machine
//! ([`runtime::LinkBatcher`]) drives the runtime's chaos links and the
//! TCP socket writers; [`SpaceBuilder::flush_hold_policy`] /
//! [`VirtualHold`] is the simulator's virtual-time analogue. Per-link
//! overrides (`flush_policy_for`, `flush_hold_for`) handle asymmetric
//! topologies, and unsatisfiable policies (`max_batch == 0`, inverted
//! adaptive bands) fail the build with a typed [`BuildError`] instead of
//! panicking a link thread:
//!
//! ```
//! use std::time::Duration;
//! use twobit::{ClusterBuilder, FlushPolicy, ProcessId, SystemConfig, TwoBitProcess};
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let writer = ProcessId::new(0);
//! let cluster = ClusterBuilder::new(cfg)
//!     // Auto-tuned hold: 0 floor (idle links flush at once), 200µs ceil.
//!     .flush_policy(FlushPolicy::adaptive(64, Duration::ZERO, Duration::from_micros(200)))
//!     // Keep one latency-critical link unbatched.
//!     .flush_policy_for(0, 1, FlushPolicy::immediate())
//!     .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
//! let mut w = cluster.client(0);
//! w.write(7)?;
//! let stats = cluster.stats();
//! assert_eq!(stats.flushes_total(), stats.frames_sent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Model checking: every schedule of a small configuration
//!
//! The seeded simulator and the chaos runtime *sample* schedules; the
//! model checker ([`check`], crate `twobit-check`) *enumerates* them. A
//! scheduled-mode space (`SpaceBuilder::scheduled(true)`) exposes its
//! enabled events — frame deliveries, operation invocations and
//! responses — and a pluggable [`proto::Scheduler`] picks what fires
//! next; the checker's depth-first explorer drives every
//! partial-order-inequivalent choice sequence of a small configuration,
//! with sleep-set + persistent-set DPOR pruning, bounded crash
//! injection, and a minimized replayable counterexample on failure:
//!
//! ```
//! use twobit::check::{explore, scenarios, ExploreOptions};
//!
//! // n = 3, t = 1: one write racing one read — every interleaving.
//! let report = explore(&scenarios::twobit_swmr_wr(), &ExploreOptions::default())?;
//! assert!(report.violation.is_none(), "the paper's protocol linearizes");
//! assert!(report.exhausted, "the whole space was covered");
//! assert!(report.stats.paths_explored > 0);
//! # Ok::<(), twobit::DriverError>(())
//! ```
//!
//! Counterexample schedules are plain strings (`i0 d3 r0 …`) that replay
//! verbatim through [`proto::ReplayScheduler`]. See
//! `docs/model-checking.md` for what exactly is explored, how DPOR and
//! the settlement cut keep the space finite and small, and how to add a
//! configuration.
//!
//! ## Migrating from the pre-`Driver` API
//!
//! * `ClusterBuilder::new(cfg).build(..)` and `cluster.client(p)` still
//!   work (single register `r0`). Add `.registers(k)` /
//!   `.build_sharded(..)` and `cluster.client_for(p, reg)` for shards.
//! * `SimBuilder` + `ClientPlan` remain the scripted way to drive the
//!   simulator (crash points, invariants, virtual-time reports). For
//!   interactive or backend-portable driving, use the [`Driver`] methods on
//!   [`Simulation`] — or [`SpaceBuilder`] for a sharded simulation.
//! * `cluster.shutdown()` still returns the flat history; per-register
//!   projections come from `cluster.sharded_history()` /
//!   [`Driver::history`], checked with [`lincheck::check_swmr_sharded`].
//!
//! ## Crate map
//!
//! * [`core`] — the paper's algorithm ([`TwoBitProcess`]) and its
//!   machine-checked invariants;
//! * [`proto`] — the protocol substrate: system model, automaton interface,
//!   wire-cost accounting, the [`Driver`] trait, sharding ([`proto::ShardSet`],
//!   [`proto::Envelope`]) and [`RegisterSpace`];
//! * [`baselines`] — unbounded ABD (SWMR/MWMR) and cost-faithful emulations
//!   of the bounded baselines of Table 1;
//! * [`simnet`] — the deterministic discrete-event simulator (non-FIFO
//!   channels, crash injection, virtual time), single-register and sharded;
//! * [`cache`] — the epoch-reclaimed per-process read cache and its
//!   writer-co-location safety gate ([`CacheMode`]);
//! * [`runtime`] — the live threaded runtime with chaos links;
//! * [`transport`] — the real-socket backend: the same cluster over
//!   loopback TCP, one length-prefixed frame stream per ordered link;
//! * [`lincheck`] — atomicity checking, per register;
//! * [`check`] — the DPOR model checker: exhaustive schedule exploration
//!   for the deterministic backend on small configurations;
//! * [`harness`] — the experiments regenerating the paper's Table 1 and
//!   in-text claims.
//!
//! See `examples/` for more: a portable workload, a named-register KV
//! cache, crash injection, and a synchronizer probe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use twobit_baselines as baselines;
pub use twobit_cache as cache;
pub use twobit_check as check;
pub use twobit_core as core;
pub use twobit_harness as harness;
pub use twobit_lincheck as lincheck;
pub use twobit_proto as proto;
pub use twobit_reactor as reactor;
pub use twobit_runtime as runtime;
pub use twobit_simnet as simnet;
pub use twobit_transport as transport;

pub use twobit_baselines::{
    AbdProcess, MixedMsg, MixedProcess, MwmrProcess, OhRamProcess, PhasedProcess,
};
pub use twobit_cache::{CacheDecision, CacheMode};
pub use twobit_core::{TwoBitOptions, TwoBitProcess};
pub use twobit_proto::{
    Automaton, Driver, DriverError, Effects, Envelope, FlushReason, Frame, FrameCost, FrameHeader,
    History, Lifecycle, LifecycleState, OpId, OpOutcome, OpTicket, Operation, Payload, ProcessId,
    RecoveryRecord, RegisterId, RegisterMode, RegisterSpace, ShardSet, ShardedHistory,
    SystemConfig, Workload,
};
pub use twobit_reactor::{
    ListeningNode, ReactorClusterBuilder, ReactorNode, ReactorNodeBuilder, ReconnectPolicy,
};
pub use twobit_runtime::{
    BuildError, ClientError, Cluster, ClusterBuilder, ConfigError, FlushPolicy, HoldPolicy,
    RegisterClient,
};
pub use twobit_simnet::{
    ClientPlan, CrashPlan, CrashPoint, DelayModel, SimBuilder, SimSpace, Simulation, SpaceBuilder,
    VirtualHold,
};
pub use twobit_transport::{TcpCluster, TcpClusterBuilder};
