//! Crash-failure injection on the deterministic simulator.
//!
//! Demonstrates the model's failure semantics end-to-end (Theorem 1 and the
//! tightness of `t < n/2`):
//!
//! 1. crash `t` processes — including one *mid-broadcast*, so only part of
//!    a `WRITE`'s fan-out escapes — and watch liveness and atomicity hold;
//! 2. crash the **writer** mid-write: the interrupted write may or may not
//!    take effect (both are legal — it is the writer's last operation);
//! 3. crash `t + 1` processes: operations stall forever, demonstrating why
//!    a correct majority is necessary.
//!
//! Run with: `cargo run --example crash_tolerance`

use twobit::core::invariants;
use twobit::{
    ClientPlan, CrashPlan, CrashPoint, DelayModel, Operation, ProcessId, SimBuilder, SystemConfig,
    TwoBitProcess,
};

const DELTA: u64 = 1_000;

fn run_scenario(label: &str, crashes: CrashPlan) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(5, 2)?;
    let writer = ProcessId::new(0);
    let mut sim = SimBuilder::new(cfg)
        .seed(33)
        .delay(DelayModel::Uniform { lo: 100, hi: DELTA })
        .crashes(crashes)
        .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
    // The paper's proof obligations run as live invariants.
    for inv in invariants::all::<u64>(writer) {
        sim.add_invariant(inv);
    }
    sim.client_plan(0, ClientPlan::ops((1..=8u64).map(Operation::Write)));
    sim.client_plan(1, ClientPlan::ops((0..6).map(|_| Operation::<u64>::Read)));
    sim.client_plan(2, ClientPlan::ops((0..6).map(|_| Operation::<u64>::Read)));

    let report = sim.run()?;
    let atomic = twobit::lincheck::check_swmr(&report.history).is_ok();
    println!(
        "{label:32} completed={:2}  stalled={}  atomic={}",
        report.history.completed().count(),
        report.stalled_ops.len(),
        atomic,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("n = 5, t = 2 — every run checks the paper's invariants live\n");

    run_scenario("failure-free", CrashPlan::none())?;

    run_scenario(
        "p3 crashes at t=2Δ",
        CrashPlan::none().with_crash(3, CrashPoint::AtTime(2 * DELTA)),
    )?;

    run_scenario(
        "p3+p4 crash mid-broadcast",
        CrashPlan::none()
            .with_crash(
                3,
                CrashPoint::OnStep {
                    step: 2,
                    sends_allowed: 1,
                },
            )
            .with_crash(
                4,
                CrashPoint::OnStep {
                    step: 4,
                    sends_allowed: 0,
                },
            ),
    )?;

    run_scenario(
        "writer crashes mid-write",
        CrashPlan::none().with_crash(
            0,
            CrashPoint::OnStep {
                step: 3,
                sends_allowed: 1,
            },
        ),
    )?;

    run_scenario(
        "3 > t crash: stalls (expected)",
        CrashPlan::none()
            .with_crash(2, CrashPoint::AtTime(4 * DELTA))
            .with_crash(3, CrashPoint::AtTime(4 * DELTA))
            .with_crash(4, CrashPoint::AtTime(4 * DELTA)),
    )?;

    println!(
        "\nWith ≤ t crashes every live operation terminated and histories stayed \
         atomic; with t+1 crashes the n−t quorums became unreachable and \
         operations stalled — t < n/2 is tight."
    );
    Ok(())
}
