//! Quickstart: one workload, three backends, checked atomicity.
//!
//! The public API is organized around the backend-agnostic `Driver` trait:
//! the same workload definition (no backend-specific code) runs on the
//! deterministic discrete-event simulator, on the live threaded runtime
//! with chaos links, *and* on a real loopback TCP cluster. Every run is
//! then checked — per register — by the linearizability checker.
//!
//! # Envelopes, frames, and the three kinds of bits
//!
//! Every protocol message is wrapped in an `Envelope` naming its target
//! register, but envelopes never cross a link alone: each ordered link
//! coalesces whatever is queued into a `Frame` — one wire unit, one
//! sampled delay, one shared routing header that delta-encodes each shard
//! tag once per frame instead of once per message. Delivery is atomic:
//! a frame reaches a live process whole, or dies whole with a crashed one.
//!
//! The stats therefore split three ways:
//!
//! * `control_bits` — the paper's claim, exactly 2 per message, untouched
//!   by sharding *and* by framing;
//! * `routing_bits` — the unframed-equivalent figure: `⌈log₂ k⌉` per
//!   message, what per-envelope shard tags *would* cost;
//! * `frame_header_bits` — the routing bits actually on the wire: the
//!   shared headers, far below `routing_bits` once frames batch (see
//!   `BENCH_frames.json` for the 64-shard comparison).
//!
//! Since the wire-codec redesign frames are real byte blobs
//! (`Frame::encode`/`Frame::decode`, layout in `docs/wire-format.md`).
//! The simulator runs below with `wire_codec(true)` — every frame crosses
//! as encoded-then-decoded bytes — and the TCP backend has no other mode:
//! its `wire_bytes` are what the kernel actually carried.
//!
//! # Flush semantics: when does a frame form?
//!
//! How long a link holds a batch open is the latency/overhead knob. A
//! `FlushPolicy` (runtime + TCP; `flush_hold`/`flush_hold_policy` is the
//! simulator's virtual-time analogue) flushes on **size** (`max_batch`
//! pending), on **hold** (the oldest item waited out the window), or on
//! **shutdown** — and the stats say which, per frame
//! (`NetStats::flushes(reason)`, plus the observed-hold summary). The hold
//! itself is `HoldPolicy::Static(window)` or `HoldPolicy::Adaptive
//! { floor, ceil }`, which EWMA-tracks each link's inter-arrival gap:
//! a lone message on an idle link flushes after just `floor`
//! (immediately, with the default zero floor), a bursty link holds toward
//! `ceil` so the size bound does the flushing. Per-link overrides
//! (`flush_policy_for` / `flush_hold_for`) tune asymmetric topologies.
//! The runtime backend below runs adaptive; see `docs/wire-format.md` for
//! the full semantics and `BENCH_frames.json` for static-vs-adaptive rows.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use twobit::{
    ClusterBuilder, DelayModel, Driver, FlushPolicy, Operation, ProcessId, RegisterId,
    SpaceBuilder, SystemConfig, TcpClusterBuilder, TwoBitProcess, Workload,
};

/// Writes 1..=10 from the writer interleaved with reads from two readers —
/// a plain data structure, not code, so every backend runs it identically.
fn workload(reg: RegisterId) -> Workload<u64> {
    let mut w = Workload::new();
    for v in 1..=10u64 {
        w = w
            .step(0, reg, Operation::Write(v))
            .step(1, reg, Operation::Read)
            .step(2, reg, Operation::Read);
    }
    w
}

/// Everything below `run` is backend-independent: drive, crash, re-drive,
/// then extract history + stats through the same trait.
fn run<D: Driver<Value = u64>>(
    label: &str,
    driver: &mut D,
) -> Result<(), Box<dyn std::error::Error>> {
    let reg = RegisterId::ZERO;
    workload(reg).run_on(driver)?;

    // Crash up to t processes — the register stays live and atomic.
    driver.crash(ProcessId::new(3)).unwrap();
    driver.crash(ProcessId::new(4)).unwrap();
    driver.write(ProcessId::new(0), reg, 11)?;
    let after = driver.read(ProcessId::new(1), reg)?;

    let sharded = driver.history();
    twobit::lincheck::check_swmr_sharded(&sharded)?;
    let stats = driver.stats();
    println!(
        "{label:8} {} ops, {} msgs in {} frames ({:.1} msgs/frame, {} B on wire, \
         flushed {}×size/{}×hold/{}×shutdown, mean hold {:.0}µs), \
         read {after} after 2 crashes, max {} control bits/msg — atomic",
        sharded.total_ops(),
        stats.total_sent(),
        stats.frames_sent(),
        stats.messages_per_frame(),
        stats.wire_bytes(),
        stats.flushes(twobit::FlushReason::Size),
        stats.flushes(twobit::FlushReason::Hold),
        stats.flushes(twobit::FlushReason::Shutdown),
        stats.mean_observed_hold_ns() / 1_000.0,
        stats.max_msg_control_bits(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CAMP_{n,t}[t < n/2]: 5 processes, at most 2 may crash.
    let cfg = SystemConfig::new(5, 2)?;
    let writer = ProcessId::new(0);

    // Backend 1: deterministic simulator (virtual time, replayable seed),
    // with the byte codec in the loop proving serialization fidelity.
    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .wire_codec(true)
        .build(0u64, |_reg, id| TwoBitProcess::new(id, cfg, writer, 0u64));
    run("simnet", &mut sim)?;

    // Backend 2: live threads with chaos links — 50–500µs delays plus 2ms
    // spikes, so messages genuinely reorder (the channels are not FIFO; the
    // algorithm's alternating-bit discipline handles that). The links run
    // the adaptive flush policy: idle links flush a lone message at once,
    // bursty links converge toward full frames.
    let mut cluster = ClusterBuilder::new(cfg)
        .seed(7)
        .delay(DelayModel::Spiky {
            lo: 50,
            hi: 500,
            spike_ppm: 100_000,
            spike_lo: 1_000,
            spike_hi: 2_000,
        })
        .flush_policy(FlushPolicy::adaptive(
            64,
            Duration::ZERO,
            Duration::from_micros(200),
        ))
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
    run("runtime", &mut cluster)?;

    // Backend 3: real loopback TCP — one socket per ordered process pair,
    // each frame a length-prefixed byte blob. Same workload, same checks.
    let mut tcp =
        TcpClusterBuilder::new(cfg).build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
    run("tcp", &mut tcp)?;

    println!("same workload, same checks, three execution substrates");
    Ok(())
}
