//! Quickstart: an SWMR atomic register on the live threaded runtime.
//!
//! Starts a 5-process crash-prone system (t = 2), writes from the single
//! writer, reads from several readers, crashes a process mid-run, and
//! finally checks the recorded history for atomicity.
//!
//! Run with: `cargo run --example quickstart`

use twobit::{ClusterBuilder, DelayModel, ProcessId, SystemConfig, TwoBitProcess};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CAMP_{n,t}[t < n/2]: 5 processes, at most 2 may crash.
    let cfg = SystemConfig::new(5, 2)?;
    let writer = ProcessId::new(0);

    // Chaos links: 50–500µs delays with occasional 2ms spikes, so messages
    // genuinely reorder (the channels are not FIFO — the algorithm's
    // alternating-bit discipline handles that).
    let cluster = ClusterBuilder::new(cfg)
        .seed(7)
        .delay(DelayModel::Spiky {
            lo: 50,
            hi: 500,
            spike_ppm: 100_000,
            spike_lo: 1_000,
            spike_hi: 2_000,
        })
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;

    let mut w = cluster.client(writer);
    let mut r1 = cluster.client(ProcessId::new(1));
    let mut r2 = cluster.client(ProcessId::new(2));

    println!("writing 1..=10 from p0, reading from p1/p2 …");
    for v in 1..=10u64 {
        w.write(v)?;
        let a = r1.read()?;
        let b = r2.read()?;
        println!("  wrote {v:2}   p1 read {a:2}   p2 read {b:2}");
        assert_eq!(a, v);
        assert_eq!(b, v);
    }

    // Crash up to t processes — the register stays live and atomic.
    println!("crashing p3 and p4 (t = 2) …");
    cluster.crash(ProcessId::new(3));
    cluster.crash(ProcessId::new(4));
    w.write(11)?;
    println!("  after crashes: p1 reads {}", r1.read()?);

    let (history, stats) = cluster.shutdown();
    twobit::lincheck::check_swmr(&history)?;
    println!(
        "done: {} operations, {} messages, history is atomic",
        history.completed().count(),
        stats.total_sent()
    );
    println!(
        "every message carried exactly 2 control bits (max observed: {})",
        stats.max_msg_control_bits()
    );
    Ok(())
}
