//! Watching the fault-tolerant synchronizer at work (§3.3, §5).
//!
//! The paper's closing observation is that the algorithm embeds a
//! crash-tolerant *synchronizer*: the alternating-bit discipline keeps every
//! pair of processes within one write of each other —
//! `|w_sync_i[j] − w_sync_j[i]| ≤ 1` (P2) — and lets at most one `WRITE`
//! overtake another per channel (P1). This example drives the system with an
//! aggressively reordering network and prints the measured extremes, plus a
//! snapshot of the `w_sync` matrix mid-run.
//!
//! Run with: `cargo run --example synchronizer_probe`

use twobit::harness::synchronizer;
use twobit::{
    ClientPlan, DelayModel, Operation, ProcessId, SimBuilder, SystemConfig, TwoBitProcess,
};

fn main() {
    // Part 1: measured extremes across adversarial seeds (via the harness).
    println!("P1/P2 probe under spiky, reordering delays (n = 4):\n");
    for seed in 0..5 {
        let r = synchronizer::probe(4, 30, seed);
        println!(
            "  seed {seed}: max |w_sync gap| = {}   max buffered/channel = {}   \
             max unprocessed/channel = {}",
            r.max_gap, r.max_buffered, r.max_unprocessed
        );
    }
    println!("\n  (paper bounds: gap ≤ 1, buffered ≤ 1, unprocessed ≤ 2 — all attained, never exceeded)\n");

    // Part 2: a w_sync matrix snapshot after a partially-propagated write.
    let cfg = SystemConfig::new(4, 1).expect("valid config");
    let writer = ProcessId::new(0);
    let mut sim = SimBuilder::new(cfg)
        .seed(2)
        .delay(DelayModel::Uniform { lo: 500, hi: 1_500 })
        .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
    sim.client_plan(0, ClientPlan::ops((1..=6u64).map(Operation::Write)));
    let report = sim.run().expect("run");
    println!("final w_sync matrix after 6 writes (rows: process i, cols: w_sync_i[j]):\n");
    for (i, p) in report.procs.iter().enumerate() {
        let row: Vec<String> = p.w_sync().iter().map(|x| format!("{x:2}")).collect();
        println!("  p{i}: [{}]", row.join(", "));
    }
    println!(
        "\nAt quiescence every entry equals the write count — the synchronizer has \
         re-converged. Mid-run, adjacent entries differ by at most 1."
    );
}
