//! A replicated configuration store built on the two-bit register.
//!
//! The paper's §5 argues the algorithm "can benefit to read-dominated
//! applications". A classic instance: a cluster-wide configuration blob
//! that one coordinator updates occasionally and every node reads
//! constantly. This example stores a whole key→value map as the register
//! value (the register is single-writer, so the coordinator owns updates),
//! versioned by the writes themselves, and demonstrates:
//!
//! * byte-payload values (the register is generic over its value type);
//! * atomic visibility of configuration changes: once any node observes
//!   version `k`, no node later observes an older version;
//! * survival of `t` crash failures.
//!
//! Run with: `cargo run --example kv_cache`

use std::collections::BTreeMap;

use twobit::{ClusterBuilder, ProcessId, SystemConfig, TwoBitProcess};

/// A tiny hand-rolled config codec: `key=value` lines (no serde needed —
/// the register just sees bytes).
fn encode(map: &BTreeMap<String, String>) -> Vec<u8> {
    let mut out = String::new();
    for (k, v) in map {
        out.push_str(k);
        out.push('=');
        out.push_str(v);
        out.push('\n');
    }
    out.into_bytes()
}

fn decode(bytes: &[u8]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for line in String::from_utf8_lossy(bytes).lines() {
        if let Some((k, v)) = line.split_once('=') {
            map.insert(k.to_string(), v.to_string());
        }
    }
    map
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(5, 2)?;
    let coordinator = ProcessId::new(0);
    let cluster = ClusterBuilder::new(cfg)
        .seed(21)
        .build(Vec::new(), |id| {
            TwoBitProcess::new(id, cfg, coordinator, Vec::new())
        })?;

    let mut admin = cluster.client(coordinator);

    // The coordinator rolls out three config revisions.
    let mut config: BTreeMap<String, String> = BTreeMap::new();
    for (rev, (key, value)) in [
        ("replication", "3"),
        ("timeout_ms", "250"),
        ("replication", "5"), // bump an existing key
    ]
    .into_iter()
    .enumerate()
    {
        config.insert(key.to_string(), value.to_string());
        admin.write(encode(&config))?;
        println!("rev {}: coordinator published {:?}", rev + 1, config);
    }

    // Every node reads the config; all must see the final revision
    // (quiescent system ⇒ the freshest value is the only admissible read).
    for node in 1..cfg.n() {
        let mut c = cluster.client(node);
        let seen = decode(&c.read()?);
        println!("node p{node} sees {seen:?}");
        assert_eq!(seen.get("replication").map(String::as_str), Some("5"));
    }

    // Two nodes crash; the config store keeps serving.
    cluster.crash(ProcessId::new(3));
    cluster.crash(ProcessId::new(4));
    config.insert("degraded".into(), "true".into());
    admin.write(encode(&config))?;
    let mut c = cluster.client(1);
    let seen = decode(&c.read()?);
    println!("after 2 crashes, p1 sees {seen:?}");
    assert_eq!(seen.get("degraded").map(String::as_str), Some("true"));

    let (history, stats) = cluster.shutdown();
    // Duplicate values are possible in principle (we always write the whole
    // map, and maps could repeat); this workload's revisions are distinct,
    // so the fast SWMR checker applies.
    twobit::lincheck::check_swmr(&history)?;
    println!(
        "config store: {} ops, {} msgs, all control information in 2 bits/msg — atomic",
        history.completed().count(),
        stats.total_sent(),
    );
    Ok(())
}
