//! A replicated configuration store: one named register per key.
//!
//! The paper's §5 argues the algorithm "can benefit to read-dominated
//! applications". A classic instance: cluster-wide configuration that a
//! coordinator updates occasionally and every node reads constantly. Where
//! this example used to serialize the *whole* key→value map into a single
//! register, the sharded `RegisterSpace` gives each key its own independent
//! atomic register — updates to one key cost nothing on the others, and
//! each key's history is independently checkable.
//!
//! Demonstrates:
//!
//! * many named registers multiplexed over one 5-process cluster;
//! * per-key atomic visibility (checked, not assumed);
//! * wire accounting: 2 control bits per message per register, plus the
//!   explicit shard-tag routing bits;
//! * survival of `t` crash failures.
//!
//! Run with: `cargo run --example kv_cache`

use twobit::proto::Driver;
use twobit::{ClusterBuilder, ProcessId, RegisterSpace, SystemConfig, TwoBitProcess};

const KEYS: [&str; 4] = ["replication", "timeout_ms", "feature_flags", "degraded"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(5, 2)?;
    let coordinator = ProcessId::new(0);

    // One register per key; the coordinator owns every key (SWMR per
    // register allows per-register writers — here we keep one admin).
    let cluster = ClusterBuilder::new(cfg)
        .seed(21)
        .registers(KEYS.len())
        .build_sharded(0u64, |_reg, id| {
            TwoBitProcess::new(id, cfg, coordinator, 0u64)
        })?;
    let mut store = RegisterSpace::new(cluster, KEYS)?;

    // The coordinator rolls out config revisions, key by key.
    store.write(coordinator, "replication", 3)?;
    store.write(coordinator, "timeout_ms", 250)?;
    store.write(coordinator, "feature_flags", 0b1011)?;
    store.write(coordinator, "replication", 5)?; // bump an existing key
    println!("coordinator published 4 revisions across 3 keys");

    // Every node reads every key; all must see the freshest revisions
    // (quiescent system ⇒ the freshest value is the only admissible read).
    for node in 1..cfg.n() {
        let repl = store.read(node, "replication")?;
        let timeout = store.read(node, "timeout_ms")?;
        println!("node p{node} sees replication={repl} timeout_ms={timeout}");
        assert_eq!(repl, 5);
        assert_eq!(timeout, 250);
    }

    // Two nodes crash; the store keeps serving and stays per-key atomic.
    store.driver_mut().crash(ProcessId::new(3)).unwrap();
    store.driver_mut().crash(ProcessId::new(4)).unwrap();
    store.write(coordinator, "degraded", 1)?;
    let seen = store.read(1, "degraded")?;
    println!("after 2 crashes, p1 sees degraded={seen}");
    assert_eq!(seen, 1);

    // Per-key atomicity over one snapshot of the whole store.
    twobit::lincheck::check_swmr_sharded(&store.histories())?;
    let stats = Driver::stats(store.driver());
    println!(
        "config store: {} msgs, 2 control bits each; routing: {} bits of \
         shared frame headers on the wire vs {} unframed-equivalent \
         (⌈log₂ {}⌉ per msg) — every key atomic",
        stats.total_sent(),
        stats.frame_header_bits(),
        stats.routing_bits(),
        KEYS.len(),
    );
    Ok(())
}
