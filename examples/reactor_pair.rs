//! Two-process reactor deployment: the cross-host smoke test.
//!
//! Runs the same 3-process two-bit register configuration as the
//! quickstart, but split across **two OS processes** wired over real TCP
//! through the reactor transport's listen/join protocol — the shape a
//! genuine multi-host deployment has, compressed onto localhost so CI can
//! run it:
//!
//! ```text
//! reactor_pair left  <dir>   # hosts p0 (the writer)
//! reactor_pair right <dir>   # hosts p1, p2 (the readers)
//! ```
//!
//! Start both (either order); they exchange their OS-assigned port-0
//! listener addresses through files in `<dir>`, join, and run a
//! write/poll-read workload across the process boundary. Each side then
//! verifies its own half: the writer that all writes completed and its
//! links drained un-abandoned, the readers that they observed the final
//! value and every frame reconciled. Exit status is the verdict.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use twobit::{Driver, ProcessId, ReactorNodeBuilder, RegisterId, SystemConfig, TwoBitProcess};

const ROUNDS: u64 = 20;

fn write_file_atomic(path: &Path, contents: &str) {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents).expect("write rendezvous file");
    std::fs::rename(&tmp, path).expect("publish rendezvous file");
}

fn await_file(path: &Path, deadline: Instant) -> String {
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            if !s.trim().is_empty() {
                return s.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let role = args.next().unwrap_or_default();
    let dir = PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
    assert!(
        matches!(role.as_str(), "left" | "right"),
        "usage: reactor_pair <left|right> <rendezvous-dir>"
    );
    let deadline = Instant::now() + Duration::from_secs(60);

    let cfg = SystemConfig::max_resilience(3);
    let writer = ProcessId::new(0);
    let reg = RegisterId::ZERO;
    let make = move |_reg: RegisterId, id: ProcessId| TwoBitProcess::new(id, cfg, writer, 0u64);

    // Phase 1: bind (port 0 — the OS picks), publish the bound address,
    // read the peer's. This is the listen/join split working for real:
    // neither process knows the other's port until the file appears.
    let hosted: &[usize] = if role == "left" { &[0] } else { &[1, 2] };
    let listening = ReactorNodeBuilder::new(cfg)
        .host(hosted.iter().copied())
        .pool_size(2)
        .op_timeout(Duration::from_secs(30))
        .listen("127.0.0.1:0")
        .expect("bind an ephemeral loopback port");
    write_file_atomic(
        &dir.join(format!("{role}.addr")),
        &listening.local_addr().to_string(),
    );
    let peer_role = if role == "left" { "right" } else { "left" };
    let peer_addr: SocketAddr = await_file(&dir.join(format!("{peer_role}.addr")), deadline)
        .parse()
        .expect("peer published a valid address");

    // Phase 2: join. Every process not hosted here lives at the peer.
    let peers: HashMap<ProcessId, SocketAddr> = (0..3)
        .filter(|i| !hosted.contains(i))
        .map(|i| (ProcessId::new(i), peer_addr))
        .collect();
    let mut node = listening.join(&peers, 0u64, make).expect("join the mesh");

    if role == "left" {
        // The writer: every write needs a majority ack, and the other two
        // processes live across the process boundary — each completed
        // write proves the cross-process links both ways.
        for v in 1..=ROUNDS {
            node.write(writer, reg, v).expect("cross-process write");
        }
        // Hold the node up until the readers are done with us, then let
        // the drain protocol settle the trailing acks.
        await_file(&dir.join("right.done"), deadline);
        let (history, stats) = node.shutdown();
        assert_eq!(history.total_ops() as u64, ROUNDS, "all writes recorded");
        assert_eq!(stats.links_abandoned(), 0, "left drained cleanly");
        assert!(stats.wire_bytes() > 0, "left sent real bytes");
        write_file_atomic(&dir.join("left.done"), "ok");
        println!(
            "left ok: {ROUNDS} writes, {} bytes on the wire, {} threads",
            stats.wire_bytes(),
            node_threads(hosted.len())
        );
    } else {
        // The readers: poll p1 until the final value lands, then confirm
        // p2 agrees (a second independent reader of the same register).
        let mut seen = 0u64;
        loop {
            let v = node
                .read(ProcessId::new(1), reg)
                .expect("cross-process read");
            assert!(v >= seen, "register went backwards: {v} < {seen}");
            seen = v;
            if seen == ROUNDS {
                break;
            }
            assert!(Instant::now() < deadline, "never observed the final write");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            node.read(ProcessId::new(2), reg).expect("second reader"),
            ROUNDS
        );
        write_file_atomic(&dir.join("right.done"), "ok");
        // Let the writer begin its drain first (the realistic teardown
        // order: a peer disappears while this node is still up).
        await_file(&dir.join("left.done"), deadline);
        let (history, stats) = node.shutdown();
        assert!(history.total_ops() >= 2, "reads recorded");
        assert_eq!(stats.links_abandoned(), 0, "right drained cleanly");
        assert!(stats.wire_bytes() > 0, "right sent real bytes");
        println!(
            "right ok: final value {seen} observed, {} bytes on the wire, {} threads",
            stats.wire_bytes(),
            node_threads(hosted.len())
        );
    }
}

/// procs + pool(2) + dialer — the flat thread budget each side runs.
fn node_threads(hosted: usize) -> usize {
    hosted + 2 + 1
}
