//! Read-dominated workload shoot-out: two-bit vs unbounded ABD (§5 claim).
//!
//! "Due to the O(n) message cost of its read operation, it can benefit to
//! read-dominated applications and, more generally, to any setting where
//! the communication cost (time and message size) is the critical
//! parameter." — paper, §5.
//!
//! This example measures a 95%-read workload on the deterministic simulator
//! for both algorithms and prints message and byte totals side by side.
//!
//! Run with: `cargo run --example read_dominated`

use twobit::harness::{ablation, DELTA};
use twobit::{
    AbdProcess, ClientPlan, DelayModel, Operation, ProcessId, SimBuilder, SystemConfig,
    TwoBitProcess,
};

fn main() {
    let n = 5;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);

    println!("95%-read workload, n = {n}, t = {}\n", cfg.t());

    // Message/latency comparison via the harness (uses the simulator).
    let [(tb_msgs, tb_lat), (abd_msgs, abd_lat)] = ablation::read_dominated(n, 400, 9);
    println!("two-bit : {tb_msgs:6} messages, mean read latency {tb_lat:.2}Δ");
    println!("ABD     : {abd_msgs:6} messages, mean read latency {abd_lat:.2}Δ");
    println!(
        "\ntwo-bit uses {:.0}% of ABD's messages on this mix\n",
        100.0 * tb_msgs as f64 / abd_msgs as f64
    );

    // Wire-bits comparison on one long-lived register: ABD's control
    // information grows with the write count; the two-bit algorithm's
    // does not.
    for algo in ["two-bit", "abd"] {
        let writes = 2_000u64;
        let (control_bits, data_bits, max_bits) = match algo {
            "two-bit" => {
                let mut sim = SimBuilder::new(cfg)
                    .delay(DelayModel::Fixed(DELTA / 10))
                    .check_every(0)
                    .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
                sim.client_plan(0, ClientPlan::ops((1..=writes).map(Operation::Write)));
                let r = sim.run().expect("run");
                (
                    r.stats.control_bits(),
                    r.stats.data_bits(),
                    r.stats.max_msg_control_bits(),
                )
            }
            _ => {
                let mut sim = SimBuilder::new(cfg)
                    .delay(DelayModel::Fixed(DELTA / 10))
                    .check_every(0)
                    .build(|id| AbdProcess::new(id, cfg, writer, 0u64));
                sim.client_plan(0, ClientPlan::ops((1..=writes).map(Operation::Write)));
                let r = sim.run().expect("run");
                (
                    r.stats.control_bits(),
                    r.stats.data_bits(),
                    r.stats.max_msg_control_bits(),
                )
            }
        };
        println!(
            "{algo:8}: after 2000 writes — control {control_bits:7} bits total \
             (max {max_bits:2}/msg), data {data_bits} bits"
        );
    }
    println!("\n(the two-bit max per message is the paper's constant: 2)");
}
