//! Shared helpers for the criterion benches (see `benches/`).
#![forbid(unsafe_code)]
