//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the writer's read fast path (Fig. 1 comment) on vs off;
//! * the PROCEED-signal read versus ABD's value-shipping read on a
//!   read-dominated mix (paper footnote 3 / §5);
//! * invariant checking on vs off (the cost of running the paper's proof
//!   obligations continuously — infrastructure, but a knob users will care
//!   about).

use criterion::{criterion_group, criterion_main, Criterion};

use twobit_core::{invariants, TwoBitOptions, TwoBitProcess};
use twobit_harness::ablation;
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, SimBuilder, DEFAULT_DELTA};

fn bench_writer_fast_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_writer_fast_read");
    g.sample_size(20);
    let n = 5;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    for fast in [true, false] {
        let label = if fast { "fast-path" } else { "full-protocol" };
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = TwoBitOptions {
                    writer_fast_read: fast,
                    ..TwoBitOptions::default()
                };
                let mut sim = SimBuilder::new(cfg)
                    .delay(DelayModel::Fixed(DEFAULT_DELTA))
                    .check_every(0)
                    .build(|id| TwoBitProcess::with_options(id, cfg, writer, 0u64, opts));
                sim.client_plan(
                    0,
                    ClientPlan::ops(
                        std::iter::once(Operation::Write(1u64))
                            .chain((0..10).map(|_| Operation::Read)),
                    ),
                );
                sim.run().expect("bench sim").stats.total_sent()
            });
        });
    }
    g.finish();
}

fn bench_read_dominated(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_read_dominated_mix");
    g.sample_size(10);
    g.bench_function("two-bit-vs-abd-95-5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let [(tb, _), (abd, _)] = ablation::read_dominated(4, 100, seed);
            assert!(tb < abd, "two-bit must win read-heavy mixes");
            (tb, abd)
        });
    });
    g.finish();
}

fn bench_invariant_checking_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_invariant_checking");
    g.sample_size(10);
    let n = 4;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    for (label, every) in [("off", 0u64), ("every-8-events", 8), ("every-event", 1)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = SimBuilder::new(cfg)
                    .delay(DelayModel::Fixed(DEFAULT_DELTA))
                    .check_every(every)
                    .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
                if every > 0 {
                    for inv in invariants::all::<u64>(writer) {
                        sim.add_invariant(inv);
                    }
                }
                sim.client_plan(0, ClientPlan::ops((1..=10u64).map(Operation::Write)));
                sim.client_plan(1, ClientPlan::ops((0..5).map(|_| Operation::<u64>::Read)));
                sim.run().expect("bench sim").events
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_writer_fast_read,
    bench_read_dominated,
    bench_invariant_checking_cost
);
criterion_main!(benches);
