//! Benchmarks for Table 1 rows 5–6 and the E2 claim: simulated virtual-time
//! latency is asserted inside the bench (2Δ writes / ≤4Δ reads for the
//! two-bit algorithm; 12Δ/12Δ and 14Δ/18Δ for the emulated bounded
//! baselines), while criterion measures the wall-clock cost of verifying it
//! — i.e. these benches double as continuously-run regression checks on the
//! latency claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use twobit_baselines::{abd_bounded_profile, attiya_profile, PhasedProcess};
use twobit_core::TwoBitProcess;
use twobit_harness::latency;
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, PlannedOp, SimBuilder, DEFAULT_DELTA};

const GAP: u64 = 40 * DEFAULT_DELTA;

/// One write + one read, fully quiescent, asserting the Δ-latencies.
fn assert_latencies<F, A>(cfg: SystemConfig, make: F, write_d: u64, read_d_max: u64)
where
    A: twobit_proto::Automaton<Value = u64>,
    F: FnMut(ProcessId) -> A,
{
    let mut sim = SimBuilder::new(cfg)
        .delay(DelayModel::Fixed(DEFAULT_DELTA))
        .check_every(0)
        .build(make);
    sim.client_plan(
        0,
        ClientPlan::new([PlannedOp::immediate(Operation::Write(1u64))]),
    );
    sim.client_plan(
        1,
        ClientPlan::new([PlannedOp::immediate(Operation::Read)]).starting_at(GAP),
    );
    let report = sim.run().expect("latency sim failed");
    let w = report.history.records[0].latency().unwrap();
    let r = report.history.records[1].latency().unwrap();
    assert_eq!(w, write_d * DEFAULT_DELTA, "write latency");
    assert!(r <= read_d_max * DEFAULT_DELTA, "read latency {r}");
}

fn bench_latency_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_rows5_6_latency");
    g.sample_size(20);
    let n = 5;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    g.bench_function(BenchmarkId::new("two-bit(2d,<=4d)", n), |b| {
        b.iter(|| {
            assert_latencies(cfg, |id| TwoBitProcess::new(id, cfg, writer, 0u64), 2, 4);
        });
    });
    g.bench_function(BenchmarkId::new("abd-bounded-emu(12d,12d)", n), |b| {
        b.iter(|| {
            assert_latencies(
                cfg,
                |id| PhasedProcess::new(id, cfg, writer, 0u64, abd_bounded_profile(n)),
                12,
                12,
            );
        });
    });
    g.bench_function(BenchmarkId::new("attiya-emu(14d,18d)", n), |b| {
        b.iter(|| {
            assert_latencies(
                cfg,
                |id| PhasedProcess::new(id, cfg, writer, 0u64, attiya_profile(n)),
                14,
                18,
            );
        });
    });
    g.finish();
}

/// E2 — worst-case latency under concurrency; the bound is asserted inside.
fn bench_concurrent_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_concurrent_latency_bounds");
    g.sample_size(10);
    for n in [3usize, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = latency::bounds(n, 10, seed, DelayModel::Fixed(DEFAULT_DELTA));
                assert!(r.holds, "latency bound violated");
                r.read_max_delta
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_latency_rows, bench_concurrent_bounds);
criterion_main!(benches);
