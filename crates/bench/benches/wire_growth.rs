//! Benchmark for Table 1 row 3 / experiment E8: control-bit growth with
//! history length. Each iteration simulates `k` consecutive writes and
//! asserts the wire property (two-bit: max 2 control bits regardless of
//! `k`; ABD: growing with log₂ k). Criterion's scaling across `k` also
//! exposes the simulator's O(k·n²) event throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use twobit_baselines::AbdProcess;
use twobit_core::TwoBitProcess;
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, SimBuilder, DEFAULT_DELTA};

fn writes_run(two_bit: bool, n: usize, k: u64) -> u64 {
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let max_bits = if two_bit {
        let mut sim = SimBuilder::new(cfg)
            .delay(DelayModel::Fixed(DEFAULT_DELTA / 10))
            .check_every(0)
            .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
        sim.client_plan(0, ClientPlan::ops((1..=k).map(Operation::Write)));
        let r = sim.run().expect("bench sim");
        r.stats.max_msg_control_bits()
    } else {
        let mut sim = SimBuilder::new(cfg)
            .delay(DelayModel::Fixed(DEFAULT_DELTA / 10))
            .check_every(0)
            .build(|id| AbdProcess::new(id, cfg, writer, 0u64));
        sim.client_plan(0, ClientPlan::ops((1..=k).map(Operation::Write)));
        let r = sim.run().expect("bench sim");
        r.stats.max_msg_control_bits()
    };
    if two_bit {
        assert_eq!(max_bits, 2, "two-bit control info must stay at 2 bits");
    } else {
        assert!(max_bits >= 3, "ABD carries tag+seq bits");
    }
    max_bits
}

fn bench_wire_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_wire_growth");
    g.sample_size(10);
    for k in [10u64, 100, 1_000] {
        g.bench_with_input(BenchmarkId::new("two-bit", k), &k, |b, &k| {
            b.iter(|| writes_run(true, 3, k));
        });
        g.bench_with_input(BenchmarkId::new("abd-unbounded", k), &k, |b, &k| {
            b.iter(|| writes_run(false, 3, k));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wire_growth);
criterion_main!(benches);
