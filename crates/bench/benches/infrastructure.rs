//! Infrastructure benches: the substrates this reproduction is built on.
//!
//! * automaton hot path: `on_message` handler throughput for the two-bit
//!   and ABD processes (a million-event simulation is only as fast as
//!   this);
//! * simulator event throughput on a mixed workload;
//! * linearizability checker scaling (the O(m log m) SWMR checker on
//!   histories of growing size);
//! * two-bit codec encode/decode;
//! * live-runtime write+read round trip (threads + chaos links).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use twobit_baselines::AbdProcess;
use twobit_core::msg::codec;
use twobit_core::{Parity, TwoBitMsg, TwoBitProcess};
use twobit_lincheck::swmr;
use twobit_proto::{
    Automaton, Effects, History, OpId, OpOutcome, OpRecord, Operation, ProcessId, SystemConfig,
};
use twobit_simnet::{ClientPlan, DelayModel, SimBuilder, DEFAULT_DELTA};

fn bench_automaton_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("automaton_on_message");
    let cfg = SystemConfig::max_resilience(5);
    let writer = ProcessId::new(0);
    // A WRITE delivery that appends to the history and forwards (the most
    // expensive two-bit handler): rebuild the process each iteration via
    // iter_batched so state does not accumulate.
    g.bench_function("twobit_write_delivery", |b| {
        b.iter_batched(
            || TwoBitProcess::new(ProcessId::new(1), cfg, writer, 0u64),
            |mut p| {
                let mut fx = Effects::new();
                p.on_message(writer, TwoBitMsg::Write(Parity::Odd, 7u64), &mut fx);
                fx
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("abd_write_delivery", |b| {
        b.iter_batched(
            || AbdProcess::new(ProcessId::new(1), cfg, writer, 0u64),
            |mut p| {
                let mut fx = Effects::new();
                p.on_message(
                    writer,
                    twobit_baselines::AbdMsg::Write {
                        seq: 1,
                        value: 7u64,
                    },
                    &mut fx,
                );
                fx
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_event_throughput");
    g.sample_size(10);
    for n in [3usize, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SystemConfig::max_resilience(n);
            let writer = ProcessId::new(0);
            b.iter(|| {
                let mut sim = SimBuilder::new(cfg)
                    .delay(DelayModel::Uniform {
                        lo: 1,
                        hi: DEFAULT_DELTA,
                    })
                    .check_every(0)
                    .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
                sim.client_plan(0, ClientPlan::ops((1..=50u64).map(Operation::Write)));
                for r in 1..n {
                    sim.client_plan(r, ClientPlan::ops((0..20).map(|_| Operation::<u64>::Read)));
                }
                sim.run().expect("bench sim").events
            });
        });
    }
    g.finish();
}

fn make_history(ops: usize) -> History<u64> {
    // Alternating sequential write/read history of the given size.
    let mut records = Vec::with_capacity(ops);
    let mut t = 0u64;
    for i in 0..ops as u64 {
        let is_write = i % 2 == 0;
        let idx = i / 2 + 1;
        records.push(OpRecord {
            op_id: OpId::new(i),
            proc: ProcessId::new(if is_write { 0 } else { 1 }),
            op: if is_write {
                Operation::Write(idx)
            } else {
                Operation::Read
            },
            invoked_at: t,
            completed: Some((
                t + 5,
                if is_write {
                    OpOutcome::Written
                } else {
                    OpOutcome::ReadValue(idx)
                },
            )),
        });
        t += 10;
    }
    History {
        initial: 0,
        records,
        recoveries: vec![],
    }
}

fn bench_lincheck(c: &mut Criterion) {
    let mut g = c.benchmark_group("lincheck_swmr_scaling");
    for ops in [100usize, 1_000, 10_000] {
        let h = make_history(ops);
        g.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| swmr::check(&h).expect("valid history"));
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("twobit_codec");
    let msg = TwoBitMsg::Write(Parity::Even, vec![0xABu8; 1024]);
    let bytes = codec::encode(&msg);
    g.bench_function("encode_1k", |b| b.iter(|| codec::encode(&msg)));
    g.bench_function("decode_1k", |b| b.iter(|| codec::decode(&bytes).unwrap()));
    g.finish();
}

fn bench_runtime_roundtrip(c: &mut Criterion) {
    use twobit_runtime::ClusterBuilder;
    let mut g = c.benchmark_group("runtime_write_read_roundtrip");
    g.sample_size(10);
    let n = 3;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let cluster = ClusterBuilder::new(cfg)
        .delay(DelayModel::Fixed(20)) // 20µs links
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .expect("cluster");
    let mut w = cluster.client(0);
    let mut r = cluster.client(1);
    let mut v = 0u64;
    g.bench_function("write_then_read", |b| {
        b.iter(|| {
            v += 1;
            w.write(v).expect("write");
            assert_eq!(r.read().expect("read"), v);
        });
    });
    g.finish();
    drop((w, r));
    cluster.shutdown();
}

criterion_group!(
    benches,
    bench_automaton_hot_path,
    bench_sim_throughput,
    bench_lincheck,
    bench_codec,
    bench_runtime_roundtrip
);
criterion_main!(benches);
