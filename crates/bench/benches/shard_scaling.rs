//! Shard-count × reader-count scaling of `RegisterSpace` under the framed
//! transport — byte-level wire codec in the loop, static-vs-adaptive
//! flush hold head to head.
//!
//! Sweeps the number of hosted registers and the number of reader processes
//! per register on a 5-process deployment, measuring wall-clock cost per
//! operation and wire traffic. Since the wire-codec redesign every frame is
//! actually encoded and decoded (`wire_codec(true)`), so alongside the
//! framed-vs-unframed routing-bit comparison each row reports
//! **bytes-on-wire**: the length-prefixed blobs a socket would carry
//! (`wire_bytes`, and `bytes_per_op`). Row sources and mixes:
//!
//! * `simnet` / `uniform` — the historical sweep: one write + `readers`
//!   reads per register per round, pipelined across shards;
//! * `simnet` / `zipf95` — workload realism: register popularity drawn
//!   from a Zipf(1.0) distribution over the shards, 95% reads / 5% writes;
//! * `simnet` / `readmostly` — the same 95/5 read-mostly mix with uniform
//!   register popularity. These rows are emitted twice more per hold as
//!   the **cache acceptance pair**: `cache: "proto"` and `cache: "safe"`
//!   both disable the automaton-level `writer_fast_read` shortcut (so
//!   every read would run the two-phase protocol), then `"safe"` turns on
//!   the gated local read cache of `twobit-cache`. The pair isolates the
//!   driver-level cache contribution — `local_read_pct` and the exact
//!   bytes/allocation savings — as first-class trajectory numbers. (The
//!   plain `cache: "off"` rows keep the paper's default algorithm, where
//!   the writer's own fast read already costs zero messages.);
//! * `simnet` / `hotkey` — the contended-hot-key row: every operation
//!   targets register r0 (readers rotating over the non-writer processes)
//!   while the other shards sit idle;
//! * `tcp` / `uniform` — the same portable workload on the real loopback
//!   TCP backend (`TcpCluster`), proving the byte path end to end;
//! * `reactor` / `uniform` — the same workload again on the event-driven
//!   reactor transport (`twobit-reactor`): identical frames and flush
//!   policy to the `tcp` rows, every link multiplexed over a 4-thread
//!   pool. CI asserts its `wire_bytes` stays within 1.05x of the
//!   thread-per-link row. The live-socket rows (`tcp`, `reactor`) also
//!   publish wall-clock per-op latency percentiles (`lat_p50_us`,
//!   `lat_p99_us`, from the recorder's invoke/response timestamps);
//!   simnet rows carry `null` there — their clocks are virtual — and
//!   instead publish the *virtual-time* twins `lat_p50_ticks` /
//!   `lat_p99_ticks` from the same invoke/response timestamps in
//!   simulator ticks (the live rows carry `null` in those columns);
//! * `simnet` / `recovery` — the uniform (16 shards, 2 readers) sweep on
//!   a space built with crash-recovery support enabled but **no crash
//!   injected**: the steady-state cost of the lifecycle machinery. CI
//!   asserts its `wire_bytes` stays within 1.02x of the recovery-disabled
//!   uniform twin — enabling recovery must be free until someone crashes;
//! * `simnet` / `headtohead` — the two-bit protocol versus its
//!   competitors: the **same** workload, framing, hold policy and
//!   codec-on delivery, run once with the paper's automaton
//!   (`algo: "twobit"`), once with the MWMR ABD automaton
//!   (`algo: "mwmr"`, timestamp-bearing messages, verified by
//!   `check_mwmr_sharded`), and once with the Oh-RAM hybrid-read
//!   automaton (`algo: "ohram"`, one-and-a-half-round reads, verified by
//!   `check_swmr_sharded`), so the headline bytes-on-wire and msgs/frame
//!   comparison is finally apples-to-apples. Every row carries an `algo`
//!   column (`"twobit"` everywhere else);
//! * the **latency pair**: the read-mostly static-hold 16-shard simnet
//!   row is re-run with the Oh-RAM automaton (`algo: "ohram"`,
//!   `mix: "readmostly"`) on the same deterministic workload, and the
//!   uniform TCP sweep gets an Oh-RAM twin so the live-socket clock
//!   domain (`lat_p50_us`) is populated for both algorithms too. CI
//!   asserts the trade both ways: Oh-RAM must beat two-bit on
//!   `lat_p50_ticks` for the read-mostly mix (its reads complete in one
//!   round in the common case where two-bit needs the read/confirmation
//!   exchange), while two-bit must keep winning `wire_bytes` *and*
//!   `control_bits` (the relay round is Θ(n²) messages per read — the
//!   paper's headline survives the latency competitor);
//! * `modelcheck` — explorer throughput rows from `twobit-check`: paths
//!   explored/pruned, replays, max depth, and wall time for the canonical
//!   small configurations (plus a dpor-vs-naive pair, so the reduction
//!   factor is itself a trajectory number). These rows carry no wire
//!   columns — the explorer measures schedules, not bytes.
//!
//! The zipf95, readmostly, and hotkey rows are emitted **twice**: once
//! under the static default hold (`hold: "static"`, `flush_hold(500)`) and
//! once under the adaptive auto-tuner (`hold: "adaptive"`,
//! `VirtualHold::Adaptive { floor: 0, ceil: 2000 }`), plus a static and an
//! adaptive TCP row. Every row carries the flush-reason counters
//! (`flushes_size`/`flushes_hold`/`flushes_shutdown`) and the mean
//! observed hold, so the JSON shows *why* the frames formed, not just how
//! many. CI's bench smoke job fails if the adaptive rows lose to static
//! on bytes-on-wire for the read-mostly and zipfian mixes.
//!
//! The 64-shard rows also assert the header codec v2 chooser: the
//! delta/gamma-vs-bitmap mode bit must never lose to forced delta/gamma
//! (`frame_header_bits ≤ frame_header_gamma_bits`).
//!
//! Every row also reports `allocs_per_op` — heap allocations per
//! operation, counted by a wrapping global allocator around each measured
//! run — so the zero-copy frame path and the read cache are held to an
//! allocation budget, not just a byte budget. CI's bench smoke job fails
//! if a `cache: "safe"` read-mostly row does not beat its `"off"` twin on
//! both `bytes_per_op` and `allocs_per_op`, or reports `local_read_pct`
//! of zero.
//!
//! Results land in `BENCH_frames.json` at the workspace root.
//!
//! Run with: `cargo bench --bench shard_scaling`
//! Fast mode (JSON only, no criterion sampling — what CI's bench smoke job
//! runs): `BENCH_FAST=1 cargo bench --bench shard_scaling`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twobit_baselines::{MwmrProcess, OhRamProcess};
use twobit_cache::CacheMode;
use twobit_check::{explore, scenarios, ExploreOptions, Strategy};
use twobit_core::TwoBitOptions;
use twobit_core::TwoBitProcess;
use twobit_proto::{
    Automaton, Driver, FlushReason, NetStats, Operation, ProcessId, RegisterId, RegisterSpace,
    ShardedHistory, SystemConfig, Workload,
};
use twobit_reactor::ReactorClusterBuilder;
use twobit_runtime::FlushPolicy;
use twobit_simnet::{DelayModel, SimSpace, SpaceBuilder, VirtualHold};
use twobit_transport::TcpClusterBuilder;

/// Counts heap allocations so every row can publish `allocs_per_op`. The
/// deallocation path is untouched; the counter is relaxed — we want a
/// cheap census, not a profiler.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter increment on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const N: usize = 5;
const SHARD_COUNTS: [usize; 4] = [1, 4, 16, 64];
const READER_COUNTS: [usize; 3] = [1, 2, 4];
const ROUNDS: u64 = 4;
/// Operations per mixed-workload row (reads + writes).
const MIX_OPS: usize = 400;
/// Read fraction of the read-mostly mixes, in percent.
const READ_PCT: u64 = 95;
/// The static default the simnet adaptive rows are judged against, in
/// virtual ticks.
const STATIC_HOLD: u64 = 500;
/// Simnet adaptive band: floor 0 (idle links flush immediately), ceiling
/// 2000 ticks (bursty links may hold up to 4× the static default).
const ADAPTIVE: VirtualHold = VirtualHold::Adaptive {
    floor: 0,
    ceil: 2_000,
};
/// The TCP rows run real-time holds, not virtual ticks: the static row
/// holds 20µs (the `FlushPolicy::default()` window, max_batch 64) and
/// the adaptive row tunes between 0 and this ceiling — both recorded in
/// the JSON config block so the rows are reproducible as published.
const TCP_STATIC_HOLD_US: u64 = 20;
const TCP_ADAPTIVE_CEIL_US: u64 = 200;

/// Which hold policy a row ran under (also its JSON label).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Hold {
    Static,
    Adaptive,
}

impl Hold {
    fn label(self) -> &'static str {
        match self {
            Hold::Static => "static",
            Hold::Adaptive => "adaptive",
        }
    }

    fn virtual_hold(self) -> VirtualHold {
        match self {
            Hold::Static => VirtualHold::Static(STATIC_HOLD),
            Hold::Adaptive => ADAPTIVE,
        }
    }
}

/// One simnet configuration for every row, parameterized over the
/// automaton so the `headtohead` rows compare algorithms under *exactly*
/// the framing/hold/codec setup of the sweep rows (no duplicated builder
/// chain to drift).
fn build_space_with<A, F>(
    shards: usize,
    seed: u64,
    hold: Hold,
    cache: CacheMode,
    recovery: bool,
    make: F,
) -> RegisterSpace<SimSpace<A>>
where
    A: Automaton<Value = u64>,
    F: FnMut(RegisterId, ProcessId) -> A,
{
    let cfg = SystemConfig::max_resilience(N);
    let sim = SpaceBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
        // Static rows hold staged envelopes half the delay bound for
        // company; adaptive rows auto-tune per link between 0 and 2000.
        .flush_hold_policy(hold.virtual_hold())
        // Route every frame through the byte codec: the run executes on
        // decoded bytes and `wire_bytes` reports real blob sizes.
        .wire_codec(true)
        .cache_mode(cache)
        // The recovery row's knob: lifecycle machinery armed, no crash
        // injected. Everywhere else the knob is off.
        .recovery(recovery)
        .registers(shards)
        .build(0u64, make);
    let names = (0..shards).map(|k| format!("shard:{k:03}"));
    RegisterSpace::new(sim, names).expect("names fit the hosted registers")
}

fn build_space(
    shards: usize,
    seed: u64,
    hold: Hold,
    cache: CacheMode,
) -> RegisterSpace<SimSpace<TwoBitProcess<u64>>> {
    let cfg = SystemConfig::max_resilience(N);
    build_space_with(shards, seed, hold, cache, false, move |reg, id| {
        TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
    })
}

/// JSON label for a row's cache mode.
fn cache_label(cache: CacheMode) -> &'static str {
    match cache {
        CacheMode::Off => "off",
        CacheMode::Safe => "safe",
        CacheMode::UnsafeAblated => "unsafe",
    }
}

/// One write + `readers` reads per register per round, pipelined across
/// shards through the portable `Workload` abstraction.
fn sweep_workload(shards: usize, readers: usize) -> Workload<u64> {
    let mut w = Workload::new();
    for round in 0..ROUNDS {
        for k in 0..shards {
            let reg = RegisterId::new(k);
            let writer = k % N;
            w = w.step(
                writer,
                reg,
                Operation::Write(1 + round * shards as u64 + k as u64),
            );
            for r in 1..=readers {
                w = w.step((writer + r) % N, reg, Operation::Read);
            }
        }
    }
    w
}

/// Read-mostly skewed workload: register popularity ~ Zipf(1.0) over the
/// shards, `READ_PCT`% reads; reader processes rotate per step.
fn zipf_workload(shards: usize, ops: usize, seed: u64) -> Workload<u64> {
    // Cumulative Zipf weights (w_r = 1/rank).
    let mut cum = Vec::with_capacity(shards);
    let mut total = 0.0f64;
    for rank in 1..=shards {
        total += 1.0 / rank as f64;
        cum.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new();
    let mut next_value = 1u64;
    for i in 0..ops {
        let u: f64 = (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64 * total;
        let k = cum.partition_point(|&c| c < u).min(shards - 1);
        w = mixed_step(w, k, i, &mut next_value, &mut rng);
    }
    w
}

/// Read-mostly workload with *uniform* register popularity — the
/// read-mostly row without the zipfian skew.
fn readmostly_workload(shards: usize, ops: usize, seed: u64) -> Workload<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new();
    let mut next_value = 1u64;
    for i in 0..ops {
        let k = rng.gen_range(0usize..shards);
        w = mixed_step(w, k, i, &mut next_value, &mut rng);
    }
    w
}

/// Contended-hot-key workload: every operation lands on register r0 —
/// its writer process takes all the writes, the other four processes
/// rotate through the reads — while `shards − 1` other registers are
/// hosted but idle (so routing tags still exist and idle links matter).
fn hotkey_workload(ops: usize, seed: u64) -> Workload<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new();
    let mut next_value = 1u64;
    for i in 0..ops {
        w = mixed_step(w, 0, i, &mut next_value, &mut rng);
    }
    w
}

/// One step of the 95/5 mixed workloads: a read from a rotating process —
/// **including the register's own writer**, so the co-location gate of
/// `CacheMode::Safe` has real traffic to serve — or a write from the
/// register's writer.
fn mixed_step(
    w: Workload<u64>,
    k: usize,
    i: usize,
    next_value: &mut u64,
    rng: &mut StdRng,
) -> Workload<u64> {
    let reg = RegisterId::new(k);
    let writer = k % N;
    if rng.gen_range(0u64..100) < READ_PCT {
        let reader = (writer + i % N) % N;
        w.step(reader, reg, Operation::Read)
    } else {
        *next_value += 1;
        w.step(writer, reg, Operation::Write(*next_value))
    }
}

/// The head-to-head comparison point: shards × readers of the
/// two-bit-vs-MWMR rows.
const HEAD_TO_HEAD: (usize, usize) = (16, 2);

struct Row {
    algo: &'static str,
    source: &'static str,
    mix: &'static str,
    hold: &'static str,
    cache: &'static str,
    shards: usize,
    readers: usize,
    ops: usize,
    wall_ns_per_op: f64,
    msgs: u64,
    frames: u64,
    msgs_per_frame: f64,
    control_bits: u64,
    routing_bits_unframed: u64,
    routing_bits_framed: u64,
    routing_bits_framed_gamma: u64,
    wire_bytes: u64,
    bytes_per_op: f64,
    allocs_per_op: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_fallbacks: u64,
    local_read_pct: f64,
    flushes_size: u64,
    flushes_hold: u64,
    flushes_shutdown: u64,
    mean_hold_us: f64,
    /// Wall-clock per-operation latency percentiles in microseconds,
    /// from the recorder's invoke/response timestamps. Populated on the
    /// live-socket rows (`tcp`, `reactor`); `None` (JSON `null`) on
    /// simnet rows, whose timestamps are virtual ticks.
    lat_p50_us: Option<f64>,
    lat_p99_us: Option<f64>,
    /// Virtual-time per-operation latency percentiles in simulator
    /// ticks, from the same invoke/response timestamps. Populated on
    /// simnet rows; `None` (JSON `null`) on the live-socket rows, whose
    /// timestamps are wall-clock nanoseconds.
    lat_p50_ticks: Option<u64>,
    lat_p99_ticks: Option<u64>,
}

/// Sorted completed-operation latencies from a history, in whatever unit
/// the backend's recorder stamped (nanoseconds live, ticks on simnet).
fn sorted_latencies(hist: &ShardedHistory<u64>) -> Vec<u64> {
    let mut lats: Vec<u64> = hist
        .iter()
        .flat_map(|(_, shard)| {
            shard
                .records
                .iter()
                .filter_map(twobit_proto::OpRecord::latency)
        })
        .collect();
    assert!(!lats.is_empty(), "latency rows need completed operations");
    lats.sort_unstable();
    lats
}

fn percentile(lats: &[u64], q: f64) -> u64 {
    let idx = ((lats.len() - 1) as f64 * q).round() as usize;
    lats[idx]
}

/// Wall-clock p50/p99 operation latency in microseconds from a live
/// backend's history (recorder timestamps are nanoseconds since start).
fn latency_percentiles_us(hist: &ShardedHistory<u64>) -> (f64, f64) {
    let lats = sorted_latencies(hist);
    (
        percentile(&lats, 0.50) as f64 / 1_000.0,
        percentile(&lats, 0.99) as f64 / 1_000.0,
    )
}

/// Virtual-time p50/p99 operation latency in simulator ticks from a
/// simnet history — the deterministic twin of `latency_percentiles_us`,
/// published raw (ticks are already the natural unit).
fn latency_percentiles_ticks(hist: &ShardedHistory<u64>) -> (u64, u64) {
    let lats = sorted_latencies(hist);
    (percentile(&lats, 0.50), percentile(&lats, 0.99))
}

#[allow(clippy::too_many_arguments)]
fn row_from_stats(
    algo: &'static str,
    source: &'static str,
    mix: &'static str,
    hold: &'static str,
    cache: &'static str,
    shards: usize,
    readers: usize,
    ops: usize,
    wall_ns: f64,
    allocs: u64,
    stats: &NetStats,
) -> Row {
    if algo == "twobit" {
        assert_eq!(
            stats.control_bits(),
            2 * stats.total_sent(),
            "the two-bit claim must survive framing and serialization"
        );
    } else {
        // The competitors pay real control bits — MWMR for its
        // timestamps, Oh-RAM for its three-bit tags and γ-coded fields —
        // and that gap IS the comparison these rows exist to publish.
        assert!(
            stats.control_bits() > 2 * stats.total_sent(),
            "competitor rows must carry more than two control bits per message"
        );
    }
    assert_eq!(
        stats.flushes_total(),
        stats.frames_sent(),
        "every frame must carry exactly one flush reason"
    );
    if shards == 64 {
        // Header codec v2 acceptance: the per-frame mode chooser never
        // loses to always-gamma at the 64-shard row.
        assert!(
            stats.frame_header_bits() <= stats.frame_header_gamma_bits(),
            "chooser {} > forced gamma {} at {shards} shards",
            stats.frame_header_bits(),
            stats.frame_header_gamma_bits(),
        );
    }
    // Share of cache-consulted reads served locally. With the cache on,
    // every read consults it exactly once, so the denominator is the
    // row's read count; with it off all three counters are zero.
    let consulted = stats.cache_hits() + stats.cache_misses() + stats.cache_fallbacks();
    let local_read_pct = if consulted == 0 {
        0.0
    } else {
        100.0 * stats.cache_hits() as f64 / consulted as f64
    };
    Row {
        algo,
        source,
        mix,
        hold,
        cache,
        shards,
        readers,
        ops,
        wall_ns_per_op: wall_ns / ops as f64,
        msgs: stats.total_sent(),
        frames: stats.frames_sent(),
        msgs_per_frame: stats.messages_per_frame(),
        control_bits: stats.control_bits(),
        routing_bits_unframed: stats.routing_bits(),
        routing_bits_framed: stats.frame_header_bits(),
        routing_bits_framed_gamma: stats.frame_header_gamma_bits(),
        wire_bytes: stats.wire_bytes(),
        bytes_per_op: stats.wire_bytes() as f64 / ops as f64,
        allocs_per_op: allocs as f64 / ops as f64,
        cache_hits: stats.cache_hits(),
        cache_misses: stats.cache_misses(),
        cache_fallbacks: stats.cache_fallbacks(),
        local_read_pct,
        flushes_size: stats.flushes(FlushReason::Size),
        flushes_hold: stats.flushes(FlushReason::Hold),
        flushes_shutdown: stats.flushes(FlushReason::Shutdown),
        mean_hold_us: stats.mean_observed_hold_ns() / 1_000.0,
        lat_p50_us: None,
        lat_p99_us: None,
        lat_p50_ticks: None,
        lat_p99_ticks: None,
    }
}

/// Attach the virtual-time latency twins to a simnet row.
fn with_tick_latencies(mut row: Row, hist: &ShardedHistory<u64>) -> Row {
    let (p50, p99) = latency_percentiles_ticks(hist);
    row.lat_p50_ticks = Some(p50);
    row.lat_p99_ticks = Some(p99);
    row
}

fn measure(shards: usize, readers: usize) -> Row {
    let workload = sweep_workload(shards, readers);
    let mut space = build_space(shards, 42, Hold::Static, CacheMode::Off);
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(space.driver_mut())
        .expect("sweep workload runs");
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    let stats = space.driver().stats();
    let row = row_from_stats(
        "twobit",
        "simnet",
        "uniform",
        Hold::Static.label(),
        "off",
        shards,
        readers,
        workload.len(),
        wall.as_nanos() as f64,
        allocs,
        &stats,
    );
    with_tick_latencies(row, &space.driver().history())
}

/// The recovery steady-state row: the uniform (shards, readers) sweep on
/// a space with crash-recovery support enabled but no crash injected.
/// Its wire traffic is what merely *arming* the lifecycle machinery
/// costs; `assert_recovery_is_free` holds it to within 1.02x of the
/// recovery-disabled uniform twin from the sweep.
fn measure_recovery(shards: usize, readers: usize) -> Row {
    let cfg = SystemConfig::max_resilience(N);
    let workload = sweep_workload(shards, readers);
    let mut space = build_space_with(
        shards,
        42,
        Hold::Static,
        CacheMode::Off,
        true,
        move |reg, id| TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64),
    );
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(space.driver_mut())
        .expect("recovery-armed workload runs");
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    let stats = space.driver().stats();
    assert_eq!(stats.recoveries(), 0, "this row injects no crash");
    let row = row_from_stats(
        "twobit",
        "simnet",
        "recovery",
        Hold::Static.label(),
        "off",
        shards,
        readers,
        workload.len(),
        wall.as_nanos() as f64,
        allocs,
        &stats,
    );
    with_tick_latencies(row, &space.driver().history())
}

/// The three-way head-to-head: the same sweep workload, the same framing,
/// hold, and codec-on delivery — one run with the paper's automaton, one
/// with the MWMR ABD automaton (any process may write, so the identical
/// steps are legal there too), one with the Oh-RAM hybrid-read automaton.
/// Each competitor's history is pushed through its mode's checker
/// (timestamp-order for MWMR, SWMR for Oh-RAM), so every row is a
/// *verified* linearizable execution, not just traffic.
fn measure_head_to_head() -> (Row, Row, Row) {
    let (shards, readers) = HEAD_TO_HEAD;
    let workload = sweep_workload(shards, readers);

    let mut twobit = build_space(shards, 42, Hold::Static, CacheMode::Off);
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(twobit.driver_mut())
        .expect("two-bit head-to-head workload runs");
    let twobit_wall = t0.elapsed();
    let twobit_allocs = allocs_now() - a0;
    let twobit_stats = twobit.driver().stats();

    let cfg = SystemConfig::max_resilience(N);
    let mut mwmr = build_space_with(
        shards,
        42,
        Hold::Static,
        CacheMode::Off,
        false,
        move |_reg, id| MwmrProcess::new(id, cfg, 0u64),
    );
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(mwmr.driver_mut())
        .expect("MWMR head-to-head workload runs");
    let mwmr_wall = t0.elapsed();
    let mwmr_allocs = allocs_now() - a0;
    twobit_lincheck::check_mwmr_sharded(&mwmr.driver().history())
        .expect("the MWMR run must be timestamp-order linearizable");
    let mwmr_stats = mwmr.driver().stats();

    let mut ohram = build_space_with(
        shards,
        42,
        Hold::Static,
        CacheMode::Off,
        false,
        move |reg, id| OhRamProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64),
    );
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(ohram.driver_mut())
        .expect("Oh-RAM head-to-head workload runs");
    let ohram_wall = t0.elapsed();
    let ohram_allocs = allocs_now() - a0;
    twobit_lincheck::check_swmr_sharded(&ohram.driver().history())
        .expect("the Oh-RAM run must be linearizable");
    let ohram_stats = ohram.driver().stats();

    (
        with_tick_latencies(
            row_from_stats(
                "twobit",
                "simnet",
                "headtohead",
                Hold::Static.label(),
                "off",
                shards,
                readers,
                workload.len(),
                twobit_wall.as_nanos() as f64,
                twobit_allocs,
                &twobit_stats,
            ),
            &twobit.driver().history(),
        ),
        with_tick_latencies(
            row_from_stats(
                "mwmr",
                "simnet",
                "headtohead",
                Hold::Static.label(),
                "off",
                shards,
                readers,
                workload.len(),
                mwmr_wall.as_nanos() as f64,
                mwmr_allocs,
                &mwmr_stats,
            ),
            &mwmr.driver().history(),
        ),
        with_tick_latencies(
            row_from_stats(
                "ohram",
                "simnet",
                "headtohead",
                Hold::Static.label(),
                "off",
                shards,
                readers,
                workload.len(),
                ohram_wall.as_nanos() as f64,
                ohram_allocs,
                &ohram_stats,
            ),
            &ohram.driver().history(),
        ),
    )
}

/// One mixed-workload row (zipf95 / readmostly / hotkey) under the given
/// hold policy and cache mode. The `cache: "safe"` twin runs the *same*
/// deterministic workload, so its bytes/allocation deltas against `"off"`
/// are exact, not sampled.
fn measure_mix(mix: &'static str, shards: usize, hold: Hold, cache: CacheMode) -> Row {
    let workload = match mix {
        "zipf95" => zipf_workload(shards, MIX_OPS, 7),
        "readmostly" => readmostly_workload(shards, MIX_OPS, 7),
        "hotkey" => hotkey_workload(MIX_OPS, 7),
        other => unreachable!("unknown mix {other}"),
    };
    let mut space = build_space(shards, 42, hold, cache);
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(space.driver_mut())
        .expect("mixed workload runs");
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    // A cached read must be indistinguishable from a protocol read to the
    // checker: the safe rows are verified executions, same as the rest.
    if cache != CacheMode::Off {
        twobit_lincheck::check_swmr_sharded(&space.driver().history())
            .expect("cached rows must stay atomic");
    }
    let stats = space.driver().stats();
    let row = row_from_stats(
        "twobit",
        "simnet",
        mix,
        hold.label(),
        cache_label(cache),
        shards,
        0,
        workload.len(),
        wall.as_nanos() as f64,
        allocs,
        &stats,
    );
    with_tick_latencies(row, &space.driver().history())
}

/// The Oh-RAM half of the latency pair: the exact read-mostly workload of
/// the `measure_mix("readmostly", shards, hold, Off)` row — same seed,
/// same framing, same codec-on delivery — run on the Oh-RAM hybrid-read
/// automaton instead of the paper's. The history is pushed through the
/// SWMR checker before the stats are published (Oh-RAM changes the delay
/// budget of a read, not the correctness contract), so the row is a
/// verified linearizable execution. `assert_ohram_trades_bits_for_latency`
/// compares it against its two-bit twin on both axes.
fn measure_ohram_mix(shards: usize, hold: Hold) -> Row {
    let cfg = SystemConfig::max_resilience(N);
    let workload = readmostly_workload(shards, MIX_OPS, 7);
    let mut space = build_space_with(shards, 42, hold, CacheMode::Off, false, move |reg, id| {
        OhRamProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
    });
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(space.driver_mut())
        .expect("Oh-RAM read-mostly workload runs");
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    twobit_lincheck::check_swmr_sharded(&space.driver().history())
        .expect("the Oh-RAM run must be linearizable");
    let stats = space.driver().stats();
    let row = row_from_stats(
        "ohram",
        "simnet",
        "readmostly",
        hold.label(),
        "off",
        shards,
        0,
        workload.len(),
        wall.as_nanos() as f64,
        allocs,
        &stats,
    );
    with_tick_latencies(row, &space.driver().history())
}

/// The cache acceptance pair: the same deterministic read-mostly workload
/// run twice with the writer's automaton-level fast read disabled
/// (`writer_fast_read: false`, so every read would run the two-phase
/// protocol) — once with the cache off (`cache: "proto"`) and once with
/// the writer-gated local read cache (`cache: "safe"`). The delta between
/// the two rows is *exactly* what the driver-level cache saves; both
/// histories are checked atomic before their stats are published.
fn measure_cache_pair(shards: usize, hold: Hold) -> (Row, Row) {
    let cfg = SystemConfig::max_resilience(N);
    let options = TwoBitOptions {
        writer_fast_read: false,
        ..TwoBitOptions::default()
    };
    let workload = readmostly_workload(shards, MIX_OPS, 7);
    let run = |cache: CacheMode, label: &'static str| -> Row {
        let mut space = build_space_with(shards, 42, hold, cache, false, move |reg, id| {
            TwoBitProcess::with_options(id, cfg, ProcessId::new(reg.index() % N), 0u64, options)
        });
        let a0 = allocs_now();
        let t0 = Instant::now();
        workload
            .run_pipelined_on(space.driver_mut())
            .expect("cache-pair workload runs");
        let wall = t0.elapsed();
        let allocs = allocs_now() - a0;
        twobit_lincheck::check_swmr_sharded(&space.driver().history())
            .expect("cache-pair rows must stay atomic");
        let stats = space.driver().stats();
        let row = row_from_stats(
            "twobit",
            "simnet",
            "readmostly",
            hold.label(),
            label,
            shards,
            0,
            workload.len(),
            wall.as_nanos() as f64,
            allocs,
            &stats,
        );
        with_tick_latencies(row, &space.driver().history())
    };
    (run(CacheMode::Off, "proto"), run(CacheMode::Safe, "safe"))
}

/// The same portable workload on the real loopback TCP backend: the bytes
/// column is what `write(2)` handed to the kernel. Parameterized over the
/// automaton so the live-socket clock domain (`lat_p50_us`) is populated
/// for the Oh-RAM competitor under *exactly* the framing and flush setup
/// of the two-bit row.
fn measure_tcp_with<A, F>(
    algo: &'static str,
    shards: usize,
    readers: usize,
    hold: Hold,
    make: F,
) -> Row
where
    A: Automaton<Value = u64>,
    F: FnMut(RegisterId, ProcessId) -> A,
{
    let cfg = SystemConfig::max_resilience(N);
    let workload = sweep_workload(shards, readers);
    let policy = match hold {
        Hold::Static => {
            FlushPolicy::fixed(64, std::time::Duration::from_micros(TCP_STATIC_HOLD_US))
        }
        Hold::Adaptive => FlushPolicy::adaptive(
            64,
            std::time::Duration::ZERO,
            std::time::Duration::from_micros(TCP_ADAPTIVE_CEIL_US),
        ),
    };
    let mut cluster = TcpClusterBuilder::new(cfg)
        .registers(shards)
        .flush_policy(policy)
        .build_sharded(0u64, make)
        .expect("loopback TCP cluster starts");
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(&mut cluster)
        .expect("workload runs over TCP");
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    let (history, stats) = cluster.shutdown();
    twobit_lincheck::check_swmr_sharded(&history)
        .expect("TCP rows are verified executions, not just traffic");
    assert!(
        stats.wire_bytes() > 0,
        "TCP rows must populate bytes-on-wire"
    );
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
        stats.total_sent(),
        "TCP teardown reconciliation (abandoned accounting included)"
    );
    let mut row = row_from_stats(
        algo,
        "tcp",
        "uniform",
        hold.label(),
        "off",
        shards,
        readers,
        workload.len(),
        wall.as_nanos() as f64,
        allocs,
        &stats,
    );
    let (p50, p99) = latency_percentiles_us(&history);
    row.lat_p50_us = Some(p50);
    row.lat_p99_us = Some(p99);
    row
}

fn measure_tcp(shards: usize, readers: usize, hold: Hold) -> Row {
    let cfg = SystemConfig::max_resilience(N);
    measure_tcp_with("twobit", shards, readers, hold, move |reg, id| {
        TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
    })
}

/// The Oh-RAM TCP twin: the same sweep workload over real sockets, so
/// both algorithms publish wall-clock latency percentiles, not just the
/// virtual-tick ones. The history is SWMR-checked like every other
/// verified row.
fn measure_ohram_tcp(shards: usize, readers: usize, hold: Hold) -> Row {
    let cfg = SystemConfig::max_resilience(N);
    measure_tcp_with("ohram", shards, readers, hold, move |reg, id| {
        OhRamProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
    })
}

/// The same portable workload on the reactor transport: identical frames
/// and flush policy to the `tcp` row, but every link multiplexed over a
/// 4-thread event-loop pool instead of a reader+writer thread pair per
/// link. Published as `source: "reactor"`; CI asserts its `wire_bytes`
/// does not exceed the thread-per-link row's (same protocol, same
/// framing — the reactor must not pay a byte tax for the flat thread
/// count).
fn measure_reactor(shards: usize, readers: usize, hold: Hold) -> Row {
    let cfg = SystemConfig::max_resilience(N);
    let workload = sweep_workload(shards, readers);
    let policy = match hold {
        Hold::Static => {
            FlushPolicy::fixed(64, std::time::Duration::from_micros(TCP_STATIC_HOLD_US))
        }
        Hold::Adaptive => FlushPolicy::adaptive(
            64,
            std::time::Duration::ZERO,
            std::time::Duration::from_micros(TCP_ADAPTIVE_CEIL_US),
        ),
    };
    let mut node = ReactorClusterBuilder::new(cfg)
        .registers(shards)
        .flush_policy(policy)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        })
        .expect("loopback reactor cluster starts");
    let a0 = allocs_now();
    let t0 = Instant::now();
    workload
        .run_pipelined_on(&mut node)
        .expect("workload runs over the reactor");
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    let (history, stats) = node.shutdown();
    assert!(
        stats.wire_bytes() > 0,
        "reactor rows must populate bytes-on-wire"
    );
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
        stats.total_sent(),
        "reactor teardown reconciliation (resend epochs counted once)"
    );
    assert_eq!(
        stats.reconnects(),
        0,
        "a healthy loopback bench run never reconnects"
    );
    let mut row = row_from_stats(
        "twobit",
        "reactor",
        "uniform",
        hold.label(),
        "off",
        shards,
        readers,
        workload.len(),
        wall.as_nanos() as f64,
        allocs,
        &stats,
    );
    let (p50, p99) = latency_percentiles_us(&history);
    row.lat_p50_us = Some(p50);
    row.lat_p99_us = Some(p99);
    row
}

/// The reactor must not pay a wire-byte tax over the thread-per-link
/// backend: same protocol, same framing, same flush policy — the bytes
/// should match up to flush-timing noise (1.05x tolerance).
fn assert_reactor_matches_tcp_bytes(rows: &[Row]) {
    for hold in ["static", "adaptive"] {
        let tcp = rows
            .iter()
            .find(|r| r.algo == "twobit" && r.source == "tcp" && r.hold == hold)
            .expect("tcp row present");
        let reactor = rows
            .iter()
            .find(|r| r.algo == "twobit" && r.source == "reactor" && r.hold == hold)
            .expect("reactor row present");
        assert!(
            reactor.wire_bytes as f64 <= tcp.wire_bytes as f64 * 1.05,
            "reactor pays a byte tax over thread-per-link ({hold} hold): \
             {} > {} * 1.05",
            reactor.wire_bytes,
            tcp.wire_bytes,
        );
    }
}

/// One model-checking throughput row: how big the DPOR-reduced schedule
/// space of a canonical configuration is and how fast the explorer walks
/// it. Published under `source: "modelcheck"` so checker-throughput
/// regressions show up in the bench trajectory next to the wire numbers
/// (the wire columns don't apply and are omitted; CI's per-row wire
/// checks skip this source).
struct CheckRow {
    algo: &'static str,
    scenario: String,
    strategy: &'static str,
    paths_explored: u64,
    paths_pruned: u64,
    replays: u64,
    max_depth: u64,
    exhausted: bool,
    wall_ms: f64,
}

fn measure_modelcheck_one<A: Automaton>(
    algo: &'static str,
    scenario: &twobit_check::Scenario<A>,
    strategy: Strategy,
) -> CheckRow {
    let opts = ExploreOptions {
        strategy,
        ..ExploreOptions::default()
    };
    let t0 = Instant::now();
    let report = explore(scenario, &opts).expect("exploration runs");
    let wall = t0.elapsed();
    assert!(
        report.violation.is_none(),
        "the published modelcheck rows are the positive configurations: {:?}",
        report.violation
    );
    CheckRow {
        algo,
        scenario: scenario.name.clone(),
        strategy: match strategy {
            Strategy::Dpor => "dpor",
            Strategy::Naive => "naive",
        },
        paths_explored: report.stats.paths_explored,
        paths_pruned: report.stats.paths_pruned,
        replays: report.stats.replays,
        max_depth: report.stats.max_depth as u64,
        exhausted: report.exhausted,
        wall_ms: wall.as_secs_f64() * 1_000.0,
    }
}

/// The published exploration sweep: the writer-plus-concurrent-reader
/// configuration under DPOR, the single-writer configuration under both
/// strategies (so the reduction factor itself is a trajectory number),
/// the two-concurrent-writer MWMR space, and the Oh-RAM
/// writer-plus-concurrent-reader space — one throughput row per hosted
/// algorithm.
fn measure_modelcheck() -> Vec<CheckRow> {
    let out = vec![
        measure_modelcheck_one("twobit", &scenarios::twobit_swmr_wr(), Strategy::Dpor),
        measure_modelcheck_one("twobit", &scenarios::twobit_swmr_w(), Strategy::Dpor),
        measure_modelcheck_one("twobit", &scenarios::twobit_swmr_w(), Strategy::Naive),
        measure_modelcheck_one("mwmr", &scenarios::mwmr_two_writer(), Strategy::Dpor),
        measure_modelcheck_one("ohram", &scenarios::ohram_swmr_wr(), Strategy::Dpor),
    ];
    for r in &out {
        assert!(r.exhausted, "published modelcheck rows must be exhaustive");
    }
    let dpor = out
        .iter()
        .find(|r| r.strategy == "dpor" && r.scenario.contains("swmr-w/"))
        .expect("single-writer dpor row present");
    let naive = out
        .iter()
        .find(|r| r.strategy == "naive")
        .expect("single-writer naive row present");
    assert!(
        naive.paths_explored >= 4 * dpor.paths_explored,
        "DPOR reduction collapsed in the published rows: dpor={} naive={}",
        dpor.paths_explored,
        naive.paths_explored,
    );
    out
}

fn write_json(rows: &[Row], check_rows: &[CheckRow]) {
    let mut out = String::from("{\n  \"bench\": \"shard_scaling_framed\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"n\": {N}, \"rounds\": {ROUNDS}, \"mix_ops\": {MIX_OPS}, \
         \"read_pct\": {READ_PCT}, \"wire_codec\": true, \
         \"simnet_static_hold_ticks\": {STATIC_HOLD}, \
         \"simnet_adaptive_hold_ticks\": [0, 2000], \
         \"tcp_static_hold_us\": {TCP_STATIC_HOLD_US}, \
         \"tcp_adaptive_hold_us\": [0, {TCP_ADAPTIVE_CEIL_US}], \"max_batch\": 64, \
         \"transport\": \"frames\", \"unframed_baseline\": \"BENCH_shards.json\"}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // No unframed baseline at 1 shard (routing is free either way):
        // emit null rather than a misleading perfect ratio.
        let ratio = if r.routing_bits_unframed == 0 {
            "null".to_string()
        } else {
            format!(
                "{:.3}",
                r.routing_bits_framed as f64 / r.routing_bits_unframed as f64
            )
        };
        out.push_str(&format!(
            "    {{\"algo\": \"{}\", \"source\": \"{}\", \"mix\": \"{}\", \"hold\": \"{}\", \
             \"cache\": \"{}\", \"shards\": {}, \
             \"readers\": {}, \
             \"ops\": {}, \"wall_ns_per_op\": {:.1}, \"msgs\": {}, \"frames\": {}, \
             \"msgs_per_frame\": {:.2}, \"control_bits\": {}, \
             \"routing_bits_unframed\": {}, \"routing_bits_framed\": {}, \
             \"routing_bits_framed_gamma\": {}, \"framed_over_unframed\": {}, \
             \"wire_bytes\": {}, \"bytes_per_op\": {:.1}, \"allocs_per_op\": {:.1}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_fallbacks\": {}, \
             \"local_read_pct\": {:.1}, \
             \"flushes_size\": {}, \"flushes_hold\": {}, \"flushes_shutdown\": {}, \
             \"mean_hold_us\": {:.2}, \"lat_p50_us\": {}, \"lat_p99_us\": {}, \
             \"lat_p50_ticks\": {}, \"lat_p99_ticks\": {}}}{}\n",
            r.algo,
            r.source,
            r.mix,
            r.hold,
            r.cache,
            r.shards,
            r.readers,
            r.ops,
            r.wall_ns_per_op,
            r.msgs,
            r.frames,
            r.msgs_per_frame,
            r.control_bits,
            r.routing_bits_unframed,
            r.routing_bits_framed,
            r.routing_bits_framed_gamma,
            ratio,
            r.wire_bytes,
            r.bytes_per_op,
            r.allocs_per_op,
            r.cache_hits,
            r.cache_misses,
            r.cache_fallbacks,
            r.local_read_pct,
            r.flushes_size,
            r.flushes_hold,
            r.flushes_shutdown,
            r.mean_hold_us,
            r.lat_p50_us
                .map_or("null".to_string(), |v| format!("{v:.1}")),
            r.lat_p99_us
                .map_or("null".to_string(), |v| format!("{v:.1}")),
            r.lat_p50_ticks
                .map_or("null".to_string(), |v| v.to_string()),
            r.lat_p99_ticks
                .map_or("null".to_string(), |v| v.to_string()),
            if i + 1 == rows.len() && check_rows.is_empty() {
                ""
            } else {
                ","
            },
        ));
    }
    for (i, r) in check_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algo\": \"{}\", \"source\": \"modelcheck\", \"mix\": \"{}\", \
             \"strategy\": \"{}\", \"paths_explored\": {}, \"paths_pruned\": {}, \
             \"replays\": {}, \"max_depth\": {}, \"exhausted\": {}, \
             \"wall_ms\": {:.1}}}{}\n",
            r.algo,
            r.scenario,
            r.strategy,
            r.paths_explored,
            r.paths_pruned,
            r.replays,
            r.max_depth,
            r.exhausted,
            r.wall_ms,
            if i + 1 == check_rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frames.json");
    std::fs::write(path, out).expect("write BENCH_frames.json");
    println!("wrote {path}");
}

/// The in-bench acceptance bar (CI re-checks it from the JSON): the
/// adaptive hold must match or beat the static default on bytes-on-wire
/// for the zipfian and read-mostly rows. Both runs are deterministic
/// simnet executions of the same workload, so the comparison is exact.
fn assert_adaptive_not_worse(rows: &[Row]) {
    for mix in ["zipf95", "readmostly"] {
        for r in rows.iter().filter(|r| r.mix == mix && r.hold == "adaptive") {
            let static_row = rows
                .iter()
                .find(|s| {
                    s.algo == r.algo
                        && s.mix == mix
                        && s.hold == "static"
                        && s.shards == r.shards
                        && s.cache == r.cache
                })
                .expect("every adaptive row has a static twin");
            assert!(
                r.wire_bytes <= static_row.wire_bytes,
                "adaptive loses to static on {mix}/{} shards: {} > {} wire bytes",
                r.shards,
                r.wire_bytes,
                static_row.wire_bytes,
            );
        }
    }
}

/// The read-cache acceptance bar (CI re-checks it from the JSON): every
/// `cache: "safe"` read-mostly row must serve a real share of its reads
/// locally and beat its `cache: "proto"` twin — same workload, same hold,
/// same deterministic schedule, same (fast-read-disabled) automaton — on
/// both bytes-on-wire and allocations per operation. A cache that hits
/// nothing, or whose bookkeeping costs more than the protocol traffic it
/// saves, fails the bench.
fn assert_safe_cache_pays(rows: &[Row]) {
    let safe_rows: Vec<&Row> = rows.iter().filter(|r| r.cache == "safe").collect();
    assert!(
        !safe_rows.is_empty(),
        "the trajectory must include cache-on rows"
    );
    for r in safe_rows {
        let off = rows
            .iter()
            .find(|s| {
                s.cache == "proto" && s.mix == r.mix && s.hold == r.hold && s.shards == r.shards
            })
            .expect("every safe row has a proto twin");
        assert!(
            r.local_read_pct > 0.0 && r.cache_hits > 0,
            "safe cache never hit on {}/{}/{} shards",
            r.mix,
            r.hold,
            r.shards,
        );
        assert!(
            r.wire_bytes < off.wire_bytes,
            "safe cache must cut wire bytes on {}/{}/{} shards: {} >= {}",
            r.mix,
            r.hold,
            r.shards,
            r.wire_bytes,
            off.wire_bytes,
        );
        assert!(
            r.allocs_per_op < off.allocs_per_op,
            "safe cache must cut allocations on {}/{}/{} shards: {:.1} >= {:.1}",
            r.mix,
            r.hold,
            r.shards,
            r.allocs_per_op,
            off.allocs_per_op,
        );
    }
}

/// The recovery acceptance bar (CI re-checks it from the JSON): arming
/// the crash-recovery machinery must be free until someone crashes. The
/// `mix: "recovery"` row runs the exact workload of the uniform
/// (16 shards, 2 readers) static sweep row on the same seed, so its
/// steady-state `wire_bytes` must stay within 1.02x of that
/// recovery-disabled twin.
fn assert_recovery_is_free(rows: &[Row]) {
    let rec = rows
        .iter()
        .find(|r| r.mix == "recovery")
        .expect("recovery row present");
    let twin = rows
        .iter()
        .find(|r| {
            r.source == "simnet"
                && r.mix == "uniform"
                && r.shards == rec.shards
                && r.readers == rec.readers
                && r.hold == rec.hold
                && r.cache == rec.cache
        })
        .expect("the recovery row has a recovery-disabled uniform twin");
    assert!(
        rec.wire_bytes as f64 <= twin.wire_bytes as f64 * 1.02,
        "arming recovery taxes the steady state: {} > {} * 1.02 wire bytes",
        rec.wire_bytes,
        twin.wire_bytes,
    );
}

/// The head-to-head acceptance bar (CI re-checks it from the JSON): under
/// identical workload, framing and codec-on delivery, the two-bit protocol
/// must beat its multi-writer competitor on bytes-on-wire and on control
/// bits — the paper's headline, finally measured against the MWMR
/// baseline instead of asserted beside it.
fn assert_two_bit_beats_mwmr(rows: &[Row]) {
    let of = |algo: &str| {
        rows.iter()
            .find(|r| r.mix == "headtohead" && r.algo == algo)
            .unwrap_or_else(|| panic!("missing headtohead {algo} row"))
    };
    let twobit = of("twobit");
    let mwmr = of("mwmr");
    assert!(
        twobit.wire_bytes < mwmr.wire_bytes,
        "two-bit must beat MWMR on bytes-on-wire: {} vs {}",
        twobit.wire_bytes,
        mwmr.wire_bytes
    );
    assert!(
        twobit.control_bits < mwmr.control_bits,
        "two-bit must beat MWMR on control bits: {} vs {}",
        twobit.control_bits,
        mwmr.control_bits
    );
}

/// The latency-pair acceptance bar (CI re-checks it from the JSON): on
/// the deterministic read-mostly simnet pair — same workload, same seed,
/// same framing and codec-on delivery — the Oh-RAM hybrid read must beat
/// the two-bit protocol on median virtual-tick latency (its common-case
/// read is one round where two-bit needs the read/confirmation
/// exchange), while the two-bit protocol must keep winning bytes-on-wire
/// *and* control bits (Oh-RAM's relay round is Θ(n²) messages per read).
/// Both directions failing-closed is the point: the trade is real, not a
/// strictly-dominated competitor.
fn assert_ohram_trades_bits_for_latency(rows: &[Row]) {
    let of = |algo: &str| {
        rows.iter()
            .find(|r| {
                r.algo == algo
                    && r.source == "simnet"
                    && r.mix == "readmostly"
                    && r.hold == "static"
                    && r.cache == "off"
                    && r.shards == HEAD_TO_HEAD.0
            })
            .unwrap_or_else(|| panic!("missing readmostly latency-pair {algo} row"))
    };
    let twobit = of("twobit");
    let ohram = of("ohram");
    let (t_p50, o_p50) = (
        twobit
            .lat_p50_ticks
            .expect("simnet rows carry tick latency"),
        ohram.lat_p50_ticks.expect("simnet rows carry tick latency"),
    );
    assert!(
        o_p50 < t_p50,
        "Oh-RAM must beat two-bit on read-mostly median latency: {o_p50} >= {t_p50} ticks"
    );
    assert!(
        twobit.wire_bytes < ohram.wire_bytes,
        "two-bit must keep winning bytes-on-wire: {} vs {}",
        twobit.wire_bytes,
        ohram.wire_bytes
    );
    assert!(
        twobit.control_bits < ohram.control_bits,
        "two-bit must keep winning control bits: {} vs {}",
        twobit.control_bits,
        ohram.control_bits
    );
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("register_space_shard_scaling");
    g.sample_size(10);
    for &shards in &SHARD_COUNTS {
        for &readers in &READER_COUNTS {
            g.bench_with_input(
                BenchmarkId::new(format!("shards{shards}"), format!("readers{readers}")),
                &(shards, readers),
                |b, &(shards, readers)| {
                    let workload = sweep_workload(shards, readers);
                    b.iter(|| {
                        let mut space = build_space(shards, 42, Hold::Static, CacheMode::Off);
                        workload
                            .run_pipelined_on(space.driver_mut())
                            .expect("sweep workload runs");
                        space.driver().stats().total_sent()
                    });
                },
            );
        }
    }
    g.finish();
}

fn main() {
    // BENCH_FAST=1 skips criterion sampling and emits the JSON trajectory
    // only — the mode CI's bench smoke job runs.
    let fast = std::env::var_os("BENCH_FAST").is_some();
    if !fast {
        let mut c = Criterion::default();
        bench_shard_scaling(&mut c);
    }
    // Single measured pass per point for the JSON trajectory seed.
    let mut rows: Vec<Row> = SHARD_COUNTS
        .iter()
        .flat_map(|&s| READER_COUNTS.iter().map(move |&r| measure(s, r)))
        .collect();
    for hold in [Hold::Static, Hold::Adaptive] {
        rows.extend(
            SHARD_COUNTS
                .iter()
                .map(|&s| measure_mix("zipf95", s, hold, CacheMode::Off)),
        );
        // The read-mostly rows run three times: the paper-default baseline,
        // then the proto/safe cache acceptance pair CI compares.
        for &s in &[16, 64] {
            rows.push(measure_mix("readmostly", s, hold, CacheMode::Off));
            let (proto_row, safe_row) = measure_cache_pair(s, hold);
            rows.push(proto_row);
            rows.push(safe_row);
        }
        rows.push(measure_mix("hotkey", 16, hold, CacheMode::Off));
    }
    // The Oh-RAM half of the latency pair: the 16-shard static-hold
    // read-mostly twin of the `measure_mix` row pushed above.
    rows.push(measure_ohram_mix(HEAD_TO_HEAD.0, Hold::Static));
    rows.push(measure_tcp(16, 2, Hold::Static));
    rows.push(measure_tcp(16, 2, Hold::Adaptive));
    rows.push(measure_ohram_tcp(16, 2, Hold::Static));
    rows.push(measure_reactor(16, 2, Hold::Static));
    rows.push(measure_reactor(16, 2, Hold::Adaptive));
    let (twobit_row, mwmr_row, ohram_row) = measure_head_to_head();
    rows.push(twobit_row);
    rows.push(mwmr_row);
    rows.push(ohram_row);
    rows.push(measure_recovery(16, 2));
    assert_adaptive_not_worse(&rows);
    assert_reactor_matches_tcp_bytes(&rows);
    assert_safe_cache_pays(&rows);
    assert_two_bit_beats_mwmr(&rows);
    assert_ohram_trades_bits_for_latency(&rows);
    assert_recovery_is_free(&rows);
    let check_rows = measure_modelcheck();
    write_json(&rows, &check_rows);
}
