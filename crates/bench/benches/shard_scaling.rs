//! Shard-count × reader-count scaling of `RegisterSpace` under the framed
//! transport.
//!
//! Sweeps the number of hosted registers and the number of reader processes
//! per register on a 5-process deployment (the sharded deterministic
//! simulator behind the backend-agnostic `Driver`), measuring wall-clock
//! cost per operation and wire traffic — and, since the frame refactor, the
//! framed-vs-unframed routing comparison: `routing_bits_framed` is what the
//! shared delta-encoded frame headers actually put on the wire,
//! `routing_bits_unframed` what the same messages' per-envelope shard tags
//! would have cost (the PR-1 transport preserved in `BENCH_shards.json`).
//! Results land in `BENCH_frames.json` at the workspace root.
//!
//! Run with: `cargo bench --bench shard_scaling`
//! Fast mode (JSON only, no criterion sampling — what CI's bench smoke job
//! runs): `BENCH_FAST=1 cargo bench --bench shard_scaling`

use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use twobit_core::TwoBitProcess;
use twobit_proto::{
    Driver, Operation, ProcessId, RegisterId, RegisterSpace, SystemConfig, Workload,
};
use twobit_simnet::{DelayModel, SimSpace, SpaceBuilder};

const N: usize = 5;
const SHARD_COUNTS: [usize; 4] = [1, 4, 16, 64];
const READER_COUNTS: [usize; 3] = [1, 2, 4];
const ROUNDS: u64 = 4;

fn build_space(shards: usize, seed: u64) -> RegisterSpace<SimSpace<TwoBitProcess<u64>>> {
    let cfg = SystemConfig::max_resilience(N);
    let sim = SpaceBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
        // Hold staged envelopes half the delay bound for company: staggered
        // operations coalesce per link, amortizing the routing header.
        .flush_hold(500)
        .registers(shards)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        });
    let names = (0..shards).map(|k| format!("shard:{k:03}"));
    RegisterSpace::new(sim, names).expect("names fit the hosted registers")
}

/// One write + `readers` reads per register per round, pipelined across
/// shards through the portable `Workload` abstraction.
fn sweep_workload(shards: usize, readers: usize) -> Workload<u64> {
    let mut w = Workload::new();
    for round in 0..ROUNDS {
        for k in 0..shards {
            let reg = RegisterId::new(k);
            let writer = k % N;
            w = w.step(
                writer,
                reg,
                Operation::Write(1 + round * shards as u64 + k as u64),
            );
            for r in 1..=readers {
                w = w.step((writer + r) % N, reg, Operation::Read);
            }
        }
    }
    w
}

struct Row {
    shards: usize,
    readers: usize,
    ops: usize,
    wall_ns_per_op: f64,
    msgs: u64,
    frames: u64,
    msgs_per_frame: f64,
    control_bits: u64,
    routing_bits_unframed: u64,
    routing_bits_framed: u64,
}

fn measure(shards: usize, readers: usize) -> Row {
    let workload = sweep_workload(shards, readers);
    let mut space = build_space(shards, 42);
    let t0 = Instant::now();
    workload
        .run_pipelined_on(space.driver_mut())
        .expect("sweep workload runs");
    let wall = t0.elapsed();
    let stats = space.driver().stats();
    assert_eq!(
        stats.control_bits(),
        2 * stats.total_sent(),
        "the two-bit claim must survive framing"
    );
    Row {
        shards,
        readers,
        ops: workload.len(),
        wall_ns_per_op: wall.as_nanos() as f64 / workload.len() as f64,
        msgs: stats.total_sent(),
        frames: stats.frames_sent(),
        msgs_per_frame: stats.messages_per_frame(),
        control_bits: stats.control_bits(),
        routing_bits_unframed: stats.routing_bits(),
        routing_bits_framed: stats.frame_header_bits(),
    }
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"shard_scaling_framed\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"n\": {N}, \"rounds\": {ROUNDS}, \"backend\": \"simnet-space\", \
         \"transport\": \"frames\", \"unframed_baseline\": \"BENCH_shards.json\"}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // No unframed baseline at 1 shard (routing is free either way):
        // emit null rather than a misleading perfect ratio.
        let ratio = if r.routing_bits_unframed == 0 {
            "null".to_string()
        } else {
            format!(
                "{:.3}",
                r.routing_bits_framed as f64 / r.routing_bits_unframed as f64
            )
        };
        out.push_str(&format!(
            "    {{\"shards\": {}, \"readers\": {}, \"ops\": {}, \
             \"wall_ns_per_op\": {:.1}, \"msgs\": {}, \"frames\": {}, \
             \"msgs_per_frame\": {:.2}, \"control_bits\": {}, \
             \"routing_bits_unframed\": {}, \"routing_bits_framed\": {}, \
             \"framed_over_unframed\": {}}}{}\n",
            r.shards,
            r.readers,
            r.ops,
            r.wall_ns_per_op,
            r.msgs,
            r.frames,
            r.msgs_per_frame,
            r.control_bits,
            r.routing_bits_unframed,
            r.routing_bits_framed,
            ratio,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frames.json");
    std::fs::write(path, out).expect("write BENCH_frames.json");
    println!("wrote {path}");
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("register_space_shard_scaling");
    g.sample_size(10);
    for &shards in &SHARD_COUNTS {
        for &readers in &READER_COUNTS {
            g.bench_with_input(
                BenchmarkId::new(format!("shards{shards}"), format!("readers{readers}")),
                &(shards, readers),
                |b, &(shards, readers)| {
                    let workload = sweep_workload(shards, readers);
                    b.iter(|| {
                        let mut space = build_space(shards, 42);
                        workload
                            .run_pipelined_on(space.driver_mut())
                            .expect("sweep workload runs");
                        space.driver().stats().total_sent()
                    })
                },
            );
        }
    }
    g.finish();
}

fn main() {
    // BENCH_FAST=1 skips criterion sampling and emits the JSON trajectory
    // only — the mode CI's bench smoke job runs.
    let fast = std::env::var_os("BENCH_FAST").is_some();
    if !fast {
        let mut c = Criterion::default();
        bench_shard_scaling(&mut c);
    }
    // Single measured pass per point for the JSON trajectory seed.
    let rows: Vec<Row> = SHARD_COUNTS
        .iter()
        .flat_map(|&s| READER_COUNTS.iter().map(move |&r| measure(s, r)))
        .collect();
    write_json(&rows);
}
