//! Shard-count × reader-count scaling of `RegisterSpace` under the framed
//! transport — now with the byte-level wire codec in the loop.
//!
//! Sweeps the number of hosted registers and the number of reader processes
//! per register on a 5-process deployment, measuring wall-clock cost per
//! operation and wire traffic. Since the wire-codec redesign every frame is
//! actually encoded and decoded (`wire_codec(true)`), so alongside the
//! framed-vs-unframed routing-bit comparison each row reports
//! **bytes-on-wire**: the length-prefixed blobs a socket would carry
//! (`wire_bytes`, and `bytes_per_op`). Three row sources:
//!
//! * `simnet` / `uniform` — the historical sweep: one write + `readers`
//!   reads per register per round, pipelined across shards;
//! * `simnet` / `zipf95` — workload realism: register popularity drawn
//!   from a Zipf(1.0) distribution over the shards, 95% reads / 5% writes;
//! * `tcp` / `uniform` — the same portable workload on the real loopback
//!   TCP backend (`TcpCluster`), proving the byte path end to end.
//!
//! The 64-shard rows also assert the header codec v2 chooser: the
//! delta/gamma-vs-bitmap mode bit must never lose to forced delta/gamma
//! (`frame_header_bits ≤ frame_header_gamma_bits`).
//!
//! Results land in `BENCH_frames.json` at the workspace root.
//!
//! Run with: `cargo bench --bench shard_scaling`
//! Fast mode (JSON only, no criterion sampling — what CI's bench smoke job
//! runs): `BENCH_FAST=1 cargo bench --bench shard_scaling`

use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twobit_core::TwoBitProcess;
use twobit_proto::{
    Driver, NetStats, Operation, ProcessId, RegisterId, RegisterSpace, SystemConfig, Workload,
};
use twobit_simnet::{DelayModel, SimSpace, SpaceBuilder};
use twobit_transport::TcpClusterBuilder;

const N: usize = 5;
const SHARD_COUNTS: [usize; 4] = [1, 4, 16, 64];
const READER_COUNTS: [usize; 3] = [1, 2, 4];
const ROUNDS: u64 = 4;
/// Operations per zipfian row (reads + writes).
const ZIPF_OPS: usize = 400;
/// Read fraction of the read-mostly mix, in percent.
const ZIPF_READ_PCT: u64 = 95;

fn build_space(shards: usize, seed: u64) -> RegisterSpace<SimSpace<TwoBitProcess<u64>>> {
    let cfg = SystemConfig::max_resilience(N);
    let sim = SpaceBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
        // Hold staged envelopes half the delay bound for company: staggered
        // operations coalesce per link, amortizing the routing header.
        .flush_hold(500)
        // Route every frame through the byte codec: the run executes on
        // decoded bytes and `wire_bytes` reports real blob sizes.
        .wire_codec(true)
        .registers(shards)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        });
    let names = (0..shards).map(|k| format!("shard:{k:03}"));
    RegisterSpace::new(sim, names).expect("names fit the hosted registers")
}

/// One write + `readers` reads per register per round, pipelined across
/// shards through the portable `Workload` abstraction.
fn sweep_workload(shards: usize, readers: usize) -> Workload<u64> {
    let mut w = Workload::new();
    for round in 0..ROUNDS {
        for k in 0..shards {
            let reg = RegisterId::new(k);
            let writer = k % N;
            w = w.step(
                writer,
                reg,
                Operation::Write(1 + round * shards as u64 + k as u64),
            );
            for r in 1..=readers {
                w = w.step((writer + r) % N, reg, Operation::Read);
            }
        }
    }
    w
}

/// Read-mostly skewed workload: register popularity ~ Zipf(1.0) over the
/// shards, `ZIPF_READ_PCT`% reads; reader processes rotate per step.
fn zipf_workload(shards: usize, ops: usize, seed: u64) -> Workload<u64> {
    // Cumulative Zipf weights (w_r = 1/rank).
    let mut cum = Vec::with_capacity(shards);
    let mut total = 0.0f64;
    for rank in 1..=shards {
        total += 1.0 / rank as f64;
        cum.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new();
    let mut next_value = 1u64;
    for i in 0..ops {
        let u: f64 = (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64 * total;
        let k = cum.partition_point(|&c| c < u).min(shards - 1);
        let reg = RegisterId::new(k);
        let writer = k % N;
        if rng.gen_range(0u64..100) < ZIPF_READ_PCT {
            let reader = (writer + 1 + i % (N - 1)) % N;
            w = w.step(reader, reg, Operation::Read);
        } else {
            next_value += 1;
            w = w.step(writer, reg, Operation::Write(next_value));
        }
    }
    w
}

struct Row {
    source: &'static str,
    mix: &'static str,
    shards: usize,
    readers: usize,
    ops: usize,
    wall_ns_per_op: f64,
    msgs: u64,
    frames: u64,
    msgs_per_frame: f64,
    control_bits: u64,
    routing_bits_unframed: u64,
    routing_bits_framed: u64,
    routing_bits_framed_gamma: u64,
    wire_bytes: u64,
    bytes_per_op: f64,
}

fn row_from_stats(
    source: &'static str,
    mix: &'static str,
    shards: usize,
    readers: usize,
    ops: usize,
    wall_ns: f64,
    stats: &NetStats,
) -> Row {
    assert_eq!(
        stats.control_bits(),
        2 * stats.total_sent(),
        "the two-bit claim must survive framing and serialization"
    );
    if shards == 64 {
        // Header codec v2 acceptance: the per-frame mode chooser never
        // loses to always-gamma at the 64-shard row.
        assert!(
            stats.frame_header_bits() <= stats.frame_header_gamma_bits(),
            "chooser {} > forced gamma {} at {shards} shards",
            stats.frame_header_bits(),
            stats.frame_header_gamma_bits(),
        );
    }
    Row {
        source,
        mix,
        shards,
        readers,
        ops,
        wall_ns_per_op: wall_ns / ops as f64,
        msgs: stats.total_sent(),
        frames: stats.frames_sent(),
        msgs_per_frame: stats.messages_per_frame(),
        control_bits: stats.control_bits(),
        routing_bits_unframed: stats.routing_bits(),
        routing_bits_framed: stats.frame_header_bits(),
        routing_bits_framed_gamma: stats.frame_header_gamma_bits(),
        wire_bytes: stats.wire_bytes(),
        bytes_per_op: stats.wire_bytes() as f64 / ops as f64,
    }
}

fn measure(shards: usize, readers: usize) -> Row {
    let workload = sweep_workload(shards, readers);
    let mut space = build_space(shards, 42);
    let t0 = Instant::now();
    workload
        .run_pipelined_on(space.driver_mut())
        .expect("sweep workload runs");
    let wall = t0.elapsed();
    let stats = space.driver().stats();
    row_from_stats(
        "simnet",
        "uniform",
        shards,
        readers,
        workload.len(),
        wall.as_nanos() as f64,
        &stats,
    )
}

fn measure_zipf(shards: usize) -> Row {
    let workload = zipf_workload(shards, ZIPF_OPS, 7);
    let mut space = build_space(shards, 42);
    let t0 = Instant::now();
    workload
        .run_pipelined_on(space.driver_mut())
        .expect("zipf workload runs");
    let wall = t0.elapsed();
    let stats = space.driver().stats();
    row_from_stats(
        "simnet",
        "zipf95",
        shards,
        0,
        workload.len(),
        wall.as_nanos() as f64,
        &stats,
    )
}

/// The same portable workload on the real loopback TCP backend: the bytes
/// column is what `write(2)` handed to the kernel.
fn measure_tcp(shards: usize, readers: usize) -> Row {
    let cfg = SystemConfig::max_resilience(N);
    let workload = sweep_workload(shards, readers);
    let mut cluster = TcpClusterBuilder::new(cfg)
        .registers(shards)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        })
        .expect("loopback TCP cluster starts");
    let t0 = Instant::now();
    workload
        .run_pipelined_on(&mut cluster)
        .expect("workload runs over TCP");
    let wall = t0.elapsed();
    let (_, stats) = cluster.shutdown();
    assert!(
        stats.wire_bytes() > 0,
        "TCP rows must populate bytes-on-wire"
    );
    row_from_stats(
        "tcp",
        "uniform",
        shards,
        readers,
        workload.len(),
        wall.as_nanos() as f64,
        &stats,
    )
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"shard_scaling_framed\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"n\": {N}, \"rounds\": {ROUNDS}, \"zipf_ops\": {ZIPF_OPS}, \
         \"zipf_read_pct\": {ZIPF_READ_PCT}, \"wire_codec\": true, \
         \"transport\": \"frames\", \"unframed_baseline\": \"BENCH_shards.json\"}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // No unframed baseline at 1 shard (routing is free either way):
        // emit null rather than a misleading perfect ratio.
        let ratio = if r.routing_bits_unframed == 0 {
            "null".to_string()
        } else {
            format!(
                "{:.3}",
                r.routing_bits_framed as f64 / r.routing_bits_unframed as f64
            )
        };
        out.push_str(&format!(
            "    {{\"source\": \"{}\", \"mix\": \"{}\", \"shards\": {}, \"readers\": {}, \
             \"ops\": {}, \"wall_ns_per_op\": {:.1}, \"msgs\": {}, \"frames\": {}, \
             \"msgs_per_frame\": {:.2}, \"control_bits\": {}, \
             \"routing_bits_unframed\": {}, \"routing_bits_framed\": {}, \
             \"routing_bits_framed_gamma\": {}, \"framed_over_unframed\": {}, \
             \"wire_bytes\": {}, \"bytes_per_op\": {:.1}}}{}\n",
            r.source,
            r.mix,
            r.shards,
            r.readers,
            r.ops,
            r.wall_ns_per_op,
            r.msgs,
            r.frames,
            r.msgs_per_frame,
            r.control_bits,
            r.routing_bits_unframed,
            r.routing_bits_framed,
            r.routing_bits_framed_gamma,
            ratio,
            r.wire_bytes,
            r.bytes_per_op,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frames.json");
    std::fs::write(path, out).expect("write BENCH_frames.json");
    println!("wrote {path}");
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("register_space_shard_scaling");
    g.sample_size(10);
    for &shards in &SHARD_COUNTS {
        for &readers in &READER_COUNTS {
            g.bench_with_input(
                BenchmarkId::new(format!("shards{shards}"), format!("readers{readers}")),
                &(shards, readers),
                |b, &(shards, readers)| {
                    let workload = sweep_workload(shards, readers);
                    b.iter(|| {
                        let mut space = build_space(shards, 42);
                        workload
                            .run_pipelined_on(space.driver_mut())
                            .expect("sweep workload runs");
                        space.driver().stats().total_sent()
                    })
                },
            );
        }
    }
    g.finish();
}

fn main() {
    // BENCH_FAST=1 skips criterion sampling and emits the JSON trajectory
    // only — the mode CI's bench smoke job runs.
    let fast = std::env::var_os("BENCH_FAST").is_some();
    if !fast {
        let mut c = Criterion::default();
        bench_shard_scaling(&mut c);
    }
    // Single measured pass per point for the JSON trajectory seed.
    let mut rows: Vec<Row> = SHARD_COUNTS
        .iter()
        .flat_map(|&s| READER_COUNTS.iter().map(move |&r| measure(s, r)))
        .collect();
    rows.extend(SHARD_COUNTS.iter().map(|&s| measure_zipf(s)));
    rows.push(measure_tcp(16, 2));
    write_json(&rows);
}
