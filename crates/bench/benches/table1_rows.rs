//! Benchmarks regenerating Table 1 rows 1–2 (message complexity): the time
//! to drive one operation to full quiescence on the deterministic simulator
//! is proportional to the operation's total message count, so these bench
//! groups expose exactly the O(n)/O(n²) separations of the table. Criterion
//! reports per-algorithm, per-n timings; the absolute message counts are
//! printed by `cargo run -p twobit-harness --bin experiments -- table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use twobit_baselines::{abd_bounded_profile, attiya_profile, AbdProcess, PhasedProcess};
use twobit_core::TwoBitProcess;
use twobit_proto::{Automaton, Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, SimBuilder, DEFAULT_DELTA};

fn one_op_sim<A, F>(cfg: SystemConfig, op: Operation<u64>, make: F) -> u64
where
    A: Automaton<Value = u64>,
    F: FnMut(ProcessId) -> A,
{
    let mut sim = SimBuilder::new(cfg)
        .delay(DelayModel::Fixed(DEFAULT_DELTA))
        .check_every(0)
        .build(make);
    // Seed one write so reads have a non-initial value to fetch.
    let plan = match op {
        Operation::Write(_) => ClientPlan::ops([Operation::Write(1u64)]),
        Operation::Read => ClientPlan::ops([Operation::Write(1u64), Operation::Read]),
    };
    sim.client_plan(0, plan);
    let report = sim.run().expect("bench sim failed");
    report.stats.total_sent()
}

/// Row 1 — #msgs per write: two-bit O(n²) vs ABD O(n) vs emulations.
fn bench_write_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_row1_write_msgs");
    g.sample_size(20);
    for n in [3usize, 5, 9] {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        g.bench_with_input(BenchmarkId::new("two-bit", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Write(1), |id| {
                    TwoBitProcess::new(id, cfg, writer, 0u64)
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("abd-unbounded", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Write(1), |id| {
                    AbdProcess::new(id, cfg, writer, 0u64)
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("abd-bounded-emu", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Write(1), |id| {
                    PhasedProcess::new(id, cfg, writer, 0u64, abd_bounded_profile(n))
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("attiya-emu", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Write(1), |id| {
                    PhasedProcess::new(id, cfg, writer, 0u64, attiya_profile(n))
                })
            });
        });
    }
    g.finish();
}

/// Row 2 — #msgs per read.
fn bench_read_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_row2_read_msgs");
    g.sample_size(20);
    for n in [3usize, 5, 9] {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        g.bench_with_input(BenchmarkId::new("two-bit", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Read, |id| {
                    TwoBitProcess::new(id, cfg, writer, 0u64)
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("abd-unbounded", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Read, |id| {
                    AbdProcess::new(id, cfg, writer, 0u64)
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("abd-bounded-emu", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Read, |id| {
                    PhasedProcess::new(id, cfg, writer, 0u64, abd_bounded_profile(n))
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("attiya-emu", n), &n, |b, _| {
            b.iter(|| {
                one_op_sim(cfg, Operation::Read, |id| {
                    PhasedProcess::new(id, cfg, writer, 0u64, attiya_profile(n))
                })
            });
        });
    }
    g.finish();
}

/// Rows 3–4 are size metrics, not timings; their bench angle is the cost of
/// the accounting itself (`WireMessage::cost` + `state_bits`), which must be
/// cheap enough to run on every send.
fn bench_cost_accounting(c: &mut Criterion) {
    use twobit_core::{Parity, TwoBitMsg};
    use twobit_proto::WireMessage;
    let mut g = c.benchmark_group("table1_row3_cost_accounting");
    let msg: TwoBitMsg<u64> = TwoBitMsg::Write(Parity::Odd, 42);
    g.bench_function("twobit_msg_cost", |b| {
        b.iter(|| std::hint::black_box(&msg).cost());
    });
    let cfg = SystemConfig::max_resilience(5);
    let p = TwoBitProcess::new(ProcessId::new(1), cfg, ProcessId::new(0), 0u64);
    g.bench_function("twobit_state_bits", |b| {
        b.iter(|| std::hint::black_box(&p).state_bits());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_write_row,
    bench_read_row,
    bench_cost_accounting
);
criterion_main!(benches);
