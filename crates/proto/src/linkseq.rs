//! Wire helpers for sequenced, reconnectable ordered links.
//!
//! The reactor transport (`twobit-reactor`) extends the frame byte stream
//! with three tiny structures so a link can survive a transient socket
//! failure without losing or duplicating frames:
//!
//! * [`LinkHello`] — the connector's handshake: which ordered link
//!   `src → dst` this connection carries. Sent once, immediately after
//!   `connect(2)`.
//! * [`LinkWelcome`] — the acceptor's reply: the highest frame sequence
//!   number it has consumed on that link, so the connector can prune its
//!   resend buffer and replay exactly the un-acked tail.
//! * the *record* framing — each frame blob crosses prefixed by an 8-byte
//!   big-endian sequence number: `[seq:8][len:4][body:len]`, where
//!   `[len:4][body]` is the standard [`Frame::encode`](crate::Frame::encode)
//!   blob. Cumulative 8-byte acks flow on the reverse direction of the
//!   same socket.
//!
//! Sequence numbers start at 1 per ordered link and never reset across
//! reconnects; 0 in a [`LinkWelcome`] means "nothing consumed yet".
//! Everything here is fixed-width big-endian — no bit-level codec — because
//! these bytes are transport overhead, not protocol messages, and are
//! deliberately excluded from the two-bit accounting.

use crate::bits::WireError;
use crate::frame::MAX_FRAME_BODY_BYTES;
use crate::id::ProcessId;

/// Magic prefix of a [`LinkHello`].
pub const HELLO_MAGIC: [u8; 4] = *b"TBL1";
/// Encoded size of a [`LinkHello`].
pub const HELLO_LEN: usize = 16;
/// Magic prefix of a [`LinkWelcome`].
pub const WELCOME_MAGIC: [u8; 4] = *b"TBW1";
/// Encoded size of a [`LinkWelcome`].
pub const WELCOME_LEN: usize = 12;
/// Size of the per-record sequence prefix.
pub const SEQ_PREFIX_LEN: usize = 8;
/// Size of one cumulative ack (a bare big-endian sequence number).
pub const ACK_LEN: usize = 8;

/// The connector's reconnect handshake: names the ordered link this
/// connection carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkHello {
    /// The sending process (the connector's side of the ordered link).
    pub src: ProcessId,
    /// The receiving process (hosted by the accepting node).
    pub dst: ProcessId,
}

impl LinkHello {
    /// Encodes to the fixed [`HELLO_LEN`]-byte wire form
    /// (`magic ∥ src:u32 ∥ dst:u32 ∥ reserved:u32`).
    pub fn encode(&self) -> [u8; HELLO_LEN] {
        let mut out = [0u8; HELLO_LEN];
        out[..4].copy_from_slice(&HELLO_MAGIC);
        out[4..8].copy_from_slice(&(self.src.index() as u32).to_be_bytes());
        out[8..12].copy_from_slice(&(self.dst.index() as u32).to_be_bytes());
        out
    }

    /// Decodes from exactly [`HELLO_LEN`] bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when `buf` is short,
    /// [`WireError::Malformed`] on a bad magic or non-zero reserved tail.
    pub fn decode(buf: &[u8]) -> Result<LinkHello, WireError> {
        if buf.len() < HELLO_LEN {
            return Err(WireError::Truncated);
        }
        if buf[..4] != HELLO_MAGIC {
            return Err(WireError::Malformed("link hello magic"));
        }
        if buf[12..HELLO_LEN] != [0u8; 4] {
            return Err(WireError::Malformed("link hello reserved bytes"));
        }
        let src = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
        let dst = u32::from_be_bytes(buf[8..12].try_into().expect("4 bytes"));
        Ok(LinkHello {
            src: ProcessId::new(src as usize),
            dst: ProcessId::new(dst as usize),
        })
    }
}

/// The acceptor's handshake reply: where the connector should resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkWelcome {
    /// Highest frame sequence number the acceptor has consumed on this
    /// link (0 = none). The connector prunes its resend buffer up to and
    /// including this seq and replays the rest.
    pub last_delivered: u64,
}

impl LinkWelcome {
    /// Encodes to the fixed [`WELCOME_LEN`]-byte wire form
    /// (`magic ∥ last_delivered:u64`).
    pub fn encode(&self) -> [u8; WELCOME_LEN] {
        let mut out = [0u8; WELCOME_LEN];
        out[..4].copy_from_slice(&WELCOME_MAGIC);
        out[4..12].copy_from_slice(&self.last_delivered.to_be_bytes());
        out
    }

    /// Decodes from exactly [`WELCOME_LEN`] bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when `buf` is short,
    /// [`WireError::Malformed`] on a bad magic.
    pub fn decode(buf: &[u8]) -> Result<LinkWelcome, WireError> {
        if buf.len() < WELCOME_LEN {
            return Err(WireError::Truncated);
        }
        if buf[..4] != WELCOME_MAGIC {
            return Err(WireError::Malformed("link welcome magic"));
        }
        let last = u64::from_be_bytes(buf[4..12].try_into().expect("8 bytes"));
        Ok(LinkWelcome {
            last_delivered: last,
        })
    }
}

/// Appends one sequenced record (`[seq:8] ∥ blob`) to `out`. `blob` must
/// be a length-prefixed frame blob from
/// [`Frame::encode`](crate::Frame::encode) /
/// [`Frame::encode_pooled`](crate::Frame::encode_pooled).
pub fn encode_record(seq: u64, blob: &[u8], out: &mut Vec<u8>) {
    out.reserve(SEQ_PREFIX_LEN + blob.len());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(blob);
}

/// Tries to split one sequenced record off the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, or
/// `Ok(Some((seq, total)))` where `total` is the record's full length —
/// the frame blob is `&buf[SEQ_PREFIX_LEN..total]` (length prefix
/// included, ready for [`Frame::decode`](crate::Frame::decode)).
///
/// # Errors
///
/// [`WireError::Overflow`] when the blob's declared body length exceeds
/// [`MAX_FRAME_BODY_BYTES`] — the poisoned-stream guard, checked before
/// any buffer is sized from attacker-controlled input.
pub fn split_record(buf: &[u8]) -> Result<Option<(u64, usize)>, WireError> {
    if buf.len() < SEQ_PREFIX_LEN + 4 {
        return Ok(None);
    }
    let seq = u64::from_be_bytes(buf[..SEQ_PREFIX_LEN].try_into().expect("8 bytes"));
    let body_len = u32::from_be_bytes(
        buf[SEQ_PREFIX_LEN..SEQ_PREFIX_LEN + 4]
            .try_into()
            .expect("4 bytes"),
    );
    if body_len > MAX_FRAME_BODY_BYTES {
        return Err(WireError::Overflow);
    }
    let total = SEQ_PREFIX_LEN + 4 + body_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((seq, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips_and_rejects_garbage() {
        let h = LinkHello {
            src: ProcessId::new(3),
            dst: ProcessId::new(61),
        };
        let bytes = h.encode();
        assert_eq!(bytes.len(), HELLO_LEN);
        assert_eq!(LinkHello::decode(&bytes).unwrap(), h);
        assert_eq!(
            LinkHello::decode(&bytes[..HELLO_LEN - 1]),
            Err(WireError::Truncated)
        );
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(matches!(
            LinkHello::decode(&bad),
            Err(WireError::Malformed(_))
        ));
        let mut dirty = h.encode();
        dirty[15] = 1; // reserved bytes must stay zero
        assert!(matches!(
            LinkHello::decode(&dirty),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn welcome_roundtrips() {
        for last in [0u64, 1, u64::MAX] {
            let w = LinkWelcome {
                last_delivered: last,
            };
            assert_eq!(LinkWelcome::decode(&w.encode()).unwrap(), w);
        }
        assert_eq!(LinkWelcome::decode(&[0u8; 5]), Err(WireError::Truncated));
        let mut bad = LinkWelcome { last_delivered: 7 }.encode();
        bad[1] = 0;
        assert!(matches!(
            LinkWelcome::decode(&bad),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn records_split_incrementally() {
        // A fake 3-byte-body blob with its 4-byte length prefix.
        let blob = [0u8, 0, 0, 3, 0xAA, 0xBB, 0xCC];
        let mut wire = Vec::new();
        encode_record(41, &blob, &mut wire);
        encode_record(42, &blob, &mut wire);
        // Byte-at-a-time arrival: no record until the first is whole.
        for cut in 0..SEQ_PREFIX_LEN + blob.len() {
            assert_eq!(split_record(&wire[..cut]).unwrap(), None, "cut={cut}");
        }
        let (seq, total) = split_record(&wire).unwrap().expect("first record whole");
        assert_eq!(seq, 41);
        assert_eq!(&wire[SEQ_PREFIX_LEN..total], &blob);
        let rest = &wire[total..];
        let (seq2, total2) = split_record(rest).unwrap().expect("second record whole");
        assert_eq!(seq2, 42);
        assert_eq!(total2, rest.len());
    }

    #[test]
    fn oversized_record_is_rejected_before_allocation() {
        let mut wire = 77u64.to_be_bytes().to_vec();
        wire.extend((MAX_FRAME_BODY_BYTES + 1).to_be_bytes());
        assert_eq!(split_record(&wire), Err(WireError::Overflow));
    }
}
