//! The SNAPSHOT transfer: the recovery wire format.
//!
//! When a crashed process rejoins (see `docs/recovery.md`), one live donor
//! ships it the register's confirmed value sequence as a single
//! frame-aligned blob. This module is that blob's codec: a register id and
//! the value sequence, bit-packed over the same [`Payload`] codecs the
//! regular message path uses, so the transfer round-trips byte-exactly and
//! its size is accounted in [`NetStats`](crate::NetStats) as
//! `snapshot_bytes` — deliberately *outside* the per-message
//! `delivered + dropped + abandoned == sent` reconciliation, because a
//! snapshot is a state transfer, not a protocol message.

use crate::bits::{gamma_bits, BitReader, BitWriter, WireError};
use crate::id::RegisterId;
use crate::payload::Payload;

/// Decoder hardening: a snapshot declaring more values than this is
/// rejected before any allocation or decode loop is sized from it. Far
/// above any history a bounded exploration or bench run produces, and it
/// bounds the work a malformed (or hostile) blob can demand — relevant for
/// zero-width payloads like `()`, whose per-value decode consumes no input
/// and therefore cannot self-limit.
pub const MAX_SNAPSHOT_VALUES: u64 = 1 << 24;

/// One register's recovery snapshot: the confirmed value sequence
/// (initial value first), tagged with the register it belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot<V> {
    /// The register this sequence belongs to.
    pub reg: RegisterId,
    /// The confirmed values, oldest first (index 0 is the initial value).
    pub values: Vec<V>,
}

impl<V: Payload> Snapshot<V> {
    /// Creates a snapshot of `reg`'s confirmed sequence.
    pub fn new(reg: RegisterId, values: Vec<V>) -> Self {
        Snapshot { reg, values }
    }

    /// The wire kind tag, for logs and traces.
    pub fn kind(&self) -> &'static str {
        "SNAPSHOT"
    }

    /// Exact encoded size in bits: γ(reg+1), γ(count+1), then each value's
    /// self-delimiting encoding.
    pub fn encoded_bits(&self) -> u64 {
        gamma_bits(self.reg.index() as u64 + 1)
            + gamma_bits(self.values.len() as u64 + 1)
            + self.values.iter().map(Payload::encoded_bits).sum::<u64>()
    }

    /// Appends this snapshot to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the value codec's errors (e.g. a payload type with no
    /// byte-level codec).
    pub fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        w.put_gamma(self.reg.index() as u64 + 1);
        w.put_gamma(self.values.len() as u64 + 1);
        for v in &self.values {
            v.encode_into(w)?;
        }
        Ok(())
    }

    /// Encodes this snapshot as a standalone byte blob.
    ///
    /// # Errors
    ///
    /// Propagates the value codec's errors.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = BitWriter::new();
        self.encode_into(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Parses one snapshot from the front of `r` (inverse of
    /// [`Snapshot::encode_into`]).
    ///
    /// # Errors
    ///
    /// Surfaces truncation and malformed-input errors from the bit reader
    /// and the value codec; rejects declared value counts above
    /// [`MAX_SNAPSHOT_VALUES`] before allocating.
    pub fn decode_from(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let reg = r.get_gamma()?.checked_sub(1).ok_or(WireError::Overflow)?;
        let reg = RegisterId::new(usize::try_from(reg).map_err(|_| WireError::Overflow)?);
        let count = r.get_gamma()?.checked_sub(1).ok_or(WireError::Overflow)?;
        if count > MAX_SNAPSHOT_VALUES {
            return Err(WireError::Overflow);
        }
        let mut values = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            values.push(V::decode(r)?);
        }
        Ok(Snapshot { reg, values })
    }

    /// Decodes a standalone byte blob produced by [`Snapshot::encode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Snapshot::decode_from`].
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = BitReader::new(bytes);
        Self::decode_from(&mut r)
    }

    /// Encoded size in whole bytes (the unit `snapshot_bytes` accounts).
    pub fn encoded_len_bytes(&self) -> u64 {
        self.encoded_bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_bit_exactly() {
        let snap = Snapshot::new(RegisterId::new(3), vec![0u64, 7, 42, u64::MAX]);
        let blob = snap.encode().unwrap();
        assert_eq!(blob.len() as u64, snap.encoded_len_bytes());
        let back = Snapshot::<u64>::decode(&blob).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn encoded_bits_is_exact() {
        let snap = Snapshot::new(
            RegisterId::ZERO,
            vec!["a".to_string(), "longer".to_string()],
        );
        let mut w = BitWriter::new();
        snap.encode_into(&mut w).unwrap();
        assert_eq!(w.bit_len(), snap.encoded_bits());
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = Snapshot::new(RegisterId::ZERO, Vec::<u64>::new());
        let back = Snapshot::<u64>::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let snap = Snapshot::new(RegisterId::new(1), vec![1u64, 2, 3]);
        let blob = snap.encode().unwrap();
        assert!(Snapshot::<u64>::decode(&blob[..blob.len() - 2]).is_err());
    }

    #[test]
    fn hostile_count_is_bounded_before_allocation() {
        // γ(reg+1)=γ(1), then a declared count far above the cap, then
        // nothing: must fail fast, not allocate or spin.
        let mut w = BitWriter::new();
        w.put_gamma(1);
        w.put_gamma(MAX_SNAPSHOT_VALUES + 2);
        let blob = w.into_bytes();
        assert_eq!(Snapshot::<()>::decode(&blob), Err(WireError::Overflow));
    }

    #[test]
    fn variable_width_values_roundtrip() {
        let snap = Snapshot::new(
            RegisterId::new(9),
            vec![vec![1u8, 2, 3], Vec::new(), vec![0xFF; 40]],
        );
        let back = Snapshot::<Vec<u8>>::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back, snap);
    }
}
