//! Frame-based batching transport: coalesce envelopes per link with a
//! shared routing header.
//!
//! The per-register protocol needs only two control bits per message, but a
//! multi-register deployment adds a shard tag to every
//! [`Envelope`] — and when each envelope crosses the link
//! alone that *routing* overhead dwarfs the control bits (`⌈log₂ k⌉` bits
//! per message for a `k`-register space). A [`Frame`] coalesces every
//! envelope queued for one ordered link `(src, dst)` into a single wire
//! unit whose routing information is shared:
//!
//! * messages are grouped by register and the groups sorted by
//!   [`RegisterId`], so each shard tag appears **once per frame** instead of
//!   once per message;
//! * the tag sequence is delta-encoded (sorted gaps are small) with
//!   self-delimiting Elias-gamma codes, so the header needs no out-of-band
//!   length information — see [`FrameHeader`];
//! * within a group, messages keep their send order, which is all the
//!   protocol can rely on anyway (channels are not FIFO, and registers are
//!   independent).
//!
//! [`FrameCost`] reports the amortized routing bits (`header_bits`)
//! alongside the untouched per-message control bits, plus the
//! per-message-tag figure the same messages would have cost unframed —
//! the framed-vs-unframed comparison the benchmarks and
//! [`NetStats`](crate::NetStats) expose.

use serde::{Deserialize, Serialize};

use crate::id::RegisterId;
use crate::wire::{Envelope, WireMessage};

/// One register's run of messages inside a [`Frame`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct FrameGroup<M> {
    reg: RegisterId,
    msgs: Vec<M>,
}

/// A batch of enveloped messages for one ordered link, sharing one routing
/// header.
///
/// Frames are the transport unit of both execution substrates: the
/// deterministic simulator coalesces all envelopes staged on a link at the
/// same virtual instant, the live runtime's links coalesce under a
/// flush policy. A frame is delivered **atomically**: either every message
/// in it reaches the destination (in group order) or — if the destination
/// crashed — none does.
///
/// # Examples
///
/// ```
/// use twobit_proto::{Envelope, Frame, MessageCost, RegisterId, WireMessage};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl WireMessage for Ping {
///     fn kind(&self) -> &'static str { "PING" }
///     fn cost(&self) -> MessageCost { MessageCost::new(2, 0) }
/// }
///
/// let frame = Frame::from_envelopes([
///     Envelope::new(RegisterId::new(5), Ping),
///     Envelope::new(RegisterId::new(1), Ping),
///     Envelope::new(RegisterId::new(5), Ping),
/// ]);
/// assert_eq!(frame.len(), 3);
/// assert_eq!(frame.group_count(), 2); // r1 and r5
///
/// // The shared header replaces three 3-bit shard tags (for, say, an
/// // 8-register space) with one delta-encoded tag sequence.
/// let cost = frame.cost(RegisterId::routing_bits(8));
/// assert_eq!(cost.control_bits, 6); // untouched: 2 bits per message
/// assert_eq!(cost.unframed_routing_bits, 9);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame<M> {
    /// Groups sorted by register id; within a group, send order.
    groups: Vec<FrameGroup<M>>,
}

impl<M> Default for Frame<M> {
    fn default() -> Self {
        Frame { groups: Vec::new() }
    }
}

impl<M> Frame<M> {
    /// Builds a frame from envelopes, grouping by register (sorted) while
    /// preserving each register's internal message order.
    pub fn from_envelopes(envelopes: impl IntoIterator<Item = Envelope<M>>) -> Self {
        let mut groups: Vec<FrameGroup<M>> = Vec::new();
        for env in envelopes {
            match groups.binary_search_by_key(&env.reg, |g| g.reg) {
                Ok(i) => groups[i].msgs.push(env.inner),
                Err(i) => groups.insert(
                    i,
                    FrameGroup {
                        reg: env.reg,
                        msgs: vec![env.inner],
                    },
                ),
            }
        }
        Frame { groups }
    }

    /// Total messages carried.
    pub fn len(&self) -> usize {
        self.groups.iter().map(|g| g.msgs.len()).sum()
    }

    /// Returns `true` if the frame carries no messages.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of distinct registers addressed (= shard tags in the header).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The routing header: each addressed register with its message count,
    /// in id order.
    pub fn header(&self) -> FrameHeader {
        FrameHeader {
            groups: self
                .groups
                .iter()
                .map(|g| (g.reg, g.msgs.len() as u64))
                .collect(),
        }
    }

    /// Iterates `(register, message)` pairs in wire order (groups sorted by
    /// register, send order within a group).
    pub fn iter(&self) -> impl Iterator<Item = (RegisterId, &M)> {
        self.groups
            .iter()
            .flat_map(|g| g.msgs.iter().map(move |m| (g.reg, m)))
    }

    /// Consumes the frame back into envelopes, in wire order.
    pub fn into_envelopes(self) -> impl Iterator<Item = Envelope<M>> {
        self.groups.into_iter().flat_map(|g| {
            let reg = g.reg;
            g.msgs
                .into_iter()
                .map(move |inner| Envelope::new(reg, inner))
        })
    }
}

impl<M: WireMessage> Frame<M> {
    /// Wire cost of this frame. `per_msg_routing_bits` is the shard-tag
    /// width of the hosting space (`⌈log₂ k⌉`, see
    /// [`RegisterId::routing_bits`]); it sets the unframed comparison
    /// figure, and a width of 0 (single-register deployment) degenerates
    /// the header to 0 bits — with one register there is nothing to route,
    /// exactly as the unframed transport paid no tag, so framing never
    /// regresses the paper's headline configuration.
    pub fn cost(&self, per_msg_routing_bits: u64) -> FrameCost {
        let mut control = 0;
        let mut data = 0;
        for (_, m) in self.iter() {
            let c = m.cost();
            control += c.control_bits;
            data += c.data_bits;
        }
        let messages = self.len() as u64;
        FrameCost {
            messages,
            header_bits: if per_msg_routing_bits == 0 {
                0
            } else {
                self.header().bits()
            },
            control_bits: control,
            data_bits: data,
            unframed_routing_bits: messages * per_msg_routing_bits,
        }
    }
}

/// Wire cost of one [`Frame`], splitting the shared routing header from the
/// untouched per-message control and data bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameCost {
    /// Messages carried by the frame.
    pub messages: u64,
    /// Bits of the shared, delta-encoded routing header — the *amortized*
    /// routing cost of the whole frame.
    pub header_bits: u64,
    /// Sum of the inner messages' control bits (two per message for the
    /// paper's algorithm — framing never touches them).
    pub control_bits: u64,
    /// Sum of the inner messages' data bits.
    pub data_bits: u64,
    /// What the same messages' shard tags would cost if each envelope
    /// crossed the link alone (`messages × ⌈log₂ k⌉`) — the figure
    /// `header_bits` is compared against.
    pub unframed_routing_bits: u64,
}

impl FrameCost {
    /// Total bits the frame puts on the wire.
    pub fn total_bits(&self) -> u64 {
        self.header_bits + self.control_bits + self.data_bits
    }

    /// Routing bits saved versus sending every envelope alone (0 when the
    /// header is not smaller).
    pub fn routing_bits_saved(&self) -> u64 {
        self.unframed_routing_bits.saturating_sub(self.header_bits)
    }
}

/// Error returned by [`FrameHeader::decode`] on a malformed bit stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// The stream ended inside a gamma code.
    Truncated,
    /// A decoded value overflows the register-id or count domain.
    Overflow,
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDecodeError::Truncated => write!(f, "frame header truncated mid-code"),
            FrameDecodeError::Overflow => write!(f, "frame header value out of domain"),
        }
    }
}

impl std::error::Error for FrameDecodeError {}

/// The shared routing header of a [`Frame`]: the addressed registers (in id
/// order) with their message counts.
///
/// The wire encoding is a sequence of self-delimiting Elias-gamma codes —
/// no length prefixes, no alignment padding until the final byte:
///
/// ```text
/// γ(d+1)  ·  γ(tag₀+1) γ(c₀)  ·  γ(tag₁−tag₀) γ(c₁)  ·  …
/// ```
///
/// where `d` is the group count, `tagᵢ` the sorted register ids, `cᵢ` the
/// per-group message counts, and `γ(x) = 2⌊log₂ x⌋ + 1` bits. Sorting makes
/// every tag after the first a small positive *gap*, which gamma codes in
/// one or three bits for adjacent shards — this is where the amortization
/// comes from.
///
/// # Examples
///
/// ```
/// use twobit_proto::{Frame, FrameHeader};
/// # use twobit_proto::{Envelope, MessageCost, RegisterId, WireMessage};
/// # #[derive(Clone, Debug)]
/// # struct P;
/// # impl WireMessage for P {
/// #     fn kind(&self) -> &'static str { "P" }
/// #     fn cost(&self) -> MessageCost { MessageCost::new(2, 0) }
/// # }
/// let frame = Frame::from_envelopes(
///     (0..64usize).map(|k| Envelope::new(RegisterId::new(k), P)),
/// );
/// let header = frame.header();
/// let bytes = header.encode();
/// assert_eq!(FrameHeader::decode(&bytes)?, header);
/// // 64 adjacent shard tags cost far less than 64 × 6 unframed bits.
/// assert!(header.bits() < 64 * 6 / 2);
/// # Ok::<(), twobit_proto::FrameDecodeError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameHeader {
    /// `(register, message count)` per group, sorted by register id.
    pub groups: Vec<(RegisterId, u64)>,
}

/// Elias-gamma code length for `x ≥ 1`: `2⌊log₂ x⌋ + 1` bits.
fn gamma_bits(x: u64) -> u64 {
    assert!(x >= 1, "gamma codes start at 1");
    2 * u64::from(63 - x.leading_zeros()) + 1
}

impl FrameHeader {
    /// The gamma code of each group's register tag: the first tag absolute
    /// (offset by one so tag 0 is encodable), every later one as its gap
    /// from the previous tag.
    ///
    /// # Panics
    ///
    /// Panics if `groups` violates the type's invariant of strictly
    /// increasing register ids — possible only through the public field or
    /// deserialization, since [`Frame::header`] always sorts.
    fn tag_code(prev: Option<RegisterId>, reg: RegisterId) -> u64 {
        match prev {
            None => reg.index() as u64 + 1,
            Some(p) => reg
                .index()
                .checked_sub(p.index())
                .filter(|&gap| gap > 0)
                .expect("frame header groups must have strictly increasing register ids")
                as u64,
        }
    }

    /// Exact size of the encoded header in bits (before byte padding).
    ///
    /// # Panics
    ///
    /// As for a malformed hand-built header — see [`FrameHeader::encode`].
    pub fn bits(&self) -> u64 {
        let mut bits = gamma_bits(self.groups.len() as u64 + 1);
        let mut prev: Option<RegisterId> = None;
        for &(reg, count) in &self.groups {
            assert!(count >= 1, "frame header groups must carry messages");
            bits += gamma_bits(Self::tag_code(prev, reg)) + gamma_bits(count);
            prev = Some(reg);
        }
        bits
    }

    /// Encodes the header into bytes (final byte zero-padded).
    ///
    /// # Panics
    ///
    /// Panics on a header violating the type's invariant (register ids not
    /// strictly increasing, or a zero message count) — constructible only
    /// by hand or via deserialization; [`Frame::header`] always upholds it.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BitWriter::default();
        w.put_gamma(self.groups.len() as u64 + 1);
        let mut prev: Option<RegisterId> = None;
        for &(reg, count) in &self.groups {
            assert!(count >= 1, "frame header groups must carry messages");
            w.put_gamma(Self::tag_code(prev, reg));
            w.put_gamma(count);
            prev = Some(reg);
        }
        w.into_bytes()
    }

    /// Decodes a header previously produced by [`FrameHeader::encode`].
    ///
    /// # Errors
    ///
    /// [`FrameDecodeError::Truncated`] if the stream ends mid-code;
    /// [`FrameDecodeError::Overflow`] if a tag or count leaves its domain.
    pub fn decode(bytes: &[u8]) -> Result<FrameHeader, FrameDecodeError> {
        let mut r = BitReader::new(bytes);
        let d = r
            .get_gamma()?
            .checked_sub(1)
            .ok_or(FrameDecodeError::Overflow)?;
        // Domain check before trusting d with an allocation: every group
        // needs at least two more bits (a tag code and a count code), so a
        // count the remaining input cannot possibly hold is malformed —
        // not merely truncated — input.
        if d > (bytes.len() as u64) * 8 {
            return Err(FrameDecodeError::Overflow);
        }
        let mut groups = Vec::with_capacity(d as usize);
        let mut prev: Option<u64> = None;
        for _ in 0..d {
            let tag_code = r.get_gamma()?;
            let tag = match prev {
                None => tag_code.checked_sub(1).ok_or(FrameDecodeError::Overflow)?,
                Some(p) => {
                    if tag_code == 0 {
                        return Err(FrameDecodeError::Overflow);
                    }
                    p.checked_add(tag_code).ok_or(FrameDecodeError::Overflow)?
                }
            };
            if tag > u64::from(u32::MAX) {
                return Err(FrameDecodeError::Overflow);
            }
            let count = r.get_gamma()?;
            if count == 0 {
                return Err(FrameDecodeError::Overflow);
            }
            groups.push((RegisterId::new(tag as usize), count));
            prev = Some(tag);
        }
        Ok(FrameHeader { groups })
    }

    /// Total message count across all groups.
    pub fn messages(&self) -> u64 {
        self.groups.iter().map(|&(_, c)| c).sum()
    }
}

/// MSB-first bit sink for the header codec.
#[derive(Default)]
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0 ⇒ last byte full / none yet).
    used: u32,
}

impl BitWriter {
    fn put_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Elias gamma: `N` zeros, then the `N+1` significant bits of `x`.
    fn put_gamma(&mut self, x: u64) {
        assert!(x >= 1, "gamma codes start at 1");
        let n = 63 - x.leading_zeros();
        for _ in 0..n {
            self.put_bit(false);
        }
        for i in (0..=n).rev() {
            self.put_bit(x & (1 << i) != 0);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit source for the header codec.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn get_bit(&mut self) -> Result<bool, FrameDecodeError> {
        let byte = self
            .bytes
            .get((self.pos / 8) as usize)
            .ok_or(FrameDecodeError::Truncated)?;
        let bit = byte & (1 << (7 - self.pos % 8)) != 0;
        self.pos += 1;
        Ok(bit)
    }

    fn get_gamma(&mut self) -> Result<u64, FrameDecodeError> {
        let mut n = 0u32;
        while !self.get_bit()? {
            n += 1;
            if n > 63 {
                return Err(FrameDecodeError::Overflow);
            }
        }
        let mut x = 1u64;
        for _ in 0..n {
            x = (x << 1) | u64::from(self.get_bit()?);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MessageCost;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Tag(u64);

    impl WireMessage for Tag {
        fn kind(&self) -> &'static str {
            "TAG"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(2, 64)
        }
    }

    fn env(reg: usize, v: u64) -> Envelope<Tag> {
        Envelope::new(RegisterId::new(reg), Tag(v))
    }

    #[test]
    fn gamma_lengths() {
        for (x, bits) in [(1, 1), (2, 3), (3, 3), (4, 5), (7, 5), (8, 7), (255, 15)] {
            assert_eq!(gamma_bits(x), bits, "γ({x})");
            let mut w = BitWriter::default();
            w.put_gamma(x);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_gamma().unwrap(), x);
            assert_eq!(r.pos, bits);
        }
    }

    #[test]
    fn grouping_sorts_tags_and_preserves_order_within_register() {
        let frame = Frame::from_envelopes([env(5, 0), env(1, 1), env(5, 2), env(1, 3), env(3, 4)]);
        assert_eq!(frame.len(), 5);
        assert_eq!(frame.group_count(), 3);
        let wire: Vec<(usize, u64)> = frame.iter().map(|(r, m)| (r.index(), m.0)).collect();
        assert_eq!(wire, vec![(1, 1), (1, 3), (3, 4), (5, 0), (5, 2)]);
        // Round trip back to envelopes in the same wire order.
        let back: Vec<(usize, u64)> = frame
            .into_envelopes()
            .map(|e| (e.reg.index(), e.inner.0))
            .collect();
        assert_eq!(back, vec![(1, 1), (1, 3), (3, 4), (5, 0), (5, 2)]);
    }

    #[test]
    fn header_roundtrips_and_bits_is_exact() {
        let frame = Frame::from_envelopes([env(0, 0), env(0, 1), env(7, 2), env(63, 3)]);
        let header = frame.header();
        assert_eq!(
            header.groups,
            vec![
                (RegisterId::new(0), 2),
                (RegisterId::new(7), 1),
                (RegisterId::new(63), 1),
            ]
        );
        let bytes = header.encode();
        assert_eq!(FrameHeader::decode(&bytes).unwrap(), header);
        // Every encoded bit is accounted for: the byte length is the bit
        // length rounded up.
        assert_eq!(bytes.len() as u64, header.bits().div_ceil(8));
        assert_eq!(header.messages(), 4);
    }

    #[test]
    fn empty_frame() {
        let frame: Frame<Tag> = Frame::from_envelopes([]);
        assert!(frame.is_empty());
        assert_eq!(frame.len(), 0);
        let header = frame.header();
        assert_eq!(header.bits(), 1); // γ(0+1) alone
        assert_eq!(FrameHeader::decode(&header.encode()).unwrap(), header);
        assert_eq!(frame.cost(6).total_bits(), 1);
    }

    #[test]
    fn cost_splits_header_from_untouched_control() {
        let frame = Frame::from_envelopes((0..10).map(|k| env(k, k as u64)));
        let cost = frame.cost(RegisterId::routing_bits(64));
        assert_eq!(cost.messages, 10);
        assert_eq!(
            cost.control_bits, 20,
            "2 control bits per message, untouched"
        );
        assert_eq!(cost.data_bits, 640);
        assert_eq!(cost.unframed_routing_bits, 60);
        assert_eq!(cost.header_bits, frame.header().bits());
        assert_eq!(
            cost.total_bits(),
            cost.header_bits + cost.control_bits + cost.data_bits
        );
        // Ten adjacent tags delta-encode to well under ten 6-bit tags.
        assert!(cost.header_bits < cost.unframed_routing_bits);
        assert_eq!(
            cost.routing_bits_saved(),
            cost.unframed_routing_bits - cost.header_bits
        );
    }

    #[test]
    fn sixty_four_adjacent_shards_amortize_below_half() {
        // The acceptance shape: one message per register, 64 registers.
        let frame = Frame::from_envelopes((0..64).map(|k| env(k, 0)));
        let cost = frame.cost(RegisterId::routing_bits(64));
        assert_eq!(cost.unframed_routing_bits, 64 * 6);
        assert!(
            2 * cost.header_bits <= cost.unframed_routing_bits,
            "header {} vs unframed {}",
            cost.header_bits,
            cost.unframed_routing_bits
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        // A stream that is all zeros never terminates a gamma code.
        assert_eq!(
            FrameHeader::decode(&[0x00]),
            Err(FrameDecodeError::Truncated)
        );
        // Empty input can't even hold γ(1).
        assert_eq!(FrameHeader::decode(&[]), Err(FrameDecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_absurd_group_count_without_allocating() {
        // A crafted header whose group count claims 2⁶² groups must come
        // back as a typed error, not a capacity-overflow panic: the count
        // is bounded by what the remaining input could possibly hold.
        let mut w = BitWriter::default();
        w.put_gamma(1u64 << 62);
        let bytes = w.into_bytes();
        assert_eq!(FrameHeader::decode(&bytes), Err(FrameDecodeError::Overflow));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn encode_rejects_unsorted_hand_built_header() {
        // `groups` is a public field, so a hand-built header can violate
        // the sorted invariant; encode must fail loudly, not underflow.
        let bad = FrameHeader {
            groups: vec![(RegisterId::new(5), 1), (RegisterId::new(1), 1)],
        };
        let _ = bad.encode();
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bits_rejects_duplicate_registers() {
        // A duplicate register (gap 0) must not wrap into a gigantic gamma
        // length.
        let bad = FrameHeader {
            groups: vec![(RegisterId::new(3), 1), (RegisterId::new(3), 2)],
        };
        let _ = bad.bits();
    }

    #[test]
    fn singleton_frame_header_is_small() {
        let frame = Frame::from_envelopes([env(0, 1)]);
        // γ(2) + γ(1) + γ(1) = 3 + 1 + 1.
        assert_eq!(frame.header().bits(), 5);
    }
}
