//! Frame-based batching transport: coalesce envelopes per link with a
//! shared routing header — and a full byte-level codec.
//!
//! The per-register protocol needs only two control bits per message, but a
//! multi-register deployment adds a shard tag to every
//! [`Envelope`] — and when each envelope crosses the link
//! alone that *routing* overhead dwarfs the control bits (`⌈log₂ k⌉` bits
//! per message for a `k`-register space). A [`Frame`] coalesces every
//! envelope queued for one ordered link `(src, dst)` into a single wire
//! unit whose routing information is shared:
//!
//! * messages are grouped by register and the groups sorted by
//!   [`RegisterId`], so each shard tag appears **once per frame** instead of
//!   once per message;
//! * the tag sequence is encoded by whichever of two schemes is smaller per
//!   frame — delta/Elias-gamma gaps (sorted gaps are small) or a span
//!   bitmap (dense-but-gappy tag sets) — selected by a one-bit mode flag,
//!   see [`FrameHeader`];
//! * within a group, messages keep their send order, which is all the
//!   protocol can rely on anyway (channels are not FIFO, and registers are
//!   independent).
//!
//! Since the wire-codec redesign a frame is not just an accounting unit but
//! a real byte blob: [`Frame::encode`] serializes the header and every
//! message (via [`WireMessage::encode_into`]) into one contiguous,
//! length-prefixed bit stream, and [`Frame::decode`] parses it back with
//! every declared count bounds-checked against the remaining input *before*
//! any allocation. [`FrameCost`] reports the amortized routing bits
//! (`header_bits`) alongside the untouched per-message control bits, plus
//! the per-message-tag figure the same messages would have cost unframed —
//! and the encoded blob reconciles bit-for-bit with that accounting on
//! multi-register deployments (see `docs/wire-format.md`; a
//! single-register space accounts 0 routing bits by convention — nothing
//! to route, like the unframed transport — while the blob still carries
//! the small self-describing header skeleton).

use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::bits::{gamma_bits, BitReader, BitWriter, WireError};
use crate::id::RegisterId;
use crate::pool::BufferPool;
use crate::wire::{Envelope, WireMessage};

/// Error type of the frame and header decoders.
///
/// Kept as an alias of the codec-wide [`WireError`] so pre-codec code
/// matching on `FrameDecodeError::Truncated` / `::Overflow` still compiles.
pub type FrameDecodeError = WireError;

/// One register's run of messages inside a [`Frame`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct FrameGroup<M> {
    reg: RegisterId,
    msgs: Vec<M>,
}

/// A batch of enveloped messages for one ordered link, sharing one routing
/// header.
///
/// Frames are the transport unit of every execution substrate: the
/// deterministic simulator coalesces all envelopes staged on a link at the
/// same virtual instant, the live runtime's links coalesce under a
/// flush policy, and the TCP backend writes each frame as one
/// length-prefixed byte blob ([`Frame::encode`]). A frame is delivered
/// **atomically**: either every message in it reaches the destination (in
/// group order) or — if the destination crashed — none does.
///
/// # Examples
///
/// ```
/// use twobit_proto::{Envelope, Frame, MessageCost, RegisterId, WireMessage};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl WireMessage for Ping {
///     fn kind(&self) -> &'static str { "PING" }
///     fn cost(&self) -> MessageCost { MessageCost::new(2, 0) }
/// }
///
/// let frame = Frame::from_envelopes([
///     Envelope::new(RegisterId::new(5), Ping),
///     Envelope::new(RegisterId::new(1), Ping),
///     Envelope::new(RegisterId::new(5), Ping),
/// ]);
/// assert_eq!(frame.len(), 3);
/// assert_eq!(frame.group_count(), 2); // r1 and r5
///
/// // The shared header replaces three 3-bit shard tags (for, say, an
/// // 8-register space) with one shared tag sequence.
/// let cost = frame.cost(RegisterId::routing_bits(8));
/// assert_eq!(cost.control_bits, 6); // untouched: 2 bits per message
/// assert_eq!(cost.unframed_routing_bits, 9);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame<M> {
    /// Groups sorted by register id; within a group, send order.
    groups: Vec<FrameGroup<M>>,
}

impl<M> Default for Frame<M> {
    fn default() -> Self {
        Frame { groups: Vec::new() }
    }
}

impl<M> Frame<M> {
    /// Builds a frame from envelopes, grouping by register (sorted) while
    /// preserving each register's internal message order.
    pub fn from_envelopes(envelopes: impl IntoIterator<Item = Envelope<M>>) -> Self {
        let mut groups: Vec<FrameGroup<M>> = Vec::new();
        for env in envelopes {
            match groups.binary_search_by_key(&env.reg, |g| g.reg) {
                Ok(i) => groups[i].msgs.push(env.inner),
                Err(i) => groups.insert(
                    i,
                    FrameGroup {
                        reg: env.reg,
                        msgs: vec![env.inner],
                    },
                ),
            }
        }
        Frame { groups }
    }

    /// Total messages carried.
    pub fn len(&self) -> usize {
        self.groups.iter().map(|g| g.msgs.len()).sum()
    }

    /// Returns `true` if the frame carries no messages.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of distinct registers addressed (= shard tags in the header).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The routing header: each addressed register with its message count,
    /// in id order.
    pub fn header(&self) -> FrameHeader {
        FrameHeader {
            groups: self
                .groups
                .iter()
                .map(|g| (g.reg, g.msgs.len() as u64))
                .collect(),
        }
    }

    /// Iterates `(register, message)` pairs in wire order (groups sorted by
    /// register, send order within a group).
    pub fn iter(&self) -> impl Iterator<Item = (RegisterId, &M)> {
        self.groups
            .iter()
            .flat_map(|g| g.msgs.iter().map(move |m| (g.reg, m)))
    }

    /// Consumes the frame back into envelopes, in wire order.
    pub fn into_envelopes(self) -> impl Iterator<Item = Envelope<M>> {
        self.groups.into_iter().flat_map(|g| {
            let reg = g.reg;
            g.msgs
                .into_iter()
                .map(move |inner| Envelope::new(reg, inner))
        })
    }
}

/// Maximum frame body a decoder will accept (bytes). Generous for any batch
/// the flush policies produce; small enough that a hostile length prefix
/// cannot size a pathological allocation.
pub const MAX_FRAME_BODY_BYTES: u32 = 1 << 26; // 64 MiB

/// Largest element count a decoder pre-reserves from a declared count.
/// Declared counts are bounded by the remaining input *bits*, but decoded
/// elements are 16–24 bytes each — reserving bit-bounded counts verbatim
/// would let a small hostile blob demand allocations two orders of
/// magnitude larger than itself. Anything longer grows organically.
const DECODE_RESERVE_CAP: usize = 4096;

impl<M: WireMessage> Frame<M> {
    /// Wire cost of this frame. `per_msg_routing_bits` is the shard-tag
    /// width of the hosting space (`⌈log₂ k⌉`, see
    /// [`RegisterId::routing_bits`]); it sets the unframed comparison
    /// figure, and a width of 0 (single-register deployment) degenerates
    /// the header to 0 bits — with one register there is nothing to route,
    /// exactly as the unframed transport paid no tag, so framing never
    /// regresses the paper's headline configuration.
    pub fn cost(&self, per_msg_routing_bits: u64) -> FrameCost {
        let mut control = 0;
        let mut data = 0;
        for (_, m) in self.iter() {
            let c = m.cost();
            control += c.control_bits;
            data += c.data_bits;
        }
        let messages = self.len() as u64;
        let (header_bits, header_gamma_bits) = if per_msg_routing_bits == 0 {
            (0, 0)
        } else {
            let h = self.header();
            (h.bits(), h.bits_gamma())
        };
        FrameCost {
            messages,
            header_bits,
            header_gamma_bits,
            control_bits: control,
            data_bits: data,
            unframed_routing_bits: messages * per_msg_routing_bits,
        }
    }

    /// Exact size of [`Frame::encode`]'s body in bits (header plus every
    /// message, before byte padding and without the 32-bit length prefix).
    pub fn encoded_bits(&self) -> u64 {
        self.header().bits() + self.iter().map(|(_, m)| m.encoded_bits()).sum::<u64>()
    }

    /// Serializes the frame into one length-prefixed byte blob:
    ///
    /// ```text
    /// u32 BE body length · body
    /// body := header bits · message bits (wire order) · zero pad to byte
    /// ```
    ///
    /// The 32-bit prefix is stream framing (it lets a TCP reader slice the
    /// stream into frames); it is not part of the three accounted bit
    /// classes. The body reconciles exactly with [`FrameHeader::bits`] plus
    /// each message's [`WireMessage::encoded_bits`].
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] if the message type has no byte-level
    /// codec; [`WireError::Overflow`] if the body exceeds
    /// [`MAX_FRAME_BODY_BYTES`].
    pub fn encode(&self) -> Result<Bytes, WireError> {
        Ok(Bytes::from(self.encode_into_vec(Vec::new())?))
    }

    /// [`Frame::encode`] into a recycled buffer checked out of `pool`: the
    /// steady-state hot path allocates nothing, and the returned [`Bytes`]
    /// gives the buffer back to the pool when its last view drops (after
    /// the socket write, after the simulator delivers the frame). The blob
    /// is byte-identical to [`Frame::encode`]'s.
    ///
    /// # Errors
    ///
    /// As for [`Frame::encode`].
    pub fn encode_pooled(&self, pool: &Arc<BufferPool>) -> Result<Bytes, WireError> {
        Ok(pool.freeze(self.encode_into_vec(pool.checkout())?))
    }

    /// Shared encode body: writes a 32-bit length placeholder, the header
    /// and every message into `buf` (cleared first, capacity reused), then
    /// patches the real body length over the placeholder.
    fn encode_into_vec(&self, buf: Vec<u8>) -> Result<Vec<u8>, WireError> {
        let mut w = BitWriter::with_buffer(buf);
        w.put_bits(0, 32); // length-prefix placeholder, patched below
        self.header().encode_into(&mut w);
        for (_, m) in self.iter() {
            m.encode_into(&mut w)?;
        }
        let mut blob = w.into_bytes();
        let len = u32::try_from(blob.len() - 4).map_err(|_| WireError::Overflow)?;
        if len > MAX_FRAME_BODY_BYTES {
            return Err(WireError::Overflow);
        }
        blob[..4].copy_from_slice(&len.to_be_bytes());
        Ok(blob)
    }

    /// Parses one blob produced by [`Frame::encode`] (length prefix
    /// included; the buffer must contain exactly one frame).
    ///
    /// Hardened against hostile input: the length prefix must match the
    /// buffer, the declared group and message counts are bounded by the
    /// remaining input *before* any allocation is sized from them, and the
    /// final-byte padding must be zero.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthMismatch`] if the prefix disagrees with the
    /// buffer; [`WireError::Truncated`] / [`WireError::Overflow`] /
    /// [`WireError::Malformed`] on a corrupt body;
    /// [`WireError::Unsupported`] if the message type has no codec.
    pub fn decode(blob: &[u8]) -> Result<Frame<M>, WireError> {
        Self::check_prefix(blob)?;
        let mut r = BitReader::new(&blob[4..]);
        Self::decode_body(&mut r)
    }

    /// [`Frame::decode`] over a shared [`Bytes`] blob: structurally the
    /// same hardened parse, but the reader remembers the backing
    /// allocation, so any byte-aligned payload a message codec pulls out
    /// via [`BitReader::get_byte_slice`] is a **zero-copy sub-view of the
    /// received blob** — the slices stay valid (and keep the blob alive)
    /// after this call returns. This is the decode path of every byte
    /// transport; `decode` remains for callers holding a plain slice.
    ///
    /// # Errors
    ///
    /// As for [`Frame::decode`].
    pub fn decode_shared(blob: &Bytes) -> Result<Frame<M>, WireError> {
        Self::check_prefix(blob)?;
        let body = blob.slice(4..);
        let mut r = BitReader::new_shared(&body);
        Self::decode_body(&mut r)
    }

    /// Validates the 4-byte length prefix against the buffer.
    fn check_prefix(blob: &[u8]) -> Result<(), WireError> {
        if blob.len() < 4 {
            return Err(WireError::Truncated);
        }
        let declared = u32::from_be_bytes(blob[..4].try_into().expect("4 bytes checked"));
        if declared > MAX_FRAME_BODY_BYTES {
            return Err(WireError::Overflow);
        }
        if declared as usize != blob.len() - 4 {
            return Err(WireError::LengthMismatch);
        }
        Ok(())
    }

    /// Shared decode body (everything after the length prefix).
    fn decode_body(r: &mut BitReader<'_>) -> Result<Frame<M>, WireError> {
        let header = FrameHeader::decode_from(r)?;
        // Bound the total message count by the remaining input before
        // allocating any group: every encodable message is at least one
        // bit. The sum must be overflow-checked — the per-group counts are
        // attacker-controlled u64s, and a wrapped sum would sail past the
        // bound.
        let declared_messages = header
            .groups
            .iter()
            .try_fold(0u64, |acc, &(_, c)| acc.checked_add(c))
            .ok_or(WireError::Overflow)?;
        if declared_messages > r.remaining_bits() {
            return Err(WireError::Overflow);
        }
        let mut groups = Vec::with_capacity(header.groups.len());
        for &(reg, count) in &header.groups {
            // `count ≤ remaining bits` caps it at 2²⁹, but elements are
            // wider than a bit — never let a declared count pre-reserve
            // more than a sane chunk; longer groups grow organically.
            let mut msgs = Vec::with_capacity((count as usize).min(DECODE_RESERVE_CAP));
            for _ in 0..count {
                msgs.push(M::decode(r)?);
            }
            groups.push(FrameGroup { reg, msgs });
        }
        r.expect_zero_padding()?;
        Ok(Frame { groups })
    }
}

/// Wire cost of one [`Frame`], splitting the shared routing header from the
/// untouched per-message control and data bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameCost {
    /// Messages carried by the frame.
    pub messages: u64,
    /// Bits of the shared routing header as actually encoded — the
    /// *amortized* routing cost of the whole frame, with the per-frame
    /// delta/gamma-vs-bitmap chooser applied.
    pub header_bits: u64,
    /// What the header would cost with the delta/gamma mode forced — the
    /// pre-chooser (header codec v1) comparison figure. Always ≥
    /// `header_bits`.
    pub header_gamma_bits: u64,
    /// Sum of the inner messages' control bits (two per message for the
    /// paper's algorithm — framing never touches them).
    pub control_bits: u64,
    /// Sum of the inner messages' data bits.
    pub data_bits: u64,
    /// What the same messages' shard tags would cost if each envelope
    /// crossed the link alone (`messages × ⌈log₂ k⌉`) — the figure
    /// `header_bits` is compared against.
    pub unframed_routing_bits: u64,
}

impl FrameCost {
    /// Total bits the frame puts on the wire.
    pub fn total_bits(&self) -> u64 {
        self.header_bits + self.control_bits + self.data_bits
    }

    /// Routing bits saved versus sending every envelope alone (0 when the
    /// header is not smaller).
    pub fn routing_bits_saved(&self) -> u64 {
        self.unframed_routing_bits.saturating_sub(self.header_bits)
    }
}

/// The shared routing header of a [`Frame`]: the addressed registers (in id
/// order) with their message counts.
///
/// The wire encoding starts with the gamma-coded group count; a non-empty
/// header then carries one **mode bit** selecting whichever of two tag
/// encodings is smaller for this frame (ROADMAP "Header codec v2"):
///
/// ```text
/// γ(d+1)  ·  mode  ·  body            (mode/body absent when d = 0)
///
/// mode 0 (delta/gamma):
///   γ(tag₀+1) γ(c₀)  ·  γ(tag₁−tag₀) γ(c₁)  ·  …
/// mode 1 (span bitmap):
///   γ(tag₀+1) γ(span)  ·  bitmap[span]  ·  γ(c₀) … γ(c_{d−1})
/// ```
///
/// where `d` is the group count, `tagᵢ` the sorted register ids, `cᵢ` the
/// per-group message counts, `span = tag_{d−1} − tag₀ + 1`, and
/// `γ(x) = 2⌊log₂ x⌋ + 1` bits. Sorted gaps gamma-code in one bit for
/// adjacent shards — near-optimal for dense runs — while the bitmap wins
/// when tags are regular but gapped (`≈ γ(gap)` per tag otherwise). The
/// encoder computes both sizes and picks the smaller, so the chosen
/// encoding never exceeds forced-gamma by more than the mode bit, and
/// [`FrameHeader::bits_gamma`] exposes the forced-gamma figure for
/// comparison.
///
/// # Examples
///
/// ```
/// use twobit_proto::{Frame, FrameHeader};
/// # use twobit_proto::{Envelope, MessageCost, RegisterId, WireMessage};
/// # #[derive(Clone, Debug)]
/// # struct P;
/// # impl WireMessage for P {
/// #     fn kind(&self) -> &'static str { "P" }
/// #     fn cost(&self) -> MessageCost { MessageCost::new(2, 0) }
/// # }
/// let frame = Frame::from_envelopes(
///     (0..64usize).map(|k| Envelope::new(RegisterId::new(k), P)),
/// );
/// let header = frame.header();
/// let bytes = header.encode();
/// assert_eq!(FrameHeader::decode(&bytes)?, header);
/// // 64 adjacent shard tags cost far less than 64 × 6 unframed bits.
/// assert!(header.bits() < 64 * 6 / 2);
/// # Ok::<(), twobit_proto::FrameDecodeError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameHeader {
    /// `(register, message count)` per group, sorted by register id.
    pub groups: Vec<(RegisterId, u64)>,
}

impl FrameHeader {
    /// The gamma code of each group's register tag: the first tag absolute
    /// (offset by one so tag 0 is encodable), every later one as its gap
    /// from the previous tag.
    ///
    /// # Panics
    ///
    /// Panics if `groups` violates the type's invariant of strictly
    /// increasing register ids — possible only through the public field or
    /// deserialization, since [`Frame::header`] always sorts.
    fn tag_code(prev: Option<RegisterId>, reg: RegisterId) -> u64 {
        match prev {
            None => reg.index() as u64 + 1,
            Some(p) => reg
                .index()
                .checked_sub(p.index())
                .filter(|&gap| gap > 0)
                .expect("frame header groups must have strictly increasing register ids")
                as u64,
        }
    }

    /// Size of the delta/gamma body (mode 0), sans count prefix and mode
    /// bit.
    fn gamma_body_bits(&self) -> u64 {
        let mut bits = 0;
        let mut prev: Option<RegisterId> = None;
        for &(reg, count) in &self.groups {
            assert!(count >= 1, "frame header groups must carry messages");
            bits += gamma_bits(Self::tag_code(prev, reg)) + gamma_bits(count);
            prev = Some(reg);
        }
        bits
    }

    /// Size of the span-bitmap body (mode 1), sans count prefix and mode
    /// bit. `None` for an empty header (no bitmap mode exists there).
    fn bitmap_body_bits(&self) -> Option<u64> {
        let (first, _) = *self.groups.first()?;
        let (last, _) = *self.groups.last()?;
        // Walk the groups to enforce the sorted invariant exactly like the
        // gamma body does.
        let mut counts = 0;
        let mut prev: Option<RegisterId> = None;
        for &(reg, count) in &self.groups {
            assert!(count >= 1, "frame header groups must carry messages");
            let _ = Self::tag_code(prev, reg);
            counts += gamma_bits(count);
            prev = Some(reg);
        }
        let span = last.index() as u64 - first.index() as u64 + 1;
        Some(gamma_bits(first.index() as u64 + 1) + gamma_bits(span) + span + counts)
    }

    /// Exact size of the encoded header in bits (before byte padding), with
    /// the per-frame mode chooser applied.
    ///
    /// # Panics
    ///
    /// As for a malformed hand-built header — see [`FrameHeader::encode`].
    pub fn bits(&self) -> u64 {
        let prefix = gamma_bits(self.groups.len() as u64 + 1);
        match self.bitmap_body_bits() {
            None => prefix,
            Some(bitmap) => prefix + 1 + bitmap.min(self.gamma_body_bits()),
        }
    }

    /// Size of the header with the delta/gamma mode forced — what the
    /// pre-chooser codec would emit plus the mode bit. The chooser's
    /// [`FrameHeader::bits`] never exceeds this.
    pub fn bits_gamma(&self) -> u64 {
        let prefix = gamma_bits(self.groups.len() as u64 + 1);
        if self.groups.is_empty() {
            prefix
        } else {
            prefix + 1 + self.gamma_body_bits()
        }
    }

    /// Encodes the header into `w` (no byte padding; the caller finishes
    /// the stream).
    ///
    /// # Panics
    ///
    /// Panics on a header violating the type's invariant (register ids not
    /// strictly increasing, or a zero message count) — constructible only
    /// by hand or via deserialization; [`Frame::header`] always upholds it.
    pub fn encode_into(&self, w: &mut BitWriter) {
        w.put_gamma(self.groups.len() as u64 + 1);
        let Some(bitmap) = self.bitmap_body_bits() else {
            return;
        };
        if self.gamma_body_bits() <= bitmap {
            w.put_bit(false); // mode 0: delta/gamma
            let mut prev: Option<RegisterId> = None;
            for &(reg, count) in &self.groups {
                w.put_gamma(Self::tag_code(prev, reg));
                w.put_gamma(count);
                prev = Some(reg);
            }
        } else {
            w.put_bit(true); // mode 1: span bitmap
            let (first, _) = self.groups[0];
            let (last, _) = *self.groups.last().expect("non-empty");
            let span = last.index() as u64 - first.index() as u64 + 1;
            w.put_gamma(first.index() as u64 + 1);
            w.put_gamma(span);
            let mut present = self.groups.iter().map(|&(r, _)| r).peekable();
            for offset in 0..span {
                let hit = present
                    .peek()
                    .is_some_and(|r| r.index() as u64 == first.index() as u64 + offset);
                if hit {
                    present.next();
                }
                w.put_bit(hit);
            }
            for &(_, count) in &self.groups {
                w.put_gamma(count);
            }
        }
    }

    /// Encodes the header into a [`Bytes`] blob (final byte zero-padded) —
    /// the same wire type [`Frame::encode`] returns, so the whole codec
    /// speaks `Bytes`.
    ///
    /// # Panics
    ///
    /// As for [`FrameHeader::encode_into`].
    pub fn encode(&self) -> Bytes {
        let mut w = BitWriter::new();
        self.encode_into(&mut w);
        Bytes::from(w.into_bytes())
    }

    /// Decodes a header from the front of `r`, leaving the cursor after
    /// its last code.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the stream ends mid-code;
    /// [`WireError::Overflow`] if a count exceeds what the remaining input
    /// could hold or a tag leaves its domain; [`WireError::Malformed`] on a
    /// non-canonical bitmap.
    pub fn decode_from(r: &mut BitReader<'_>) -> Result<FrameHeader, WireError> {
        let d = r.get_gamma()?.checked_sub(1).ok_or(WireError::Overflow)?;
        // Domain check before trusting d with an allocation: every group
        // needs at least two more bits (a tag code and a count code), so a
        // count the remaining input cannot possibly hold is malformed —
        // not merely truncated — input. The reserve cap keeps even a
        // bit-plausible d from pre-sizing allocations much larger than the
        // blob that declared it.
        if d > r.remaining_bits() / 2 {
            return Err(WireError::Overflow);
        }
        if d == 0 {
            return Ok(FrameHeader { groups: Vec::new() });
        }
        let mut groups = Vec::with_capacity((d as usize).min(DECODE_RESERVE_CAP));
        if !r.get_bit()? {
            // Mode 0: delta/gamma.
            let mut prev: Option<u64> = None;
            for _ in 0..d {
                let tag_code = r.get_gamma()?;
                let tag = match prev {
                    None => tag_code.checked_sub(1).ok_or(WireError::Overflow)?,
                    Some(p) => {
                        if tag_code == 0 {
                            return Err(WireError::Overflow);
                        }
                        p.checked_add(tag_code).ok_or(WireError::Overflow)?
                    }
                };
                if tag > u64::from(u32::MAX) {
                    return Err(WireError::Overflow);
                }
                let count = r.get_gamma()?;
                if count == 0 {
                    return Err(WireError::Overflow);
                }
                groups.push((RegisterId::new(tag as usize), count));
                prev = Some(tag);
            }
        } else {
            // Mode 1: span bitmap.
            let first = r.get_gamma()?.checked_sub(1).ok_or(WireError::Overflow)?;
            let span = r.get_gamma()?;
            if span < d || span > r.remaining_bits() {
                return Err(WireError::Overflow);
            }
            let last = first.checked_add(span - 1).ok_or(WireError::Overflow)?;
            if last > u64::from(u32::MAX) {
                return Err(WireError::Overflow);
            }
            let mut tags = Vec::with_capacity((d as usize).min(DECODE_RESERVE_CAP));
            for offset in 0..span {
                let present = r.get_bit()?;
                if present {
                    // Reject the moment the popcount exceeds the declared
                    // group count — a span-sized all-ones bitmap must not
                    // get to accumulate span tags before the final check.
                    if tags.len() as u64 == d {
                        return Err(WireError::Malformed("bitmap popcount != group count"));
                    }
                    tags.push(first + offset);
                }
                if (offset == 0 || offset == span - 1) && !present {
                    return Err(WireError::Malformed("bitmap span not tight"));
                }
            }
            if tags.len() as u64 != d {
                return Err(WireError::Malformed("bitmap popcount != group count"));
            }
            for tag in tags {
                let count = r.get_gamma()?;
                if count == 0 {
                    return Err(WireError::Overflow);
                }
                groups.push((RegisterId::new(tag as usize), count));
            }
        }
        Ok(FrameHeader { groups })
    }

    /// Decodes a header previously produced by [`FrameHeader::encode`].
    ///
    /// # Errors
    ///
    /// As for [`FrameHeader::decode_from`].
    pub fn decode(bytes: &[u8]) -> Result<FrameHeader, WireError> {
        let mut r = BitReader::new(bytes);
        Self::decode_from(&mut r)
    }

    /// Total message count across all groups.
    pub fn messages(&self) -> u64 {
        self.groups.iter().map(|&(_, c)| c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MessageCost;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Tag(u64);

    impl WireMessage for Tag {
        fn kind(&self) -> &'static str {
            "TAG"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(2, 64)
        }
        fn encoded_bits(&self) -> u64 {
            2 + 64
        }
        fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
            w.put_bits(0b01, 2);
            w.put_bits(self.0, 64);
            Ok(())
        }
        fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
            if r.get_bits(2)? != 0b01 {
                return Err(WireError::Malformed("bad Tag tag"));
            }
            Ok(Tag(r.get_bits(64)?))
        }
    }

    fn env(reg: usize, v: u64) -> Envelope<Tag> {
        Envelope::new(RegisterId::new(reg), Tag(v))
    }

    #[test]
    fn grouping_sorts_tags_and_preserves_order_within_register() {
        let frame = Frame::from_envelopes([env(5, 0), env(1, 1), env(5, 2), env(1, 3), env(3, 4)]);
        assert_eq!(frame.len(), 5);
        assert_eq!(frame.group_count(), 3);
        let wire: Vec<(usize, u64)> = frame.iter().map(|(r, m)| (r.index(), m.0)).collect();
        assert_eq!(wire, vec![(1, 1), (1, 3), (3, 4), (5, 0), (5, 2)]);
        // Round trip back to envelopes in the same wire order.
        let back: Vec<(usize, u64)> = frame
            .into_envelopes()
            .map(|e| (e.reg.index(), e.inner.0))
            .collect();
        assert_eq!(back, vec![(1, 1), (1, 3), (3, 4), (5, 0), (5, 2)]);
    }

    #[test]
    fn header_roundtrips_and_bits_is_exact() {
        let frame = Frame::from_envelopes([env(0, 0), env(0, 1), env(7, 2), env(63, 3)]);
        let header = frame.header();
        assert_eq!(
            header.groups,
            vec![
                (RegisterId::new(0), 2),
                (RegisterId::new(7), 1),
                (RegisterId::new(63), 1),
            ]
        );
        let bytes = header.encode();
        assert_eq!(FrameHeader::decode(&bytes).unwrap(), header);
        // Every encoded bit is accounted for: the byte length is the bit
        // length rounded up.
        assert_eq!(bytes.len() as u64, header.bits().div_ceil(8));
        assert_eq!(header.messages(), 4);
    }

    #[test]
    fn empty_frame() {
        let frame: Frame<Tag> = Frame::from_envelopes([]);
        assert!(frame.is_empty());
        assert_eq!(frame.len(), 0);
        let header = frame.header();
        assert_eq!(header.bits(), 1); // γ(0+1) alone, no mode bit
        assert_eq!(FrameHeader::decode(&header.encode()).unwrap(), header);
        assert_eq!(frame.cost(6).total_bits(), 1);
    }

    #[test]
    fn cost_splits_header_from_untouched_control() {
        let frame = Frame::from_envelopes((0..10).map(|k| env(k, k as u64)));
        let cost = frame.cost(RegisterId::routing_bits(64));
        assert_eq!(cost.messages, 10);
        assert_eq!(
            cost.control_bits, 20,
            "2 control bits per message, untouched"
        );
        assert_eq!(cost.data_bits, 640);
        assert_eq!(cost.unframed_routing_bits, 60);
        assert_eq!(cost.header_bits, frame.header().bits());
        assert_eq!(cost.header_gamma_bits, frame.header().bits_gamma());
        assert!(cost.header_bits <= cost.header_gamma_bits);
        assert_eq!(
            cost.total_bits(),
            cost.header_bits + cost.control_bits + cost.data_bits
        );
        // Ten adjacent tags delta-encode to well under ten 6-bit tags.
        assert!(cost.header_bits < cost.unframed_routing_bits);
        assert_eq!(
            cost.routing_bits_saved(),
            cost.unframed_routing_bits - cost.header_bits
        );
    }

    #[test]
    fn sixty_four_adjacent_shards_amortize_below_half() {
        // The acceptance shape: one message per register, 64 registers.
        let frame = Frame::from_envelopes((0..64).map(|k| env(k, 0)));
        let cost = frame.cost(RegisterId::routing_bits(64));
        assert_eq!(cost.unframed_routing_bits, 64 * 6);
        assert!(
            2 * cost.header_bits <= cost.unframed_routing_bits,
            "header {} vs unframed {}",
            cost.header_bits,
            cost.unframed_routing_bits
        );
    }

    #[test]
    fn chooser_picks_bitmap_for_regularly_gapped_tags() {
        // Every fourth register: gamma pays γ(4) = 5 bits per gap, the
        // bitmap pays 4 — the v2 mode exists exactly for this shape.
        let sparse = Frame::from_envelopes((0..32).map(|k| env(4 * k, 0))).header();
        assert!(
            sparse.bits() < sparse.bits_gamma(),
            "bitmap mode must win on gapped-regular tags: {} vs {}",
            sparse.bits(),
            sparse.bits_gamma()
        );
        assert_eq!(FrameHeader::decode(&sparse.encode()).unwrap(), sparse);

        // Dense adjacent tags: gamma gaps are 1 bit each, bitmap cannot
        // beat that; the chooser must fall back to gamma (= forced gamma).
        let dense = Frame::from_envelopes((0..32).map(|k| env(k, 0))).header();
        assert_eq!(dense.bits(), dense.bits_gamma());
        assert_eq!(FrameHeader::decode(&dense.encode()).unwrap(), dense);
    }

    #[test]
    fn chooser_never_exceeds_forced_gamma() {
        // A grab bag of shapes: dense, gapped, huge gaps, repeated counts.
        let shapes: Vec<Vec<usize>> = vec![
            (0..64).collect(),
            (0..64).map(|k| 4 * k).collect(),
            vec![0, 1_000_000],
            vec![7],
            (0..10).map(|k| k * k).collect(),
        ];
        for tags in shapes {
            let header = Frame::from_envelopes(tags.iter().map(|&t| env(t, 0))).header();
            assert!(
                header.bits() <= header.bits_gamma(),
                "chooser lost to forced gamma on {tags:?}"
            );
            let bytes = header.encode();
            assert_eq!(FrameHeader::decode(&bytes).unwrap(), header, "{tags:?}");
            assert_eq!(bytes.len() as u64, header.bits().div_ceil(8), "{tags:?}");
        }
    }

    #[test]
    fn frame_blob_roundtrips_and_reconciles_with_cost() {
        let frame = Frame::from_envelopes([env(0, 7), env(3, 9), env(0, 8), env(9, 1)]);
        let blob = frame.encode().unwrap();
        assert_eq!(Frame::<Tag>::decode(&blob).unwrap(), frame);
        // The blob is the 4-byte prefix plus the body, whose bit length is
        // exactly header + Σ message bits.
        let body_bits = frame.encoded_bits();
        assert_eq!(blob.len() as u64, 4 + body_bits.div_ceil(8));
        // And the accounting reconciles: body bits = FrameCost's header +
        // control + data, since Tag's codec is exactly its cost.
        let cost = frame.cost(RegisterId::routing_bits(16));
        assert_eq!(body_bits, cost.total_bits());
        let declared = u32::from_be_bytes(blob[..4].try_into().unwrap());
        assert_eq!(declared as usize, blob.len() - 4);
    }

    #[test]
    fn empty_frame_encodes_to_one_body_byte() {
        let frame: Frame<Tag> = Frame::default();
        let blob = frame.encode().unwrap();
        assert_eq!(blob.len(), 5); // 4-byte prefix + γ(1) padded to a byte
        assert_eq!(Frame::<Tag>::decode(&blob).unwrap(), frame);
    }

    #[test]
    fn decode_rejects_garbage() {
        // No room for even the length prefix.
        assert_eq!(Frame::<Tag>::decode(&[]), Err(WireError::Truncated));
        // Prefix promising more body than the buffer holds.
        assert_eq!(
            Frame::<Tag>::decode(&[0, 0, 0, 9, 0xFF]),
            Err(WireError::LengthMismatch)
        );
        // A stream that is all zeros never terminates a gamma code.
        assert_eq!(FrameHeader::decode(&[0x00]), Err(WireError::Truncated));
        // Empty input can't even hold γ(1).
        assert_eq!(FrameHeader::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn decode_rejects_message_count_beyond_input_before_allocating() {
        // A syntactically valid header claiming 2⁴⁰ messages in one group:
        // the frame decoder must bound the count against the remaining
        // body *before* sizing any allocation from it.
        let mut w = BitWriter::new();
        FrameHeader {
            groups: vec![(RegisterId::new(0), 1 << 40)],
        }
        .encode_into(&mut w);
        let body = w.into_bytes();
        let mut blob = (body.len() as u32).to_be_bytes().to_vec();
        blob.extend_from_slice(&body);
        assert_eq!(Frame::<Tag>::decode(&blob), Err(WireError::Overflow));
    }

    #[test]
    fn decode_rejects_wrapping_message_count_sum() {
        // Two groups declaring 2⁶³ messages each: the naive sum wraps to 0
        // and would sail past a wrapping total bound, then panic sizing an
        // allocation. Both the per-group bound and the checked sum must
        // reject this as a typed error.
        let mut w = BitWriter::new();
        w.put_gamma(3); // d = 2
        w.put_bit(false); // delta/gamma mode
        w.put_gamma(1); // tag 0
        w.put_gamma(1u64 << 63); // count: 2⁶³
        w.put_gamma(1); // gap to tag 1
        w.put_gamma(1u64 << 63); // count: 2⁶³ (sum wraps to 0)
        let body = w.into_bytes();
        let mut blob = (body.len() as u32).to_be_bytes().to_vec();
        blob.extend_from_slice(&body);
        assert_eq!(Frame::<Tag>::decode(&blob), Err(WireError::Overflow));
        // The bare header itself is syntactically fine (counts are only
        // bounded against a message section, which a standalone header
        // does not have) — the frame decoder is where the bound lives.
        assert!(FrameHeader::decode(&body).is_ok());
    }

    #[test]
    fn decode_caps_pre_reserved_capacity() {
        // A bit-plausible group count (d ≈ remaining/2) must not
        // pre-reserve gigabytes: the reserve cap bounds the initial
        // allocation while truncated input still fails with a typed error.
        let mut w = BitWriter::new();
        w.put_gamma(100_000 + 1); // d = 100k groups, nothing behind them
        let mut body = w.into_bytes();
        body.resize(body.len() + 100_000, 0); // enough "remaining" bits
        assert!(matches!(
            FrameHeader::decode(&body),
            Err(WireError::Truncated | WireError::Overflow)
        ));
    }

    #[test]
    fn decode_rejects_oversized_length_prefix_without_allocating() {
        // A hostile prefix declaring a multi-gigabyte body is rejected on
        // the prefix alone.
        let blob = [0xFF, 0xFF, 0xFF, 0xFF];
        assert_eq!(Frame::<Tag>::decode(&blob), Err(WireError::Overflow));
    }

    #[test]
    fn decode_rejects_nonzero_padding() {
        // Two messages: 8 header bits + 132 message bits = 140, leaving 4
        // genuine padding bits in the final body byte.
        let frame = Frame::from_envelopes([env(0, 5), env(0, 6)]);
        let blob = frame.encode().unwrap();
        assert_eq!(frame.encoded_bits() % 8, 4, "test needs unaligned body");
        let mut tampered = blob.to_vec();
        // The message ends mid-byte; flip the last (padding) bit.
        *tampered.last_mut().unwrap() |= 1;
        assert_eq!(
            Frame::<Tag>::decode(&tampered),
            Err(WireError::Malformed("non-zero padding bit"))
        );
    }

    #[test]
    fn decode_rejects_absurd_group_count_without_allocating() {
        // A crafted header whose group count claims 2⁶² groups must come
        // back as a typed error, not a capacity-overflow panic: the count
        // is bounded by what the remaining input could possibly hold.
        let mut w = BitWriter::new();
        w.put_gamma(1u64 << 62);
        let bytes = w.into_bytes();
        assert_eq!(FrameHeader::decode(&bytes), Err(WireError::Overflow));
    }

    #[test]
    fn decode_rejects_overfull_bitmap_before_accumulating_span_tags() {
        // Mode-1 header: d = 1 but an all-ones bitmap over a large span.
        // The decoder must bail at the second set bit, not collect a
        // span-sized tag vector first and fail on the final popcount.
        let span = 4_000u64;
        let mut w = BitWriter::new();
        w.put_gamma(2); // d = 1
        w.put_bit(true); // bitmap mode
        w.put_gamma(1); // first = 0
        w.put_gamma(span);
        for _ in 0..span {
            w.put_bit(true);
        }
        w.put_gamma(1); // count for the one declared group
        let bytes = w.into_bytes();
        assert_eq!(
            FrameHeader::decode(&bytes),
            Err(WireError::Malformed("bitmap popcount != group count"))
        );
    }

    #[test]
    fn decode_rejects_bitmap_span_beyond_input() {
        // Mode-1 header declaring a 2³⁰-bit bitmap in a few bytes.
        let mut w = BitWriter::new();
        w.put_gamma(2); // d = 1
        w.put_bit(true); // bitmap mode
        w.put_gamma(1); // first = 0
        w.put_gamma(1 << 30); // span
        let bytes = w.into_bytes();
        assert_eq!(FrameHeader::decode(&bytes), Err(WireError::Overflow));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn encode_rejects_unsorted_hand_built_header() {
        // `groups` is a public field, so a hand-built header can violate
        // the sorted invariant; encode must fail loudly, not underflow.
        let bad = FrameHeader {
            groups: vec![(RegisterId::new(5), 1), (RegisterId::new(1), 1)],
        };
        let _ = bad.encode();
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bits_rejects_duplicate_registers() {
        // A duplicate register (gap 0) must not wrap into a gigantic gamma
        // length.
        let bad = FrameHeader {
            groups: vec![(RegisterId::new(3), 1), (RegisterId::new(3), 2)],
        };
        let _ = bad.bits();
    }

    #[test]
    fn singleton_frame_header_is_small() {
        let frame = Frame::from_envelopes([env(0, 1)]);
        // γ(2) + mode + γ(1) + γ(1) = 3 + 1 + 1 + 1.
        assert_eq!(frame.header().bits(), 6);
    }

    #[test]
    fn pooled_encode_is_byte_identical_and_recycles_its_buffer() {
        let pool = BufferPool::new();
        let frame = Frame::from_envelopes([env(0, 7), env(3, 9), env(0, 8)]);
        let fresh = frame.encode().unwrap();
        let pooled = frame.encode_pooled(&pool).unwrap();
        assert_eq!(pooled, fresh, "pooled blob must be byte-identical");
        assert_eq!(Frame::<Tag>::decode(&pooled).unwrap(), frame);
        // The buffer is still owned by the blob...
        assert_eq!(pool.available(), 0);
        drop(pooled);
        // ...and rejoins the pool when the last view drops, so the next
        // frame encodes into it.
        assert_eq!(pool.available(), 1);
        let again = frame.encode_pooled(&pool).unwrap();
        assert_eq!(again, fresh);
        assert_eq!(pool.recycled(), 1);
    }

    /// A message with a byte-string payload whose wire layout lands the raw
    /// bytes on a byte boundary: 6 header bits (singleton frame) + 2 tag
    /// bits + 7 filler bits + γ(17) = 9 length bits = 24. Exists to pin the
    /// zero-copy decode path deterministically; the property tests cover
    /// arbitrary (mostly unaligned) layouts.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Blob(Bytes);

    impl WireMessage for Blob {
        fn kind(&self) -> &'static str {
            "BLOB"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(2, 8 * self.0.len() as u64)
        }
        fn encoded_bits(&self) -> u64 {
            2 + 7 + crate::Payload::encoded_bits(&self.0)
        }
        fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
            w.put_bits(0b11, 2);
            w.put_bits(0, 7);
            crate::Payload::encode_into(&self.0, w)
        }
        fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
            if r.get_bits(2)? != 0b11 {
                return Err(WireError::Malformed("bad Blob tag"));
            }
            r.get_bits(7)?;
            Ok(Blob(<Bytes as crate::Payload>::decode(r)?))
        }
    }

    #[test]
    fn shared_decode_hands_out_zero_copy_payload_views() {
        let payload = Bytes::copy_from_slice(&[0xC0u8; 16]);
        let frame = Frame::from_envelopes([Envelope::new(RegisterId::new(0), Blob(payload))]);
        // Raw payload bytes start exactly 24 bits into the body.
        assert_eq!(frame.encoded_bits(), 24 + 8 * 16);
        let blob = frame.encode().unwrap();

        let decoded = Frame::<Blob>::decode_shared(&blob).unwrap();
        assert_eq!(decoded, frame);
        let (_, msg) = decoded.iter().next().unwrap();
        let base = blob.as_ptr() as usize;
        let p = msg.0.as_ptr() as usize;
        assert_eq!(
            p,
            base + 4 + 3,
            "payload must be a view of the blob: prefix (4) + aligned body offset (3)"
        );
        // The slice keeps the blob's allocation alive on its own.
        let view = decoded.iter().next().unwrap().1 .0.clone();
        drop(decoded);
        drop(blob);
        assert_eq!(&view[..], &[0xC0u8; 16]);

        // The plain-slice decoder parses the same blob but must copy.
        let blob2 = frame.encode().unwrap();
        let copied = Frame::<Blob>::decode(&blob2).unwrap();
        assert_eq!(copied, frame);
        let q = copied.iter().next().unwrap().1 .0.as_ptr() as usize;
        let base2 = blob2.as_ptr() as usize;
        assert!(
            q < base2 || q >= base2 + blob2.len(),
            "unshared decode cannot view the blob"
        );
    }
}
