//! Pluggable scheduling of a deterministic backend's enabled events.
//!
//! A deterministic backend (the sharded simulator in *scheduled mode*) does
//! not pick which enabled event fires next — a [`Scheduler`] does. The
//! backend exposes its current choice points as [`EnabledEvent`]s; the
//! scheduler answers with a [`SchedDecision`]; the fired steps accumulate
//! into a [`Schedule`], a replayable token with a stable, human-readable
//! string form (`"i0 d2 r0"`). Three schedulers matter in practice:
//!
//! * [`VirtualTimeScheduler`] — fires events in virtual-time order, the
//!   closest scheduled-mode analogue of the seeded default event loop;
//! * [`ReplayScheduler`] — replays a recorded [`Schedule`] verbatim
//!   (strict) or best-effort (lenient, for counterexample shrinking);
//! * the model checker's depth-first path explorer (`twobit-check`), which
//!   drives the backend through *every* partial-order-inequivalent
//!   schedule of a small configuration.
//!
//! Event identities are stable per run prefix: a frame keeps the sequence
//! number it was born with, and plan steps are numbered by their position
//! in the scenario script — so a `Schedule` recorded on one run replays
//! bit-identically on a fresh backend built from the same configuration.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use crate::id::ProcessId;

/// One step of a recorded (or prescribed) schedule. The string form is a
/// single compact token: `d<seq>` delivers a frame, `i<plan>` /
/// `r<plan>` fire a plan step's invocation / response, `c<proc>` crashes
/// a process, `u<proc>` recovers (brings back *up*) a crashed process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScheduleStep {
    /// Deliver the in-flight frame with this birth sequence number.
    Deliver(u64),
    /// Fire plan step `plan`'s invocation (the client issues the op).
    Invoke(u64),
    /// Fire plan step `plan`'s response (the client observes completion).
    Respond(u64),
    /// Crash this process (between events; in-flight frames to it drop).
    Crash(ProcessId),
    /// Recover this crashed process: snapshot adoption, rejoin barrier and
    /// incarnation bump fire atomically as one step (between events, like
    /// a crash); in-flight pre-recovery frames become fenceable as stale.
    Recover(ProcessId),
}

impl fmt::Display for ScheduleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleStep::Deliver(seq) => write!(f, "d{seq}"),
            ScheduleStep::Invoke(plan) => write!(f, "i{plan}"),
            ScheduleStep::Respond(plan) => write!(f, "r{plan}"),
            ScheduleStep::Crash(p) => write!(f, "c{}", p.index()),
            ScheduleStep::Recover(p) => write!(f, "u{}", p.index()),
        }
    }
}

/// Error parsing a [`Schedule`] or [`ScheduleStep`] from its string form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleParseError {
    token: String,
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unparseable schedule token {:?}", self.token)
    }
}

impl std::error::Error for ScheduleParseError {}

impl FromStr for ScheduleStep {
    type Err = ScheduleParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ScheduleParseError {
            token: s.to_string(),
        };
        let (kind, num) = s.split_at(1);
        let n: u64 = num.parse().map_err(|_| err())?;
        match kind {
            "d" => Ok(ScheduleStep::Deliver(n)),
            "i" => Ok(ScheduleStep::Invoke(n)),
            "r" => Ok(ScheduleStep::Respond(n)),
            "c" => Ok(ScheduleStep::Crash(ProcessId::new(
                usize::try_from(n).map_err(|_| err())?,
            ))),
            "u" => Ok(ScheduleStep::Recover(ProcessId::new(
                usize::try_from(n).map_err(|_| err())?,
            ))),
            _ => Err(err()),
        }
    }
}

/// A replayable sequence of [`ScheduleStep`]s — the token a failing
/// exploration prints and a regression test replays verbatim.
///
/// # Examples
///
/// ```
/// use twobit_proto::sched::{Schedule, ScheduleStep};
///
/// let s: Schedule = "i0 d0 r0".parse()?;
/// assert_eq!(s.steps().len(), 3);
/// assert_eq!(s.to_string(), "i0 d0 r0");
/// assert_eq!(s.steps()[1], ScheduleStep::Deliver(0));
/// # Ok::<(), twobit_proto::sched::ScheduleParseError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule(Vec<ScheduleStep>);

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Self {
        Schedule(Vec::new())
    }

    /// Builds a schedule from steps.
    pub fn from_steps(steps: impl IntoIterator<Item = ScheduleStep>) -> Self {
        Schedule(steps.into_iter().collect())
    }

    /// Appends one step.
    pub fn push(&mut self, step: ScheduleStep) {
        self.0.push(step);
    }

    /// The recorded steps, in firing order.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.0
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if no steps are recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The schedule with the step at `index` elided (for counterexample
    /// shrinking).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn without(&self, index: usize) -> Schedule {
        let mut steps = self.0.clone();
        steps.remove(index);
        Schedule(steps)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = ScheduleParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.split_whitespace()
            .map(ScheduleStep::from_str)
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }
}

/// One event a scheduled backend could fire next.
///
/// `label` is a short human-readable description (message kinds for a
/// frame, `p<i>:write`/`p<i>:read` for plan steps) used when annotating
/// counterexample schedules; it carries no semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnabledEvent {
    /// An in-flight frame that may be delivered.
    Deliver {
        /// The frame's stable birth sequence number.
        seq: u64,
        /// Sending process.
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Number of protocol messages inside the frame.
        msgs: u64,
        /// Virtual due time (used only by [`VirtualTimeScheduler`]).
        due: u64,
        /// Message kinds, joined with `+`.
        label: String,
    },
    /// A plan step whose invocation may fire (its process is idle and its
    /// dependency, if any, has responded).
    Invoke {
        /// Plan step index.
        plan: u64,
        /// The invoking process.
        proc: ProcessId,
        /// `p<i>:write` / `p<i>:read`.
        label: String,
    },
    /// A plan step whose operation completed internally and whose response
    /// may be observed by the client.
    Respond {
        /// Plan step index.
        plan: u64,
        /// The responding process.
        proc: ProcessId,
        /// `p<i>:write` / `p<i>:read`.
        label: String,
    },
}

impl EnabledEvent {
    /// The [`ScheduleStep`] firing this event.
    pub fn step(&self) -> ScheduleStep {
        match self {
            EnabledEvent::Deliver { seq, .. } => ScheduleStep::Deliver(*seq),
            EnabledEvent::Invoke { plan, .. } => ScheduleStep::Invoke(*plan),
            EnabledEvent::Respond { plan, .. } => ScheduleStep::Respond(*plan),
        }
    }

    /// The process whose state (or observable interface) the event touches.
    pub fn dest(&self) -> ProcessId {
        match self {
            EnabledEvent::Deliver { to, .. } => *to,
            EnabledEvent::Invoke { proc, .. } | EnabledEvent::Respond { proc, .. } => *proc,
        }
    }

    /// The event's annotation label.
    pub fn label(&self) -> &str {
        match self {
            EnabledEvent::Deliver { label, .. }
            | EnabledEvent::Invoke { label, .. }
            | EnabledEvent::Respond { label, .. } => label,
        }
    }
}

/// A scheduler's answer to "which enabled event fires next?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedDecision {
    /// Fire this step. A [`ScheduleStep::Crash`] is legal even though
    /// crashes never appear in the enabled set — crash choices belong to
    /// the scheduler, not the backend.
    Fire(ScheduleStep),
    /// Stop driving the backend (the run ends here).
    Stop,
}

/// Chooses which enabled event a scheduled backend fires next.
///
/// The backend guarantees: `enabled` lists every currently fireable
/// delivery and plan step; firing a step not in the list (other than a
/// crash) is rejected with a typed error. A scheduler must return
/// [`SchedDecision::Stop`] when `enabled` is empty (the run is terminal).
pub trait Scheduler {
    /// Picks the next step (or stops).
    fn decide(&mut self, enabled: &[EnabledEvent]) -> SchedDecision;
}

/// Fires enabled events in virtual-time order (`(due, seq)` for frames,
/// with plan responses first and invocations next at every instant) —
/// the scheduled-mode analogue of the default event loop's "pop the
/// earliest event" rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualTimeScheduler;

impl Scheduler for VirtualTimeScheduler {
    fn decide(&mut self, enabled: &[EnabledEvent]) -> SchedDecision {
        // Responses and invocations are instantaneous client-side events:
        // fire them before any network delivery, lowest plan index first.
        let mut best: Option<(u64, u64, ScheduleStep)> = None;
        for ev in enabled {
            let key = match ev {
                EnabledEvent::Respond { plan, .. } => (0, *plan),
                EnabledEvent::Invoke { plan, .. } => (1, *plan),
                EnabledEvent::Deliver { due, seq, .. } => (2 + *due, *seq),
            };
            if best.is_none_or(|(a, b, _)| key < (a, b)) {
                best = Some((key.0, key.1, ev.step()));
            }
        }
        match best {
            Some((_, _, step)) => SchedDecision::Fire(step),
            None => SchedDecision::Stop,
        }
    }
}

/// Replays a recorded [`Schedule`].
///
/// In strict mode every step must be fireable when its turn comes (the
/// backend errors otherwise) — the contract a minimized counterexample
/// satisfies by construction. In lenient mode steps that are not currently
/// enabled are skipped silently, which is what counterexample shrinking
/// needs: eliding one event may starve later ones of their preconditions.
/// Both stop after the last step.
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    steps: VecDeque<ScheduleStep>,
    lenient: bool,
}

impl ReplayScheduler {
    /// Strict replay: every step must be enabled at its turn.
    pub fn strict(schedule: &Schedule) -> Self {
        ReplayScheduler {
            steps: schedule.steps().iter().copied().collect(),
            lenient: false,
        }
    }

    /// Lenient replay: steps that are not enabled are skipped.
    pub fn lenient(schedule: &Schedule) -> Self {
        ReplayScheduler {
            steps: schedule.steps().iter().copied().collect(),
            lenient: true,
        }
    }
}

impl Scheduler for ReplayScheduler {
    fn decide(&mut self, enabled: &[EnabledEvent]) -> SchedDecision {
        while let Some(step) = self.steps.pop_front() {
            // Crashes and recoveries never appear in the enabled set —
            // those choices belong to the scheduler — so replay fires
            // them unconditionally and lets the backend judge them.
            let fireable = matches!(step, ScheduleStep::Crash(_) | ScheduleStep::Recover(_))
                || enabled.iter().any(|ev| ev.step() == step);
            if fireable || !self.lenient {
                return SchedDecision::Fire(step);
            }
        }
        SchedDecision::Stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips_through_its_string_form() {
        let s = Schedule::from_steps([
            ScheduleStep::Invoke(0),
            ScheduleStep::Deliver(12),
            ScheduleStep::Crash(ProcessId::new(2)),
            ScheduleStep::Recover(ProcessId::new(2)),
            ScheduleStep::Respond(0),
        ]);
        let text = s.to_string();
        assert_eq!(text, "i0 d12 c2 u2 r0");
        assert_eq!(text.parse::<Schedule>().unwrap(), s);
    }

    #[test]
    fn empty_schedule_round_trips() {
        let s = Schedule::new();
        assert_eq!(s.to_string(), "");
        assert_eq!("".parse::<Schedule>().unwrap(), s);
        assert_eq!("  ".parse::<Schedule>().unwrap(), s);
    }

    #[test]
    fn bad_tokens_are_rejected() {
        assert!("x3".parse::<Schedule>().is_err());
        assert!("d".parse::<Schedule>().is_err());
        assert!("dd3".parse::<Schedule>().is_err());
        assert!("i0 quux".parse::<Schedule>().is_err());
    }

    #[test]
    fn without_elides_one_step() {
        let s: Schedule = "i0 d1 r0".parse().unwrap();
        assert_eq!(s.without(1).to_string(), "i0 r0");
        assert_eq!(s.len(), 3, "original untouched");
    }

    #[test]
    fn virtual_time_scheduler_orders_responses_invokes_deliveries() {
        let enabled = vec![
            EnabledEvent::Deliver {
                seq: 3,
                from: ProcessId::new(0),
                to: ProcessId::new(1),
                msgs: 1,
                due: 10,
                label: "WRITE".into(),
            },
            EnabledEvent::Invoke {
                plan: 1,
                proc: ProcessId::new(1),
                label: "p1:read".into(),
            },
            EnabledEvent::Respond {
                plan: 0,
                proc: ProcessId::new(0),
                label: "p0:write".into(),
            },
        ];
        let mut sched = VirtualTimeScheduler;
        assert_eq!(
            sched.decide(&enabled),
            SchedDecision::Fire(ScheduleStep::Respond(0))
        );
        assert_eq!(sched.decide(&enabled[..2]), {
            SchedDecision::Fire(ScheduleStep::Invoke(1))
        });
        assert_eq!(
            sched.decide(&enabled[..1]),
            SchedDecision::Fire(ScheduleStep::Deliver(3))
        );
        assert_eq!(sched.decide(&[]), SchedDecision::Stop);
    }

    #[test]
    fn strict_replay_emits_every_step_then_stops() {
        let s: Schedule = "i0 d7".parse().unwrap();
        let mut sched = ReplayScheduler::strict(&s);
        // Strict replay emits the step even when it is not enabled — the
        // backend is the one that rejects it.
        assert_eq!(
            sched.decide(&[]),
            SchedDecision::Fire(ScheduleStep::Invoke(0))
        );
        assert_eq!(
            sched.decide(&[]),
            SchedDecision::Fire(ScheduleStep::Deliver(7))
        );
        assert_eq!(sched.decide(&[]), SchedDecision::Stop);
    }

    #[test]
    fn lenient_replay_skips_steps_that_are_not_enabled() {
        let s: Schedule = "d7 d8 c1".parse().unwrap();
        let enabled = vec![EnabledEvent::Deliver {
            seq: 8,
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            msgs: 1,
            due: 0,
            label: "WRITE".into(),
        }];
        let mut sched = ReplayScheduler::lenient(&s);
        // d7 is not enabled: skipped; d8 is.
        assert_eq!(
            sched.decide(&enabled),
            SchedDecision::Fire(ScheduleStep::Deliver(8))
        );
        // Crashes are always fireable.
        assert_eq!(
            sched.decide(&[]),
            SchedDecision::Fire(ScheduleStep::Crash(ProcessId::new(1)))
        );
        assert_eq!(sched.decide(&[]), SchedDecision::Stop);
    }
}
