//! [`RegisterSpace`]: many independent *named* atomic registers over one
//! deployment.
//!
//! A production system rarely wants "the register"; it wants `user:42`,
//! `session:9f`, `config/flags`, ... — thousands of independent atomic
//! objects served by one cluster. `RegisterSpace` binds human-readable names
//! to the compact [`RegisterId`]s a sharded backend hosts and forwards
//! operations through the backend-agnostic [`Driver`] interface, so the same
//! space code runs on the sharded simulator and the live runtime.
//!
//! Each named register is exactly the paper's protocol: its messages carry
//! two control bits; the shard tag the envelope adds is routing, reported
//! separately by [`NetStats`](crate::NetStats) (see
//! [`NetStats::routing_bits`](crate::NetStats::routing_bits) and
//! [`NetStats::shard`](crate::NetStats::shard)).
//!
//! # Register modes
//!
//! A register is declared [`RegisterMode::Swmr`] (the paper's single-writer
//! protocol — the default) or [`RegisterMode::Mwmr`] (any process may issue
//! `write`, served by a multi-writer automaton such as ABD's MWMR
//! generalization). The mode is a *verification contract*, not a gate: the
//! substrates enforce the model's sequentiality per `(process, register)`
//! pair either way — on an MWMR register each writer process independently
//! owns an in-flight slot, so concurrent writes from distinct processes
//! pipeline freely while `DriverError::OperationInFlight` still protects
//! each individual writer. Verification dispatches on the mode:
//! `twobit_lincheck::check_sharded_modes` routes each register's history to
//! the SWMR fast checker or the MWMR timestamp-order checker.

use std::collections::BTreeMap;
use std::fmt;

use crate::driver::{Driver, DriverError, OpTicket};
use crate::history::{History, ShardedHistory};
use crate::id::{ProcessId, RegisterId};
use crate::op::{OpOutcome, Operation};

/// Writer discipline of one register of a [`RegisterSpace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegisterMode {
    /// Single-writer multi-reader — the paper's protocol: exactly one
    /// process may write; its checker is the Lemma-10 fast procedure.
    #[default]
    Swmr,
    /// Multi-writer multi-reader: any process may issue `write` (each
    /// writer keeps its own per-`(process, register)` in-flight slot);
    /// checked by timestamp-order linearizability
    /// (`twobit_lincheck::check_mwmr`).
    Mwmr,
    /// Single-writer multi-reader served by the Oh-RAM fast-read automaton
    /// (arXiv 1610.08373): the writer discipline — and therefore the
    /// checker — is exactly [`RegisterMode::Swmr`]'s Lemma-10 fast
    /// procedure; what changes is the read's message-delay budget, not its
    /// correctness contract.
    OhRam,
}

impl fmt::Display for RegisterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterMode::Swmr => write!(f, "swmr"),
            RegisterMode::Mwmr => write!(f, "mwmr"),
            RegisterMode::OhRam => write!(f, "ohram"),
        }
    }
}

/// A set of named registers multiplexed over one [`Driver`] backend.
pub struct RegisterSpace<D: Driver> {
    driver: D,
    names: BTreeMap<String, RegisterId>,
    modes: BTreeMap<RegisterId, RegisterMode>,
}

impl<D: Driver> std::fmt::Debug for RegisterSpace<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisterSpace")
            .field("names", &self.names)
            .field("modes", &self.modes)
            .finish_non_exhaustive()
    }
}

impl<D: Driver> RegisterSpace<D> {
    /// Binds `names` (in iteration order) to the backend's registers (in id
    /// order).
    ///
    /// # Errors
    ///
    /// [`DriverError::Backend`] if there are more names than hosted
    /// registers, or a name repeats.
    pub fn new(
        driver: D,
        names: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, DriverError> {
        Self::new_with_modes(driver, names.into_iter().map(|n| (n, RegisterMode::Swmr)))
    }

    /// Binds `names` with an explicit [`RegisterMode`] per register — the
    /// way to declare multi-writer registers. Names are bound in iteration
    /// order to the backend's registers in id order, exactly like
    /// [`RegisterSpace::new`].
    ///
    /// The mode is a verification contract: the caller must host a
    /// matching automaton per register (e.g. `MwmrProcess` on MWMR-tagged
    /// ids), and [`RegisterSpace::modes`] feeds the per-register checker
    /// dispatch (`twobit_lincheck::check_sharded_modes`).
    ///
    /// # Errors
    ///
    /// As for [`RegisterSpace::new`].
    pub fn new_with_modes(
        driver: D,
        names: impl IntoIterator<Item = (impl Into<String>, RegisterMode)>,
    ) -> Result<Self, DriverError> {
        let regs = driver.registers();
        let mut map = BTreeMap::new();
        let mut modes = BTreeMap::new();
        for (i, (name, mode)) in names.into_iter().enumerate() {
            let Some(&reg) = regs.get(i) else {
                return Err(DriverError::Backend(format!(
                    "space needs more than the {} hosted registers",
                    regs.len()
                )));
            };
            let name = name.into();
            if map.insert(name.clone(), reg).is_some() {
                return Err(DriverError::Backend(format!(
                    "duplicate register name {name:?}"
                )));
            }
            modes.insert(reg, mode);
        }
        Ok(RegisterSpace {
            driver,
            names: map,
            modes,
        })
    }

    /// The id a name is bound to.
    pub fn id(&self, name: &str) -> Option<RegisterId> {
        self.names.get(name).copied()
    }

    /// The mode a name's register was declared with.
    pub fn mode(&self, name: &str) -> Option<RegisterMode> {
        self.id(name).map(|reg| self.mode_of(reg))
    }

    /// The mode of one register id ([`RegisterMode::Swmr`] unless declared
    /// otherwise).
    pub fn mode_of(&self, reg: RegisterId) -> RegisterMode {
        self.modes.get(&reg).copied().unwrap_or_default()
    }

    /// Every bound register's mode, keyed by id — the second input to
    /// `twobit_lincheck::check_sharded_modes`.
    pub fn modes(&self) -> &BTreeMap<RegisterId, RegisterMode> {
        &self.modes
    }

    /// All bound names, in lexicographic order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.keys().map(String::as_str)
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no name is bound.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The underlying backend.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Mutable access to the underlying backend (e.g. to crash processes).
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.driver
    }

    /// Unwraps the backend.
    pub fn into_driver(self) -> D {
        self.driver
    }

    fn resolve(&self, name: &str) -> Result<RegisterId, DriverError> {
        self.id(name)
            .ok_or_else(|| DriverError::UnknownName(name.to_string()))
    }

    /// Issues an operation on a named register without waiting
    /// (pipelining across names; sequential per name, as the model
    /// requires). Complete it with [`RegisterSpace::wait`].
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownName`], or whatever [`Driver::invoke`] returns.
    pub fn issue(
        &mut self,
        proc: impl Into<ProcessId>,
        name: &str,
        op: Operation<D::Value>,
    ) -> Result<OpTicket, DriverError> {
        let reg = self.resolve(name)?;
        self.driver.invoke(proc.into(), reg, op)
    }

    /// Waits for an issued operation.
    ///
    /// # Errors
    ///
    /// As for [`Driver::poll`].
    pub fn wait(&mut self, ticket: &OpTicket) -> Result<OpOutcome<D::Value>, DriverError> {
        self.driver.poll(ticket)
    }

    /// Blocking write to a named register via `proc`.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownName`], or whatever [`Driver::write`] returns.
    pub fn write(
        &mut self,
        proc: impl Into<ProcessId>,
        name: &str,
        value: D::Value,
    ) -> Result<(), DriverError> {
        let reg = self.resolve(name)?;
        self.driver.write(proc.into(), reg, value)
    }

    /// Blocking read of a named register via `proc`.
    ///
    /// # Errors
    ///
    /// As for [`RegisterSpace::write`].
    pub fn read(
        &mut self,
        proc: impl Into<ProcessId>,
        name: &str,
    ) -> Result<D::Value, DriverError> {
        let reg = self.resolve(name)?;
        self.driver.read(proc.into(), reg)
    }

    /// The recorded history of one named register.
    ///
    /// Snapshots the whole deployment to extract one shard; when checking
    /// many registers, take one [`RegisterSpace::histories`] snapshot and
    /// index it instead of calling this in a loop.
    pub fn history_of(&self, name: &str) -> Option<History<D::Value>> {
        let reg = self.id(name)?;
        self.driver.history().shard(reg).cloned()
    }

    /// One snapshot of every register's history (the input to
    /// `twobit_lincheck::check_swmr_sharded`).
    pub fn histories(&self) -> ShardedHistory<D::Value> {
        self.driver.history()
    }
}
