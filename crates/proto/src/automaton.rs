//! The event-driven automaton interface implemented by every register
//! algorithm.
//!
//! The paper's Fig. 1 pseudo-code uses blocking `wait` statements; an
//! equivalent *reactive* formulation turns each wait into a guard that is
//! re-evaluated whenever local state changes. An [`Automaton`] is such a
//! reactive process: the execution substrate (simulator or live runtime)
//! feeds it operation invocations and message receptions, and the automaton
//! responds by appending *effects* — messages to send and operations to
//! complete — to an [`Effects`] buffer. The substrate decides when those
//! messages are delivered (asynchrony, reordering, crashes live there).

use crate::id::{ProcessId, SystemConfig};
use crate::op::{OpId, OpOutcome, Operation};
use crate::payload::Payload;
use crate::wire::WireMessage;

/// Buffer of outputs produced by one automaton step.
///
/// Collected rather than performed directly so the substrate stays in charge
/// of delivery order, delays and crash cut-offs, and so automaton code is
/// trivially deterministic and testable in isolation.
#[derive(Debug)]
pub struct Effects<M, V> {
    sends: Vec<(ProcessId, M)>,
    completions: Vec<(OpId, OpOutcome<V>)>,
}

impl<M, V> Default for Effects<M, V> {
    fn default() -> Self {
        Effects {
            sends: Vec::new(),
            completions: Vec::new(),
        }
    }
}

impl<M, V> Effects<M, V> {
    /// Creates an empty effects buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `msg` for sending to `to` (the paper's `send TYPE(m) to p_j`).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Marks operation `op_id` as completed with `outcome`.
    pub fn complete(&mut self, op_id: OpId, outcome: OpOutcome<V>) {
        self.completions.push((op_id, outcome));
    }

    /// Convenience: completes a write operation (`return()`).
    pub fn complete_write(&mut self, op_id: OpId) {
        self.complete(op_id, OpOutcome::Written);
    }

    /// Convenience: completes a read operation returning `value`.
    pub fn complete_read(&mut self, op_id: OpId, value: V) {
        self.complete(op_id, OpOutcome::ReadValue(value));
    }

    /// Queued outgoing messages, in send order.
    pub fn sends(&self) -> &[(ProcessId, M)] {
        &self.sends
    }

    /// Queued operation completions.
    pub fn completions(&self) -> &[(OpId, OpOutcome<V>)] {
        &self.completions
    }

    /// Returns `true` if no effects were produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.completions.is_empty()
    }

    /// Drains the queued sends (substrate-side consumption).
    pub fn drain_sends(&mut self) -> std::vec::Drain<'_, (ProcessId, M)> {
        self.sends.drain(..)
    }

    /// Drains the queued completions (substrate-side consumption).
    pub fn drain_completions(&mut self) -> std::vec::Drain<'_, (OpId, OpOutcome<V>)> {
        self.completions.drain(..)
    }
}

/// A deterministic, event-driven register process.
///
/// One instance embodies one process `p_i` of the `CAMP_{n,t}` system. The
/// substrate guarantees the paper's model: handlers are executed atomically
/// one at a time (processes are sequential), messages between each ordered
/// process pair are delivered reliably but with arbitrary finite delay and
/// possibly out of order, and a crashed process simply stops taking steps.
///
/// Implementations must be deterministic: identical event sequences must
/// produce identical effects (this is what makes simulation runs replayable
/// from a seed).
pub trait Automaton: Send + 'static {
    /// The register value type.
    type Value: Payload;
    /// The protocol message type.
    type Msg: WireMessage;

    /// This process's identity.
    fn id(&self) -> ProcessId;

    /// The system configuration (`n`, `t`).
    fn config(&self) -> SystemConfig;

    /// Handles an operation invocation by the local client.
    ///
    /// The substrate guarantees per-process sequentiality: it never invokes a
    /// new operation before the previous one on the same process completed.
    fn on_invoke(
        &mut self,
        op_id: OpId,
        op: Operation<Self::Value>,
        fx: &mut Effects<Self::Msg, Self::Value>,
    );

    /// Handles the reception of `msg` from process `from`.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        fx: &mut Effects<Self::Msg, Self::Value>,
    );

    /// Estimated size, in bits, of this process's local state.
    ///
    /// Reproduces Table 1 row 4 ("local memory"). Measured (not modeled)
    /// for the real algorithms; emulated baselines document their modeling.
    fn state_bits(&self) -> u64;

    /// Checks single-process invariants, returning a description of the
    /// first violation.
    ///
    /// The two-bit automaton uses this for the locally-checkable parts of
    /// the paper's lemmas (e.g. Lemma 3, Lemma 5). The default does nothing.
    fn check_local_invariants(&self) -> Result<(), String> {
        Ok(())
    }

    /// The register's single writer, when this automaton implements an
    /// SWMR protocol whose write permission is statically pinned to one
    /// process. The local read cache's safety gate serves a read with no
    /// communication only at that process (see `docs/read-cache.md`); the
    /// default `None` — correct for MWMR protocols and anything dynamic —
    /// disables local serving entirely.
    fn swmr_writer(&self) -> Option<ProcessId> {
        None
    }

    /// Donor side of crash-recovery: this process's confirmed value
    /// sequence (initial value first), the payload of one SNAPSHOT
    /// transfer. `None` — the default — marks the automaton as not
    /// supporting recovery at all; backends reject
    /// [`Driver::recover`](crate::Driver::recover) with a typed error
    /// instead of silently rejoining with garbage state.
    fn recovery_snapshot(&self) -> Option<Vec<Self::Value>> {
        None
    }

    /// Recovering side of crash-recovery: replaces this automaton's state
    /// with the quorum-adopted `snapshot` (the longest donor prefix).
    /// Called while the process is `Recovering`, before any rejoin
    /// acknowledgment flows; any operation left pending at the crash is
    /// discarded (it stays incomplete in the history). The default is a
    /// no-op, reachable only if a backend skips the
    /// [`Automaton::recovery_snapshot`] support check.
    fn install_recovery(&mut self, snapshot: &[Self::Value]) {
        let _ = snapshot;
    }

    /// Live-peer side of crash-recovery: `rejoining` has installed
    /// `snapshot` and is rejoining quorums under a fresh incarnation.
    /// Implementations hard-reset their per-peer protocol bookkeeping to
    /// the snapshot barrier and complete (via `fx`) any of their own
    /// operations whose quorum predicates the barrier now satisfies; they
    /// must not assume any pre-recovery in-flight message will still be
    /// delivered (stale frames are fenced). The default is a no-op.
    fn apply_rejoin(
        &mut self,
        rejoining: ProcessId,
        snapshot: &[Self::Value],
        fx: &mut Effects<Self::Msg, Self::Value>,
    ) {
        let _ = (rejoining, snapshot, fx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MessageCost;

    #[derive(Clone, Debug)]
    struct Ping;

    impl WireMessage for Ping {
        fn kind(&self) -> &'static str {
            "PING"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(1, 0)
        }
    }

    /// Minimal automaton: completes reads with a constant, echoes a PING on
    /// writes. Exercises the Effects plumbing.
    struct Echo {
        id: ProcessId,
        cfg: SystemConfig,
    }

    impl Automaton for Echo {
        type Value = u64;
        type Msg = Ping;

        fn id(&self) -> ProcessId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn on_invoke(&mut self, op_id: OpId, op: Operation<u64>, fx: &mut Effects<Ping, u64>) {
            match op {
                Operation::Read => fx.complete_read(op_id, 7),
                Operation::Write(_) => {
                    for p in self.cfg.peers(self.id).collect::<Vec<_>>() {
                        fx.send(p, Ping);
                    }
                    fx.complete_write(op_id);
                }
            }
        }
        fn on_message(&mut self, _from: ProcessId, _msg: Ping, _fx: &mut Effects<Ping, u64>) {}
        fn state_bits(&self) -> u64 {
            0
        }
    }

    #[test]
    fn effects_collect_and_drain() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut a = Echo {
            id: ProcessId::new(0),
            cfg,
        };
        let mut fx = Effects::new();
        assert!(fx.is_empty());
        a.on_invoke(OpId::new(1), Operation::Write(5), &mut fx);
        assert_eq!(fx.sends().len(), 2);
        assert_eq!(fx.completions().len(), 1);
        assert!(!fx.is_empty());
        let sends: Vec<_> = fx.drain_sends().collect();
        assert_eq!(sends.len(), 2);
        let comps: Vec<_> = fx.drain_completions().collect();
        assert_eq!(comps, vec![(OpId::new(1), OpOutcome::Written)]);
        assert!(fx.is_empty());
    }

    #[test]
    fn read_completion_carries_value() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut a = Echo {
            id: ProcessId::new(2),
            cfg,
        };
        let mut fx = Effects::new();
        a.on_invoke(OpId::new(9), Operation::Read, &mut fx);
        assert_eq!(fx.completions(), &[(OpId::new(9), OpOutcome::ReadValue(7))]);
    }
}
