//! Reusable encode buffers: the allocation side of the zero-copy hot path.
//!
//! [`Frame::encode`](crate::Frame::encode) builds a fresh blob per frame —
//! fine for tests, but on a busy link the allocator becomes the hot path:
//! one `Vec` per flush, freed as soon as the socket write returns. A
//! [`BufferPool`] breaks that cycle. Each link owns one pool;
//! [`Frame::encode_pooled`](crate::Frame::encode_pooled) checks a recycled
//! `Vec<u8>` out, encodes into it (capacity warm from the previous frame of
//! similar size), and freezes it into a [`Bytes`] whose owner is a
//! [`PooledBuf`] — when the last `Bytes` view of the frame drops (after the
//! socket write, after the simulator delivers it), the buffer returns to
//! the pool instead of the allocator. Steady state is zero allocations per
//! frame on the encode side.
//!
//! The pool is deliberately tiny: a mutex-guarded free list, bounded so a
//! burst cannot pin unbounded memory. The `Bytes` owner holds only a
//! [`Weak`] pool handle, so dropping the pool (link teardown) lets in-flight
//! buffers free normally instead of resurrecting a dead free list.

use std::sync::{Arc, Mutex, Weak};

use bytes::Bytes;

/// Most buffers a pool retains; beyond this, returned buffers are freed.
/// Links hold at most a handful of frames in flight, so a small cap keeps
/// burst memory bounded without ever starving the steady state.
const POOL_CAP: usize = 8;

/// A bounded free list of encode buffers for one link (or any other
/// single producer of frames).
///
/// # Examples
///
/// ```
/// use twobit_proto::BufferPool;
///
/// let pool = BufferPool::new();
/// let a = pool.checkout();
/// pool.put_back(a);
/// let _b = pool.checkout(); // reuses `a`'s allocation
/// assert_eq!(pool.recycled(), 1);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    recycled: std::sync::atomic::AtomicU64,
}

impl BufferPool {
    /// Creates an empty pool behind an [`Arc`] (the handle
    /// [`Frame::encode_pooled`](crate::Frame::encode_pooled) takes).
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool::default())
    }

    /// Hands out a buffer: a recycled one when the free list is non-empty,
    /// otherwise a fresh `Vec`.
    pub fn checkout(&self) -> Vec<u8> {
        let recycled = self.free.lock().expect("pool poisoned").pop();
        match recycled {
            Some(buf) => {
                self.recycled
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the free list (freed instead if the pool is at
    /// capacity).
    pub fn put_back(&self, buf: Vec<u8>) {
        let mut free = self.free.lock().expect("pool poisoned");
        if free.len() < POOL_CAP {
            free.push(buf);
        }
    }

    /// How many checkouts reused a pooled buffer instead of allocating —
    /// the figure the bench harness reports as recycle effectiveness.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Buffers currently sitting in the free list.
    pub fn available(&self) -> usize {
        self.free.lock().expect("pool poisoned").len()
    }

    /// Freezes a filled buffer into an immutable [`Bytes`] that returns
    /// `buf` to this pool when the last view drops.
    pub fn freeze(self: &Arc<Self>, buf: Vec<u8>) -> Bytes {
        Bytes::from_owner(PooledBuf {
            buf,
            pool: Arc::downgrade(self),
        })
    }
}

/// The owner type behind a pooled [`Bytes`]: a filled encode buffer plus a
/// weak handle to the pool it rejoins on drop.
#[derive(Debug)]
struct PooledBuf {
    buf: Vec<u8>,
    pool: Weak<BufferPool>,
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.put_back(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_put_back_recycles() {
        let pool = BufferPool::new();
        assert_eq!(pool.recycled(), 0);
        let mut a = pool.checkout();
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put_back(a);
        assert_eq!(pool.available(), 1);
        let b = pool.checkout();
        assert!(b.capacity() >= cap, "allocation was reused");
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn frozen_bytes_return_their_buffer_on_last_drop() {
        let pool = BufferPool::new();
        let mut buf = pool.checkout();
        buf.extend_from_slice(&[9, 8, 7]);
        let frozen = pool.freeze(buf);
        let view = frozen.slice(1..);
        drop(frozen);
        assert_eq!(pool.available(), 0, "a view still holds the buffer");
        assert_eq!(&view[..], &[8, 7]);
        drop(view);
        assert_eq!(pool.available(), 1, "last view returned the buffer");
        // And the round trip counts as a recycle on the next checkout.
        let again = pool.checkout();
        assert!(again.capacity() >= 3);
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn dead_pool_does_not_leak_inflight_buffers() {
        let pool = BufferPool::new();
        let frozen = pool.freeze(vec![1, 2]);
        drop(pool);
        // The weak handle is dead; dropping the view frees normally.
        drop(frozen);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::new();
        for _ in 0..100 {
            pool.put_back(Vec::with_capacity(64));
        }
        assert!(pool.available() <= 8, "pool must stay bounded");
    }
}
