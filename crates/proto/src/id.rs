//! Process identities and the `CAMP_{n,t}` system configuration.
//!
//! The paper's computation model (§2.1) is a complete network of `n`
//! sequential asynchronous processes `p_1 .. p_n`, of which at most `t` may
//! crash, with reliable but non-FIFO asynchronous channels. Building an
//! atomic register additionally requires `t < n/2` (§2.2), which
//! [`SystemConfig::new`] enforces.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a process in the system, in `0..n`.
///
/// The paper indexes processes `p_1..p_n`; this implementation uses
/// zero-based indices so a `ProcessId` doubles as a vector index.
///
/// # Examples
///
/// ```
/// use twobit_proto::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from its zero-based index.
    pub fn new(index: usize) -> Self {
        ProcessId(u32::try_from(index).expect("process index fits in u32"))
    }

    /// Returns the zero-based index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId::new(index)
    }
}

/// Identity of one register inside a [`RegisterSpace`](crate::RegisterSpace)
/// (a "shard"), in `0..k` for a space of `k` registers.
///
/// The paper implements a *single* SWMR register; a production deployment
/// multiplexes many independent registers over one cluster. Wire messages are
/// tagged with a compact `RegisterId` (see [`Envelope`](crate::Envelope)),
/// whose bits are accounted as **routing** information, separate from the
/// per-register control bits — each register's protocol still carries exactly
/// two control bits per message, preserving the paper's claim.
///
/// # Examples
///
/// ```
/// use twobit_proto::RegisterId;
///
/// let r = RegisterId::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// assert_eq!(RegisterId::ZERO.index(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegisterId(u32);

impl RegisterId {
    /// The default register — what single-register backends host.
    pub const ZERO: RegisterId = RegisterId(0);

    /// Creates a register id from its zero-based index.
    pub fn new(index: usize) -> Self {
        RegisterId(u32::try_from(index).expect("register index fits in u32"))
    }

    /// Returns the zero-based index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The first `k` register ids, `r0 .. r(k-1)`.
    pub fn first(k: usize) -> Vec<RegisterId> {
        (0..k).map(RegisterId::new).collect()
    }

    /// Bits needed to address one of `space_size` registers on the wire:
    /// `⌈log₂ space_size⌉`, and 0 for a single-register space (no tag is
    /// needed when there is nothing to distinguish).
    ///
    /// ```
    /// use twobit_proto::RegisterId;
    ///
    /// assert_eq!(RegisterId::routing_bits(1), 0);
    /// assert_eq!(RegisterId::routing_bits(2), 1);
    /// assert_eq!(RegisterId::routing_bits(64), 6);
    /// assert_eq!(RegisterId::routing_bits(65), 7);
    /// ```
    pub fn routing_bits(space_size: usize) -> u64 {
        if space_size <= 1 {
            0
        } else {
            u64::from(usize::BITS - (space_size - 1).leading_zeros())
        }
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<usize> for RegisterId {
    fn from(index: usize) -> Self {
        RegisterId::new(index)
    }
}

/// Error returned when a [`SystemConfig`] violates the model constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemConfigError {
    /// The system needs at least one process.
    NoProcesses,
    /// `t < n/2` is necessary (and sufficient) to implement an atomic
    /// register in `CAMP_{n,t}` (Attiya, Bar-Noy & Dolev 1995; paper §2.2).
    MajorityViolated {
        /// Number of processes.
        n: usize,
        /// Requested crash-fault threshold.
        t: usize,
    },
}

impl fmt::Display for SystemConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemConfigError::NoProcesses => write!(f, "system needs at least one process"),
            SystemConfigError::MajorityViolated { n, t } => write!(
                f,
                "t < n/2 is required to implement an atomic register (got n={n}, t={t})"
            ),
        }
    }
}

impl std::error::Error for SystemConfigError {}

/// Static configuration of a `CAMP_{n,t}[t < n/2]` system.
///
/// Bundles the process count `n` and the crash-fault threshold `t`, and
/// provides the quorum arithmetic used throughout the algorithms: every wait
/// predicate in the paper's Fig. 1 is of the form "at least `n − t`
/// processes satisfy ...".
///
/// # Examples
///
/// ```
/// use twobit_proto::SystemConfig;
///
/// let cfg = SystemConfig::new(5, 2)?;
/// assert_eq!(cfg.quorum(), 3); // n - t
/// assert!(SystemConfig::new(4, 2).is_err()); // t < n/2 violated
/// # Ok::<(), twobit_proto::SystemConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemConfig {
    n: usize,
    t: usize,
}

impl SystemConfig {
    /// Creates a configuration, validating the model constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SystemConfigError::NoProcesses`] if `n == 0` and
    /// [`SystemConfigError::MajorityViolated`] unless `t < n/2`.
    pub fn new(n: usize, t: usize) -> Result<Self, SystemConfigError> {
        if n == 0 {
            return Err(SystemConfigError::NoProcesses);
        }
        if 2 * t >= n {
            return Err(SystemConfigError::MajorityViolated { n, t });
        }
        Ok(SystemConfig { n, t })
    }

    /// Creates a configuration with the largest tolerable `t` for `n`
    /// processes, i.e. `t = ⌈n/2⌉ − 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use twobit_proto::SystemConfig;
    ///
    /// assert_eq!(SystemConfig::max_resilience(5).t(), 2);
    /// assert_eq!(SystemConfig::max_resilience(6).t(), 2);
    /// assert_eq!(SystemConfig::max_resilience(1).t(), 0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn max_resilience(n: usize) -> Self {
        assert!(n > 0, "system needs at least one process");
        let t = n.div_ceil(2) - 1;
        SystemConfig { n, t }
    }

    /// Number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximal number of processes that may crash, `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Quorum size `n − t` used by every wait predicate of the algorithms.
    ///
    /// Since `t < n/2`, any two quorums of this size intersect in at least
    /// one process, which is what the atomicity proofs rely on (Lemma 10).
    pub fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Iterates over all process ids `p0 .. p(n-1)`.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n).map(ProcessId::new)
    }

    /// Iterates over all process ids except `me` (the paper's
    /// "for each j ∈ {1..n} \ {i}" pattern, e.g. Fig. 1 line 6).
    pub fn peers(&self, me: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n).map(ProcessId::new).filter(move |p| *p != me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(ProcessId::new(i).index(), i);
            assert_eq!(ProcessId::from(i), ProcessId::new(i));
        }
    }

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId::new(0).to_string(), "p0");
        assert_eq!(ProcessId::new(12).to_string(), "p12");
    }

    #[test]
    fn config_rejects_majority_violation() {
        assert_eq!(
            SystemConfig::new(4, 2),
            Err(SystemConfigError::MajorityViolated { n: 4, t: 2 })
        );
        assert_eq!(
            SystemConfig::new(1, 1),
            Err(SystemConfigError::MajorityViolated { n: 1, t: 1 })
        );
        assert_eq!(SystemConfig::new(0, 0), Err(SystemConfigError::NoProcesses));
    }

    #[test]
    fn config_accepts_valid() {
        let cfg = SystemConfig::new(5, 2).unwrap();
        assert_eq!(cfg.n(), 5);
        assert_eq!(cfg.t(), 2);
        assert_eq!(cfg.quorum(), 3);
    }

    #[test]
    fn max_resilience_is_maximal() {
        for n in 1..40 {
            let cfg = SystemConfig::max_resilience(n);
            assert!(2 * cfg.t() < n, "t < n/2 must hold for n={n}");
            // t+1 would violate the constraint.
            assert!(SystemConfig::new(n, cfg.t() + 1).is_err());
        }
    }

    #[test]
    fn quorums_intersect() {
        // n - t > n/2, so two quorums always intersect.
        for n in 1..40 {
            let cfg = SystemConfig::max_resilience(n);
            assert!(2 * cfg.quorum() > n);
        }
    }

    #[test]
    fn peers_excludes_self() {
        let cfg = SystemConfig::new(5, 2).unwrap();
        let me = ProcessId::new(2);
        let peers: Vec<_> = cfg.peers(me).collect();
        assert_eq!(peers.len(), 4);
        assert!(!peers.contains(&me));
    }

    #[test]
    fn single_process_system() {
        let cfg = SystemConfig::new(1, 0).unwrap();
        assert_eq!(cfg.quorum(), 1);
        assert_eq!(cfg.peers(ProcessId::new(0)).count(), 0);
    }
}
