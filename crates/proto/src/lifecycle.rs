//! The process lifecycle state machine: `Up → Crashed → Recovering → Up`.
//!
//! The paper's base model makes crashes permanent: a faulty process stops
//! taking steps forever. The model extension (§ "crash-recovery", and the
//! follow-up treatment in arXiv 1702.08176) lets a crashed process come
//! back, provided it rejoins with a *consistent* copy of the register state
//! and provided messages from its previous incarnation can no longer be
//! mistaken for current ones. [`Lifecycle`] is the three-state machine every
//! backend threads through its liveness bookkeeping in place of the old
//! `crashed: bool`, and [`LifecycleState`] is the per-process record
//! (state + incarnation counter) the backends actually store.
//!
//! State transitions, enforced by every [`Driver`](crate::Driver):
//!
//! * `Up → Crashed` via [`Driver::crash`](crate::Driver::crash); crashing a
//!   process that is not `Up` is [`DriverError::AlreadyCrashed`]
//!   (crate::DriverError::AlreadyCrashed).
//! * `Crashed → Recovering → Up` via
//!   [`Driver::recover`](crate::Driver::recover): the backend fetches a
//!   frame-aligned snapshot from the live peers, installs it, has every live
//!   peer acknowledge the rejoin, and bumps the process's **incarnation**
//!   number so frames sent by (or to) the previous incarnation are rejected
//!   as stale instead of delivered. Recovering a process that is not
//!   `Crashed` is [`DriverError::NotCrashed`](crate::DriverError::NotCrashed).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Liveness of one process, as observed through the [`Driver`](crate::Driver)
/// interface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lifecycle {
    /// Taking steps; messages to it are delivered.
    #[default]
    Up,
    /// Stopped; messages to it are dropped. May transition to `Recovering`
    /// via [`Driver::recover`](crate::Driver::recover).
    Crashed,
    /// Mid-recovery: fetching and installing a snapshot, not yet rejoined.
    /// Transient — synchronous backends pass through it inside one
    /// `recover` call, so drivers observe it only from other threads or
    /// from automaton hooks.
    Recovering,
}

impl Lifecycle {
    /// Returns `true` in the `Up` state.
    pub fn is_up(self) -> bool {
        self == Lifecycle::Up
    }

    /// Returns `true` in the `Crashed` state.
    pub fn is_crashed(self) -> bool {
        self == Lifecycle::Crashed
    }
}

impl fmt::Display for Lifecycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lifecycle::Up => write!(f, "up"),
            Lifecycle::Crashed => write!(f, "crashed"),
            Lifecycle::Recovering => write!(f, "recovering"),
        }
    }
}

/// A rejected lifecycle transition, carrying the state the process was
/// actually in. Callers translate it into the matching typed
/// [`DriverError`](crate::DriverError) variant
/// ([`AlreadyCrashed`](crate::DriverError::AlreadyCrashed) /
/// [`NotCrashed`](crate::DriverError::NotCrashed)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WrongState(pub Lifecycle);

impl fmt::Display for WrongState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal lifecycle transition from the {} state", self.0)
    }
}

impl std::error::Error for WrongState {}

/// One process's lifecycle record: its current [`Lifecycle`] state plus the
/// incarnation counter that fences stale cross-incarnation frames.
///
/// The incarnation starts at 0 and is bumped exactly once per completed
/// recovery, *before* the process rejoins — so every frame staged by (or
/// addressed to) the pre-crash incarnation compares strictly below the
/// rejoined process's incarnation and can be recognized as stale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleState {
    /// Current liveness state.
    pub state: Lifecycle,
    /// Completed recoveries of this process (0 for the initial incarnation).
    pub incarnation: u64,
}

impl LifecycleState {
    /// A fresh process: `Up`, incarnation 0.
    pub fn new() -> Self {
        LifecycleState::default()
    }

    /// Marks the process crashed.
    ///
    /// # Errors
    ///
    /// Returns [`WrongState`] when the process is not `Up` — callers
    /// translate this into
    /// [`DriverError::AlreadyCrashed`](crate::DriverError::AlreadyCrashed).
    pub fn crash(&mut self) -> Result<(), WrongState> {
        if self.state != Lifecycle::Up {
            return Err(WrongState(self.state));
        }
        self.state = Lifecycle::Crashed;
        Ok(())
    }

    /// Enters the `Recovering` state.
    ///
    /// # Errors
    ///
    /// Returns [`WrongState`] when the process is not `Crashed` — callers
    /// translate this into
    /// [`DriverError::NotCrashed`](crate::DriverError::NotCrashed).
    pub fn begin_recovery(&mut self) -> Result<(), WrongState> {
        if self.state != Lifecycle::Crashed {
            return Err(WrongState(self.state));
        }
        self.state = Lifecycle::Recovering;
        Ok(())
    }

    /// Completes a recovery: back `Up`, with the incarnation bumped unless
    /// `bump_incarnation` is false (the model checker's negative-control
    /// ablation).
    pub fn complete_recovery(&mut self, bump_incarnation: bool) {
        debug_assert_eq!(self.state, Lifecycle::Recovering);
        self.state = Lifecycle::Up;
        if bump_incarnation {
            self.incarnation += 1;
        }
    }

    /// Aborts an in-progress recovery (the recovering process crashed
    /// again before rejoining): back to `Crashed`, incarnation untouched.
    pub fn abort_recovery(&mut self) {
        debug_assert_eq!(self.state, Lifecycle::Recovering);
        self.state = Lifecycle::Crashed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_bumps_incarnation_once() {
        let mut s = LifecycleState::new();
        assert!(s.state.is_up());
        assert_eq!(s.incarnation, 0);
        s.crash().unwrap();
        assert!(s.state.is_crashed());
        s.begin_recovery().unwrap();
        assert_eq!(s.state, Lifecycle::Recovering);
        s.complete_recovery(true);
        assert!(s.state.is_up());
        assert_eq!(s.incarnation, 1);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut s = LifecycleState::new();
        assert!(s.begin_recovery().is_err(), "cannot recover an up process");
        s.crash().unwrap();
        assert!(s.crash().is_err(), "cannot crash a crashed process");
        s.begin_recovery().unwrap();
        assert!(s.crash().is_err(), "recovering is not up");
    }

    #[test]
    fn ablated_recovery_skips_the_bump() {
        let mut s = LifecycleState::new();
        s.crash().unwrap();
        s.begin_recovery().unwrap();
        s.complete_recovery(false);
        assert!(s.state.is_up());
        assert_eq!(s.incarnation, 0, "ablation keeps the old incarnation");
    }

    #[test]
    fn aborted_recovery_returns_to_crashed() {
        let mut s = LifecycleState::new();
        s.crash().unwrap();
        s.begin_recovery().unwrap();
        s.abort_recovery();
        assert!(s.state.is_crashed());
        assert_eq!(s.incarnation, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Lifecycle::Up.to_string(), "up");
        assert_eq!(Lifecycle::Crashed.to_string(), "crashed");
        assert_eq!(Lifecycle::Recovering.to_string(), "recovering");
    }
}
