//! Operation histories: the raw material of atomicity checking.
//!
//! A run of the system yields, per operation, an invocation instant and
//! (unless the invoking process crashed mid-operation) a response instant and
//! outcome. Atomicity/linearizability (§2.2 of the paper, Herlihy & Wing
//! 1990) is a property of this history alone, so the simulator and the live
//! runtime both emit [`History`] values which `twobit-lincheck` then judges.

use serde::{Deserialize, Serialize};

use crate::id::ProcessId;
use crate::op::{OpId, OpOutcome, Operation};

/// One operation's lifetime inside a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord<V> {
    /// Unique id of the invocation.
    pub op_id: OpId,
    /// Invoking process.
    pub proc: ProcessId,
    /// The operation invoked.
    pub op: Operation<V>,
    /// Invocation instant (substrate time units).
    pub invoked_at: u64,
    /// Response instant and outcome; `None` if the operation never completed
    /// (its process crashed — the paper's consistency clause exempts, for
    /// each faulty process, the last operation it invoked).
    pub completed: Option<(u64, OpOutcome<V>)>,
}

impl<V> OpRecord<V> {
    /// Returns `true` if the operation completed.
    pub fn is_complete(&self) -> bool {
        self.completed.is_some()
    }

    /// Response instant, if the operation completed.
    pub fn response_at(&self) -> Option<u64> {
        self.completed.as_ref().map(|(t, _)| *t)
    }

    /// Latency (response − invoke), if the operation completed.
    pub fn latency(&self) -> Option<u64> {
        self.response_at().map(|r| r - self.invoked_at)
    }

    /// The value returned by a completed read.
    pub fn read_result(&self) -> Option<&V> {
        self.completed.as_ref().and_then(|(_, o)| o.read_value())
    }

    /// Returns `true` if `self` finished strictly before `other` began
    /// (real-time precedence `op1 →_H op2`).
    pub fn precedes(&self, other: &OpRecord<V>) -> bool {
        match self.response_at() {
            Some(r) => r < other.invoked_at,
            None => false,
        }
    }
}

/// A complete run history: the initial register value plus every operation
/// record, in no particular order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct History<V> {
    /// The register's initial value `v0`.
    pub initial: V,
    /// All operation records of the run.
    pub records: Vec<OpRecord<V>>,
}

impl<V> History<V> {
    /// Creates an empty history over a register initialized to `initial`.
    pub fn new(initial: V) -> Self {
        History {
            initial,
            records: Vec::new(),
        }
    }

    /// Number of operations (complete or not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over completed operations only.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.records.iter().filter(|r| r.is_complete())
    }

    /// Iterates over operations that never completed (crashed mid-op).
    pub fn pending(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.records.iter().filter(|r| !r.is_complete())
    }

    /// Iterates over completed reads.
    pub fn reads(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.completed().filter(|r| r.op.is_read())
    }

    /// Iterates over writes (complete or pending — a pending write may still
    /// have taken effect).
    pub fn writes(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.records.iter().filter(|r| r.op.is_write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op_id: u64, proc: usize, op: Operation<u64>, inv: u64, resp: Option<(u64, OpOutcome<u64>)>) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op,
            invoked_at: inv,
            completed: resp,
        }
    }

    #[test]
    fn precedence_is_strict_realtime() {
        let a = rec(1, 0, Operation::Write(1), 0, Some((10, OpOutcome::Written)));
        let b = rec(2, 1, Operation::Read, 11, Some((20, OpOutcome::ReadValue(1))));
        let c = rec(3, 2, Operation::Read, 5, Some((30, OpOutcome::ReadValue(1))));
        assert!(a.precedes(&b));
        assert!(!a.precedes(&c)); // c starts while a is running
        assert!(!b.precedes(&a));
        let pending = rec(4, 0, Operation::Write(2), 40, None);
        assert!(!pending.precedes(&b)); // pending ops precede nothing
    }

    #[test]
    fn latency_and_accessors() {
        let a = rec(1, 0, Operation::Read, 5, Some((9, OpOutcome::ReadValue(3))));
        assert_eq!(a.latency(), Some(4));
        assert_eq!(a.read_result(), Some(&3));
        let p = rec(2, 0, Operation::Read, 5, None);
        assert_eq!(p.latency(), None);
        assert!(!p.is_complete());
    }

    #[test]
    fn history_filters() {
        let mut h = History::new(0u64);
        h.records.push(rec(1, 0, Operation::Write(1), 0, Some((10, OpOutcome::Written))));
        h.records.push(rec(2, 1, Operation::Read, 2, Some((12, OpOutcome::ReadValue(1)))));
        h.records.push(rec(3, 0, Operation::Write(2), 20, None));
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.completed().count(), 2);
        assert_eq!(h.pending().count(), 1);
        assert_eq!(h.reads().count(), 1);
        assert_eq!(h.writes().count(), 2);
    }
}
