//! Operation histories: the raw material of atomicity checking.
//!
//! A run of the system yields, per operation, an invocation instant and
//! (unless the invoking process crashed mid-operation) a response instant and
//! outcome. Atomicity/linearizability (§2.2 of the paper, Herlihy & Wing
//! 1990) is a property of this history alone, so the simulator and the live
//! runtime both emit [`History`] values which `twobit-lincheck` then judges.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::id::{ProcessId, RegisterId};
use crate::op::{OpId, OpOutcome, Operation};

/// One operation's lifetime inside a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord<V> {
    /// Unique id of the invocation.
    pub op_id: OpId,
    /// Invoking process.
    pub proc: ProcessId,
    /// The operation invoked.
    pub op: Operation<V>,
    /// Invocation instant (substrate time units).
    pub invoked_at: u64,
    /// Response instant and outcome; `None` if the operation never completed
    /// (its process crashed — the paper's consistency clause exempts, for
    /// each faulty process, the last operation it invoked).
    pub completed: Option<(u64, OpOutcome<V>)>,
}

impl<V> OpRecord<V> {
    /// Returns `true` if the operation completed.
    pub fn is_complete(&self) -> bool {
        self.completed.is_some()
    }

    /// Response instant, if the operation completed.
    pub fn response_at(&self) -> Option<u64> {
        self.completed.as_ref().map(|(t, _)| *t)
    }

    /// Latency (response − invoke), if the operation completed.
    pub fn latency(&self) -> Option<u64> {
        self.response_at().map(|r| r - self.invoked_at)
    }

    /// The value returned by a completed read.
    pub fn read_result(&self) -> Option<&V> {
        self.completed.as_ref().and_then(|(_, o)| o.read_value())
    }

    /// Returns `true` if `self` finished strictly before `other` began
    /// (real-time precedence `op1 →_H op2`).
    pub fn precedes(&self, other: &OpRecord<V>) -> bool {
        match self.response_at() {
            Some(r) => r < other.invoked_at,
            None => false,
        }
    }
}

/// One completed crash-recovery of a process, as seen by the history.
///
/// Recoveries are *global* events of a run (not per-register): a recovered
/// process rejoins every shard's quorums at once. The linearizability
/// checker uses these records to relax its crash rules: an operation the
/// process left incomplete at the crash stays incomplete even though the
/// process later invoked fresh operations, which without the recovery
/// record would look like a protocol bug (a non-last pending write).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// The recovered process.
    pub proc: ProcessId,
    /// The instant (substrate time units) the process rejoined — after
    /// this, fresh invocations by `proc` may appear in the history.
    pub at: u64,
    /// The process's incarnation number after this recovery (1 for the
    /// first rejoin).
    pub incarnation: u64,
}

/// A complete run history: the initial register value plus every operation
/// record, in no particular order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct History<V> {
    /// The register's initial value `v0`.
    pub initial: V,
    /// All operation records of the run.
    pub records: Vec<OpRecord<V>>,
    /// Completed crash-recoveries of the run, in rejoin order (empty on
    /// runs without recovery — the historical shape).
    #[serde(default)]
    pub recoveries: Vec<RecoveryRecord>,
}

impl<V> History<V> {
    /// Creates an empty history over a register initialized to `initial`.
    pub fn new(initial: V) -> Self {
        History {
            initial,
            records: Vec::new(),
            recoveries: Vec::new(),
        }
    }

    /// Returns `true` if `proc` completed a recovery in the half-open
    /// window `[after, before)` — the checker's test for whether a pending
    /// operation was orphaned by a crash that the process later recovered
    /// from.
    pub fn recovered_between(&self, proc: ProcessId, after: u64, before: u64) -> bool {
        self.recoveries
            .iter()
            .any(|r| r.proc == proc && r.at >= after && r.at < before)
    }

    /// Returns `true` if `proc` completed any recovery at or after `at`.
    pub fn recovered_since(&self, proc: ProcessId, at: u64) -> bool {
        self.recoveries.iter().any(|r| r.proc == proc && r.at >= at)
    }

    /// Number of operations (complete or not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over completed operations only.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.records.iter().filter(|r| r.is_complete())
    }

    /// Iterates over operations that never completed (crashed mid-op).
    pub fn pending(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.records.iter().filter(|r| !r.is_complete())
    }

    /// Iterates over completed reads.
    pub fn reads(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.completed().filter(|r| r.op.is_read())
    }

    /// Iterates over writes (complete or pending — a pending write may still
    /// have taken effect).
    pub fn writes(&self) -> impl Iterator<Item = &OpRecord<V>> {
        self.records.iter().filter(|r| r.op.is_write())
    }
}

/// Per-register operation histories of one multi-register run.
///
/// Each register of a [`RegisterSpace`](crate::RegisterSpace) is an
/// independent atomic object, so atomicity is judged **per register**: the
/// checker runs on each shard's [`History`] in isolation (see
/// `twobit_lincheck::check_swmr_sharded`). Backends produce this projection
/// from their recorded runs via [`Driver::history`](crate::Driver::history).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedHistory<V> {
    shards: BTreeMap<RegisterId, History<V>>,
}

impl<V: Clone> ShardedHistory<V> {
    /// Creates an empty projection hosting `registers`, each initialized to
    /// `initial`.
    pub fn new(initial: V, registers: impl IntoIterator<Item = RegisterId>) -> Self {
        ShardedHistory {
            shards: registers
                .into_iter()
                .map(|r| (r, History::new(initial.clone())))
                .collect(),
        }
    }

    /// Builds the projection from `(register, record)` pairs.
    pub fn from_tagged(
        initial: V,
        registers: impl IntoIterator<Item = RegisterId>,
        tagged: impl IntoIterator<Item = (RegisterId, OpRecord<V>)>,
    ) -> Self {
        let mut sharded = ShardedHistory::new(initial.clone(), registers);
        for (reg, rec) in tagged {
            sharded
                .shards
                .entry(reg)
                .or_insert_with(|| History::new(initial.clone()))
                .records
                .push(rec);
        }
        sharded
    }

    /// Appends a record to `reg`'s history (creating the shard if needed,
    /// initialized to `initial`).
    pub fn push(&mut self, reg: RegisterId, initial: V, rec: OpRecord<V>) {
        self.shards
            .entry(reg)
            .or_insert_with(|| History::new(initial))
            .records
            .push(rec);
    }

    /// Attaches the run's recovery records to every shard's history.
    /// Recoveries are global events (a recovered process rejoins all
    /// registers at once), so each per-register [`History`] carries the
    /// full list — call this after the last record has been pushed.
    pub fn with_recoveries(mut self, recoveries: &[RecoveryRecord]) -> Self {
        for h in self.shards.values_mut() {
            h.recoveries = recoveries.to_vec();
        }
        self
    }
}

impl<V> ShardedHistory<V> {
    /// The history of one register.
    pub fn shard(&self, reg: RegisterId) -> Option<&History<V>> {
        self.shards.get(&reg)
    }

    /// Iterates over `(register, history)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RegisterId, &History<V>)> {
        self.shards.iter().map(|(r, h)| (*r, h))
    }

    /// All hosted registers, in id order.
    pub fn registers(&self) -> impl Iterator<Item = RegisterId> + '_ {
        self.shards.keys().copied()
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Returns `true` if no register is hosted.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Total operations across all registers.
    pub fn total_ops(&self) -> usize {
        self.shards.values().map(History::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        op_id: u64,
        proc: usize,
        op: Operation<u64>,
        inv: u64,
        resp: Option<(u64, OpOutcome<u64>)>,
    ) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op,
            invoked_at: inv,
            completed: resp,
        }
    }

    #[test]
    fn precedence_is_strict_realtime() {
        let a = rec(1, 0, Operation::Write(1), 0, Some((10, OpOutcome::Written)));
        let b = rec(
            2,
            1,
            Operation::Read,
            11,
            Some((20, OpOutcome::ReadValue(1))),
        );
        let c = rec(
            3,
            2,
            Operation::Read,
            5,
            Some((30, OpOutcome::ReadValue(1))),
        );
        assert!(a.precedes(&b));
        assert!(!a.precedes(&c)); // c starts while a is running
        assert!(!b.precedes(&a));
        let pending = rec(4, 0, Operation::Write(2), 40, None);
        assert!(!pending.precedes(&b)); // pending ops precede nothing
    }

    #[test]
    fn latency_and_accessors() {
        let a = rec(1, 0, Operation::Read, 5, Some((9, OpOutcome::ReadValue(3))));
        assert_eq!(a.latency(), Some(4));
        assert_eq!(a.read_result(), Some(&3));
        let p = rec(2, 0, Operation::Read, 5, None);
        assert_eq!(p.latency(), None);
        assert!(!p.is_complete());
    }

    #[test]
    fn sharded_projection_groups_by_register() {
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);
        let tagged = vec![
            (
                r0,
                rec(0, 0, Operation::Write(1), 0, Some((10, OpOutcome::Written))),
            ),
            (
                r1,
                rec(1, 1, Operation::Write(9), 0, Some((10, OpOutcome::Written))),
            ),
            (
                r0,
                rec(
                    2,
                    1,
                    Operation::Read,
                    20,
                    Some((30, OpOutcome::ReadValue(1))),
                ),
            ),
        ];
        let sh = ShardedHistory::from_tagged(0u64, [r0, r1], tagged);
        assert_eq!(sh.len(), 2);
        assert_eq!(sh.total_ops(), 3);
        assert_eq!(sh.shard(r0).unwrap().len(), 2);
        assert_eq!(sh.shard(r1).unwrap().len(), 1);
        assert_eq!(sh.shard(r0).unwrap().initial, 0);
        assert!(sh.shard(RegisterId::new(7)).is_none());
        assert_eq!(sh.registers().collect::<Vec<_>>(), vec![r0, r1]);
        assert!(!sh.is_empty());
    }

    #[test]
    fn sharded_new_hosts_empty_registers() {
        let sh: ShardedHistory<u64> = ShardedHistory::new(5, RegisterId::first(3));
        assert_eq!(sh.len(), 3);
        assert_eq!(sh.total_ops(), 0);
        assert!(sh.shard(RegisterId::new(2)).unwrap().is_empty());
    }

    #[test]
    fn history_filters() {
        let mut h = History::new(0u64);
        h.records.push(rec(
            1,
            0,
            Operation::Write(1),
            0,
            Some((10, OpOutcome::Written)),
        ));
        h.records.push(rec(
            2,
            1,
            Operation::Read,
            2,
            Some((12, OpOutcome::ReadValue(1))),
        ));
        h.records.push(rec(3, 0, Operation::Write(2), 20, None));
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.completed().count(), 2);
        assert_eq!(h.pending().count(), 1);
        assert_eq!(h.reads().count(), 1);
        assert_eq!(h.writes().count(), 2);
    }
}
