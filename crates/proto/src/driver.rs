//! The backend-agnostic [`Driver`] interface: one API for the deterministic
//! simulator and the live runtime.
//!
//! Historically each execution substrate exposed its own driving API
//! (`SimBuilder::client_plan` on the simulator, `ClusterBuilder` plus
//! blocking clients on the runtime), so every workload, harness, and example
//! was written twice. A `Driver` is the common denominator: *issue* an
//! operation on a `(process, register)` pair, *poll* its completion, crash
//! processes, and extract per-register histories plus wire statistics. The
//! simulator implements `poll` by advancing virtual time; the runtime by
//! blocking on the reply channel — workload code cannot tell the difference,
//! which is exactly the point.
//!
//! Sequentiality is the paper's model (§2.1: processes are sequential), so
//! at most one operation may be in flight per `(process, register)`; a
//! second [`invoke`](Driver::invoke) yields
//! [`DriverError::OperationInFlight`]. Operations on *different* registers
//! pipeline freely — issue several tickets, then poll them in any order.
//!
//! [`Workload`] is a portable operation script executed through any
//! `Driver` (see [`Workload::run_on`] / [`Workload::run_pipelined_on`]).

use std::collections::HashMap;
use std::fmt;

use crate::history::ShardedHistory;
use crate::id::{ProcessId, RegisterId, SystemConfig};
use crate::lifecycle::Lifecycle;
use crate::op::{OpId, OpOutcome, Operation};
use crate::payload::Payload;
use crate::stats::NetStats;

/// Handle to one issued operation, returned by [`Driver::invoke`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpTicket {
    /// The invoking process.
    pub proc: ProcessId,
    /// The target register.
    pub reg: RegisterId,
    /// Backend-assigned operation id.
    pub op_id: OpId,
}

/// Errors surfaced by the [`Driver`] API.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriverError {
    /// The process id is outside `0..n`.
    UnknownProcess(ProcessId),
    /// The register is not hosted by this backend.
    UnknownRegister(RegisterId),
    /// The name is not bound in this register space.
    UnknownName(String),
    /// A previous operation by this process on this register has not
    /// completed — processes are sequential *per register*.
    OperationInFlight {
        /// The busy process.
        proc: ProcessId,
        /// The busy register.
        reg: RegisterId,
    },
    /// The target process crashed (or the backend shut down).
    ProcessUnavailable(ProcessId),
    /// [`Driver::crash`] targeted a process that is not up — crashing the
    /// same process twice is a scripting error, uniformly rejected by
    /// every backend.
    AlreadyCrashed(ProcessId),
    /// [`Driver::recover`] targeted a process that is not crashed.
    NotCrashed(ProcessId),
    /// [`Driver::recover`] on a deployment whose automaton does not
    /// implement the recovery hooks (no snapshot to transfer).
    RecoveryUnsupported,
    /// The operation did not complete within the backend's time budget —
    /// with more than `t` crashes the required quorum may never form.
    Timeout,
    /// The backend went quiescent with the operation still incomplete
    /// (simulator analogue of [`DriverError::Timeout`]).
    Stalled(OpId),
    /// The operation completed with an outcome of the wrong kind
    /// (a write answered with a value, or a read with a bare ack) —
    /// indicates an automaton bug.
    ProtocolMismatch,
    /// A backend-specific failure (invariant violation, event-budget
    /// exhaustion, ...).
    Backend(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            DriverError::UnknownRegister(r) => write!(f, "unknown register {r}"),
            DriverError::UnknownName(n) => write!(f, "unknown register name {n:?}"),
            DriverError::OperationInFlight { proc, reg } => {
                write!(f, "{proc} already has an operation in flight on {reg}")
            }
            DriverError::ProcessUnavailable(p) => write!(f, "process {p} unavailable"),
            DriverError::AlreadyCrashed(p) => write!(f, "process {p} is not up"),
            DriverError::NotCrashed(p) => write!(f, "process {p} is not crashed"),
            DriverError::RecoveryUnsupported => {
                write!(f, "this deployment's automaton does not support recovery")
            }
            DriverError::Timeout => write!(f, "operation timed out"),
            DriverError::Stalled(op) => write!(f, "backend quiescent with {op} incomplete"),
            DriverError::ProtocolMismatch => write!(f, "mismatched operation outcome"),
            DriverError::Backend(d) => write!(f, "backend error: {d}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// A running register deployment that can be driven one operation at a time.
///
/// Implemented by `twobit_simnet::Simulation` (single register, virtual
/// time), `twobit_simnet::SimSpace` (sharded, virtual time) and
/// `twobit_runtime::Cluster` (sharded, real threads). Code written against
/// this trait — workloads, equivalence tests, benchmarks — runs unchanged on
/// every backend.
pub trait Driver {
    /// The register value type.
    type Value: Payload;

    /// The system configuration (`n`, `t`).
    fn config(&self) -> SystemConfig;

    /// The registers this deployment hosts.
    fn registers(&self) -> Vec<RegisterId>;

    /// Issues `op` at `proc` on register `reg` without waiting for it.
    ///
    /// # Errors
    ///
    /// [`DriverError::OperationInFlight`] if the `(proc, reg)` pair already
    /// has an incomplete operation; [`DriverError::UnknownProcess`] /
    /// [`DriverError::UnknownRegister`] for bad addressing;
    /// [`DriverError::ProcessUnavailable`] if `proc` crashed.
    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<Self::Value>,
    ) -> Result<OpTicket, DriverError>;

    /// Drives the deployment until `ticket`'s operation completes and
    /// returns its outcome. Polling an already-completed ticket returns its
    /// outcome immediately; tickets may be polled in any order.
    ///
    /// # Errors
    ///
    /// [`DriverError::Timeout`] / [`DriverError::Stalled`] if the operation
    /// cannot complete (e.g. no quorum after crashes).
    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<Self::Value>, DriverError>;

    /// Crashes `proc`: it stops taking steps; messages to it are dropped.
    /// Reversible only through [`Driver::recover`].
    ///
    /// # Errors
    ///
    /// [`DriverError::AlreadyCrashed`] when `proc` is not up;
    /// [`DriverError::UnknownProcess`] for bad addressing.
    fn crash(&mut self, proc: ProcessId) -> Result<(), DriverError>;

    /// Recovers a crashed `proc`: the backend fetches a frame-aligned
    /// snapshot from the live peers, installs it at `proc`, has every live
    /// peer apply the rejoin, and bumps `proc`'s incarnation so stale
    /// pre-crash frames are fenced instead of delivered. On return `proc`
    /// is [`Lifecycle::Up`] and may invoke operations again; operations it
    /// left incomplete at the crash stay incomplete (the checker's crash
    /// rules cover them).
    ///
    /// # Errors
    ///
    /// [`DriverError::NotCrashed`] when `proc` is not crashed;
    /// [`DriverError::RecoveryUnsupported`] when the deployment's automaton
    /// has no recovery hooks; [`DriverError::UnknownProcess`] for bad
    /// addressing.
    fn recover(&mut self, proc: ProcessId) -> Result<(), DriverError>;

    /// The current lifecycle state of `proc` (out-of-range ids report
    /// [`Lifecycle::Crashed`]: a process that does not exist takes no
    /// steps).
    fn lifecycle(&self, proc: ProcessId) -> Lifecycle;

    /// Snapshot of the per-register operation histories recorded so far.
    fn history(&self) -> ShardedHistory<Self::Value>;

    /// Snapshot of the network statistics (aggregate and per-shard).
    fn stats(&self) -> NetStats;

    /// Blocking write: [`Driver::invoke`] + [`Driver::poll`].
    ///
    /// # Errors
    ///
    /// As for [`Driver::invoke`] / [`Driver::poll`], plus
    /// [`DriverError::ProtocolMismatch`] if the outcome is not a write ack.
    fn write(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        value: Self::Value,
    ) -> Result<(), DriverError> {
        let ticket = self.invoke(proc, reg, Operation::Write(value))?;
        match self.poll(&ticket)? {
            OpOutcome::Written => Ok(()),
            OpOutcome::ReadValue(_) => Err(DriverError::ProtocolMismatch),
        }
    }

    /// Blocking read: [`Driver::invoke`] + [`Driver::poll`].
    ///
    /// # Errors
    ///
    /// As for [`Driver::write`].
    fn read(&mut self, proc: ProcessId, reg: RegisterId) -> Result<Self::Value, DriverError> {
        let ticket = self.invoke(proc, reg, Operation::Read)?;
        match self.poll(&ticket)? {
            OpOutcome::ReadValue(v) => Ok(v),
            OpOutcome::Written => Err(DriverError::ProtocolMismatch),
        }
    }
}

/// One step of a [`Workload`]: an operation bound to a `(process, register)`
/// pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadStep<V> {
    /// The invoking process.
    pub proc: ProcessId,
    /// The target register.
    pub reg: RegisterId,
    /// The operation.
    pub op: Operation<V>,
}

/// A backend-agnostic operation script.
///
/// Steps are ordered; per `(process, register)` pair they execute
/// sequentially (the model's requirement), while
/// [`run_pipelined_on`](Workload::run_pipelined_on) overlaps steps that
/// target different pairs. Because a workload contains no backend-specific
/// code, the *same value* drives the simulator and the live runtime — the
/// backend-equivalence tests rely on this.
///
/// # Examples
///
/// ```
/// use twobit_proto::{Operation, ProcessId, RegisterId, Workload};
///
/// let w = Workload::new()
///     .step(0, RegisterId::ZERO, Operation::Write(1u64))
///     .step(1, RegisterId::ZERO, Operation::Read)
///     .step(0, RegisterId::new(1), Operation::Write(2));
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.steps()[1].proc, ProcessId::new(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Workload<V> {
    steps: Vec<WorkloadStep<V>>,
}

impl<V: Payload> Workload<V> {
    /// An empty workload.
    pub fn new() -> Self {
        Workload { steps: Vec::new() }
    }

    /// Appends one step (builder style).
    pub fn step(mut self, proc: impl Into<ProcessId>, reg: RegisterId, op: Operation<V>) -> Self {
        self.steps.push(WorkloadStep {
            proc: proc.into(),
            reg,
            op,
        });
        self
    }

    /// The steps, in execution order.
    pub fn steps(&self) -> &[WorkloadStep<V>] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the workload has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Executes the script strictly sequentially: each step is invoked and
    /// polled to completion before the next begins.
    ///
    /// # Errors
    ///
    /// The first [`DriverError`] encountered.
    pub fn run_on<D: Driver<Value = V>>(&self, driver: &mut D) -> Result<(), DriverError> {
        for s in &self.steps {
            let ticket = driver.invoke(s.proc, s.reg, s.op.clone())?;
            driver.poll(&ticket)?;
        }
        Ok(())
    }

    /// Executes the script pipelined: a step is issued as soon as its
    /// `(process, register)` pair is free, waiting only when the pair's
    /// previous operation is still in flight. Remains sequential per
    /// register (as the model requires) while overlapping across shards.
    ///
    /// # Errors
    ///
    /// The first [`DriverError`] encountered.
    pub fn run_pipelined_on<D: Driver<Value = V>>(
        &self,
        driver: &mut D,
    ) -> Result<(), DriverError> {
        let mut in_flight: HashMap<(ProcessId, RegisterId), OpTicket> = HashMap::new();
        for s in &self.steps {
            if let Some(prev) = in_flight.remove(&(s.proc, s.reg)) {
                driver.poll(&prev)?;
            }
            let ticket = driver.invoke(s.proc, s.reg, s.op.clone())?;
            in_flight.insert((s.proc, s.reg), ticket);
        }
        // Drain in op-id order so the execution is deterministic.
        let mut rest: Vec<OpTicket> = in_flight.into_values().collect();
        rest.sort_by_key(|t| t.op_id);
        for ticket in rest {
            driver.poll(&ticket)?;
        }
        Ok(())
    }
}
