//! Bit-granular wire I/O: the substrate of the byte-level codec.
//!
//! The paper's headline figure is *bits*, so the wire format is specified in
//! bits, not bytes: a frame is one contiguous bit stream (routing header,
//! then every message back to back) zero-padded to a byte boundary only at
//! the very end. [`BitWriter`] and [`BitReader`] are the MSB-first cursor
//! types every [`WireMessage`](crate::WireMessage) and
//! [`Payload`](crate::Payload) codec writes to and reads from;
//! [`gamma_bits`] sizes the self-delimiting Elias-gamma codes used wherever
//! a value has no fixed width (routing gaps, group counts, sequence
//! numbers of the baselines).

use std::fmt;

use bytes::Bytes;

/// Error surfaced by the wire codec (bit I/O, header, frame, message and
/// payload decoders).
///
/// Re-exported as `FrameDecodeError` for continuity with the pre-codec API,
/// which only had the header decoder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream ended inside a code or a declared field.
    Truncated,
    /// A decoded value overflows its domain, or a declared count/length
    /// exceeds what the remaining input could possibly hold (rejected
    /// *before* any allocation is sized from it).
    Overflow,
    /// The type does not implement the byte-level codec (it only carries
    /// modeled costs). Only codec-capable messages can cross a byte
    /// transport.
    Unsupported(&'static str),
    /// The input is structurally invalid (non-canonical header, non-zero
    /// padding, bad UTF-8 payload, ...).
    Malformed(&'static str),
    /// The frame's length prefix disagrees with the buffer it arrived in.
    LengthMismatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire stream truncated mid-code"),
            WireError::Overflow => write!(f, "wire value out of domain or count exceeds input"),
            WireError::Unsupported(what) => {
                write!(f, "no byte-level wire codec for {what}")
            }
            WireError::Malformed(what) => write!(f, "malformed wire input: {what}"),
            WireError::LengthMismatch => {
                write!(f, "frame length prefix disagrees with buffer length")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Elias-gamma code length for `x ≥ 1`: `2⌊log₂ x⌋ + 1` bits.
///
/// # Panics
///
/// Panics if `x == 0` (gamma codes start at 1; encode `x + 1` for domains
/// containing zero).
///
/// # Examples
///
/// ```
/// use twobit_proto::bits::gamma_bits;
///
/// assert_eq!(gamma_bits(1), 1);
/// assert_eq!(gamma_bits(2), 3);
/// assert_eq!(gamma_bits(255), 15);
/// ```
pub fn gamma_bits(x: u64) -> u64 {
    assert!(x >= 1, "gamma codes start at 1");
    2 * u64::from(63 - x.leading_zeros()) + 1
}

/// MSB-first bit sink.
///
/// # Examples
///
/// ```
/// use twobit_proto::bits::{BitReader, BitWriter};
///
/// let mut w = BitWriter::default();
/// w.put_bits(0b10, 2);
/// w.put_gamma(5);
/// assert_eq!(w.bit_len(), 2 + 5);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.get_bits(2).unwrap(), 0b10);
/// assert_eq!(r.get_gamma().unwrap(), 5);
/// ```
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0 ⇒ last byte full / none yet).
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Creates a writer that appends into `buf` (cleared first), reusing
    /// its capacity — the hook the pooled frame-encode path uses to write
    /// every frame into a recycled per-link buffer instead of a fresh
    /// allocation.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            bytes: buf,
            used: 0,
        }
    }

    /// Appends one bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the `n` low bits of `x`, most significant first (`n ≤ 64`).
    pub fn put_bits(&mut self, x: u64, n: u32) {
        assert!(n <= 64, "at most 64 bits per call");
        for i in (0..n).rev() {
            self.put_bit(x & (1u64 << i) != 0);
        }
    }

    /// Elias gamma: `N` zeros, then the `N+1` significant bits of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn put_gamma(&mut self, x: u64) {
        assert!(x >= 1, "gamma codes start at 1");
        let n = 63 - x.leading_zeros();
        for _ in 0..n {
            self.put_bit(false);
        }
        for i in (0..=n).rev() {
            self.put_bit(x & (1 << i) != 0);
        }
    }

    /// Appends `s` whole, most significant bit of each byte first. On a
    /// byte-aligned cursor this is a single `extend_from_slice` instead of
    /// a per-bit loop — the encode-side counterpart of
    /// [`BitReader::get_byte_slice`]'s zero-copy fast path.
    pub fn put_bytes(&mut self, s: &[u8]) {
        if self.used == 0 {
            self.bytes.extend_from_slice(s);
        } else {
            for &b in s {
                self.put_bits(u64::from(b), 8);
            }
        }
    }

    /// Bits written so far (before the final byte's zero padding).
    pub fn bit_len(&self) -> u64 {
        if self.used == 0 {
            self.bytes.len() as u64 * 8
        } else {
            (self.bytes.len() as u64 - 1) * 8 + u64::from(self.used)
        }
    }

    /// Finishes the stream, zero-padding the last byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit source over a byte slice.
///
/// A reader built with [`BitReader::new_shared`] additionally remembers the
/// shared [`Bytes`] allocation behind its input, which lets
/// [`BitReader::get_byte_slice`] hand payload bytes out as **zero-copy
/// sub-views** of the received blob whenever the cursor happens to be
/// byte-aligned (the bit-packed format makes alignment opportunistic, not
/// guaranteed).
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
    /// The shared allocation `bytes` views, when the caller has one —
    /// `bytes` must equal `&shared[..]`.
    shared: Option<&'a Bytes>,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            shared: None,
        }
    }

    /// Creates a reader over a shared buffer; byte-aligned
    /// [`BitReader::get_byte_slice`] calls then slice `backing` without
    /// copying.
    pub fn new_shared(backing: &'a Bytes) -> Self {
        BitReader {
            bytes: backing,
            pos: 0,
            shared: Some(backing),
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn get_bit(&mut self) -> Result<bool, WireError> {
        let byte = self
            .bytes
            .get((self.pos / 8) as usize)
            .ok_or(WireError::Truncated)?;
        let bit = byte & (1 << (7 - self.pos % 8)) != 0;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n ≤ 64` bits, most significant first.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `n` bits remain.
    pub fn get_bits(&mut self, n: u32) -> Result<u64, WireError> {
        assert!(n <= 64, "at most 64 bits per call");
        if u64::from(n) > self.remaining_bits() {
            // Fail without moving the cursor so callers can report cleanly.
            return Err(WireError::Truncated);
        }
        let mut x = 0u64;
        for _ in 0..n {
            x = (x << 1) | u64::from(self.get_bit()?);
        }
        Ok(x)
    }

    /// Reads one Elias-gamma code.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] mid-code; [`WireError::Overflow`] if the
    /// unary prefix exceeds the 64-bit domain.
    pub fn get_gamma(&mut self) -> Result<u64, WireError> {
        let mut n = 0u32;
        while !self.get_bit()? {
            n += 1;
            if n > 63 {
                return Err(WireError::Overflow);
            }
        }
        let mut x = 1u64;
        for _ in 0..n {
            x = (x << 1) | u64::from(self.get_bit()?);
        }
        Ok(x)
    }

    /// Reads `len` whole bytes. When the cursor is byte-aligned and the
    /// reader was built with [`BitReader::new_shared`], the result is a
    /// zero-copy sub-view of the backing allocation; otherwise the bytes
    /// are copied out bit by bit (a bit-packed stream cannot promise
    /// alignment). Either way the cursor advances exactly `8 × len` bits.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `8 × len` bits remain (the
    /// cursor does not move).
    pub fn get_byte_slice(&mut self, len: usize) -> Result<Bytes, WireError> {
        let bits = (len as u64).checked_mul(8).ok_or(WireError::Overflow)?;
        if bits > self.remaining_bits() {
            return Err(WireError::Truncated);
        }
        if self.pos.is_multiple_of(8) {
            let start = (self.pos / 8) as usize;
            self.pos += bits;
            if let Some(backing) = self.shared {
                return Ok(backing.slice(start..start + len));
            }
            return Ok(Bytes::copy_from_slice(&self.bytes[start..start + len]));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_bits(8)? as u8);
        }
        Ok(Bytes::from(out))
    }

    /// Bits consumed so far.
    pub fn bits_read(&self) -> u64 {
        self.pos
    }

    /// Bits left in the input (final-byte padding included).
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// Consumes the final-byte zero padding, rejecting a stream with a
    /// non-zero pad bit or a whole byte of slack (which would mean the
    /// declared length was wrong, not that the stream was padded).
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on non-zero padding or ≥ 8 leftover bits.
    pub fn expect_zero_padding(&mut self) -> Result<(), WireError> {
        if self.remaining_bits() >= 8 {
            return Err(WireError::Malformed("more than a byte of trailing slack"));
        }
        while self.remaining_bits() > 0 {
            if self.get_bit()? {
                return Err(WireError::Malformed("non-zero padding bit"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.put_bits(0xAB, 8);
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_bits(8).unwrap(), 0xAB);
        assert_eq!(r.bits_read(), 9);
        assert_eq!(r.remaining_bits(), 7);
        r.expect_zero_padding().unwrap();
    }

    #[test]
    fn fixed_width_roundtrip() {
        for x in [0u64, 1, 0xFFFF_FFFF_FFFF_FFFF, 0x0123_4567_89AB_CDEF] {
            let mut w = BitWriter::new();
            w.put_bits(x, 64);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_bits(64).unwrap(), x);
        }
    }

    #[test]
    fn gamma_roundtrip_and_lengths() {
        for (x, bits) in [(1, 1), (2, 3), (3, 3), (4, 5), (7, 5), (8, 7), (255, 15)] {
            assert_eq!(gamma_bits(x), bits, "γ({x})");
            let mut w = BitWriter::new();
            w.put_gamma(x);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_gamma().unwrap(), x);
            assert_eq!(r.bits_read(), bits);
        }
    }

    #[test]
    fn truncated_reads_are_typed() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.get_bit(), Err(WireError::Truncated));
        let mut r = BitReader::new(&[0x80]);
        assert_eq!(r.get_bits(16), Err(WireError::Truncated));
        assert_eq!(r.bits_read(), 0, "failed get_bits must not consume");
        // All-zeros never terminates a gamma code.
        let mut r = BitReader::new(&[0x00]);
        assert_eq!(r.get_gamma(), Err(WireError::Truncated));
    }

    #[test]
    fn reused_buffer_writer_matches_fresh_writer() {
        let mut fresh = BitWriter::new();
        fresh.put_bits(0b101, 3);
        fresh.put_gamma(9);
        let expected = fresh.into_bytes();
        // A dirty recycled buffer produces the identical stream.
        let mut reused = BitWriter::with_buffer(vec![0xFF; 32]);
        reused.put_bits(0b101, 3);
        reused.put_gamma(9);
        let got = reused.into_bytes();
        assert_eq!(got, expected);
        assert!(got.capacity() >= 32, "capacity was recycled");
    }

    #[test]
    fn put_bytes_aligned_and_unaligned_agree() {
        let payload = [0xDE, 0xAD, 0xBE, 0xEF];
        let mut aligned = BitWriter::new();
        aligned.put_bytes(&payload);
        assert_eq!(aligned.into_bytes(), payload);
        // Unaligned: same bits, shifted.
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.put_bytes(&payload);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().unwrap());
        for &b in &payload {
            assert_eq!(r.get_bits(8).unwrap(), u64::from(b));
        }
    }

    #[test]
    fn aligned_byte_slice_is_zero_copy_into_the_backing() {
        let blob = Bytes::from(vec![0xAA, 1, 2, 3, 4]);
        let mut r = BitReader::new_shared(&blob);
        assert_eq!(r.get_bits(8).unwrap(), 0xAA);
        let slice = r.get_byte_slice(3).unwrap();
        assert_eq!(&slice[..], &[1, 2, 3]);
        let base = blob.as_ptr() as usize;
        let p = slice.as_ptr() as usize;
        assert!(
            p >= base && p + slice.len() <= base + blob.len(),
            "aligned slice must point into the original allocation"
        );
        assert_eq!(r.bits_read(), 32);
        assert_eq!(r.get_byte_slice(2), Err(WireError::Truncated));
        assert_eq!(r.bits_read(), 32, "failed slice must not consume");
    }

    #[test]
    fn unaligned_byte_slice_copies_but_reads_the_same_bytes() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bytes(&[7, 8, 9]);
        let blob = Bytes::from(w.into_bytes());
        let mut r = BitReader::new_shared(&blob);
        assert!(r.get_bit().unwrap());
        let slice = r.get_byte_slice(3).unwrap();
        assert_eq!(&slice[..], &[7, 8, 9]);
        let base = blob.as_ptr() as usize;
        let p = slice.as_ptr() as usize;
        assert!(
            p < base || p >= base + blob.len(),
            "an unaligned slice cannot view the backing"
        );
    }

    #[test]
    fn unshared_reader_byte_slices_still_work() {
        let raw = [5u8, 6, 7];
        let mut r = BitReader::new(&raw);
        let s = r.get_byte_slice(3).unwrap();
        assert_eq!(&s[..], &[5, 6, 7]);
        r.expect_zero_padding().unwrap();
    }

    #[test]
    fn padding_is_policed() {
        let mut r = BitReader::new(&[0b1000_0001]);
        assert!(r.get_bit().unwrap());
        assert_eq!(
            r.expect_zero_padding(),
            Err(WireError::Malformed("non-zero padding bit"))
        );
        let mut r = BitReader::new(&[0x80, 0x00]);
        assert!(r.get_bit().unwrap());
        assert_eq!(
            r.expect_zero_padding(),
            Err(WireError::Malformed("more than a byte of trailing slack"))
        );
    }
}
