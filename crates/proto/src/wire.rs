//! Wire-level cost accounting for protocol messages.
//!
//! The central quantitative claim of the paper is about *control information*:
//! the proposed algorithm's four message types (`WRITE0`, `WRITE1`, `READ`,
//! `PROCEED`) carry **no control information beyond their type**, so two bits
//! suffice; previous bounded algorithms need `O(n⁵)` (bounded ABD) or `O(n³)`
//! (Attiya) control bits, and unbounded ABD carries ever-growing sequence
//! numbers. Every algorithm message type in this workspace implements
//! [`WireMessage`] so the experiment harness can measure exactly those
//! quantities (Table 1 row 3; experiments E1.3 and E8).

use serde::{Deserialize, Serialize};

use crate::bits::{BitReader, BitWriter, WireError};
use crate::id::RegisterId;

/// Cost of one message on the wire, split into control, data and routing
/// bits.
///
/// *Control* bits are what the paper's Table 1 measures: protocol information
/// beyond the data value (type tags, sequence numbers, timestamps). *Routing*
/// bits address a register when many registers share one cluster — they
/// address a register, not a point in any register's protocol, so they are
/// accounted separately to keep the two-bit claim crisp. Under the framed
/// transport the per-message field stays 0 and routing is accounted once per
/// [`Frame`](crate::Frame) header; per-message tags are still recorded
/// separately as the *unframed-equivalent* comparison figure (see
/// [`NetStats`](crate::NetStats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MessageCost {
    /// Bits of control information: the message type tag plus any sequence
    /// numbers, timestamps, identifiers or padding the protocol requires.
    pub control_bits: u64,
    /// Bits of the data value carried, if any.
    pub data_bits: u64,
    /// Bits of the shard tag addressing the target register (0 on
    /// single-register deployments).
    pub routing_bits: u64,
}

impl MessageCost {
    /// Creates a cost record with no routing overhead.
    pub fn new(control_bits: u64, data_bits: u64) -> Self {
        MessageCost {
            control_bits,
            data_bits,
            routing_bits: 0,
        }
    }

    /// Returns this cost with `routing_bits` of shard-tag overhead.
    pub fn with_routing(self, routing_bits: u64) -> Self {
        MessageCost {
            routing_bits,
            ..self
        }
    }

    /// Total bits on the wire for this message.
    pub fn total_bits(&self) -> u64 {
        self.control_bits + self.data_bits + self.routing_bits
    }
}

/// A protocol message whose wire cost can be measured — and, for
/// codec-capable types, serialized bit-exactly.
///
/// `kind` gives a small set of human-readable type names used for message
/// counting (Table 1 rows 1–2); `cost` reports the control/data split
/// (Table 1 row 3). Implementations must be cheap: the simulator calls them
/// for every message sent.
///
/// # The byte-level codec
///
/// The three codec methods turn the cost *model* into bytes on a wire:
/// [`encode_into`](WireMessage::encode_into) appends the message to a
/// [`BitWriter`] as a self-delimiting bit string,
/// [`decode`](WireMessage::decode) parses it back, and
/// [`encoded_bits`](WireMessage::encoded_bits) reports the exact bit count
/// `encode_into` produces. They have defaults so cost-model-only message
/// types (test probes, emulation internals) keep compiling, but the
/// defaults **fail at runtime** with [`WireError::Unsupported`] — only
/// types overriding all three can cross a byte transport (the TCP backend)
/// or run under the substrates' encode–decode fidelity mode.
///
/// Contract for implementors:
///
/// * `decode(encode_into(m)) == m` for every value (round trip);
/// * `encoded_bits(m)` equals the exact number of bits `encode_into(m)`
///   writes;
/// * for the paper's automaton the encoding *is* the cost:
///   `encoded_bits == cost().control_bits + cost().data_bits`, with the
///   type tag spending exactly two bits. Baseline algorithms whose modeled
///   control fields have no fixed width (unbounded sequence numbers)
///   serialize them as self-delimiting gamma codes, so their wire size can
///   exceed the modeled bit count — that gap is measurement, not error.
pub trait WireMessage: Clone + std::fmt::Debug + Send + 'static {
    /// Human-readable message type name (e.g. `"WRITE0"`, `"READ"`).
    fn kind(&self) -> &'static str;

    /// Control/data bit cost of this message instance.
    fn cost(&self) -> MessageCost;

    /// Exact size, in bits, of this message's [`WireMessage::encode_into`]
    /// output. The default mirrors the modeled cost (control + data bits),
    /// which is correct only for codecs whose encoding is bit-for-bit the
    /// model — override it together with `encode_into`.
    fn encoded_bits(&self) -> u64 {
        let c = self.cost();
        c.control_bits + c.data_bits
    }

    /// Appends this message to `w` as a self-delimiting bit string.
    ///
    /// # Errors
    ///
    /// The default returns [`WireError::Unsupported`]: the type carries
    /// only modeled costs and cannot cross a byte transport.
    fn encode_into(&self, _w: &mut BitWriter) -> Result<(), WireError> {
        Err(WireError::Unsupported(self.kind()))
    }

    /// Parses one message from the front of `r` (the inverse of
    /// [`WireMessage::encode_into`]).
    ///
    /// # Errors
    ///
    /// The default returns [`WireError::Unsupported`]; implementations
    /// surface [`WireError::Truncated`] / [`WireError::Overflow`] /
    /// [`WireError::Malformed`] on corrupt input.
    fn decode(_r: &mut BitReader<'_>) -> Result<Self, WireError>
    where
        Self: Sized,
    {
        Err(WireError::Unsupported("message decode"))
    }
}

/// A protocol message tagged with the register (shard) it belongs to.
///
/// When a [`RegisterSpace`](crate::RegisterSpace) multiplexes many registers
/// over one cluster, every wire message is wrapped in an `Envelope` carrying
/// a compact [`RegisterId`]. The shard tag's wire cost is **not** part of
/// the envelope: the tag width is a per-deployment constant
/// (`⌈log₂ k⌉` for a `k`-register space — see [`RegisterId::routing_bits`])
/// derived where traffic is accounted, and on the wire envelopes travel
/// inside a [`Frame`](crate::Frame) whose shared header encodes each tag
/// once per frame instead of once per message. The inner message's
/// *control* cost is untouched either way, so a two-bit-per-register
/// protocol stays two-bit per register.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<M> {
    /// The register this message belongs to.
    pub reg: RegisterId,
    /// The register-protocol message.
    pub inner: M,
}

impl<M> Envelope<M> {
    /// Wraps `inner` for register `reg`.
    pub fn new(reg: RegisterId, inner: M) -> Self {
        Envelope { reg, inner }
    }
}

impl<M: WireMessage> WireMessage for Envelope<M> {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    /// The inner message's cost; routing is accounted at the frame layer.
    fn cost(&self) -> MessageCost {
        self.inner.cost()
    }

    fn encoded_bits(&self) -> u64 {
        self.inner.encoded_bits()
    }

    /// Encodes the inner message only: the register tag never travels with
    /// the message — it lives once in the frame's shared routing header.
    /// Consequently a bare envelope cannot be *decoded* (the tag is gone);
    /// frames decode messages and re-wrap them per group instead.
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        self.inner.encode_into(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Dummy;

    impl WireMessage for Dummy {
        fn kind(&self) -> &'static str {
            "DUMMY"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(2, 64)
        }
    }

    #[test]
    fn cost_totals() {
        let c = MessageCost::new(2, 64);
        assert_eq!(c.total_bits(), 66);
        assert_eq!(MessageCost::default().total_bits(), 0);
    }

    #[test]
    fn wire_message_object() {
        let d = Dummy;
        assert_eq!(d.kind(), "DUMMY");
        assert_eq!(d.cost().control_bits, 2);
    }

    #[test]
    fn routing_bits_extend_total_only() {
        let c = MessageCost::new(2, 64).with_routing(6);
        assert_eq!(c.control_bits, 2);
        assert_eq!(c.data_bits, 64);
        assert_eq!(c.routing_bits, 6);
        assert_eq!(c.total_bits(), 72);
    }

    #[test]
    fn envelope_preserves_kind_and_control_cost() {
        let e = Envelope::new(RegisterId::new(5), Dummy);
        assert_eq!(e.kind(), "DUMMY");
        let cost = e.cost();
        assert_eq!(cost.control_bits, 2, "per-register control stays two bits");
        assert_eq!(cost.routing_bits, 0, "routing lives in the frame header");
        assert_eq!(cost.total_bits(), 2 + 64);
    }
}
