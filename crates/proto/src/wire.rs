//! Wire-level cost accounting for protocol messages.
//!
//! The central quantitative claim of the paper is about *control information*:
//! the proposed algorithm's four message types (`WRITE0`, `WRITE1`, `READ`,
//! `PROCEED`) carry **no control information beyond their type**, so two bits
//! suffice; previous bounded algorithms need `O(n⁵)` (bounded ABD) or `O(n³)`
//! (Attiya) control bits, and unbounded ABD carries ever-growing sequence
//! numbers. Every algorithm message type in this workspace implements
//! [`WireMessage`] so the experiment harness can measure exactly those
//! quantities (Table 1 row 3; experiments E1.3 and E8).

use serde::{Deserialize, Serialize};

/// Cost of one message on the wire, split into control and data bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MessageCost {
    /// Bits of control information: the message type tag plus any sequence
    /// numbers, timestamps, identifiers or padding the protocol requires.
    pub control_bits: u64,
    /// Bits of the data value carried, if any.
    pub data_bits: u64,
}

impl MessageCost {
    /// Creates a cost record.
    pub fn new(control_bits: u64, data_bits: u64) -> Self {
        MessageCost {
            control_bits,
            data_bits,
        }
    }

    /// Total bits on the wire for this message.
    pub fn total_bits(&self) -> u64 {
        self.control_bits + self.data_bits
    }
}

/// A protocol message whose wire cost can be measured.
///
/// `kind` gives a small set of human-readable type names used for message
/// counting (Table 1 rows 1–2); `cost` reports the control/data split
/// (Table 1 row 3). Implementations must be cheap: the simulator calls them
/// for every message sent.
pub trait WireMessage: Clone + std::fmt::Debug + Send + 'static {
    /// Human-readable message type name (e.g. `"WRITE0"`, `"READ"`).
    fn kind(&self) -> &'static str;

    /// Control/data bit cost of this message instance.
    fn cost(&self) -> MessageCost;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Dummy;

    impl WireMessage for Dummy {
        fn kind(&self) -> &'static str {
            "DUMMY"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(2, 64)
        }
    }

    #[test]
    fn cost_totals() {
        let c = MessageCost::new(2, 64);
        assert_eq!(c.total_bits(), 66);
        assert_eq!(MessageCost::default().total_bits(), 0);
    }

    #[test]
    fn wire_message_object() {
        let d = Dummy;
        assert_eq!(d.kind(), "DUMMY");
        assert_eq!(d.cost().control_bits, 2);
    }
}
