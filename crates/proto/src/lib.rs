//! Protocol substrate shared by every register algorithm in this workspace.
//!
//! The paper ([Mostéfaoui & Raynal 2016]) and its baselines (ABD'95 and its
//! bounded variants) are all *message-passing automatons*: deterministic state
//! machines that react to operation invocations and message receptions by
//! updating local state, sending messages, and completing operations. This
//! crate defines that common vocabulary so the same algorithm code can run
//! unchanged on the deterministic discrete-event simulator
//! (`twobit-simnet`) and on the live threaded runtime (`twobit-runtime`).
//!
//! Main items:
//!
//! * [`ProcessId`], [`SystemConfig`] — the `CAMP_{n,t}` system model
//!   (asynchronous message passing, up to `t < n/2` crash failures).
//! * [`Operation`], [`OpOutcome`], [`OpId`] — read/write operations on a
//!   single-writer multi-reader (SWMR) or multi-writer (MWMR) register.
//! * [`Automaton`] and [`Effects`] — the event-driven execution interface.
//! * [`WireMessage`] — per-message *control-bit* and *data-bit* accounting,
//!   the measurement at the heart of the paper's Table 1 — now with a
//!   byte-level codec (`encoded_bits` / `encode_into` / `decode` over the
//!   [`bits`] module's MSB-first bit I/O), so the two-bit claim is proved
//!   by serialization, not just asserted by accounting.
//! * [`OpRecord`], [`History`] — operation histories consumed by the
//!   linearizability checker (`twobit-lincheck`).
//! * [`Driver`] — the backend-agnostic driving interface (issue/poll/crash/
//!   history/stats) implemented by both execution substrates, so workloads
//!   are written once.
//! * [`RegisterId`], [`Envelope`], [`ShardSet`] — multiplexing many
//!   independent registers over one cluster, with shard tags accounted as
//!   *routing* (not control) bits.
//! * [`Frame`], [`FrameHeader`], [`FrameCost`] — the batching transport
//!   unit: all envelopes queued for one ordered link coalesce into one
//!   frame whose shared header carries each shard tag once (per-frame
//!   chooser between delta/gamma and bitmap tag encodings), so routing
//!   amortizes across the batch while every message keeps exactly its two
//!   control bits. [`Frame::encode`] / [`Frame::decode`] turn a frame into
//!   one contiguous, length-prefixed byte blob (see `docs/wire-format.md`)
//!   — the unit a real TCP transport writes per link.
//! * [`RegisterSpace`], [`Workload`], [`ShardedHistory`] — named registers,
//!   portable operation scripts, and per-register history projection.
//! * [`linkseq`] — frame sequence numbers, the reconnect handshake, and
//!   sequenced-record framing for links that survive transient socket
//!   failures with resend (the reactor transport's wire extension).
//! * [`sched`] — the pluggable scheduling surface for controlled execution:
//!   [`Schedule`] tokens, [`EnabledEvent`]s, and the [`Scheduler`] trait
//!   the `twobit-check` model checker drives the simulator through.
//!
//! [Mostéfaoui & Raynal 2016]: https://hal.inria.fr/hal-01271135

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod bits;
pub mod driver;
pub mod frame;
pub mod history;
pub mod id;
pub mod lifecycle;
pub mod linkseq;
pub mod op;
pub mod payload;
pub mod pool;
pub mod sched;
pub mod shard;
pub mod snapshot;
pub mod space;
pub mod stats;
pub mod wire;

pub use automaton::{Automaton, Effects};
pub use bits::{BitReader, BitWriter, WireError};
pub use bytes::Bytes;
pub use driver::{Driver, DriverError, OpTicket, Workload, WorkloadStep};
pub use frame::{Frame, FrameCost, FrameDecodeError, FrameHeader, MAX_FRAME_BODY_BYTES};
pub use history::{History, OpRecord, RecoveryRecord, ShardedHistory};
pub use id::{ProcessId, RegisterId, SystemConfig, SystemConfigError};
pub use lifecycle::{Lifecycle, LifecycleState, WrongState};
pub use op::{OpId, OpOutcome, Operation};
pub use payload::Payload;
pub use pool::BufferPool;
pub use sched::{
    EnabledEvent, ReplayScheduler, SchedDecision, Schedule, ScheduleStep, Scheduler,
    VirtualTimeScheduler,
};
pub use shard::{ShardSet, UnknownRegister};
pub use snapshot::Snapshot;
pub use space::{RegisterMode, RegisterSpace};
pub use stats::{FlushReason, IncarnationLedger, NetStats, ShardTraffic, StatsSnapshot};
pub use wire::{Envelope, MessageCost, WireMessage};
