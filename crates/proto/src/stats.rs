//! Network statistics: message counts and wire bits, by message kind.
//!
//! Shared by the simulator (`twobit-simnet`) and the live runtime
//! (`twobit-runtime`). These counters are the raw measurements behind Table 1 rows 1–3
//! (#messages per write, #messages per read, message size in bits) and the
//! wire-growth experiment E8. [`StatsSnapshot`] supports windowed
//! measurement: snapshot before and after an operation (or a batch) and
//! subtract.

use std::collections::BTreeMap;

use crate::frame::FrameCost;
use crate::id::RegisterId;
use crate::wire::MessageCost;

/// Why a link's pending batch was flushed into a frame.
///
/// Every frame a backend sends results from exactly one flush decision, so
/// `flushes(Size) + flushes(Hold) + flushes(Shutdown) == frames_sent()`
/// whenever a backend records both — the counters explain *why* the frames
/// in [`NetStats::frames_sent`] formed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlushReason {
    /// The batch reached the policy's `max_batch` bound.
    Size,
    /// The oldest pending item's hold window expired (on the virtual-time
    /// engine: the link's flush marker fired).
    Hold,
    /// The link was shutting down and flushed unconditionally so nothing
    /// is stranded.
    Shutdown,
}

/// Per-register (shard) traffic counters inside a [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardTraffic {
    /// Messages sent for this register.
    pub sent: u64,
    /// Control bits sent for this register (two per message for the paper's
    /// algorithm, regardless of how many registers share the cluster).
    pub control_bits: u64,
    /// Data bits sent for this register.
    pub data_bits: u64,
    /// Shard-tag routing bits spent addressing this register.
    pub routing_bits: u64,
}

impl ShardTraffic {
    /// Total bits this register put on the wire.
    pub fn total_bits(&self) -> u64 {
        self.control_bits + self.data_bits + self.routing_bits
    }
}

/// One recovery epoch's share of the
/// `delivered + dropped + stale + abandoned == sent` reconciliation.
///
/// A recovery epoch starts at run start (epoch 0) and a new one begins at
/// every completed [`NetStats::record_recovery`]. Each counter records the
/// events that *occurred while that epoch was current* — a message sent in
/// one epoch may be delivered (or fenced) in a later one, so the
/// reconciliation is exact over the **sum** of all epochs, while the
/// per-epoch rows show how traffic distributes across incarnations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncarnationLedger {
    /// Messages handed to the network during this epoch.
    pub sent: u64,
    /// Messages delivered during this epoch.
    pub delivered: u64,
    /// Messages dropped to crashed destinations during this epoch.
    pub dropped_to_crashed: u64,
    /// Messages fenced as stale (older incarnation/epoch) during this epoch.
    pub dropped_stale: u64,
    /// Messages abandoned with failed links during this epoch.
    pub abandoned: u64,
}

/// Running totals for one simulation (or one live-runtime session).
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    sent_by_kind: BTreeMap<&'static str, u64>,
    bits_by_kind: BTreeMap<&'static str, u64>,
    per_shard: BTreeMap<RegisterId, ShardTraffic>,
    total_sent: u64,
    total_delivered: u64,
    dropped_to_crashed: u64,
    control_bits: u64,
    data_bits: u64,
    routing_bits: u64,
    max_msg_control_bits: u64,
    max_msg_total_bits: u64,
    frames_sent: u64,
    frame_header_bits: u64,
    frame_header_gamma_bits: u64,
    framed_messages: u64,
    max_frame_messages: u64,
    wire_bytes: u64,
    flushes_size: u64,
    flushes_hold: u64,
    flushes_shutdown: u64,
    observed_hold_ns: u64,
    max_observed_hold_ns: u64,
    links_abandoned: u64,
    messages_abandoned: u64,
    reconnects: u64,
    frames_resent: u64,
    frames_deduped: u64,
    resend_buffer_high_water: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_fallbacks: u64,
    recoveries: u64,
    dropped_stale: u64,
    snapshot_frames: u64,
    snapshot_bytes: u64,
    ledgers: Vec<IncarnationLedger>,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// The current recovery epoch's ledger row, created on first touch.
    fn ledger(&mut self) -> &mut IncarnationLedger {
        if self.ledgers.is_empty() {
            self.ledgers.push(IncarnationLedger::default());
        }
        self.ledgers.last_mut().expect("just pushed")
    }

    /// Records one message handed to the network.
    pub fn record_send(&mut self, kind: &'static str, cost: MessageCost) {
        self.ledger().sent += 1;
        *self.sent_by_kind.entry(kind).or_insert(0) += 1;
        *self.bits_by_kind.entry(kind).or_insert(0) += cost.total_bits();
        self.total_sent += 1;
        self.control_bits += cost.control_bits;
        self.data_bits += cost.data_bits;
        self.routing_bits += cost.routing_bits;
        self.max_msg_control_bits = self.max_msg_control_bits.max(cost.control_bits);
        self.max_msg_total_bits = self.max_msg_total_bits.max(cost.total_bits());
    }

    /// Records one message handed to the network on behalf of register
    /// `reg`, updating both the aggregate counters and the shard's.
    pub fn record_send_for(&mut self, reg: RegisterId, kind: &'static str, cost: MessageCost) {
        self.record_send(kind, cost);
        let shard = self.per_shard.entry(reg).or_default();
        shard.sent += 1;
        shard.control_bits += cost.control_bits;
        shard.data_bits += cost.data_bits;
        shard.routing_bits += cost.routing_bits;
    }

    /// Records one frame handed to the network. Per-message control/data
    /// costs are recorded separately (via [`NetStats::record_send_for`]);
    /// this adds the frame's shared-header routing bits and the
    /// frame-shape counters.
    pub fn record_frame(&mut self, cost: FrameCost) {
        self.frames_sent += 1;
        self.frame_header_bits += cost.header_bits;
        self.frame_header_gamma_bits += cost.header_gamma_bits;
        self.framed_messages += cost.messages;
        self.max_frame_messages = self.max_frame_messages.max(cost.messages);
    }

    /// Records `n` bytes actually put on the wire by the byte-level codec
    /// (one call per encoded frame blob, length prefix included). Only
    /// populated when a backend routes sends through
    /// [`Frame::encode`](crate::Frame::encode) — the substrates' wire-codec
    /// mode and the TCP transport do; the pure in-memory paths leave it 0.
    pub fn record_wire_bytes(&mut self, n: u64) {
        self.wire_bytes += n;
    }

    /// Records one message delivered to a live process.
    pub fn record_delivery(&mut self) {
        self.total_delivered += 1;
        self.ledger().delivered += 1;
    }

    /// Records `n` messages delivered at once (a whole frame).
    pub fn record_deliveries(&mut self, n: u64) {
        self.total_delivered += n;
        self.ledger().delivered += n;
    }

    /// Records `n` messages dropped at once because their frame's
    /// destination had crashed (frames drop atomically).
    pub fn record_frame_drop_to_crashed(&mut self, n: u64) {
        self.dropped_to_crashed += n;
        self.ledger().dropped_to_crashed += n;
    }

    /// Records one message dropped because its destination had crashed.
    pub fn record_drop_to_crashed(&mut self) {
        self.dropped_to_crashed += 1;
        self.ledger().dropped_to_crashed += 1;
    }

    /// Records `n` messages fenced at delivery because their frame was
    /// staged by (or addressed to) a previous incarnation of a since-
    /// recovered process, or before the current rejoin epoch. Fenced
    /// frames drop atomically, like frames to a crashed destination, and
    /// enter the reconciliation as their own term:
    /// `delivered + dropped + stale + abandoned == sent`. Zero unless a
    /// recovery happened.
    pub fn record_dropped_stale(&mut self, n: u64) {
        self.dropped_stale += n;
        self.ledger().dropped_stale += n;
    }

    /// Records one completed crash-recovery (snapshot installed, rejoin
    /// applied, incarnation bumped) and opens the next recovery epoch in
    /// the per-incarnation ledger.
    pub fn record_recovery(&mut self) {
        self.recoveries += 1;
        // Materialize the epoch that just ended (even if it saw no
        // traffic), then open the new one.
        self.ledger();
        self.ledgers.push(IncarnationLedger::default());
    }

    /// Records one snapshot transfer of `bytes` encoded bytes (the
    /// SNAPSHOT wire message). Snapshot traffic is state transfer, not
    /// protocol messaging: it is counted here and **not** in the message
    /// send/deliver reconciliation.
    pub fn record_snapshot_frame(&mut self, bytes: u64) {
        self.snapshot_frames += 1;
        self.snapshot_bytes += bytes;
    }

    /// Records one flush decision: why the batch became a frame and how
    /// long its oldest item was actually held (nanoseconds of real time on
    /// the live backends; virtual ticks × 1000 on the simulator, matching
    /// its tick = 1µs interpretation).
    pub fn record_flush(&mut self, reason: FlushReason, held_ns: u64) {
        match reason {
            FlushReason::Size => self.flushes_size += 1,
            FlushReason::Hold => self.flushes_hold += 1,
            FlushReason::Shutdown => self.flushes_shutdown += 1,
        }
        self.observed_hold_ns += held_ns;
        self.max_observed_hold_ns = self.max_observed_hold_ns.max(held_ns);
    }

    /// Records a link abandoned mid-stream: a socket write failed, or a
    /// reader met an oversized length prefix / corrupt frame it cannot
    /// account message-by-message. While this is non-zero the
    /// `delivered + dropped + abandoned == sent` teardown reconciliation
    /// may not balance exactly (a poisoned frame's message count is
    /// unknowable); when it is zero, the reconciliation must hold.
    pub fn record_link_abandoned(&mut self) {
        self.links_abandoned += 1;
    }

    /// Records `n` messages abandoned with a failed link (counted, unlike
    /// a poisoned frame's contents): messages whose socket write failed,
    /// plus everything drained off the dead link afterwards so teardown
    /// reconciliation still balances.
    pub fn record_messages_abandoned(&mut self, n: u64) {
        self.messages_abandoned += n;
        self.ledger().abandoned += n;
    }

    /// Records one successful re-dial of a previously connected link: the
    /// transport survived a transient socket failure without losing the
    /// link. Distinct from crash semantics (a crashed *process* never
    /// comes back) and from [`NetStats::record_link_abandoned`] (a link
    /// given up on for good).
    pub fn record_reconnect(&mut self) {
        self.reconnects += 1;
    }

    /// Records `n` frames retransmitted from a resend buffer after a
    /// reconnect — frames that had already been handed to a socket once.
    /// Retransmission never touches the message counters: a message is
    /// `sent` once, and the receiver's sequence dedup guarantees it is
    /// `delivered` (or `dropped`) at most once, so resend epochs enter the
    /// `delivered + dropped + abandoned == sent` reconciliation exactly
    /// once.
    pub fn record_frames_resent(&mut self, n: u64) {
        self.frames_resent += n;
    }

    /// Records one duplicate frame discarded by the receiver's sequence
    /// dedup (its seq was at or below the link's delivery cursor). The
    /// frame's messages were already counted delivered/dropped on first
    /// receipt, so a dedup hit changes no reconciliation counter.
    pub fn record_frame_deduped(&mut self) {
        self.frames_deduped += 1;
    }

    /// Records the current depth of one link's resend buffer (un-acked
    /// sealed frames), keeping the high-water mark.
    pub fn record_resend_buffer_depth(&mut self, depth: u64) {
        self.resend_buffer_high_water = self.resend_buffer_high_water.max(depth);
    }

    /// Successful re-dials of previously connected links.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Frames retransmitted from resend buffers after reconnects.
    pub fn frames_resent(&self) -> u64 {
        self.frames_resent
    }

    /// Duplicate frames discarded by receiver-side sequence dedup.
    pub fn frames_deduped(&self) -> u64 {
        self.frames_deduped
    }

    /// Deepest any link's resend buffer ever got (un-acked sealed frames).
    pub fn resend_buffer_high_water(&self) -> u64 {
        self.resend_buffer_high_water
    }

    /// Messages sent, total.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Messages delivered to live processes.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Messages dropped at delivery because the destination crashed.
    pub fn dropped_to_crashed(&self) -> u64 {
        self.dropped_to_crashed
    }

    /// Messages fenced at delivery as stale (previous incarnation or
    /// pre-rejoin epoch). Zero unless a recovery happened.
    pub fn dropped_stale(&self) -> u64 {
        self.dropped_stale
    }

    /// Completed crash-recoveries.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// SNAPSHOT transfers performed (one per completed recovery donor
    /// stream).
    pub fn snapshot_frames(&self) -> u64 {
        self.snapshot_frames
    }

    /// Encoded bytes of all SNAPSHOT transfers (excluded from
    /// [`NetStats::wire_bytes`]: state transfer, not protocol traffic).
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// The per-incarnation reconciliation ledger: row `k` covers the epoch
    /// between recovery `k-1` and recovery `k` (row 0 runs from start).
    /// Empty only when nothing was recorded at all. The sum of every
    /// column reproduces the aggregate counters exactly.
    pub fn incarnation_ledgers(&self) -> &[IncarnationLedger] {
        &self.ledgers
    }

    /// Messages sent of the given kind.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// All kinds seen, with send counts.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.sent_by_kind.iter().map(|(k, v)| (*k, *v))
    }

    /// Total control bits sent.
    pub fn control_bits(&self) -> u64 {
        self.control_bits
    }

    /// Total data bits sent.
    pub fn data_bits(&self) -> u64 {
        self.data_bits
    }

    /// Total per-message shard-tag routing bits: what addressing each
    /// message's register would cost if every envelope crossed its link
    /// alone (0 on single-register deployments). Under the framed
    /// transport these bits are *not* on the wire — the shared header is
    /// (see [`NetStats::frame_header_bits`]) — so this doubles as the
    /// unframed-equivalent comparison figure.
    pub fn routing_bits(&self) -> u64 {
        self.routing_bits
    }

    /// Frames handed to the network.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total shared-header routing bits actually sent by the framed
    /// transport — the amortized counterpart of
    /// [`NetStats::routing_bits`].
    pub fn frame_header_bits(&self) -> u64 {
        self.frame_header_bits
    }

    /// What the same frame headers would have cost with the delta/gamma
    /// mode forced (header codec v1 plus the mode bit) — the figure the
    /// per-frame chooser is asserted against: `frame_header_bits() ≤`
    /// this, always.
    pub fn frame_header_gamma_bits(&self) -> u64 {
        self.frame_header_gamma_bits
    }

    /// Bytes actually put on the wire by the byte-level codec (0 unless a
    /// backend encodes frames — see [`NetStats::record_wire_bytes`]).
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Flushes recorded for the given reason.
    pub fn flushes(&self, reason: FlushReason) -> u64 {
        match reason {
            FlushReason::Size => self.flushes_size,
            FlushReason::Hold => self.flushes_hold,
            FlushReason::Shutdown => self.flushes_shutdown,
        }
    }

    /// Total flush decisions recorded — equals [`NetStats::frames_sent`]
    /// on backends that record flush reasons (every frame is one flush).
    pub fn flushes_total(&self) -> u64 {
        self.flushes_size + self.flushes_hold + self.flushes_shutdown
    }

    /// Sum of observed hold times across all recorded flushes, in
    /// nanoseconds (see [`NetStats::record_flush`] for the simulator's
    /// tick conversion).
    pub fn observed_hold_ns(&self) -> u64 {
        self.observed_hold_ns
    }

    /// Longest observed hold of any single flush, in nanoseconds.
    pub fn max_observed_hold_ns(&self) -> u64 {
        self.max_observed_hold_ns
    }

    /// Mean observed hold per flush in nanoseconds (0.0 before any flush
    /// was recorded) — the figure that shows how hard an adaptive policy
    /// actually held batches back.
    pub fn mean_observed_hold_ns(&self) -> f64 {
        let flushes = self.flushes_total();
        if flushes == 0 {
            0.0
        } else {
            self.observed_hold_ns as f64 / flushes as f64
        }
    }

    /// Links abandoned mid-stream (failed writes, poisoned frames). See
    /// [`NetStats::record_link_abandoned`] for the reconciliation caveat.
    pub fn links_abandoned(&self) -> u64 {
        self.links_abandoned
    }

    /// Messages abandoned with failed links — the countable share of
    /// abandoned traffic, included in teardown reconciliation as
    /// `delivered + dropped + abandoned == sent`.
    pub fn messages_abandoned(&self) -> u64 {
        self.messages_abandoned
    }

    /// Records one read served from the process-local register cache — no
    /// message, no frame, no wire bytes. Cache-served reads never enter
    /// the `delivered + dropped + abandoned == sent` reconciliation (they
    /// send nothing), which is exactly the point.
    pub fn record_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Records a read that consulted the local cache and found no entry
    /// for its register, falling through to the message protocol.
    pub fn record_cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    /// Records a read that found a cached entry but whose safety gate
    /// refused to serve it (reader not co-located with the SWMR writer,
    /// or the entry not yet confirmed), falling through to the protocol.
    pub fn record_cache_fallback(&mut self) {
        self.cache_fallbacks += 1;
    }

    /// Reads served locally from the register cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Reads that found no cached entry and went to the network.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Reads whose cached entry the safety gate refused to serve.
    pub fn cache_fallbacks(&self) -> u64 {
        self.cache_fallbacks
    }

    /// Messages that travelled inside frames.
    pub fn framed_messages(&self) -> u64 {
        self.framed_messages
    }

    /// Largest number of messages coalesced into one frame.
    pub fn max_frame_messages(&self) -> u64 {
        self.max_frame_messages
    }

    /// Mean messages per frame (0.0 before any frame was sent) — the
    /// batching factor the routing amortization depends on.
    pub fn messages_per_frame(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.framed_messages as f64 / self.frames_sent as f64
        }
    }

    /// Traffic attributed to register `reg` (zeroed if the shard never sent).
    pub fn shard(&self, reg: RegisterId) -> ShardTraffic {
        self.per_shard.get(&reg).copied().unwrap_or_default()
    }

    /// All registers with attributed traffic, in id order.
    pub fn shards(&self) -> impl Iterator<Item = (RegisterId, ShardTraffic)> + '_ {
        self.per_shard.iter().map(|(r, t)| (*r, *t))
    }

    /// Largest control-bit cost of any single message (Table 1 row 3
    /// reports the worst case).
    pub fn max_msg_control_bits(&self) -> u64 {
        self.max_msg_control_bits
    }

    /// Largest total-bit cost of any single message.
    pub fn max_msg_total_bits(&self) -> u64 {
        self.max_msg_total_bits
    }

    /// Takes a snapshot for windowed measurements.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sent_by_kind: self.sent_by_kind.clone(),
            total_sent: self.total_sent,
            control_bits: self.control_bits,
            data_bits: self.data_bits,
            frames_sent: self.frames_sent,
            frame_header_bits: self.frame_header_bits,
            wire_bytes: self.wire_bytes,
            cache_hits: self.cache_hits,
        }
    }
}

/// A point-in-time copy of the send counters; subtract two snapshots to get
/// the traffic of a window.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    sent_by_kind: BTreeMap<&'static str, u64>,
    total_sent: u64,
    control_bits: u64,
    data_bits: u64,
    frames_sent: u64,
    frame_header_bits: u64,
    wire_bytes: u64,
    cache_hits: u64,
}

impl StatsSnapshot {
    /// Wire bytes put on the wire between `earlier` and `self`.
    pub fn wire_bytes_since(&self, earlier: &StatsSnapshot) -> u64 {
        self.wire_bytes - earlier.wire_bytes
    }

    /// Messages sent between `earlier` and `self`.
    pub fn sent_since(&self, earlier: &StatsSnapshot) -> u64 {
        self.total_sent - earlier.total_sent
    }

    /// Control bits sent between `earlier` and `self`.
    pub fn control_bits_since(&self, earlier: &StatsSnapshot) -> u64 {
        self.control_bits - earlier.control_bits
    }

    /// Data bits sent between `earlier` and `self`.
    pub fn data_bits_since(&self, earlier: &StatsSnapshot) -> u64 {
        self.data_bits - earlier.data_bits
    }

    /// Frames sent between `earlier` and `self`.
    pub fn frames_since(&self, earlier: &StatsSnapshot) -> u64 {
        self.frames_sent - earlier.frames_sent
    }

    /// Frame header bits sent between `earlier` and `self`.
    pub fn frame_header_bits_since(&self, earlier: &StatsSnapshot) -> u64 {
        self.frame_header_bits - earlier.frame_header_bits
    }

    /// Messages of `kind` sent between `earlier` and `self`.
    pub fn kind_since(&self, earlier: &StatsSnapshot, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
            - earlier.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Cache-served reads between `earlier` and `self`.
    pub fn cache_hits_since(&self, earlier: &StatsSnapshot) -> u64 {
        self.cache_hits - earlier.cache_hits
    }

    /// Total messages in this snapshot (since run start).
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::new();
        s.record_send("WRITE0", MessageCost::new(2, 64));
        s.record_send("WRITE1", MessageCost::new(2, 64));
        s.record_send("READ", MessageCost::new(2, 0));
        s.record_delivery();
        s.record_drop_to_crashed();
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.total_delivered(), 1);
        assert_eq!(s.dropped_to_crashed(), 1);
        assert_eq!(s.sent_of_kind("WRITE0"), 1);
        assert_eq!(s.sent_of_kind("NOPE"), 0);
        assert_eq!(s.control_bits(), 6);
        assert_eq!(s.data_bits(), 128);
        assert_eq!(s.max_msg_control_bits(), 2);
        assert_eq!(s.max_msg_total_bits(), 66);
    }

    #[test]
    fn snapshots_diff() {
        let mut s = NetStats::new();
        s.record_send("A", MessageCost::new(10, 5));
        let before = s.snapshot();
        s.record_send("A", MessageCost::new(10, 5));
        s.record_send("B", MessageCost::new(1, 0));
        let after = s.snapshot();
        assert_eq!(after.sent_since(&before), 2);
        assert_eq!(after.kind_since(&before, "A"), 1);
        assert_eq!(after.kind_since(&before, "B"), 1);
        assert_eq!(after.control_bits_since(&before), 11);
        assert_eq!(after.data_bits_since(&before), 5);
    }

    #[test]
    fn sharded_sends_split_and_aggregate() {
        let mut s = NetStats::new();
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);
        let cost = MessageCost::new(2, 64).with_routing(1);
        s.record_send_for(r0, "WRITE0", cost);
        s.record_send_for(r0, "READ", MessageCost::new(2, 0).with_routing(1));
        s.record_send_for(r1, "WRITE1", cost);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.routing_bits(), 3);
        assert_eq!(s.control_bits(), 6);
        let t0 = s.shard(r0);
        assert_eq!(t0.sent, 2);
        assert_eq!(t0.control_bits, 4);
        assert_eq!(t0.data_bits, 64);
        assert_eq!(t0.routing_bits, 2);
        assert_eq!(t0.total_bits(), 70);
        assert_eq!(s.shard(r1).sent, 1);
        assert_eq!(s.shard(RegisterId::new(9)), ShardTraffic::default());
        let shards: Vec<_> = s.shards().map(|(r, _)| r).collect();
        assert_eq!(shards, vec![r0, r1]);
    }

    #[test]
    fn frame_accounting_separates_header_from_per_message_routing() {
        let mut s = NetStats::new();
        let r0 = RegisterId::new(0);
        // Two messages recorded with their unframed-equivalent 6-bit tags...
        s.record_send_for(r0, "WRITE0", MessageCost::new(2, 64).with_routing(6));
        s.record_send_for(r0, "READ", MessageCost::new(2, 0).with_routing(6));
        // ...that actually travelled in one frame with a 9-bit header.
        s.record_frame(FrameCost {
            messages: 2,
            header_bits: 9,
            header_gamma_bits: 11,
            control_bits: 4,
            data_bits: 64,
            unframed_routing_bits: 12,
        });
        s.record_deliveries(2);
        s.record_wire_bytes(14);
        assert_eq!(s.routing_bits(), 12, "unframed-equivalent figure");
        assert_eq!(s.frame_header_bits(), 9, "bits actually on the wire");
        assert_eq!(s.frame_header_gamma_bits(), 11, "forced-gamma comparison");
        assert_eq!(s.wire_bytes(), 14);
        assert_eq!(s.frames_sent(), 1);
        assert_eq!(s.framed_messages(), 2);
        assert_eq!(s.max_frame_messages(), 2);
        assert!((s.messages_per_frame() - 2.0).abs() < f64::EPSILON);
        assert_eq!(s.total_delivered(), 2);
        assert_eq!(s.control_bits(), 4, "framing never touches control bits");

        let before = NetStats::new().snapshot();
        let after = s.snapshot();
        assert_eq!(after.frames_since(&before), 1);
        assert_eq!(after.frame_header_bits_since(&before), 9);
        assert_eq!(after.wire_bytes_since(&before), 14);

        s.record_frame_drop_to_crashed(3);
        assert_eq!(s.dropped_to_crashed(), 3);
    }

    #[test]
    fn flush_reasons_and_hold_summary_accumulate() {
        let mut s = NetStats::new();
        s.record_flush(FlushReason::Size, 1_000);
        s.record_flush(FlushReason::Size, 3_000);
        s.record_flush(FlushReason::Hold, 20_000);
        s.record_flush(FlushReason::Shutdown, 0);
        assert_eq!(s.flushes(FlushReason::Size), 2);
        assert_eq!(s.flushes(FlushReason::Hold), 1);
        assert_eq!(s.flushes(FlushReason::Shutdown), 1);
        assert_eq!(s.flushes_total(), 4);
        assert_eq!(s.observed_hold_ns(), 24_000);
        assert_eq!(s.max_observed_hold_ns(), 20_000);
        assert!((s.mean_observed_hold_ns() - 6_000.0).abs() < f64::EPSILON);
    }

    #[test]
    fn abandoned_counters_close_the_reconciliation() {
        let mut s = NetStats::new();
        for _ in 0..10 {
            s.record_send("A", MessageCost::new(2, 0));
        }
        s.record_deliveries(6);
        s.record_frame_drop_to_crashed(1);
        s.record_link_abandoned();
        s.record_messages_abandoned(3);
        assert_eq!(s.links_abandoned(), 1);
        assert_eq!(s.messages_abandoned(), 3);
        assert_eq!(
            s.total_delivered() + s.dropped_to_crashed() + s.messages_abandoned(),
            s.total_sent(),
            "abandoned messages keep teardown reconciliation balanced"
        );
    }

    #[test]
    fn reconnect_counters_track_resend_epochs_without_touching_reconciliation() {
        let mut s = NetStats::new();
        for _ in 0..4 {
            s.record_send("A", MessageCost::new(2, 0));
        }
        // First transmission delivers 2 messages, then the socket dies.
        s.record_deliveries(2);
        s.record_resend_buffer_depth(1);
        s.record_resend_buffer_depth(3);
        s.record_resend_buffer_depth(2);
        s.record_reconnect();
        // The replay retransmits two frames; one was already delivered and
        // is discarded by seq dedup, the other delivers the remaining 2.
        s.record_frames_resent(2);
        s.record_frame_deduped();
        s.record_deliveries(2);
        assert_eq!(s.reconnects(), 1);
        assert_eq!(s.frames_resent(), 2);
        assert_eq!(s.frames_deduped(), 1);
        assert_eq!(s.resend_buffer_high_water(), 3);
        assert_eq!(
            s.total_delivered() + s.dropped_to_crashed() + s.messages_abandoned(),
            s.total_sent(),
            "a resend epoch enters the reconciliation exactly once"
        );
    }

    #[test]
    fn fresh_stats_report_zero_flushes_and_holds() {
        let s = NetStats::new();
        assert_eq!(s.flushes_total(), 0);
        assert_eq!(s.mean_observed_hold_ns(), 0.0);
        assert_eq!(s.links_abandoned(), 0);
        assert_eq!(s.messages_abandoned(), 0);
    }

    #[test]
    fn cache_counters_accumulate_and_diff() {
        let mut s = NetStats::new();
        s.record_cache_miss();
        let before = s.snapshot();
        s.record_cache_hit();
        s.record_cache_hit();
        s.record_cache_fallback();
        assert_eq!(s.cache_hits(), 2);
        assert_eq!(s.cache_misses(), 1);
        assert_eq!(s.cache_fallbacks(), 1);
        // A cache hit sends nothing: the wire counters stay untouched.
        assert_eq!(s.total_sent(), 0);
        assert_eq!(s.wire_bytes(), 0);
        let after = s.snapshot();
        assert_eq!(after.cache_hits_since(&before), 2);
    }

    #[test]
    fn per_incarnation_ledger_partitions_the_reconciliation() {
        let mut s = NetStats::new();
        for _ in 0..5 {
            s.record_send("A", MessageCost::new(2, 0));
        }
        s.record_deliveries(3);
        s.record_frame_drop_to_crashed(1);
        s.record_recovery();
        // One pre-recovery message is fenced in the new epoch, and fresh
        // traffic flows.
        s.record_dropped_stale(1);
        for _ in 0..2 {
            s.record_send("A", MessageCost::new(2, 0));
        }
        s.record_deliveries(2);
        assert_eq!(s.recoveries(), 1);
        assert_eq!(s.dropped_stale(), 1);
        let ledgers = s.incarnation_ledgers();
        assert_eq!(ledgers.len(), 2, "one epoch per incarnation");
        assert_eq!(ledgers[0].sent, 5);
        assert_eq!(ledgers[0].delivered, 3);
        assert_eq!(ledgers[0].dropped_to_crashed, 1);
        assert_eq!(ledgers[1].sent, 2);
        assert_eq!(ledgers[1].delivered, 2);
        assert_eq!(ledgers[1].dropped_stale, 1);
        // Columns sum back to the aggregates, and the extended
        // reconciliation closes over the whole run.
        let sent: u64 = ledgers.iter().map(|l| l.sent).sum();
        let delivered: u64 = ledgers.iter().map(|l| l.delivered).sum();
        assert_eq!(sent, s.total_sent());
        assert_eq!(delivered, s.total_delivered());
        assert_eq!(
            s.total_delivered()
                + s.dropped_to_crashed()
                + s.dropped_stale()
                + s.messages_abandoned(),
            s.total_sent(),
            "stale fencing keeps the reconciliation exact"
        );
    }

    #[test]
    fn snapshot_transfer_is_counted_outside_the_message_counters() {
        let mut s = NetStats::new();
        s.record_snapshot_frame(40);
        s.record_snapshot_frame(16);
        assert_eq!(s.snapshot_frames(), 2);
        assert_eq!(s.snapshot_bytes(), 56);
        assert_eq!(s.total_sent(), 0, "state transfer is not a message");
        assert_eq!(s.wire_bytes(), 0);
    }

    #[test]
    fn kinds_iteration_sorted() {
        let mut s = NetStats::new();
        s.record_send("B", MessageCost::default());
        s.record_send("A", MessageCost::default());
        s.record_send("A", MessageCost::default());
        let kinds: Vec<_> = s.kinds().collect();
        assert_eq!(kinds, vec![("A", 2), ("B", 1)]);
    }
}
