//! Register value payloads and their size accounting.
//!
//! The paper distinguishes sharply between the *data value* a message carries
//! and its *control information*; the headline result is that two control
//! bits suffice. To reproduce the "msg size (bits)" row of Table 1 we need to
//! know how many bits of each message are data versus control, so register
//! values implement [`Payload`] with an explicit bit size.

use std::fmt::Debug;
use std::hash::Hash;
// `Sync` is part of the Payload contract so a process-local read cache can
// hand concurrent readers shared references to completed values.
use bytes::Bytes;

use crate::bits::{gamma_bits, BitReader, BitWriter, WireError};

/// A value that can be stored in the register and shipped inside `WRITE`
/// messages.
///
/// The `data_bits` method reports the payload's size so the wire-cost
/// accounting can separate data bits from control bits. Implementations are
/// provided for the value types used by the examples and experiments.
///
/// The codec methods ([`encoded_bits`](Payload::encoded_bits) /
/// [`encode_into`](Payload::encode_into) / [`decode`](Payload::decode)) let
/// messages carrying this value serialize it bit-exactly. Fixed-width
/// payloads (`u64`, `u32`, `bool`, `()`, tuples of these) encode in exactly
/// `data_bits()` bits, which is what makes a frame's byte length reconcile
/// with the cost accounting; variable-width payloads (`String`, `Vec<u8>`)
/// must be self-delimiting on the wire, so they prepend a gamma-coded
/// length and `encoded_bits() > data_bits()` — the prefix is framing, not
/// data, and is reported by `encoded_bits` only.
pub trait Payload: Clone + Eq + Hash + Debug + Send + Sync + 'static {
    /// Number of data bits this value occupies on the wire.
    fn data_bits(&self) -> u64;

    /// Exact size of [`Payload::encode_into`]'s output in bits. Defaults to
    /// `data_bits()` (correct for fixed-width codecs); variable-width
    /// codecs must override it alongside `encode_into`.
    fn encoded_bits(&self) -> u64 {
        self.data_bits()
    }

    /// Appends this value to `w` as a self-delimiting bit string.
    ///
    /// # Errors
    ///
    /// The default returns [`WireError::Unsupported`]: the type has no
    /// byte-level codec and cannot cross a byte transport.
    fn encode_into(&self, _w: &mut BitWriter) -> Result<(), WireError> {
        Err(WireError::Unsupported("payload codec"))
    }

    /// Parses one value from the front of `r` (the inverse of
    /// [`Payload::encode_into`]).
    ///
    /// # Errors
    ///
    /// The default returns [`WireError::Unsupported`]; implementations
    /// surface the usual decode errors, and variable-width decoders must
    /// bound the declared length against `r.remaining_bits()` *before*
    /// allocating.
    fn decode(_r: &mut BitReader<'_>) -> Result<Self, WireError>
    where
        Self: Sized,
    {
        Err(WireError::Unsupported("payload decode"))
    }
}

impl Payload for u64 {
    fn data_bits(&self) -> u64 {
        64
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        w.put_bits(*self, 64);
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        r.get_bits(64)
    }
}

impl Payload for u32 {
    fn data_bits(&self) -> u64 {
        32
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        w.put_bits(u64::from(*self), 32);
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(r.get_bits(32)? as u32)
    }
}

impl Payload for bool {
    fn data_bits(&self) -> u64 {
        1
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        w.put_bit(*self);
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        r.get_bit()
    }
}

impl Payload for () {
    fn data_bits(&self) -> u64 {
        0
    }
    fn encode_into(&self, _w: &mut BitWriter) -> Result<(), WireError> {
        Ok(())
    }
    fn decode(_r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

/// Shared codec of the byte-string payloads: γ(len+1), then the raw bytes.
fn encode_byte_string(bytes: &[u8], w: &mut BitWriter) {
    w.put_gamma(bytes.len() as u64 + 1);
    w.put_bytes(bytes);
}

fn decode_byte_string(r: &mut BitReader<'_>) -> Result<Vec<u8>, WireError> {
    let len = r.get_gamma()?.checked_sub(1).ok_or(WireError::Overflow)?;
    // Bound the declared length against the remaining input before the
    // allocation is sized from it (decoder hardening).
    if len.checked_mul(8).ok_or(WireError::Overflow)? > r.remaining_bits() {
        return Err(WireError::Overflow);
    }
    let mut bytes = Vec::with_capacity(len as usize);
    for _ in 0..len {
        bytes.push(r.get_bits(8)? as u8);
    }
    Ok(bytes)
}

impl Payload for String {
    fn data_bits(&self) -> u64 {
        8 * self.len() as u64
    }
    fn encoded_bits(&self) -> u64 {
        gamma_bits(self.len() as u64 + 1) + 8 * self.len() as u64
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        encode_byte_string(self.as_bytes(), w);
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        String::from_utf8(decode_byte_string(r)?)
            .map_err(|_| WireError::Malformed("string payload is not UTF-8"))
    }
}

impl Payload for Vec<u8> {
    fn data_bits(&self) -> u64 {
        8 * self.len() as u64
    }
    fn encoded_bits(&self) -> u64 {
        gamma_bits(self.len() as u64 + 1) + 8 * self.len() as u64
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        encode_byte_string(self, w);
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        decode_byte_string(r)
    }
}

/// The zero-copy bulk payload: wire layout identical to `Vec<u8>`
/// (γ(len+1), then the raw bytes — **no** alignment padding, so
/// [`Payload::encoded_bits`] stays position-independent and the frame cost
/// reconciliation is unaffected), but decoding goes through
/// [`BitReader::get_byte_slice`]: over a shared blob with the cursor
/// byte-aligned, the decoded value is a sub-view of the received
/// allocation, not a copy.
impl Payload for Bytes {
    fn data_bits(&self) -> u64 {
        8 * self.len() as u64
    }
    fn encoded_bits(&self) -> u64 {
        gamma_bits(self.len() as u64 + 1) + 8 * self.len() as u64
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        encode_byte_string(self, w);
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let len = r.get_gamma()?.checked_sub(1).ok_or(WireError::Overflow)?;
        // Bound the declared length against the remaining input before
        // any allocation or slice is sized from it (decoder hardening —
        // same policy as the Vec<u8> codec).
        if len.checked_mul(8).ok_or(WireError::Overflow)? > r.remaining_bits() {
            return Err(WireError::Overflow);
        }
        r.get_byte_slice(len as usize)
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn data_bits(&self) -> u64 {
        self.0.data_bits() + self.1.data_bits()
    }
    fn encoded_bits(&self) -> u64 {
        self.0.encoded_bits() + self.1.encoded_bits()
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        self.0.encode_into(w)?;
        self.1.encode_into(w)
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Number of bits needed to represent `x` in binary, i.e. `⌈log₂(x+1)⌉`
/// with the convention that zero still needs one bit.
///
/// Used to account for the size of unbounded sequence numbers in the ABD
/// baseline ("unbounded seq. nb" column of Table 1): a sequence number `sn`
/// costs `bits_for(sn)` bits on the wire.
///
/// # Examples
///
/// ```
/// use twobit_proto::payload::bits_for;
///
/// assert_eq!(bits_for(0), 1);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(2), 2);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// ```
pub fn bits_for(x: u64) -> u64 {
    u64::from(64 - x.max(1).leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_payload_sizes() {
        assert_eq!(7u64.data_bits(), 64);
        assert_eq!(7u32.data_bits(), 32);
        assert_eq!(true.data_bits(), 1);
        assert_eq!(().data_bits(), 0);
        assert_eq!("ab".to_string().data_bits(), 16);
        assert_eq!(vec![1u8, 2, 3].data_bits(), 24);
        assert_eq!((1u64, 2u32).data_bits(), 96);
    }

    fn roundtrip<P: Payload + PartialEq>(v: &P) {
        let mut w = BitWriter::new();
        v.encode_into(&mut w).unwrap();
        assert_eq!(w.bit_len(), v.encoded_bits(), "{v:?}: encoded_bits exact");
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(&P::decode(&mut r).unwrap(), v);
        assert_eq!(r.bits_read(), v.encoded_bits());
    }

    #[test]
    fn payload_codecs_roundtrip() {
        roundtrip(&0u64);
        roundtrip(&u64::MAX);
        roundtrip(&7u32);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&());
        roundtrip(&String::new());
        roundtrip(&"héllo wörld".to_string());
        roundtrip(&Vec::<u8>::new());
        roundtrip(&vec![0u8, 1, 255, 128]);
        roundtrip(&(42u64, true));
        roundtrip(&(1u32, vec![9u8; 30]));
        roundtrip(&Bytes::new());
        roundtrip(&Bytes::copy_from_slice(&[0u8, 1, 255, 128]));
        roundtrip(&(7u32, Bytes::copy_from_slice(&[9u8; 30])));
    }

    #[test]
    fn bytes_payload_matches_vec_wire_layout() {
        // `Bytes` and `Vec<u8>` are the same wire type: either decodes the
        // other's encoding, so callers can migrate per-call-site.
        let v = vec![3u8, 1, 4, 1, 5, 9, 2, 6];
        let mut w = BitWriter::new();
        v.encode_into(&mut w).unwrap();
        let blob = w.into_bytes();
        let mut r = BitReader::new(&blob);
        let b = Bytes::decode(&mut r).unwrap();
        assert_eq!(&b[..], &v[..]);
        assert_eq!(b.encoded_bits(), v.encoded_bits());

        let mut w2 = BitWriter::new();
        b.encode_into(&mut w2).unwrap();
        assert_eq!(w2.into_bytes(), blob);
    }

    #[test]
    fn bytes_decode_bounds_length_before_allocating() {
        let mut w = BitWriter::new();
        w.put_gamma((1u64 << 40) + 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(Bytes::decode(&mut r), Err(WireError::Overflow));
    }

    #[test]
    fn fixed_width_payloads_encode_in_exactly_data_bits() {
        assert_eq!(5u64.encoded_bits(), 5u64.data_bits());
        assert_eq!(5u32.encoded_bits(), 5u32.data_bits());
        assert_eq!(true.encoded_bits(), true.data_bits());
        assert_eq!(().encoded_bits(), ().data_bits());
        assert_eq!((1u64, 2u32).encoded_bits(), (1u64, 2u32).data_bits());
        // Variable-width payloads pay a self-delimiting length prefix.
        let v = vec![0u8; 10];
        assert!(v.encoded_bits() > v.data_bits());
        assert_eq!(v.encoded_bits(), bits_crate_gamma(11) + 80);
    }

    fn bits_crate_gamma(x: u64) -> u64 {
        crate::bits::gamma_bits(x)
    }

    #[test]
    fn byte_string_decode_bounds_length_before_allocating() {
        // γ(2^40 + 1) then nothing: the declared length dwarfs the input
        // and must be rejected before Vec::with_capacity sees it.
        let mut w = BitWriter::new();
        w.put_gamma((1u64 << 40) + 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(Vec::<u8>::decode(&mut r), Err(WireError::Overflow));
    }

    #[test]
    fn string_decode_rejects_bad_utf8() {
        let mut w = BitWriter::new();
        encode_byte_string(&[0xFF, 0xFE], &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(
            String::decode(&mut r),
            Err(WireError::Malformed("string payload is not UTF-8"))
        );
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
        for k in 1..63 {
            assert_eq!(bits_for(1 << k), k + 1, "2^{k}");
            assert_eq!(bits_for((1 << k) - 1), k, "2^{k}-1");
        }
    }
}
