//! Register value payloads and their size accounting.
//!
//! The paper distinguishes sharply between the *data value* a message carries
//! and its *control information*; the headline result is that two control
//! bits suffice. To reproduce the "msg size (bits)" row of Table 1 we need to
//! know how many bits of each message are data versus control, so register
//! values implement [`Payload`] with an explicit bit size.

use std::fmt::Debug;
use std::hash::Hash;

/// A value that can be stored in the register and shipped inside `WRITE`
/// messages.
///
/// The `data_bits` method reports the payload's size so the wire-cost
/// accounting can separate data bits from control bits. Implementations are
/// provided for the value types used by the examples and experiments.
pub trait Payload: Clone + Eq + Hash + Debug + Send + 'static {
    /// Number of data bits this value occupies on the wire.
    fn data_bits(&self) -> u64;
}

impl Payload for u64 {
    fn data_bits(&self) -> u64 {
        64
    }
}

impl Payload for u32 {
    fn data_bits(&self) -> u64 {
        32
    }
}

impl Payload for bool {
    fn data_bits(&self) -> u64 {
        1
    }
}

impl Payload for () {
    fn data_bits(&self) -> u64 {
        0
    }
}

impl Payload for String {
    fn data_bits(&self) -> u64 {
        8 * self.len() as u64
    }
}

impl Payload for Vec<u8> {
    fn data_bits(&self) -> u64 {
        8 * self.len() as u64
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn data_bits(&self) -> u64 {
        self.0.data_bits() + self.1.data_bits()
    }
}

/// Number of bits needed to represent `x` in binary, i.e. `⌈log₂(x+1)⌉`
/// with the convention that zero still needs one bit.
///
/// Used to account for the size of unbounded sequence numbers in the ABD
/// baseline ("unbounded seq. nb" column of Table 1): a sequence number `sn`
/// costs `bits_for(sn)` bits on the wire.
///
/// # Examples
///
/// ```
/// use twobit_proto::payload::bits_for;
///
/// assert_eq!(bits_for(0), 1);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(2), 2);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// ```
pub fn bits_for(x: u64) -> u64 {
    u64::from(64 - x.max(1).leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_payload_sizes() {
        assert_eq!(7u64.data_bits(), 64);
        assert_eq!(7u32.data_bits(), 32);
        assert_eq!(true.data_bits(), 1);
        assert_eq!(().data_bits(), 0);
        assert_eq!("ab".to_string().data_bits(), 16);
        assert_eq!(vec![1u8, 2, 3].data_bits(), 24);
        assert_eq!((1u64, 2u32).data_bits(), 96);
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
        for k in 1..63 {
            assert_eq!(bits_for(1 << k), k + 1, "2^{k}");
            assert_eq!(bits_for((1 << k) - 1), k, "2^{k}-1");
        }
    }
}
