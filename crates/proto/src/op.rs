//! Register operations and their outcomes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one operation *invocation*, unique within a run.
///
/// The paper's processes are sequential (one pending operation per process at
/// a time); the id exists so that execution substrates can correlate an
/// invocation with its completion and so histories can be cross-referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(u64);

impl OpId {
    /// Creates an operation id from a raw counter value.
    pub fn new(raw: u64) -> Self {
        OpId(raw)
    }

    /// Returns the raw counter value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// An operation on the register: `REG.read()` or `REG.write(v)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation<V> {
    /// `REG.read()` — returns the current value of the register.
    Read,
    /// `REG.write(v)` — defines `v` as the new value of the register.
    /// Only the writer process may invoke this on an SWMR register.
    Write(V),
}

impl<V> Operation<V> {
    /// Returns `true` for a read operation.
    pub fn is_read(&self) -> bool {
        matches!(self, Operation::Read)
    }

    /// Returns `true` for a write operation.
    pub fn is_write(&self) -> bool {
        matches!(self, Operation::Write(_))
    }

    /// Returns the value being written, if this is a write.
    pub fn written_value(&self) -> Option<&V> {
        match self {
            Operation::Write(v) => Some(v),
            Operation::Read => None,
        }
    }
}

/// The outcome delivered when an operation completes.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpOutcome<V> {
    /// A write completed (`return()` at Fig. 1 line 4).
    Written,
    /// A read completed, returning the value (`return(history_i[sn])`,
    /// Fig. 1 line 10).
    ReadValue(V),
}

impl<V> OpOutcome<V> {
    /// Returns the value carried by a read outcome.
    pub fn read_value(&self) -> Option<&V> {
        match self {
            OpOutcome::ReadValue(v) => Some(v),
            OpOutcome::Written => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_roundtrip_and_order() {
        assert_eq!(OpId::new(7).raw(), 7);
        assert!(OpId::new(1) < OpId::new(2));
        assert_eq!(OpId::new(3).to_string(), "op3");
    }

    #[test]
    fn operation_classification() {
        let r: Operation<u64> = Operation::Read;
        let w = Operation::Write(42u64);
        assert!(r.is_read() && !r.is_write());
        assert!(w.is_write() && !w.is_read());
        assert_eq!(w.written_value(), Some(&42));
        assert_eq!(r.written_value(), None);
    }

    #[test]
    fn outcome_accessors() {
        let w: OpOutcome<u64> = OpOutcome::Written;
        let r = OpOutcome::ReadValue(9u64);
        assert_eq!(w.read_value(), None);
        assert_eq!(r.read_value(), Some(&9));
    }
}
