//! Per-process multiplexing of many register automata over one network.
//!
//! The paper's algorithm implements **one** SWMR register. To serve many
//! registers from one cluster, each process keeps an independent automaton
//! instance per register; wire messages are wrapped in an
//! [`Envelope`] carrying the target [`RegisterId`] and delivered to the
//! matching instance. Registers never interact — each one is exactly the
//! paper's protocol, with exactly its control-bit budget — so per-register
//! correctness (and the two-bit claim) is preserved by construction.
//!
//! [`ShardSet`] is that per-process instance map. Both execution substrates
//! (the sharded simulator and the live runtime) embed one `ShardSet` per
//! process and route by envelope.

use std::collections::BTreeMap;

use crate::automaton::{Automaton, Effects};
use crate::id::{ProcessId, RegisterId};
use crate::op::{OpId, Operation};
use crate::wire::Envelope;

/// One process's automaton instances, keyed by register.
///
/// # Examples
///
/// ```
/// use twobit_proto::{Effects, OpId, Operation, ProcessId, RegisterId, ShardSet, SystemConfig};
/// # use twobit_proto::{Automaton, MessageCost, OpOutcome, WireMessage};
/// # #[derive(Clone, Debug)]
/// # struct NoMsg;
/// # impl WireMessage for NoMsg {
/// #     fn kind(&self) -> &'static str { "NONE" }
/// #     fn cost(&self) -> MessageCost { MessageCost::new(0, 0) }
/// # }
/// # struct Local { id: ProcessId, cfg: SystemConfig, value: u64 }
/// # impl Automaton for Local {
/// #     type Value = u64;
/// #     type Msg = NoMsg;
/// #     fn id(&self) -> ProcessId { self.id }
/// #     fn config(&self) -> SystemConfig { self.cfg }
/// #     fn on_invoke(&mut self, op_id: OpId, op: Operation<u64>, fx: &mut Effects<NoMsg, u64>) {
/// #         match op {
/// #             Operation::Write(v) => { self.value = v; fx.complete_write(op_id); }
/// #             Operation::Read => fx.complete_read(op_id, self.value),
/// #         }
/// #     }
/// #     fn on_message(&mut self, _: ProcessId, _: NoMsg, _: &mut Effects<NoMsg, u64>) {}
/// #     fn state_bits(&self) -> u64 { 64 }
/// # }
/// let cfg = SystemConfig::new(3, 1)?;
/// let regs = RegisterId::first(4);
/// let mut set = ShardSet::new(ProcessId::new(0), &regs, |_reg, id| Local {
///     id,
///     cfg,
///     value: 0,
/// });
/// assert_eq!(set.registers().count(), 4);
/// assert_eq!(set.routing_bits(), 2); // ⌈log₂ 4⌉
///
/// let mut fx = Effects::new();
/// set.on_invoke(RegisterId::new(2), OpId::new(0), Operation::Write(7), &mut fx)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardSet<A: Automaton> {
    id: ProcessId,
    routing_bits: u64,
    shards: BTreeMap<RegisterId, A>,
}

impl<A: Automaton> std::fmt::Debug for ShardSet<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("id", &self.id)
            .field("routing_bits", &self.routing_bits)
            .field("registers", &self.shards.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

/// Error returned when an operation targets a register the set does not
/// host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnknownRegister(pub RegisterId);

impl std::fmt::Display for UnknownRegister {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown register {}", self.0)
    }
}

impl std::error::Error for UnknownRegister {}

impl<A: Automaton> ShardSet<A> {
    /// Creates one automaton instance per register via `make`.
    pub fn new(
        id: ProcessId,
        registers: &[RegisterId],
        mut make: impl FnMut(RegisterId, ProcessId) -> A,
    ) -> Self {
        let shards: BTreeMap<RegisterId, A> = registers
            .iter()
            .map(|&reg| {
                let a = make(reg, id);
                assert_eq!(a.id(), id, "automaton id must match its process");
                (reg, a)
            })
            .collect();
        assert_eq!(
            shards.len(),
            registers.len(),
            "duplicate register ids in shard set"
        );
        ShardSet {
            id,
            routing_bits: RegisterId::routing_bits(shards.len()),
            shards,
        }
    }

    /// This process's identity.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Shard-tag width of this set (`⌈log₂ k⌉` for `k` hosted registers):
    /// what addressing one register costs when an envelope crosses a link
    /// alone. Transports use it as the unframed-equivalent routing figure;
    /// on the wire, frames share one delta-encoded header instead.
    pub fn routing_bits(&self) -> u64 {
        self.routing_bits
    }

    /// Hosted registers, in id order.
    pub fn registers(&self) -> impl Iterator<Item = RegisterId> + '_ {
        self.shards.keys().copied()
    }

    /// Immutable access to one register's automaton.
    pub fn shard(&self, reg: RegisterId) -> Option<&A> {
        self.shards.get(&reg)
    }

    /// Routes an invocation to the target register's automaton.
    ///
    /// # Errors
    ///
    /// [`UnknownRegister`] if `reg` is not hosted here (no effects are
    /// produced in that case).
    pub fn on_invoke(
        &mut self,
        reg: RegisterId,
        op_id: OpId,
        op: Operation<A::Value>,
        fx: &mut Effects<Envelope<A::Msg>, A::Value>,
    ) -> Result<(), UnknownRegister> {
        let shard = self.shards.get_mut(&reg).ok_or(UnknownRegister(reg))?;
        let mut inner = Effects::new();
        shard.on_invoke(op_id, op, &mut inner);
        self.wrap(reg, inner, fx);
        Ok(())
    }

    /// Routes a received envelope to the target register's automaton.
    /// Envelopes for unknown registers are dropped (a byzantine-free system
    /// never produces them; dropping keeps delivery total).
    pub fn on_message(
        &mut self,
        from: ProcessId,
        env: Envelope<A::Msg>,
        fx: &mut Effects<Envelope<A::Msg>, A::Value>,
    ) {
        let reg = env.reg;
        let Some(shard) = self.shards.get_mut(&reg) else {
            debug_assert!(false, "envelope for unknown register {reg}");
            return;
        };
        let mut inner = Effects::new();
        shard.on_message(from, env.inner, &mut inner);
        self.wrap(reg, inner, fx);
    }

    /// Donor side of recovery for one register: the hosted automaton's
    /// confirmed value sequence, or `None` when the register is unknown or
    /// its automaton does not support recovery.
    pub fn recovery_snapshot(&self, reg: RegisterId) -> Option<Vec<A::Value>> {
        self.shards.get(&reg).and_then(Automaton::recovery_snapshot)
    }

    /// Installs a recovery snapshot into one register's automaton (the
    /// recovering process's side).
    ///
    /// # Errors
    ///
    /// [`UnknownRegister`] if `reg` is not hosted here.
    pub fn install_recovery(
        &mut self,
        reg: RegisterId,
        snapshot: &[A::Value],
    ) -> Result<(), UnknownRegister> {
        let shard = self.shards.get_mut(&reg).ok_or(UnknownRegister(reg))?;
        shard.install_recovery(snapshot);
        Ok(())
    }

    /// Routes a rejoin barrier to one register's automaton (the live-peer
    /// side), wrapping its effects in envelopes like every other handler.
    ///
    /// # Errors
    ///
    /// [`UnknownRegister`] if `reg` is not hosted here (no effects are
    /// produced in that case).
    pub fn apply_rejoin(
        &mut self,
        reg: RegisterId,
        rejoining: ProcessId,
        snapshot: &[A::Value],
        fx: &mut Effects<Envelope<A::Msg>, A::Value>,
    ) -> Result<(), UnknownRegister> {
        let shard = self.shards.get_mut(&reg).ok_or(UnknownRegister(reg))?;
        let mut inner = Effects::new();
        shard.apply_rejoin(rejoining, snapshot, &mut inner);
        self.wrap(reg, inner, fx);
        Ok(())
    }

    /// Total local state across all hosted registers.
    pub fn state_bits(&self) -> u64 {
        self.shards.values().map(Automaton::state_bits).sum()
    }

    /// Checks each hosted automaton's local invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation, prefixed with the register id.
    pub fn check_local_invariants(&self) -> Result<(), String> {
        for (reg, a) in &self.shards {
            a.check_local_invariants()
                .map_err(|e| format!("{reg}: {e}"))?;
        }
        Ok(())
    }

    fn wrap(
        &self,
        reg: RegisterId,
        mut inner: Effects<A::Msg, A::Value>,
        fx: &mut Effects<Envelope<A::Msg>, A::Value>,
    ) {
        for (to, msg) in inner.drain_sends() {
            fx.send(to, Envelope::new(reg, msg));
        }
        for (op_id, outcome) in inner.drain_completions() {
            fx.complete(op_id, outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpOutcome;
    use crate::wire::{MessageCost, WireMessage};
    use crate::SystemConfig;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Ping;

    impl WireMessage for Ping {
        fn kind(&self) -> &'static str {
            "PING"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(2, 0)
        }
    }

    /// Broadcasts one PING per write, completes reads with a counter of
    /// received messages.
    struct Probe {
        id: ProcessId,
        cfg: SystemConfig,
        received: u64,
    }

    impl Automaton for Probe {
        type Value = u64;
        type Msg = Ping;

        fn id(&self) -> ProcessId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn on_invoke(&mut self, op_id: OpId, op: Operation<u64>, fx: &mut Effects<Ping, u64>) {
            match op {
                Operation::Read => fx.complete_read(op_id, self.received),
                Operation::Write(_) => {
                    for p in self.cfg.peers(self.id).collect::<Vec<_>>() {
                        fx.send(p, Ping);
                    }
                    fx.complete_write(op_id);
                }
            }
        }
        fn on_message(&mut self, _from: ProcessId, _msg: Ping, _fx: &mut Effects<Ping, u64>) {
            self.received += 1;
        }
        fn state_bits(&self) -> u64 {
            64
        }
    }

    fn set_of(n_regs: usize) -> ShardSet<Probe> {
        let cfg = SystemConfig::new(3, 1).unwrap();
        ShardSet::new(ProcessId::new(0), &RegisterId::first(n_regs), |_reg, id| {
            Probe {
                id,
                cfg,
                received: 0,
            }
        })
    }

    #[test]
    fn invoke_wraps_sends_in_envelopes() {
        let mut set = set_of(4);
        let reg = RegisterId::new(2);
        let mut fx = Effects::new();
        set.on_invoke(reg, OpId::new(0), Operation::Write(1), &mut fx)
            .unwrap();
        assert_eq!(fx.completions().len(), 1);
        let sends: Vec<_> = fx.drain_sends().collect();
        assert_eq!(sends.len(), 2);
        for (_, env) in &sends {
            assert_eq!(env.reg, reg);
            assert_eq!(env.cost().control_bits, 2);
            // The shard tag is no longer carried per message; the set's tag
            // width is derived where traffic is accounted.
            assert_eq!(env.cost().routing_bits, 0);
        }
        assert_eq!(set.routing_bits(), 2);
    }

    #[test]
    fn messages_route_to_their_shard_only() {
        let mut set = set_of(3);
        let mut fx = Effects::new();
        set.on_message(
            ProcessId::new(1),
            Envelope::new(RegisterId::new(1), Ping),
            &mut fx,
        );
        let probe = |reg: usize| set.shard(RegisterId::new(reg)).unwrap().received;
        assert_eq!(probe(0), 0);
        assert_eq!(probe(1), 1);
        assert_eq!(probe(2), 0);
    }

    #[test]
    fn unknown_register_is_typed() {
        let mut set = set_of(2);
        let mut fx = Effects::new();
        let err = set
            .on_invoke(RegisterId::new(9), OpId::new(0), Operation::Read, &mut fx)
            .unwrap_err();
        assert_eq!(err, UnknownRegister(RegisterId::new(9)));
        assert!(fx.is_empty());
    }

    #[test]
    fn single_register_space_has_no_routing_overhead() {
        let set = set_of(1);
        assert_eq!(set.routing_bits(), 0);
        assert_eq!(set.state_bits(), 64);
        set.check_local_invariants().unwrap();
    }

    #[test]
    fn completions_pass_through() {
        let mut set = set_of(2);
        let mut fx = Effects::new();
        set.on_invoke(RegisterId::ZERO, OpId::new(7), Operation::Read, &mut fx)
            .unwrap();
        assert_eq!(fx.completions(), &[(OpId::new(7), OpOutcome::ReadValue(0))]);
    }
}
