//! Property tests for the substrate primitives.

use proptest::prelude::*;
use twobit_proto::payload::bits_for;
use twobit_proto::{MessageCost, NetStats, Payload, SystemConfig};

proptest! {
    /// `bits_for` is the exact binary width: `2^(b−1) ≤ max(x,1) < 2^b`.
    #[test]
    fn bits_for_is_binary_width(x in any::<u64>()) {
        let b = bits_for(x);
        prop_assert!((1..=64).contains(&b));
        let x1 = x.max(1);
        if b < 64 {
            prop_assert!(x1 < (1u64 << b));
        }
        prop_assert!(x1 >= (1u64 << (b - 1)) || b == 1);
    }

    /// `bits_for` is monotone.
    #[test]
    fn bits_for_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bits_for(lo) <= bits_for(hi));
    }

    /// Quorum arithmetic: for every valid (n, t), two quorums intersect and
    /// the quorum survives t crashes.
    #[test]
    fn quorums_intersect_and_survive(n in 1usize..200) {
        for t in 0..n {
            match SystemConfig::new(n, t) {
                Ok(cfg) => {
                    prop_assert!(2 * t < n);
                    prop_assert!(2 * cfg.quorum() > n, "quorum intersection");
                    prop_assert!(cfg.quorum() <= n - t, "reachable with t crashes");
                }
                Err(_) => prop_assert!(2 * t >= n),
            }
        }
    }

    /// Byte payloads report exactly 8 bits per byte; message cost totals add
    /// up; NetStats accumulation equals the sum of its parts.
    #[test]
    fn cost_accounting_adds_up(
        sizes in prop::collection::vec(0u64..2_000, 1..50),
    ) {
        let mut stats = NetStats::new();
        let mut control = 0u64;
        let mut data = 0u64;
        let mut max_total = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            let payload = vec![0u8; s as usize];
            let cost = MessageCost::new(2 + (i as u64 % 7), payload.data_bits());
            prop_assert_eq!(cost.data_bits, 8 * s);
            prop_assert_eq!(cost.total_bits(), cost.control_bits + cost.data_bits);
            control += cost.control_bits;
            data += cost.data_bits;
            max_total = max_total.max(cost.total_bits());
            stats.record_send(if i % 2 == 0 { "A" } else { "B" }, cost);
        }
        prop_assert_eq!(stats.control_bits(), control);
        prop_assert_eq!(stats.data_bits(), data);
        prop_assert_eq!(stats.max_msg_total_bits(), max_total);
        prop_assert_eq!(stats.total_sent(), sizes.len() as u64);
        prop_assert_eq!(
            stats.sent_of_kind("A") + stats.sent_of_kind("B"),
            sizes.len() as u64
        );
    }
}
