//! Property tests for the substrate primitives.

use bytes::Bytes;
use proptest::prelude::*;
use twobit_proto::bits::{gamma_bits, BitReader, BitWriter, WireError};
use twobit_proto::payload::bits_for;
use twobit_proto::{
    Envelope, Frame, FrameHeader, MessageCost, NetStats, Payload, RegisterId, SystemConfig,
    WireMessage,
};

/// A dummy protocol message with a recognizable payload and the paper's
/// two-bit control cost.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Probe(u64);

impl WireMessage for Probe {
    fn kind(&self) -> &'static str {
        "PROBE"
    }
    fn cost(&self) -> MessageCost {
        MessageCost::new(2, 64)
    }
}

/// A codec-capable message carrying a byte-string payload: two control
/// bits, then the `Bytes` payload codec (γ(len+1) + raw bytes). Used to
/// probe the zero-copy decode path over arbitrary frame layouts.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Chunk(Bytes);

impl WireMessage for Chunk {
    fn kind(&self) -> &'static str {
        "CHUNK"
    }
    fn cost(&self) -> MessageCost {
        MessageCost::new(2, 8 * self.0.len() as u64)
    }
    fn encoded_bits(&self) -> u64 {
        2 + Payload::encoded_bits(&self.0)
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        w.put_bits(0b10, 2);
        Payload::encode_into(&self.0, w)
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        if r.get_bits(2)? != 0b10 {
            return Err(WireError::Malformed("bad Chunk tag"));
        }
        Ok(Chunk(<Bytes as Payload>::decode(r)?))
    }
}

proptest! {
    /// `bits_for` is the exact binary width: `2^(b−1) ≤ max(x,1) < 2^b`.
    #[test]
    fn bits_for_is_binary_width(x in any::<u64>()) {
        let b = bits_for(x);
        prop_assert!((1..=64).contains(&b));
        let x1 = x.max(1);
        if b < 64 {
            prop_assert!(x1 < (1u64 << b));
        }
        prop_assert!(x1 >= (1u64 << (b - 1)) || b == 1);
    }

    /// `bits_for` is monotone.
    #[test]
    fn bits_for_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bits_for(lo) <= bits_for(hi));
    }

    /// Quorum arithmetic: for every valid (n, t), two quorums intersect and
    /// the quorum survives t crashes.
    #[test]
    fn quorums_intersect_and_survive(n in 1usize..200) {
        for t in 0..n {
            match SystemConfig::new(n, t) {
                Ok(cfg) => {
                    prop_assert!(2 * t < n);
                    prop_assert!(2 * cfg.quorum() > n, "quorum intersection");
                    prop_assert!(cfg.quorum() <= n - t, "reachable with t crashes");
                }
                Err(_) => prop_assert!(2 * t >= n),
            }
        }
    }

    /// Byte payloads report exactly 8 bits per byte; message cost totals add
    /// up; NetStats accumulation equals the sum of its parts.
    #[test]
    fn cost_accounting_adds_up(
        sizes in prop::collection::vec(0u64..2_000, 1..50),
    ) {
        let mut stats = NetStats::new();
        let mut control = 0u64;
        let mut data = 0u64;
        let mut max_total = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            let payload = vec![0u8; s as usize];
            let cost = MessageCost::new(2 + (i as u64 % 7), payload.data_bits());
            prop_assert_eq!(cost.data_bits, 8 * s);
            prop_assert_eq!(cost.total_bits(), cost.control_bits + cost.data_bits);
            control += cost.control_bits;
            data += cost.data_bits;
            max_total = max_total.max(cost.total_bits());
            stats.record_send(if i % 2 == 0 { "A" } else { "B" }, cost);
        }
        prop_assert_eq!(stats.control_bits(), control);
        prop_assert_eq!(stats.data_bits(), data);
        prop_assert_eq!(stats.max_msg_total_bits(), max_total);
        prop_assert_eq!(stats.total_sent(), sizes.len() as u64);
        prop_assert_eq!(
            stats.sent_of_kind("A") + stats.sent_of_kind("B"),
            sizes.len() as u64
        );
    }

    /// Frame codec round trip: building a frame preserves every message,
    /// groups sort by register while each register keeps its send order,
    /// and the header survives encode → decode bit-exactly.
    #[test]
    fn frame_codec_roundtrip(
        tags in prop::collection::vec(0usize..1_024, 0..200),
        space_bits in 0u64..11,
    ) {
        let envs: Vec<Envelope<Probe>> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| Envelope::new(RegisterId::new(t), Probe(i as u64)))
            .collect();
        let frame = Frame::from_envelopes(envs);
        prop_assert_eq!(frame.len(), tags.len());

        // Wire order: register-sorted groups, send order within a group.
        let wire: Vec<(usize, u64)> = frame
            .iter()
            .map(|(r, m)| (r.index(), m.0))
            .collect();
        let mut expected: Vec<(usize, u64)> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        // Stable sort by register reproduces "grouped, order preserved".
        expected.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(&wire, &expected);

        // Header: groups match the tag multiset; encode/decode round
        // trips; the reported bit size matches the byte size produced.
        let header = frame.header();
        prop_assert_eq!(header.messages(), tags.len() as u64);
        let bytes = header.encode();
        prop_assert_eq!(FrameHeader::decode(&bytes).unwrap(), header.clone());
        prop_assert_eq!(bytes.len() as u64, header.bits().div_ceil(8));

        // Costs: control and data bits are exactly the per-message sums
        // (framing never touches them); the unframed comparison figure is
        // messages × tag width; header_bits is the codec's exact size.
        let cost = frame.cost(space_bits);
        prop_assert_eq!(cost.messages, tags.len() as u64);
        prop_assert_eq!(cost.control_bits, 2 * tags.len() as u64);
        prop_assert_eq!(cost.data_bits, 64 * tags.len() as u64);
        prop_assert_eq!(cost.unframed_routing_bits, space_bits * tags.len() as u64);
        // A 0-width tag (single-register deployment) degenerates the
        // header: nothing to route, no routing bits.
        if space_bits == 0 {
            prop_assert_eq!(cost.header_bits, 0);
        } else {
            prop_assert_eq!(cost.header_bits, header.bits());
        }
        prop_assert_eq!(
            cost.total_bits(),
            cost.header_bits + cost.control_bits + cost.data_bits
        );

        // Decomposing back to envelopes loses nothing.
        let back: Vec<(usize, u64)> = frame
            .into_envelopes()
            .map(|e| (e.reg.index(), e.inner.0))
            .collect();
        prop_assert_eq!(back, expected);
    }

    /// Zero-copy decode: parsing a `Bytes` blob with `decode_shared` hands
    /// every *byte-aligned* payload out as a pointer into the received
    /// allocation — no copy — while unaligned payloads (the bit-packed
    /// format cannot promise alignment) are copied but read back equal.
    /// The expected alignment of each payload is recomputed independently
    /// from the declared bit layout, so this also cross-checks
    /// `encoded_bits` against the encoder.
    #[test]
    fn shared_frame_decode_is_zero_copy_on_aligned_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..20),
        reg in 0usize..8,
    ) {
        let envs: Vec<Envelope<Chunk>> = payloads
            .iter()
            .map(|p| Envelope::new(RegisterId::new(reg), Chunk(Bytes::copy_from_slice(p))))
            .collect();
        let frame = Frame::from_envelopes(envs);
        let blob = frame.encode().unwrap();
        let decoded = Frame::<Chunk>::decode_shared(&blob).unwrap();
        prop_assert_eq!(&decoded, &frame);

        let base = blob.as_ptr() as usize;
        let mut aligned_seen = false;
        // Walk the wire layout: header, then per message 2 tag bits and a
        // γ(len+1) length code ahead of the raw payload bytes.
        let mut pos = frame.header().bits();
        for (_, msg) in decoded.iter() {
            pos += 2 + gamma_bits(msg.0.len() as u64 + 1);
            let p = msg.0.as_ptr() as usize;
            if pos % 8 == 0 && !msg.0.is_empty() {
                aligned_seen = true;
                prop_assert_eq!(
                    p,
                    base + 4 + (pos / 8) as usize,
                    "aligned payload at bit {} must view the blob", pos
                );
            } else if !msg.0.is_empty() {
                prop_assert!(
                    p < base || p >= base + blob.len(),
                    "unaligned payload at bit {} cannot view the blob", pos
                );
            }
            pos += 8 * msg.0.len() as u64;
        }
        prop_assert_eq!(pos, frame.encoded_bits());
        // Not every random layout aligns; when one does, the views must
        // outlive the frame they were decoded from.
        if aligned_seen {
            let views: Vec<Bytes> = decoded.iter().map(|(_, m)| m.0.clone()).collect();
            drop(decoded);
            drop(blob);
            for (v, p) in views.iter().zip(&payloads) {
                prop_assert_eq!(&v[..], &p[..]);
            }
        }
    }

    /// Batching a whole space's worth of adjacent registers always
    /// amortizes: with one message per register of a `k`-register space,
    /// the shared header beats per-message tags for every k ≥ 32.
    #[test]
    fn dense_frames_always_save_routing(k in 32usize..512) {
        let frame = Frame::from_envelopes(
            (0..k).map(|t| Envelope::new(RegisterId::new(t), Probe(0))),
        );
        let per_msg = RegisterId::routing_bits(k);
        let cost = frame.cost(per_msg);
        prop_assert!(
            cost.header_bits < cost.unframed_routing_bits,
            "header {} vs unframed {} at k={}",
            cost.header_bits,
            cost.unframed_routing_bits,
            k
        );
        prop_assert_eq!(
            cost.routing_bits_saved(),
            cost.unframed_routing_bits - cost.header_bits
        );
    }
}
