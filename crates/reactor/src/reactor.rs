//! The reactor event loop: every ordered link of a node, multiplexed over
//! a small fixed pool of threads.
//!
//! Each reactor thread owns a disjoint set of *send links* (outbound
//! ordered pairs `src → dst` whose `src` is hosted on this node) and
//! *receive connections* (accepted sockets carrying a peer's link toward a
//! locally hosted process). One `poll(2)` set per thread watches all of
//! them plus a [`Waker`] and — on thread 0 — the node's listener. The
//! per-link [`LinkBatcher`] is the same flush engine the thread-per-link
//! backends use; its hold deadline becomes the poll timeout instead of a
//! parked thread's `recv_timeout`.
//!
//! ## Reconnect with resend
//!
//! Every sealed frame gets a per-link sequence number and is retained in a
//! bounded resend buffer until the receiver's cumulative ack (flowing on
//! the reverse direction of the same socket) covers it. When a connection
//! dies the link re-dials through the shared [`dialer_loop`] (exponential
//! backoff); the reconnect handshake ([`LinkHello`] → [`LinkWelcome`])
//! tells the sender where the receiver actually is, the resend buffer is
//! pruned to that point and the un-acked tail is replayed. The receiver
//! dedups anything at or below its `last_delivered`, so a frame is handed
//! to the destination inbox exactly once no matter how many sockets it
//! crossed. A link whose resend buffer overflows, or whose re-dial budget
//! is exhausted, is *abandoned* — the existing crash-adjacent bookkeeping
//! (`links_abandoned`, `messages_abandoned`) that tells the teardown
//! reconciliation the books may not balance.
//!
//! Accounting matches the thread-per-link TCP backend: `frames_sent` /
//! `flushes_total` tick once at seal time, `wire_bytes` counts frame blob
//! bytes handed to a socket (sequence prefixes, acks and handshakes are
//! transport overhead and excluded; a replayed frame's bytes count again),
//! and deliveries tick when the destination inbox accepts the frame.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use twobit_proto::linkseq::{self, LinkHello, LinkWelcome, ACK_LEN, HELLO_LEN, WELCOME_LEN};
use twobit_proto::{Automaton, BufferPool, Bytes, Envelope, Frame, NetStats, ProcessId};
use twobit_runtime::{FlushPolicy, Incoming, LinkBatcher, OutboundSink};

use crate::poller::{poll_fds, PollFd, WakeRx, Waker, POLL_IN, POLL_OUT};

/// How long a freshly accepted connection may sit without completing its
/// [`LinkHello`] before the reactor drops it.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// How a link behaves when its connection dies (and on the initial dial).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Backoff before the first re-attempt; doubles per failure.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Consecutive failed attempts before the link is abandoned.
    pub max_attempts: u32,
    /// `connect(2)` timeout per attempt.
    pub dial_timeout: Duration,
    /// How long to wait for the peer's [`LinkWelcome`] after connecting.
    pub handshake_timeout: Duration,
}

impl Default for ReconnectPolicy {
    /// ~8s of total retry budget: enough to ride out a peer restart on a
    /// CI box without stalling teardown for long when the peer is gone.
    fn default() -> Self {
        ReconnectPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(200),
            max_attempts: 40,
            dial_timeout: Duration::from_secs(1),
            handshake_timeout: Duration::from_secs(2),
        }
    }
}

/// Backoff before re-attempt number `attempt` (1-based): exponential from
/// the base, capped.
fn backoff_for(policy: &ReconnectPolicy, attempt: u32) -> Duration {
    let doublings = attempt.saturating_sub(1).min(20);
    policy
        .base_backoff
        .saturating_mul(1u32 << doublings)
        .min(policy.max_backoff)
}

/// Which reactor thread owns the receive side of ordered link `src → dst`.
/// Deliberately decoupled from the send-side partition (`li % pool`): both
/// directions of a process pair usually land on different threads, which
/// spreads the socket work.
pub(crate) fn recv_owner(src: ProcessId, dst: ProcessId, pool: usize) -> usize {
    (src.index().wrapping_mul(31).wrapping_add(dst.index())) % pool
}

/// One ordered link this node sends on.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LinkSpec {
    pub(crate) src: ProcessId,
    pub(crate) dst: ProcessId,
    /// Where `dst`'s node listens.
    pub(crate) addr: SocketAddr,
}

/// The process loop's handle to one reactor-owned link: enqueue the
/// envelope, then nudge the owning reactor out of its poll.
pub(crate) struct LinkSender<M> {
    pub(crate) tx: Sender<(usize, Envelope<M>)>,
    pub(crate) waker: Arc<Waker>,
    pub(crate) li: usize,
}

impl<M> OutboundSink<M> for LinkSender<M> {
    fn deliver(&self, env: Envelope<M>) {
        if self.tx.send((self.li, env)).is_ok() {
            self.waker.wake();
        }
    }
}

/// A sealed frame parked in the resend buffer until acked.
struct Sealed {
    seq: u64,
    blob: Bytes,
    /// Message count, for abandoned-link accounting.
    msgs: u64,
    /// Whether the frame was ever handed to a socket — a replay of a
    /// transmitted frame counts in `frames_resent`, a first transmission
    /// after a reconnect does not.
    transmitted: bool,
}

/// Reactor-side state of one send link.
pub(crate) struct SendLink<M> {
    pub(crate) spec: LinkSpec,
    pub(crate) batcher: LinkBatcher<Envelope<M>>,
    next_seq: u64,
    resend: VecDeque<Sealed>,
    conn: Option<usize>,
    pub(crate) dialing: bool,
    ever_connected: bool,
    abandoned: bool,
}

impl<M> SendLink<M> {
    pub(crate) fn new(spec: LinkSpec, policy: FlushPolicy) -> Self {
        SendLink {
            spec,
            batcher: LinkBatcher::new(policy),
            next_seq: 1,
            resend: VecDeque::new(),
            conn: None,
            dialing: false,
            ever_connected: false,
            abandoned: false,
        }
    }

    fn drained(&self) -> bool {
        self.abandoned || (self.resend.is_empty() && !self.batcher.has_pending())
    }
}

/// A pending socket write, compacting as the kernel takes bytes.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Writes as much as the socket takes right now. `WouldBlock` is a
    /// clean stop (the poll set picks up writable interest); anything else
    /// is the connection's death.
    fn write_to(&mut self, stream: &mut TcpStream) -> io::Result<()> {
        while self.pos < self.buf.len() {
            match stream.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(())
    }
}

/// What a registered connection is for.
#[derive(Clone, Copy)]
enum ConnKind {
    /// Accepted, [`LinkHello`] not yet complete.
    Handshake { since: Instant },
    /// Carries send link `li` outbound; acks flow back on it.
    Send { li: usize },
    /// Carries a peer's link toward a locally hosted process.
    Recv { src: ProcessId, dst: ProcessId },
}

/// One non-blocking socket in the poll set.
struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    rbuf: Vec<u8>,
    wbuf: WriteBuf,
}

impl Conn {
    fn new(stream: TcpStream, kind: ConnKind) -> Self {
        Conn {
            stream,
            kind,
            rbuf: Vec::new(),
            wbuf: WriteBuf::default(),
        }
    }
}

/// A request for the shared dialer thread: connect `addr`, run the
/// [`LinkHello`]/[`LinkWelcome`] handshake, hand the socket back to
/// reactor `thread` as a [`Cmd::DialDone`].
pub(crate) struct DialReq {
    pub(crate) thread: usize,
    pub(crate) li: usize,
    pub(crate) hello: LinkHello,
    pub(crate) addr: SocketAddr,
    pub(crate) attempt: u32,
    pub(crate) not_before: Instant,
}

/// Control messages a reactor drains (after a [`Waker`] nudge) between
/// poll iterations.
pub(crate) enum Cmd {
    /// A handshaken receive socket routed from the accepting reactor to
    /// the thread owning `recv_owner(src, dst)`; `carry` is whatever
    /// followed the hello in the accept buffer.
    AdoptRecv {
        src: ProcessId,
        dst: ProcessId,
        stream: TcpStream,
        carry: Vec<u8>,
    },
    /// The dialer finished (re)connecting link `li`: a non-blocking socket
    /// plus the peer's `last_delivered` on success, `None` when the
    /// attempt budget ran out.
    DialDone {
        li: usize,
        result: Option<(TcpStream, u64)>,
    },
    /// Fault injection: shut down every established socket on this thread
    /// (links then recover through the reconnect path).
    Sever,
    /// Start draining: flush immediately, signal `done_tx` once every
    /// owned link is drained (or the grace deadline forces abandonment).
    Drain,
    /// Exit the event loop.
    Stop,
}

/// One reactor thread's whole world. Constructed field-by-field in
/// `node.rs`, then consumed by [`Reactor::run`] on its own thread.
pub(crate) struct Reactor<A: Automaton> {
    /// This thread's index in the pool.
    pub(crate) slot: usize,
    /// Pool size (for `recv_owner` routing).
    pub(crate) pool_size: usize,
    pub(crate) tag_bits: u64,
    /// Resend-buffer overflow threshold, in frames.
    pub(crate) resend_cap: usize,
    pub(crate) drain_grace: Duration,
    pub(crate) stats: Arc<Mutex<NetStats>>,
    pub(crate) crashed: Vec<Arc<AtomicBool>>,
    /// Destination inboxes, indexed by process; `None` for processes not
    /// hosted on this node.
    pub(crate) inboxes: Vec<Option<Sender<Incoming<A>>>>,
    pub(crate) cmd_rx: Receiver<Cmd>,
    pub(crate) cmd_txs: Vec<Sender<Cmd>>,
    pub(crate) wakers: Vec<Arc<Waker>>,
    pub(crate) wake_rx: WakeRx,
    pub(crate) env_rx: Receiver<(usize, Envelope<A::Msg>)>,
    pub(crate) dial_tx: Sender<DialReq>,
    /// The node's listener (thread 0 only), non-blocking.
    pub(crate) listener: Option<TcpListener>,
    /// Send links owned by this thread, keyed by global link index.
    pub(crate) links: HashMap<usize, SendLink<A::Msg>>,
    /// Stable iteration order over `links` (keys never change after
    /// construction).
    pub(crate) link_ids: Vec<usize>,
    /// Receive-side cursor per ordered link: highest seq handed to the
    /// destination inbox. Outlives any individual connection — this is
    /// what makes redelivery after a reconnect detectable.
    pub(crate) recv_links: HashMap<(ProcessId, ProcessId), u64>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) done_tx: Sender<usize>,
}

impl<A: Automaton> Reactor<A> {
    /// The event loop. Returns when a [`Cmd::Stop`] arrives.
    pub(crate) fn run(mut self) {
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut state = LoopState {
            draining: false,
            drain_deadline: None,
            done_sent: false,
        };
        loop {
            let now = Instant::now();
            self.sweep_stale_handshakes(&mut conns, now);
            self.flush_all(&mut conns, now, state.draining);
            let timeout = self.next_deadline(&conns, &state, now);
            let (mut fds, conn_ids) = self.build_pollfds(&conns);
            if poll_fds(&mut fds, timeout).is_err() {
                // A transient poll failure (fd churn race); don't spin.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            if fds[0].readable() {
                self.wake_rx.drain();
            }
            let has_listener = self.listener.is_some();
            if has_listener && fds[1].readable() {
                self.accept_all(&mut conns);
            }
            let base = 1 + usize::from(has_listener);
            for (k, &ci) in conn_ids.iter().enumerate() {
                let fd = fds[base + k];
                if fd.readable() {
                    self.conn_readable(&mut conns, ci);
                }
                if fd.writable() && matches!(conns.get(ci), Some(Some(_))) {
                    self.flush_conn(&mut conns, ci);
                }
            }
            if self.drain_cmds(&mut conns, &mut state) {
                return;
            }
            self.drain_envs();
            let now = Instant::now();
            self.flush_all(&mut conns, now, state.draining);
            self.check_drained(&mut conns, &mut state, now);
        }
    }

    /// Builds the poll set: waker, listener (thread 0), then every live
    /// connection — readable interest always, writable only while bytes
    /// are queued.
    fn build_pollfds(&self, conns: &[Option<Conn>]) -> (Vec<PollFd>, Vec<usize>) {
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd::new(self.wake_rx.fd(), POLL_IN));
        if let Some(l) = &self.listener {
            fds.push(PollFd::new(l.as_raw_fd(), POLL_IN));
        }
        let mut ids = Vec::with_capacity(conns.len());
        for (ci, conn) in conns.iter().enumerate() {
            if let Some(c) = conn {
                let mut ev = POLL_IN;
                if !c.wbuf.is_empty() {
                    ev |= POLL_OUT;
                }
                fds.push(PollFd::new(c.stream.as_raw_fd(), ev));
                ids.push(ci);
            }
        }
        (fds, ids)
    }

    /// The poll timeout: the earliest of any link's flush-hold deadline,
    /// the drain grace deadline, and any pending handshake's expiry.
    /// `None` (block forever) when nothing is scheduled — a waker nudge
    /// delivers whatever comes next.
    fn next_deadline(
        &self,
        conns: &[Option<Conn>],
        state: &LoopState,
        now: Instant,
    ) -> Option<Duration> {
        let mut min: Option<Instant> = state.drain_deadline;
        let mut fold = |d: Instant| min = Some(min.map_or(d, |m| m.min(d)));
        for link in self.links.values() {
            if !link.abandoned {
                if let Some(d) = link.batcher.flush_deadline() {
                    fold(d);
                }
            }
        }
        for conn in conns.iter().flatten() {
            if let ConnKind::Handshake { since } = conn.kind {
                fold(since + HANDSHAKE_TIMEOUT);
            }
        }
        min.map(|d| d.saturating_duration_since(now))
    }

    /// Drops accepted connections that never completed their hello.
    fn sweep_stale_handshakes(&mut self, conns: &mut [Option<Conn>], now: Instant) {
        for slot in conns.iter_mut() {
            let stale = matches!(
                slot.as_ref().map(|c| c.kind),
                Some(ConnKind::Handshake { since }) if now.duration_since(since) >= HANDSHAKE_TIMEOUT
            );
            if stale {
                if let Some(conn) = slot.take() {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
            }
        }
    }

    /// Moves every queued envelope into its link's batcher (abandoned
    /// links account the message instead — it can never be delivered).
    fn drain_envs(&mut self) {
        loop {
            match self.env_rx.try_recv() {
                Ok((li, env)) => {
                    let Some(link) = self.links.get_mut(&li) else {
                        continue;
                    };
                    if link.abandoned {
                        self.stats.lock().record_messages_abandoned(1);
                    } else {
                        link.batcher.push(env, Instant::now());
                    }
                }
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return,
            }
        }
    }

    /// Seals every due batch on every link: frame → seq → resend buffer →
    /// socket (when connected).
    fn flush_all(&mut self, conns: &mut [Option<Conn>], now: Instant, shutdown: bool) {
        for idx in 0..self.link_ids.len() {
            let li = self.link_ids[idx];
            self.flush_link(conns, li, now, shutdown);
        }
    }

    fn flush_link(&mut self, conns: &mut [Option<Conn>], li: usize, now: Instant, shutdown: bool) {
        loop {
            let Some(link) = self.links.get_mut(&li) else {
                return;
            };
            if link.abandoned {
                return;
            }
            let Some(f) = link.batcher.take_due(now, shutdown) else {
                return;
            };
            let frame = Frame::from_envelopes(f.batch);
            let msgs = frame.len() as u64;
            let cost = frame.cost(self.tag_bits);
            let blob = frame
                .encode_pooled(&self.pool)
                .expect("the reactor transport requires a codec-capable message type");
            let seq = link.next_seq;
            link.next_seq += 1;
            link.resend.push_back(Sealed {
                seq,
                blob: blob.clone(),
                msgs,
                transmitted: false,
            });
            let depth = link.resend.len();
            let conn = link.conn;
            {
                let mut st = self.stats.lock();
                st.record_frame(cost);
                st.record_flush(f.reason, f.held.as_nanos().min(u128::from(u64::MAX)) as u64);
                st.record_resend_buffer_depth(depth as u64);
            }
            if depth > self.resend_cap {
                // The peer is not acking (down longer than the buffer can
                // absorb): give the link up rather than grow unboundedly.
                self.abandon_link(conns, li);
                return;
            }
            if let Some(ci) = conn {
                self.append_record(conns, ci, seq, &blob);
                if let Some(link) = self.links.get_mut(&li) {
                    if let Some(s) = link.resend.back_mut() {
                        s.transmitted = true;
                    }
                }
                self.flush_conn(conns, ci);
            }
        }
    }

    /// Queues one sequenced record on a connection and accounts its frame
    /// bytes (the 8-byte seq prefix is transport overhead, not counted).
    fn append_record(&mut self, conns: &mut [Option<Conn>], ci: usize, seq: u64, blob: &[u8]) {
        if let Some(conn) = conns.get_mut(ci).and_then(Option::as_mut) {
            linkseq::encode_record(seq, blob, &mut conn.wbuf.buf);
            self.stats.lock().record_wire_bytes(blob.len() as u64);
        }
    }

    /// Writes a connection's queued bytes; a dead socket goes through the
    /// failure path (re-dial for send links).
    fn flush_conn(&mut self, conns: &mut [Option<Conn>], ci: usize) {
        let res = {
            let Some(conn) = conns.get_mut(ci).and_then(Option::as_mut) else {
                return;
            };
            let Conn { stream, wbuf, .. } = conn;
            wbuf.write_to(stream)
        };
        if res.is_err() {
            self.conn_failed(conns, ci);
        }
    }

    /// Reads whatever the socket has; returns whether it reached EOF or
    /// an error (the caller decides what that means for the conn's kind).
    fn read_some(conns: &mut [Option<Conn>], ci: usize) -> bool {
        let Some(conn) = conns.get_mut(ci).and_then(Option::as_mut) else {
            return false;
        };
        let mut buf = [0u8; 64 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => return true,
                Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }

    fn conn_readable(&mut self, conns: &mut Vec<Option<Conn>>, ci: usize) {
        let Some(kind) = conns.get(ci).and_then(Option::as_ref).map(|c| c.kind) else {
            return;
        };
        match kind {
            ConnKind::Handshake { .. } => self.handshake_readable(conns, ci),
            ConnKind::Send { li } => self.send_readable(conns, ci, li),
            ConnKind::Recv { src, dst } => {
                let closed = Self::read_some(conns, ci);
                self.deliver_buffered(conns, ci, src, dst);
                if closed {
                    // Clean hangup (or peer death): the cursor in
                    // `recv_links` survives for the next incarnation.
                    drop_conn(conns, ci);
                }
            }
        }
    }

    /// The send half's inbound direction carries cumulative acks; EOF or
    /// error means the connection died and the link must re-dial.
    fn send_readable(&mut self, conns: &mut [Option<Conn>], ci: usize, li: usize) {
        let closed = Self::read_some(conns, ci);
        let ack = {
            let Some(conn) = conns.get_mut(ci).and_then(Option::as_mut) else {
                return;
            };
            let whole = (conn.rbuf.len() / ACK_LEN) * ACK_LEN;
            if whole == 0 {
                None
            } else {
                let last = u64::from_be_bytes(
                    conn.rbuf[whole - ACK_LEN..whole]
                        .try_into()
                        .expect("8 bytes"),
                );
                conn.rbuf.drain(..whole);
                Some(last)
            }
        };
        if let Some(ack) = ack {
            if let Some(link) = self.links.get_mut(&li) {
                while link.resend.front().is_some_and(|s| s.seq <= ack) {
                    link.resend.pop_front();
                }
            }
        }
        if closed {
            self.conn_failed(conns, ci);
        }
    }

    /// Accepts everything the listener has queued; each new socket starts
    /// in the handshake state until its [`LinkHello`] arrives.
    fn accept_all(&mut self, conns: &mut Vec<Option<Conn>>) {
        let mut accepted = Vec::new();
        if let Some(listener) = &self.listener {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => accepted.push(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }
        for stream in accepted {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            alloc_conn(
                conns,
                Conn::new(
                    stream,
                    ConnKind::Handshake {
                        since: Instant::now(),
                    },
                ),
            );
        }
    }

    fn handshake_readable(&mut self, conns: &mut Vec<Option<Conn>>, ci: usize) {
        let closed = Self::read_some(conns, ci);
        enum Hs {
            Wait,
            Bad,
            Ready(LinkHello, TcpStream, Vec<u8>),
        }
        let state = {
            let Some(slot) = conns.get_mut(ci) else {
                return;
            };
            let Some(conn) = slot.as_mut() else { return };
            if conn.rbuf.len() < HELLO_LEN {
                Hs::Wait
            } else {
                match LinkHello::decode(&conn.rbuf[..HELLO_LEN]) {
                    Ok(h) => {
                        let carry = conn.rbuf[HELLO_LEN..].to_vec();
                        let conn = slot.take().expect("checked above");
                        Hs::Ready(h, conn.stream, carry)
                    }
                    Err(_) => Hs::Bad,
                }
            }
        };
        match state {
            Hs::Wait => {
                if closed {
                    drop_conn(conns, ci);
                }
            }
            Hs::Bad => {
                // Garbage where a hello should be: not one of our links,
                // but accounted so a poisoned setup is visible.
                self.stats.lock().record_link_abandoned();
                drop_conn(conns, ci);
            }
            Hs::Ready(hello, stream, carry) => {
                let owner = recv_owner(hello.src, hello.dst, self.pool_size);
                if owner == self.slot {
                    self.adopt_recv(conns, hello.src, hello.dst, stream, carry);
                } else if self.cmd_txs[owner]
                    .send(Cmd::AdoptRecv {
                        src: hello.src,
                        dst: hello.dst,
                        stream,
                        carry,
                    })
                    .is_ok()
                {
                    self.wakers[owner].wake();
                }
            }
        }
    }

    /// Takes ownership of a handshaken receive socket: answers with the
    /// link's resume point, then treats `carry` as the first read.
    fn adopt_recv(
        &mut self,
        conns: &mut Vec<Option<Conn>>,
        src: ProcessId,
        dst: ProcessId,
        stream: TcpStream,
        carry: Vec<u8>,
    ) {
        let hosted = self.inboxes.get(dst.index()).is_some_and(Option::is_some);
        if !hosted {
            // A hello for a process that does not live here: config skew
            // between nodes. Visible, not silent.
            self.stats.lock().record_link_abandoned();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        // A reconnect supersedes any previous incarnation still open.
        let stale: Vec<usize> = conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot.as_ref().map(|c| c.kind) {
                Some(ConnKind::Recv { src: s, dst: d }) if s == src && d == dst => Some(i),
                _ => None,
            })
            .collect();
        for old in stale {
            drop_conn(conns, old);
        }
        let last = *self.recv_links.entry((src, dst)).or_insert(0);
        let mut conn = Conn::new(stream, ConnKind::Recv { src, dst });
        conn.rbuf = carry;
        conn.wbuf.buf.extend_from_slice(
            &LinkWelcome {
                last_delivered: last,
            }
            .encode(),
        );
        let ci = alloc_conn(conns, conn);
        self.flush_conn(conns, ci);
        self.deliver_buffered(conns, ci, src, dst);
    }

    /// Slices buffered records, dedups against the link cursor, decodes
    /// and delivers each fresh frame, then acks the cumulative high mark.
    fn deliver_buffered(
        &mut self,
        conns: &mut [Option<Conn>],
        ci: usize,
        src: ProcessId,
        dst: ProcessId,
    ) {
        let (records, poisoned) = {
            let Some(conn) = conns.get_mut(ci).and_then(Option::as_mut) else {
                return;
            };
            let mut records: Vec<(u64, Bytes)> = Vec::new();
            let mut off = 0usize;
            let mut poisoned = false;
            loop {
                match linkseq::split_record(&conn.rbuf[off..]) {
                    Ok(Some((seq, total))) => {
                        let blob = conn.rbuf[off + linkseq::SEQ_PREFIX_LEN..off + total].to_vec();
                        records.push((seq, Bytes::from(blob)));
                        off += total;
                    }
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
            conn.rbuf.drain(..off);
            (records, poisoned)
        };
        let mut acked = None;
        for (seq, blob) in records {
            let last = self.recv_links.get(&(src, dst)).copied().unwrap_or(0);
            if seq <= last {
                // A replayed frame this side already consumed: the whole
                // point of the cursor — ack again, deliver never.
                acked = Some(last);
                self.stats.lock().record_frame_deduped();
                continue;
            }
            let Ok(frame) = Frame::<A::Msg>::decode_shared(&blob) else {
                // Corrupt frame from a byzantine-free peer: poisoned link.
                self.stats.lock().record_link_abandoned();
                drop_conn(conns, ci);
                return;
            };
            let msgs = frame.len() as u64;
            self.recv_links.insert((src, dst), seq);
            acked = Some(seq);
            let delivered = !self.crashed[dst.index()].load(Ordering::Relaxed)
                && self.inboxes[dst.index()]
                    .as_ref()
                    .is_some_and(|tx| tx.send(Incoming::Frame { from: src, frame }).is_ok());
            let mut st = self.stats.lock();
            if delivered {
                st.record_deliveries(msgs);
            } else {
                st.record_frame_drop_to_crashed(msgs);
            }
        }
        if poisoned {
            self.stats.lock().record_link_abandoned();
            drop_conn(conns, ci);
            return;
        }
        if let Some(ack) = acked {
            let appended = match conns.get_mut(ci).and_then(Option::as_mut) {
                Some(conn) => {
                    conn.wbuf.buf.extend_from_slice(&ack.to_be_bytes());
                    true
                }
                None => false,
            };
            if appended {
                self.flush_conn(conns, ci);
            }
        }
    }

    /// A connection died. Receive sides just drop (the peer re-dials);
    /// send sides clear the link's conn and schedule a re-dial.
    fn conn_failed(&mut self, conns: &mut [Option<Conn>], ci: usize) {
        let Some(conn) = conns.get_mut(ci).and_then(Option::take) else {
            return;
        };
        let _ = conn.stream.shutdown(Shutdown::Both);
        if let ConnKind::Send { li } = conn.kind {
            let current = self.links.get(&li).and_then(|l| l.conn);
            if current == Some(ci) {
                if let Some(link) = self.links.get_mut(&li) {
                    link.conn = None;
                }
                self.schedule_redial(li);
            }
        }
    }

    fn schedule_redial(&mut self, li: usize) {
        let Some(link) = self.links.get_mut(&li) else {
            return;
        };
        if link.abandoned || link.dialing {
            return;
        }
        link.dialing = true;
        let req = DialReq {
            thread: self.slot,
            li,
            hello: LinkHello {
                src: link.spec.src,
                dst: link.spec.dst,
            },
            addr: link.spec.addr,
            attempt: 0,
            not_before: Instant::now(),
        };
        if self.dial_tx.send(req).is_err() {
            // Dialer gone (tear-down racing a failure): the link cannot
            // recover.
            if let Some(link) = self.links.get_mut(&li) {
                link.dialing = false;
            }
        }
    }

    /// The dialer's verdict for link `li`.
    fn dial_done(
        &mut self,
        conns: &mut Vec<Option<Conn>>,
        li: usize,
        result: Option<(TcpStream, u64)>,
    ) {
        let Some((stream, resume)) = result else {
            if let Some(link) = self.links.get_mut(&li) {
                link.dialing = false;
            }
            self.abandon_link(conns, li);
            return;
        };
        let staging = {
            let Some(link) = self.links.get_mut(&li) else {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            };
            link.dialing = false;
            if link.abandoned {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            let reconnect = link.ever_connected;
            link.ever_connected = true;
            let old = link.conn.take();
            // The peer consumed up to `resume`: those frames are settled
            // even if their acks died with the old socket.
            while link.resend.front().is_some_and(|s| s.seq <= resume) {
                link.resend.pop_front();
            }
            let mut resent = 0u64;
            let replay: Vec<(u64, Bytes)> = link
                .resend
                .iter_mut()
                .map(|s| {
                    if s.transmitted {
                        resent += 1;
                    }
                    s.transmitted = true;
                    (s.seq, s.blob.clone())
                })
                .collect();
            (reconnect, old, replay, resent)
        };
        let (reconnect, old, replay, resent) = staging;
        if let Some(old) = old {
            drop_conn(conns, old);
        }
        let ci = alloc_conn(conns, Conn::new(stream, ConnKind::Send { li }));
        if let Some(link) = self.links.get_mut(&li) {
            link.conn = Some(ci);
        }
        {
            let mut st = self.stats.lock();
            if reconnect {
                st.record_reconnect();
            }
            if resent > 0 {
                st.record_frames_resent(resent);
            }
        }
        for (seq, blob) in &replay {
            self.append_record(conns, ci, *seq, blob);
        }
        self.flush_conn(conns, ci);
    }

    /// Gives up on a link: everything sealed-but-unsettled and everything
    /// still pending is accounted as abandoned (the signal that teardown
    /// reconciliation may not balance — an un-acked frame might or might
    /// not have been consumed remotely).
    fn abandon_link(&mut self, conns: &mut [Option<Conn>], li: usize) {
        let (msgs, conn) = {
            let Some(link) = self.links.get_mut(&li) else {
                return;
            };
            if link.abandoned {
                return;
            }
            link.abandoned = true;
            let mut msgs: u64 = link.resend.iter().map(|s| s.msgs).sum();
            msgs += link.batcher.drain_remaining().len() as u64;
            link.resend.clear();
            (msgs, link.conn.take())
        };
        if let Some(ci) = conn {
            if let Some(c) = conns.get_mut(ci).and_then(Option::take) {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
        }
        let mut st = self.stats.lock();
        st.record_link_abandoned();
        st.record_messages_abandoned(msgs);
    }

    /// Handles queued control messages; `true` means Stop.
    fn drain_cmds(&mut self, conns: &mut Vec<Option<Conn>>, state: &mut LoopState) -> bool {
        loop {
            match self.cmd_rx.try_recv() {
                Ok(Cmd::AdoptRecv {
                    src,
                    dst,
                    stream,
                    carry,
                }) => self.adopt_recv(conns, src, dst, stream, carry),
                Ok(Cmd::DialDone { li, result }) => self.dial_done(conns, li, result),
                Ok(Cmd::Sever) => {
                    for conn in conns.iter().flatten() {
                        if !matches!(conn.kind, ConnKind::Handshake { .. }) {
                            // Just kill the socket; the event loop notices
                            // the EOF and runs the normal failure path.
                            let _ = conn.stream.shutdown(Shutdown::Both);
                        }
                    }
                }
                Ok(Cmd::Drain) => {
                    state.draining = true;
                    if state.drain_deadline.is_none() {
                        state.drain_deadline = Some(Instant::now() + self.drain_grace);
                    }
                }
                Ok(Cmd::Stop) => return true,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return false,
            }
        }
    }

    /// During a drain: signal `done_tx` once every owned link has settled
    /// (resend empty, nothing pending, all write buffers flushed). Past
    /// the grace deadline, force-abandon what's left and signal anyway —
    /// a peer that will never ack must not hang teardown.
    fn check_drained(&mut self, conns: &mut [Option<Conn>], state: &mut LoopState, now: Instant) {
        if !state.draining || state.done_sent {
            return;
        }
        let expired = state.drain_deadline.is_some_and(|d| now >= d);
        if expired {
            for idx in 0..self.link_ids.len() {
                let li = self.link_ids[idx];
                let undrained = self.links.get(&li).is_some_and(|l| !l.drained());
                if undrained {
                    self.abandon_link(conns, li);
                }
            }
        }
        let links_done = self.links.values().all(SendLink::drained);
        let writes_done = conns
            .iter()
            .flatten()
            .all(|c| c.wbuf.is_empty() || !matches!(c.kind, ConnKind::Send { .. }));
        if expired || (links_done && writes_done) {
            state.done_sent = true;
            // Stop treating the grace deadline as a poll deadline — the
            // loop keeps serving acks until Stop, parked on the waker.
            state.drain_deadline = None;
            let _ = self.done_tx.send(self.slot);
        }
    }
}

/// Loop-local drain state (kept out of [`Reactor`] so `run` can borrow
/// the reactor and the conn slab independently).
struct LoopState {
    draining: bool,
    drain_deadline: Option<Instant>,
    done_sent: bool,
}

/// Registers a connection in the first free slab slot.
fn alloc_conn(conns: &mut Vec<Option<Conn>>, conn: Conn) -> usize {
    if let Some(ci) = conns.iter().position(Option::is_none) {
        conns[ci] = Some(conn);
        ci
    } else {
        conns.push(Some(conn));
        conns.len() - 1
    }
}

/// Closes and forgets a connection (no link-side effects).
fn drop_conn(conns: &mut [Option<Conn>], ci: usize) {
    if let Some(conn) = conns.get_mut(ci).and_then(Option::take) {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

/// The node's single dialer thread: every blocking connect/handshake in
/// one place, so reactor threads never block on `connect(2)`. Requests
/// carry their own backoff schedule; a failed attempt is re-queued with
/// exponential backoff until the policy's budget runs out, at which point
/// the owning reactor gets a `DialDone { result: None }` and abandons the
/// link. Serializing dials also keeps any one listener's accept backlog
/// shallow during the initial mesh build.
pub(crate) fn dialer_loop(
    dial_rx: &Receiver<DialReq>,
    cmd_txs: &[Sender<Cmd>],
    wakers: &[Arc<Waker>],
    policy: ReconnectPolicy,
) {
    let mut queue: Vec<DialReq> = Vec::new();
    loop {
        let now = Instant::now();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].not_before > now {
                i += 1;
                continue;
            }
            let req = queue.swap_remove(i);
            match try_dial(&req, &policy) {
                Ok(done) => {
                    if cmd_txs[req.thread]
                        .send(Cmd::DialDone {
                            li: req.li,
                            result: Some(done),
                        })
                        .is_ok()
                    {
                        wakers[req.thread].wake();
                    }
                }
                Err(_) => {
                    let attempt = req.attempt + 1;
                    if attempt >= policy.max_attempts {
                        if cmd_txs[req.thread]
                            .send(Cmd::DialDone {
                                li: req.li,
                                result: None,
                            })
                            .is_ok()
                        {
                            wakers[req.thread].wake();
                        }
                    } else {
                        queue.push(DialReq {
                            attempt,
                            not_before: Instant::now() + backoff_for(&policy, attempt),
                            ..req
                        });
                    }
                }
            }
        }
        let next_due = queue.iter().map(|r| r.not_before).min();
        match next_due {
            Some(t) => {
                let wait = t.saturating_duration_since(Instant::now());
                match dial_rx.recv_timeout(wait.max(Duration::from_micros(100))) {
                    Ok(req) => queue.push(req),
                    Err(RecvTimeoutError::Timeout) => {}
                    // Every reactor (and the node) hung up: tear-down.
                    // Pending retries die with us — their reactors are
                    // gone too, so nobody is waiting on a verdict.
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match dial_rx.recv() {
                Ok(req) => queue.push(req),
                Err(_) => return,
            },
        }
    }
}

/// One blocking dial + handshake round trip.
fn try_dial(req: &DialReq, policy: &ReconnectPolicy) -> io::Result<(TcpStream, u64)> {
    let mut stream = TcpStream::connect_timeout(&req.addr, policy.dial_timeout)?;
    stream.set_nodelay(true)?;
    stream.write_all(&req.hello.encode())?;
    stream.set_read_timeout(Some(policy.handshake_timeout))?;
    let mut buf = [0u8; WELCOME_LEN];
    stream.read_exact(&mut buf)?;
    let welcome = LinkWelcome::decode(&buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad link welcome"))?;
    stream.set_read_timeout(None)?;
    stream.set_nonblocking(true)?;
    Ok((stream, welcome.last_delivered))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base_and_caps() {
        let p = ReconnectPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            ..ReconnectPolicy::default()
        };
        assert_eq!(backoff_for(&p, 1), Duration::from_millis(1));
        assert_eq!(backoff_for(&p, 2), Duration::from_millis(2));
        assert_eq!(backoff_for(&p, 4), Duration::from_millis(8));
        assert_eq!(backoff_for(&p, 30), Duration::from_millis(100), "capped");
    }

    #[test]
    fn recv_owner_spreads_and_is_stable() {
        let a = recv_owner(ProcessId::new(0), ProcessId::new(1), 4);
        assert_eq!(a, recv_owner(ProcessId::new(0), ProcessId::new(1), 4));
        assert!(a < 4);
        // All four threads get some share of a 8-process mesh.
        let mut seen = [false; 4];
        for s in 0..8 {
            for d in 0..8 {
                if s != d {
                    seen[recv_owner(ProcessId::new(s), ProcessId::new(d), 4)] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "every thread owns some recv links");
    }

    #[test]
    fn write_buf_survives_partial_writes_and_compacts() {
        // A socket pair whose reader never reads: writes eventually
        // WouldBlock, and the buffer keeps the unwritten tail.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        tx.set_nonblocking(true).unwrap();
        let (_rx, _) = listener.accept().unwrap();
        let mut tx = tx;
        let mut wbuf = WriteBuf::default();
        let chunk = vec![0xAB; 1 << 16];
        let mut queued = 0usize;
        for _ in 0..256 {
            wbuf.buf.extend_from_slice(&chunk);
            queued += chunk.len();
            wbuf.write_to(&mut tx).unwrap();
            if !wbuf.is_empty() {
                break; // the kernel buffer filled up — the case under test
            }
            queued = 0;
        }
        assert!(!wbuf.is_empty(), "socket buffers are not 16 MiB deep");
        assert!(wbuf.buf.len() - wbuf.pos <= queued);
        // Drain the peer and the remainder flushes cleanly.
        let mut rx = _rx;
        rx.set_nonblocking(true).unwrap();
        let mut sink = [0u8; 1 << 16];
        for _ in 0..10_000 {
            while matches!(rx.read(&mut sink), Ok(n) if n > 0) {}
            wbuf.write_to(&mut tx).unwrap();
            if wbuf.is_empty() {
                break;
            }
        }
        assert!(wbuf.is_empty(), "the tail flushed once the peer drained");
        assert_eq!(wbuf.pos, 0, "compacted after a full flush");
    }
}
