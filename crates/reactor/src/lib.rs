//! `twobit-reactor` — event-driven cross-host TCP transport with
//! reconnect-and-resend.
//!
//! The thread-per-link TCP backend (`twobit-transport`) spends two OS
//! threads per ordered link: fine at `n = 3`, ruinous at `n = 64` (4032
//! links → 8064 threads). This crate multiplexes *all* of a node's links
//! over a small fixed pool of event-loop threads built on a vendored
//! `poll(2)`/`ppoll(2)` readiness poller ([`poller`]) — no `mio`, no
//! `libc` crate, no new dependencies. A node's thread count is
//! `hosted processes + pool_size + 1 (dialer)`, independent of the link
//! count.
//!
//! Beyond the thread-count fix, the reactor adds two capabilities the
//! thread-per-link backend lacks:
//!
//! * **Cross-host deployment.** The builder is split into
//!   [`ReactorNodeBuilder::listen`] (bind, possibly port 0, report the
//!   bound address) and [`ListeningNode::join`] (peer map → running
//!   node), so each process set can live in a different OS process or a
//!   different machine. The all-local [`ReactorClusterBuilder`] remains a
//!   one-call drop-in for tests and benches.
//! * **Reconnect-and-resend.** A transient socket failure is *not* a
//!   crash: the link re-dials with exponential backoff and replays
//!   un-acked frames from a bounded per-link resend buffer, using the
//!   `linkseq` sequence handshake to resume exactly after the receiver's
//!   last delivered frame. Receivers dedup by sequence number, so a frame
//!   that was delivered-but-un-acked when the socket died is never
//!   delivered twice. Crash semantics ([`twobit_proto::Driver::crash`])
//!   are unchanged and permanent.
//!
//! Frame semantics, flush policies, and the `NetStats` reconciliation
//! invariant (`delivered + dropped + abandoned == sent`, exact while
//! `links_abandoned == 0`) are shared with the other live backends;
//! reconnect activity is visible as `reconnects`, `frames_resent`,
//! `frames_deduped`, and `resend_buffer_high_water`.
//!
//! See `docs/transport.md` for the architecture tour and deployment
//! guide.

// Unlike the rest of the workspace this crate cannot forbid unsafe_code:
// the vendored poller speaks the C ABI directly (two FFI declarations with
// SAFETY comments in `poller::sys`). Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod node;
#[allow(unsafe_code)]
pub mod poller;
mod reactor;

pub use node::{ListeningNode, ReactorClusterBuilder, ReactorNode, ReactorNodeBuilder};
pub use reactor::ReconnectPolicy;
