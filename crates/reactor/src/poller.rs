//! A minimal vendored readiness poller over `poll(2)` / `ppoll(2)`.
//!
//! The workspace builds offline against vendored stand-in crates, so there
//! is no `mio` (and no `libc` crate) to lean on. This module is the small
//! slice of a poller the reactor actually needs, written directly against
//! the C ABI: `std` already links the platform libc, so declaring
//! `poll`/`ppoll` ourselves adds no dependency. Level-triggered, oneshot
//! interest rebuilt per iteration — the simplest semantics that are
//! impossible to get wrong, and plenty for a few thousand descriptors per
//! reactor thread (`poll(2)` is O(fds) per call, but so is the work a
//! reactor loop does with the readiness answers).
//!
//! On Linux the wait uses `ppoll(2)` for nanosecond-resolution timeouts —
//! flush holds are tens of microseconds, which `poll(2)`'s millisecond
//! granularity would quantize away. Elsewhere it falls back to `poll(2)`
//! with the timeout rounded *up* to the next millisecond (rounding down
//! could turn a 20µs hold into a busy spin at timeout 0).
//!
//! The [`Waker`] is a loopback socket pair: one byte written to the send
//! half makes the receive half readable, unblocking a reactor parked in
//! the poller. An `armed` flag dedupes wakes so a burst of sends costs one
//! syscall, not one per message.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Readable interest / readiness (POLLIN).
pub const POLL_IN: i16 = 0x001;
/// Writable interest / readiness (POLLOUT).
pub const POLL_OUT: i16 = 0x004;
/// Error condition (POLLERR, revents only).
pub const POLL_ERR: i16 = 0x008;
/// Peer hung up (POLLHUP, revents only).
pub const POLL_HUP: i16 = 0x010;
/// Invalid descriptor (POLLNVAL, revents only).
pub const POLL_NVAL: i16 = 0x020;

/// One entry of the poll set — ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLL_IN`] | [`POLL_OUT`]).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// Builds an entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any readable/error/hangup condition fired (a read attempt
    /// will make progress or report the failure).
    pub fn readable(&self) -> bool {
        self.revents & (POLL_IN | POLL_ERR | POLL_HUP | POLL_NVAL) != 0
    }

    /// Whether the descriptor is writable (or in an error state a write
    /// will surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLL_OUT | POLL_ERR | POLL_HUP | POLL_NVAL) != 0
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::PollFd;
    use std::ffi::{c_int, c_ulong, c_void};

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn ppoll(
            fds: *mut PollFd,
            nfds: c_ulong,
            timeout: *const Timespec,
            sigmask: *const c_void,
        ) -> c_int;
    }

    /// Waits for readiness; `None` blocks indefinitely. Returns the raw
    /// `ppoll` result (≥ 0 ready count, < 0 error with errno set).
    pub(super) fn wait(fds: &mut [PollFd], timeout: Option<std::time::Duration>) -> i32 {
        let ts = timeout.map(|t| Timespec {
            tv_sec: t.as_secs().min(i64::MAX as u64) as i64,
            tv_nsec: i64::from(t.subsec_nanos()),
        });
        let ts_ptr = ts
            .as_ref()
            .map_or(std::ptr::null(), |t| t as *const Timespec);
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // ABI-compatible `pollfd` entries for the duration of the call;
        // `ts_ptr` is null or points at a live Timespec; a null sigmask
        // means "don't touch the signal mask".
        unsafe {
            ppoll(
                fds.as_mut_ptr(),
                fds.len() as c_ulong,
                ts_ptr,
                std::ptr::null(),
            )
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::PollFd;
    use std::ffi::{c_int, c_ulong};

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Waits for readiness; `None` blocks indefinitely. Millisecond
    /// granularity, rounded up so short holds never degrade to a spin.
    pub(super) fn wait(fds: &mut [PollFd], timeout: Option<std::time::Duration>) -> i32 {
        let ms: c_int = match timeout {
            None => -1,
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
        };
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // ABI-compatible `pollfd` entries for the duration of the call.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) }
    }
}

/// Waits for readiness on `fds`, blocking at most `timeout` (`None` =
/// indefinitely). Returns the number of entries with non-zero `revents`;
/// 0 on timeout. `EINTR` is reported as `Ok(0)` — the reactor loop re-polls
/// anyway, so a spurious zero is indistinguishable from a timeout race.
///
/// # Errors
///
/// Any other `poll(2)`/`ppoll(2)` failure, as [`io::Error`].
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    if fds.is_empty() {
        // poll(2) with zero fds is a sleep; do it without the syscall.
        if let Some(t) = timeout {
            std::thread::sleep(t);
            return Ok(0);
        }
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "blocking poll over an empty fd set would never return",
        ));
    }
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    match sys::wait(fds, timeout) {
        n if n >= 0 => Ok(n as usize),
        _ => {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(err)
            }
        }
    }
}

/// The wake half of a reactor's self-notification channel. Clone-free:
/// share via `Arc`. See the module docs for the socket-pair construction.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
    armed: AtomicBool,
}

impl Waker {
    /// Makes the paired reactor's poll return. Cheap when the reactor has
    /// not yet drained the previous wake (one atomic, no syscall).
    pub fn wake(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) {
            // The tx half is non-blocking: a full buffer (WouldBlock) is
            // itself a pending wake, so the error is safely ignored.
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// The receive half, owned by the reactor: registered for [`POLL_IN`] and
/// drained every time it fires.
#[derive(Debug)]
pub struct WakeRx {
    rx: TcpStream,
    armed: std::sync::Arc<Waker>,
}

impl WakeRx {
    /// The descriptor to register for readable interest.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes a pending wake: drains the socket, then disarms. The order
    /// matters — anything enqueued before the disarm is observed by the
    /// queue drain that follows this call, and anything after re-arms (and
    /// re-signals) the waker.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
        self.armed.armed.store(false, Ordering::Release);
    }
}

/// Builds a connected waker pair over a loopback socket (the std-only
/// stand-in for `pipe(2)`): the [`Waker`] is shared with producers, the
/// [`WakeRx`] stays with the reactor thread.
///
/// # Errors
///
/// Any socket error while binding/connecting the loopback pair.
pub fn waker_pair() -> io::Result<(std::sync::Arc<Waker>, WakeRx)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    let waker = std::sync::Arc::new(Waker {
        tx,
        armed: AtomicBool::new(false),
    });
    Ok((std::sync::Arc::clone(&waker), WakeRx { rx, armed: waker }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn timeout_poll_returns_without_readiness() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLL_IN)];
        let t0 = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "nothing to accept");
        assert!(
            t0.elapsed() >= Duration::from_millis(9),
            "the wait happened"
        );
        assert!(!fds[0].readable());
    }

    #[test]
    fn readable_socket_reports_readiness_immediately() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.write_all(&[7]).unwrap();
        a.flush().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLL_IN | POLL_OUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(2))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable(), "one byte is waiting");
        assert!(fds[0].writable(), "a fresh socket buffer accepts writes");
    }

    #[test]
    fn waker_unblocks_a_parked_poll_and_dedupes() {
        let (waker, mut rx) = waker_pair().unwrap();
        let w2 = Arc::clone(&waker);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // A burst of wakes collapses into one pending byte.
            for _ in 0..100 {
                w2.wake();
            }
        });
        let mut fds = [PollFd::new(rx.fd(), POLL_IN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1 && fds[0].readable(), "the wake landed");
        rx.drain();
        h.join().unwrap();
        // Drained and disarmed: the next poll times out...
        let mut fds = [PollFd::new(rx.fd(), POLL_IN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "no stale wake bytes survive a drain");
        // ...until somebody wakes again.
        waker.wake();
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1, "a post-drain wake re-arms and re-signals");
    }

    #[test]
    fn empty_fd_set_with_timeout_just_sleeps() {
        let t0 = Instant::now();
        assert_eq!(
            poll_fds(&mut [], Some(Duration::from_millis(5))).unwrap(),
            0
        );
        assert!(t0.elapsed() >= Duration::from_millis(4));
        assert!(
            poll_fds(&mut [], None).is_err(),
            "blocking forever is a bug"
        );
    }
}
