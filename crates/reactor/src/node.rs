//! Node assembly for the reactor transport: listen/join builders, the
//! [`ReactorNode`] driver, and the all-local [`ReactorClusterBuilder`]
//! convenience.
//!
//! A *node* hosts a subset of the configuration's processes. Deployment is
//! split in two so nodes can live on different hosts:
//!
//! 1. [`ReactorNodeBuilder::listen`] binds the node's listener (port 0
//!    works — the OS-assigned address is reported by
//!    [`ListeningNode::local_addr`], which is how CI scripts exchange
//!    addresses between separately started processes);
//! 2. [`ListeningNode::join`] takes the peer map (`remote process →
//!    address`) and starts the node: reactor pool, dialer, one process
//!    thread per hosted process.
//!
//! Every ordered link with a locally hosted `src` gets a TCP connection —
//! including node-internal links, which loop through the node's own
//! listener so there is exactly one data path to reason about.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use twobit_cache::CacheMode;
use twobit_proto::{
    Automaton, BufferPool, Driver, DriverError, Lifecycle, LifecycleState, NetStats, OpId,
    OpOutcome, OpTicket, Operation, ProcessId, RegisterId, ShardSet, ShardedHistory, SystemConfig,
};
use twobit_runtime::{
    process_loop, recover_process, BuildError, FlushPolicy, Incoming, Recorder, RecoveryParts,
};

use crate::poller::{waker_pair, Waker};
use crate::reactor::{
    dialer_loop, recv_owner, Cmd, DialReq, LinkSender, LinkSpec, Reactor, ReconnectPolicy, SendLink,
};

use twobit_proto::linkseq::LinkHello;

fn deploy_err(msg: String) -> BuildError {
    BuildError::Io(io::Error::new(io::ErrorKind::InvalidInput, msg))
}

/// Builder for one reactor-transport node (possibly one of several across
/// hosts). See the module docs for the listen/join split.
#[derive(Debug)]
pub struct ReactorNodeBuilder {
    cfg: SystemConfig,
    local: Vec<ProcessId>,
    pool_size: usize,
    registers: Vec<RegisterId>,
    op_timeout: Duration,
    flush: FlushPolicy,
    flush_overrides: HashMap<(ProcessId, ProcessId), FlushPolicy>,
    cache_mode: CacheMode,
    resend_cap: usize,
    reconnect: ReconnectPolicy,
    drain_grace: Duration,
}

impl ReactorNodeBuilder {
    /// Starts configuring a node of a `cfg.n()`-process deployment. By
    /// default the node hosts *all* processes (a single-node cluster) —
    /// call [`ReactorNodeBuilder::host`] to restrict it to a subset for a
    /// multi-host deployment.
    pub fn new(cfg: SystemConfig) -> Self {
        ReactorNodeBuilder {
            cfg,
            local: (0..cfg.n()).map(ProcessId::new).collect(),
            pool_size: 4,
            registers: vec![RegisterId::ZERO],
            op_timeout: Duration::from_secs(10),
            flush: FlushPolicy::default(),
            flush_overrides: HashMap::new(),
            cache_mode: CacheMode::Off,
            resend_cap: 4096,
            reconnect: ReconnectPolicy::default(),
            drain_grace: Duration::from_secs(3),
        }
    }

    /// Restricts this node to hosting exactly `procs`; every other process
    /// must appear in the peer map given to [`ListeningNode::join`].
    pub fn host(mut self, procs: impl IntoIterator<Item = impl Into<ProcessId>>) -> Self {
        self.local = procs.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the reactor pool size (default 4): the number of event-loop
    /// threads all of this node's links are multiplexed over. The node's
    /// thread count is `hosted processes + pool + 1` regardless of link
    /// count — the property the reactor exists for.
    pub fn pool_size(mut self, pool: usize) -> Self {
        self.pool_size = pool.max(1);
        self
    }

    /// Hosts registers `r0 .. r(count-1)`.
    pub fn registers(mut self, count: usize) -> Self {
        self.registers = RegisterId::first(count);
        self
    }

    /// Hosts exactly the given registers.
    pub fn register_ids(mut self, registers: Vec<RegisterId>) -> Self {
        self.registers = registers;
        self
    }

    /// Sets the client-side operation timeout.
    pub fn op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Sets the links' default frame flush policy — the same engine and
    /// semantics as the other live backends; the hold deadline is kept as
    /// a reactor timer instead of a parked thread's sleep.
    pub fn flush_policy(mut self, flush: FlushPolicy) -> Self {
        self.flush = flush;
        self
    }

    /// Overrides the flush policy for one ordered link `src → dst`.
    pub fn flush_policy_for(
        mut self,
        src: impl Into<ProcessId>,
        dst: impl Into<ProcessId>,
        flush: FlushPolicy,
    ) -> Self {
        self.flush_overrides.insert((src.into(), dst.into()), flush);
        self
    }

    /// Sets the local read-cache mode (default [`CacheMode::Off`]).
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Caps the per-link resend buffer (default 4096 frames). A link whose
    /// un-acked backlog exceeds the cap is abandoned rather than allowed
    /// to grow without bound while its peer is away.
    pub fn resend_buffer(mut self, frames: usize) -> Self {
        self.resend_cap = frames.max(1);
        self
    }

    /// Sets the reconnect policy (backoff shape, attempt budget,
    /// handshake timeouts) for every link of this node.
    pub fn reconnect_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// How long a draining shutdown waits for un-acked frames to settle
    /// before force-abandoning the remainder (default 3s).
    pub fn drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }

    /// Binds the node's listener. `"127.0.0.1:0"` (or `"0.0.0.0:0"`)
    /// lets the OS pick the port; read it back with
    /// [`ListeningNode::local_addr`] before exchanging addresses with the
    /// other nodes.
    ///
    /// # Errors
    ///
    /// [`BuildError::Io`] if the bind fails.
    pub fn listen(self, addr: impl ToSocketAddrs) -> Result<ListeningNode, BuildError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(ListeningNode {
            builder: self,
            listener,
            addr,
        })
    }
}

/// A node that is bound and reachable but not yet running — the state in
/// which separately started processes exchange addresses.
#[derive(Debug)]
pub struct ListeningNode {
    builder: ReactorNodeBuilder,
    listener: TcpListener,
    addr: SocketAddr,
}

impl ListeningNode {
    /// The actual bound address (with the OS-assigned port when the bind
    /// asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where this node's *peers* should dial it: the bound address, with
    /// an unspecified IP rewritten to the matching loopback (good for
    /// same-host CI; multi-host deployments should bind a concrete IP).
    fn self_dial_addr(&self) -> SocketAddr {
        match self.addr.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => {
                SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), self.addr.port())
            }
            IpAddr::V6(ip) if ip.is_unspecified() => {
                SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), self.addr.port())
            }
            _ => self.addr,
        }
    }

    /// Starts the node: spawns the reactor pool, the dialer, and one
    /// process thread per hosted process, then dials every outbound link.
    /// `peers` maps every process *not* hosted here to its node's bound
    /// address.
    ///
    /// # Errors
    ///
    /// [`BuildError::Config`] for an unsatisfiable flush policy;
    /// [`BuildError::Io`] for socket errors and for deployment mistakes
    /// (duplicate/unknown hosts, peers overlapping locals, uncovered
    /// processes).
    ///
    /// # Panics
    ///
    /// Panics if no registers are configured (matching the other
    /// backends).
    pub fn join<A, F>(
        self,
        peers: &HashMap<ProcessId, SocketAddr>,
        initial: A::Value,
        mut make: F,
    ) -> Result<ReactorNode<A>, BuildError>
    where
        A: Automaton,
        F: FnMut(RegisterId, ProcessId) -> A,
    {
        let self_addr = self.self_dial_addr();
        let bound_addr = self.addr;
        let b = self.builder;
        let listener = self.listener;
        let n = b.cfg.n();
        assert!(!b.registers.is_empty(), "node needs at least one register");
        b.flush.validate()?;
        for (link, policy) in &b.flush_overrides {
            policy.validate_for(Some(*link))?;
        }

        // Deployment checks: locals are distinct and known, peers cover
        // exactly the complement.
        let local_set: HashSet<ProcessId> = b.local.iter().copied().collect();
        if local_set.len() != b.local.len() {
            return Err(deploy_err("duplicate process in host list".into()));
        }
        if b.local.is_empty() {
            return Err(deploy_err("node hosts no processes".into()));
        }
        for p in &b.local {
            if p.index() >= n {
                return Err(deploy_err(format!("hosted process {p} out of range")));
            }
        }
        for p in peers.keys() {
            if p.index() >= n {
                return Err(deploy_err(format!("peer process {p} out of range")));
            }
            if local_set.contains(p) {
                return Err(deploy_err(format!("{p} is both hosted here and a peer")));
            }
        }
        for i in 0..n {
            let p = ProcessId::new(i);
            if !local_set.contains(&p) && !peers.contains_key(&p) {
                return Err(deploy_err(format!(
                    "{p} has neither a host nor a peer address"
                )));
            }
        }

        let pool = b.pool_size;
        let tag_bits = RegisterId::routing_bits(b.registers.len());
        listener.set_nonblocking(true)?;

        // The link table: every ordered pair with a locally hosted src.
        let mut specs: Vec<LinkSpec> = Vec::new();
        let mut link_index: HashMap<(ProcessId, ProcessId), usize> = HashMap::new();
        for &src in &b.local {
            for j in 0..n {
                let dst = ProcessId::new(j);
                if dst == src {
                    continue;
                }
                let addr = if local_set.contains(&dst) {
                    self_addr
                } else {
                    peers[&dst]
                };
                link_index.insert((src, dst), specs.len());
                specs.push(LinkSpec { src, dst, addr });
            }
        }

        let crashed: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let stats = Arc::new(Mutex::new(NetStats::new()));
        let (done_tx, done_rx) = unbounded::<usize>();
        let (dial_tx, dial_rx) = unbounded::<DialReq>();

        // Per-thread plumbing.
        let mut cmd_txs = Vec::with_capacity(pool);
        let mut cmd_rxs = Vec::with_capacity(pool);
        let mut env_txs = Vec::with_capacity(pool);
        let mut env_rxs = Vec::with_capacity(pool);
        let mut wakers: Vec<Arc<Waker>> = Vec::with_capacity(pool);
        let mut wake_rxs = Vec::with_capacity(pool);
        for _ in 0..pool {
            let (ct, cr) = unbounded::<Cmd>();
            cmd_txs.push(ct);
            cmd_rxs.push(cr);
            let (et, er) = unbounded();
            env_txs.push(et);
            env_rxs.push(er);
            let (w, wr) = waker_pair()?;
            wakers.push(w);
            wake_rxs.push(wr);
        }

        // Inboxes: one per hosted process, `None` for remote slots.
        let mut inbox_txs: Vec<Option<Sender<Incoming<A>>>> = (0..n).map(|_| None).collect();
        let mut inbox_rxs: HashMap<usize, Receiver<Incoming<A>>> = HashMap::new();
        for &p in &b.local {
            let (tx, rx) = unbounded();
            inbox_txs[p.index()] = Some(tx);
            inbox_rxs.insert(p.index(), rx);
        }

        // Partition links over the pool and spawn the reactors.
        let mut reactor_threads = Vec::with_capacity(pool);
        let mut listener_slot = Some(listener);
        for (slot, (cmd_rx, (env_rx, wake_rx))) in cmd_rxs
            .into_iter()
            .zip(env_rxs.into_iter().zip(wake_rxs))
            .enumerate()
        {
            let mut links: HashMap<usize, SendLink<A::Msg>> = HashMap::new();
            let mut link_ids = Vec::new();
            for (li, spec) in specs.iter().enumerate() {
                if li % pool != slot {
                    continue;
                }
                let policy = b
                    .flush_overrides
                    .get(&(spec.src, spec.dst))
                    .copied()
                    .unwrap_or(b.flush);
                let mut link = SendLink::new(*spec, policy);
                link.dialing = true; // the initial dial is enqueued below
                links.insert(li, link);
                link_ids.push(li);
            }
            let reactor: Reactor<A> = Reactor {
                slot,
                pool_size: pool,
                tag_bits,
                resend_cap: b.resend_cap,
                drain_grace: b.drain_grace,
                stats: Arc::clone(&stats),
                crashed: crashed.clone(),
                inboxes: inbox_txs.clone(),
                cmd_rx,
                cmd_txs: cmd_txs.clone(),
                wakers: wakers.clone(),
                wake_rx,
                env_rx,
                dial_tx: dial_tx.clone(),
                listener: if slot == 0 {
                    listener_slot.take()
                } else {
                    None
                },
                links,
                link_ids,
                recv_links: HashMap::new(),
                pool: BufferPool::new(),
                done_tx: done_tx.clone(),
            };
            reactor_threads.push(std::thread::spawn(move || reactor.run()));
        }

        // The shared dialer, and the initial dial for every link.
        let dialer = {
            let cmd_txs = cmd_txs.clone();
            let wakers = wakers.clone();
            let policy = b.reconnect;
            std::thread::spawn(move || dialer_loop(&dial_rx, &cmd_txs, &wakers, policy))
        };
        let now = Instant::now();
        for (li, spec) in specs.iter().enumerate() {
            let _ = dial_tx.send(DialReq {
                thread: li % pool,
                li,
                hello: LinkHello {
                    src: spec.src,
                    dst: spec.dst,
                },
                addr: spec.addr,
                attempt: 0,
                not_before: now,
            });
        }
        if !specs.is_empty() {
            // One nudge so a parked dialer starts the mesh build.
            wakers[0].wake();
        }

        // Process threads: the same loop as every other live backend; the
        // outbound sinks nudge a reactor instead of a dedicated thread.
        let mut proc_threads = Vec::with_capacity(b.local.len());
        for &p in &b.local {
            let shards = ShardSet::new(p, &b.registers, &mut make);
            let inbox_rx = inbox_rxs.remove(&p.index()).expect("built above");
            let outs: Vec<Option<LinkSender<A::Msg>>> = (0..n)
                .map(|j| {
                    let dst = ProcessId::new(j);
                    link_index.get(&(p, dst)).map(|&li| LinkSender {
                        tx: env_txs[li % pool].clone(),
                        waker: Arc::clone(&wakers[li % pool]),
                        li,
                    })
                })
                .collect();
            let crashed = crashed.clone();
            let stats = Arc::clone(&stats);
            let cache_mode = b.cache_mode;
            proc_threads.push(std::thread::spawn(move || {
                process_loop(shards, inbox_rx, outs, crashed, stats, cache_mode);
            }));
        }

        Ok(ReactorNode {
            cfg: b.cfg,
            registers: b.registers,
            local: b.local,
            addr: bound_addr,
            inbox_txs,
            crashed,
            life: Mutex::new(vec![LifecycleState::new(); n]),
            recorder: Recorder::new(initial),
            stats,
            op_ids: AtomicU64::new(0),
            op_timeout: b.op_timeout,
            pending: HashMap::new(),
            completed: HashMap::new(),
            proc_threads,
            reactor_threads,
            dialer: Some(dialer),
            dial_tx: Some(dial_tx),
            cmd_txs,
            wakers,
            done_rx,
            drain_grace: b.drain_grace,
            stopped: false,
        })
    }
}

/// A running reactor-transport node: hosts some (or all) of the
/// configuration's processes over a fixed pool of event-loop threads.
///
/// Implements [`Driver`] for its hosted processes; invoking on a process
/// hosted elsewhere is a typed [`DriverError::Backend`] — drive that
/// process through its own node.
pub struct ReactorNode<A: Automaton> {
    cfg: SystemConfig,
    registers: Vec<RegisterId>,
    local: Vec<ProcessId>,
    addr: SocketAddr,
    inbox_txs: Vec<Option<Sender<Incoming<A>>>>,
    crashed: Vec<Arc<AtomicBool>>,
    life: Mutex<Vec<LifecycleState>>,
    recorder: Recorder<A::Value>,
    stats: Arc<Mutex<NetStats>>,
    op_ids: AtomicU64,
    op_timeout: Duration,
    #[allow(clippy::type_complexity)]
    pending: HashMap<(ProcessId, RegisterId), (OpId, Receiver<OpOutcome<A::Value>>)>,
    #[allow(clippy::type_complexity)]
    completed: HashMap<(ProcessId, RegisterId), (OpId, OpOutcome<A::Value>)>,
    proc_threads: Vec<JoinHandle<()>>,
    reactor_threads: Vec<JoinHandle<()>>,
    dialer: Option<JoinHandle<()>>,
    dial_tx: Option<Sender<DialReq>>,
    cmd_txs: Vec<Sender<Cmd>>,
    wakers: Vec<Arc<Waker>>,
    done_rx: Receiver<usize>,
    drain_grace: Duration,
    stopped: bool,
}

impl<A: Automaton> std::fmt::Debug for ReactorNode<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorNode")
            .field("cfg", &self.cfg)
            .field("local", &self.local)
            .field("addr", &self.addr)
            .field("pool", &self.reactor_threads.len())
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> ReactorNode<A> {
    /// The node's bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The processes hosted (and drivable) on this node.
    pub fn hosted_processes(&self) -> &[ProcessId] {
        &self.local
    }

    /// Snapshot of the network statistics. `wire_bytes` counts frame blob
    /// bytes handed to sockets (resends count again); reconnect behavior
    /// shows up in `reconnects`, `frames_resent`, `frames_deduped` and
    /// `resend_buffer_high_water`.
    pub fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }

    /// Total OS threads this node runs: hosted processes + reactor pool +
    /// the dialer. Notably *not* a function of the link count.
    pub fn thread_count(&self) -> usize {
        self.proc_threads.len() + self.reactor_threads.len() + usize::from(self.dialer.is_some())
    }

    /// Fault injection: shuts down every established link socket on this
    /// node. Links are expected to recover through the reconnect-and-
    /// resend path — this is a *transient* failure, distinct from
    /// [`Driver::crash`] (which is permanent and silences a process).
    pub fn sever_links(&self) {
        for (tx, w) in self.cmd_txs.iter().zip(&self.wakers) {
            let _ = tx.send(Cmd::Sever);
            w.wake();
        }
    }

    /// Gracefully stops the node — drains links (bounded by the drain
    /// grace), then tears down all threads — and returns the final
    /// per-register histories and statistics.
    pub fn shutdown(mut self) -> (ShardedHistory<A::Value>, NetStats) {
        self.shutdown_inner();
        (
            self.recorder.snapshot_sharded(&self.registers),
            self.stats.lock().clone(),
        )
    }

    fn shutdown_inner(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        // 1. Stop the process loops: after they join, every envelope they
        //    will ever produce is already in a reactor's queue.
        for tx in self.inbox_txs.iter().flatten() {
            let _ = tx.send(Incoming::Shutdown);
        }
        for h in self.proc_threads.drain(..) {
            let _ = h.join();
        }
        // 2. Drain: reactors flush immediately and signal once their
        //    links settle (or the grace deadline forces the remainder).
        for (tx, w) in self.cmd_txs.iter().zip(&self.wakers) {
            let _ = tx.send(Cmd::Drain);
            w.wake();
        }
        let deadline = Instant::now() + self.drain_grace + Duration::from_secs(2);
        let mut done = 0usize;
        while done < self.reactor_threads.len() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.done_rx.recv_timeout(left) {
                Ok(_) => done += 1,
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        // 3. Stop the loops and the dialer.
        for (tx, w) in self.cmd_txs.iter().zip(&self.wakers) {
            let _ = tx.send(Cmd::Stop);
            w.wake();
        }
        for h in self.reactor_threads.drain(..) {
            let _ = h.join();
        }
        self.dial_tx = None; // the last sender: the dialer's recv errors
        if let Some(h) = self.dialer.take() {
            let _ = h.join();
        }
    }
}

impl<A: Automaton> Drop for ReactorNode<A> {
    /// Best-effort, non-blocking teardown signal (the blocking, draining
    /// variant is the explicit [`ReactorNode::shutdown`]).
    fn drop(&mut self) {
        if self.stopped {
            return;
        }
        for tx in self.inbox_txs.iter().flatten() {
            let _ = tx.send(Incoming::Shutdown);
        }
        for (tx, w) in self.cmd_txs.iter().zip(&self.wakers) {
            let _ = tx.send(Cmd::Stop);
            w.wake();
        }
    }
}

impl<A: Automaton> Driver for ReactorNode<A> {
    type Value = A::Value;

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn registers(&self) -> Vec<RegisterId> {
        self.registers.clone()
    }

    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
    ) -> Result<OpTicket, DriverError> {
        if proc.index() >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if !self.registers.contains(&reg) {
            return Err(DriverError::UnknownRegister(reg));
        }
        if self.crashed[proc.index()].load(Ordering::Relaxed) {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        let Some(inbox) = self.inbox_txs[proc.index()].as_ref() else {
            return Err(DriverError::Backend(format!(
                "process {proc} is not hosted on this node"
            )));
        };
        if self.pending.contains_key(&(proc, reg)) {
            return Err(DriverError::OperationInFlight { proc, reg });
        }
        let op_id = OpId::new(self.op_ids.fetch_add(1, Ordering::Relaxed));
        let (reply_tx, reply_rx) = bounded(1);
        let invoked_at = self.recorder.now();
        if inbox
            .send(Incoming::Invoke {
                reg,
                op_id,
                op: op.clone(),
                reply: reply_tx,
            })
            .is_err()
        {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        self.recorder.invoked(op_id, proc, reg, op, invoked_at);
        self.pending.insert((proc, reg), (op_id, reply_rx));
        Ok(OpTicket { proc, reg, op_id })
    }

    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<A::Value>, DriverError> {
        let key = (ticket.proc, ticket.reg);
        if let Some((op_id, outcome)) = self.completed.get(&key) {
            if *op_id == ticket.op_id {
                return Ok(outcome.clone());
            }
        }
        let Some((op_id, rx)) = self.pending.get(&key) else {
            return Err(DriverError::Stalled(ticket.op_id));
        };
        if *op_id != ticket.op_id {
            let op_id = *op_id;
            return Err(DriverError::Backend(format!(
                "ticket {} superseded by {op_id}",
                ticket.op_id
            )));
        }
        match rx.recv_timeout(self.op_timeout) {
            Ok(outcome) => {
                self.recorder
                    .completed(ticket.op_id, self.recorder.now(), outcome.clone());
                self.pending.remove(&key);
                self.completed.insert(key, (ticket.op_id, outcome.clone()));
                Ok(outcome)
            }
            Err(RecvTimeoutError::Timeout) => Err(DriverError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                self.pending.remove(&key);
                Err(DriverError::ProcessUnavailable(ticket.proc))
            }
        }
    }

    fn crash(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        self.life.lock()[pi]
            .crash()
            .map_err(|_| DriverError::AlreadyCrashed(proc))?;
        self.crashed[pi].store(true, Ordering::Relaxed);
        if let Some(tx) = self.inbox_txs[pi].as_ref() {
            // Nudge the thread so it observes the flag even when idle.
            // (Not a shutdown — the parked thread must survive for a
            // later recovery.)
            let _ = tx.send(Incoming::Nudge);
        }
        Ok(())
    }

    fn recover(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        // The stop-the-world coordinator needs a quiesced cluster; an op
        // still in flight anywhere would keep the books open forever.
        if let Some((p, r)) = self.pending.keys().next() {
            return Err(DriverError::OperationInFlight { proc: *p, reg: *r });
        }
        recover_process(
            proc,
            &RecoveryParts {
                cfg: self.cfg,
                registers: &self.registers,
                inboxes: &self.inbox_txs,
                life: &self.life,
                crashed: &self.crashed,
                stats: &self.stats,
                recorder: &self.recorder,
                quiesce_timeout: self.op_timeout,
            },
        )
    }

    fn lifecycle(&self, proc: ProcessId) -> Lifecycle {
        self.life
            .lock()
            .get(proc.index())
            .map_or(Lifecycle::Crashed, |l| l.state)
    }

    fn history(&self) -> ShardedHistory<A::Value> {
        self.recorder.snapshot_sharded(&self.registers)
    }

    fn stats(&self) -> NetStats {
        ReactorNode::stats(self)
    }
}

/// All-local convenience: a single [`ReactorNode`] hosting every process,
/// listening on an ephemeral loopback port — the drop-in counterpart of
/// `TcpClusterBuilder` with a flat thread count.
#[derive(Debug)]
pub struct ReactorClusterBuilder {
    inner: ReactorNodeBuilder,
}

impl ReactorClusterBuilder {
    /// Starts configuring a single-node reactor cluster of `cfg.n()`
    /// processes hosting one register (use
    /// [`ReactorClusterBuilder::registers`] for more).
    pub fn new(cfg: SystemConfig) -> Self {
        ReactorClusterBuilder {
            inner: ReactorNodeBuilder::new(cfg),
        }
    }

    /// Sets the reactor pool size (default 4).
    pub fn pool_size(mut self, pool: usize) -> Self {
        self.inner = self.inner.pool_size(pool);
        self
    }

    /// Hosts registers `r0 .. r(count-1)`.
    pub fn registers(mut self, count: usize) -> Self {
        self.inner = self.inner.registers(count);
        self
    }

    /// Hosts exactly the given registers.
    pub fn register_ids(mut self, registers: Vec<RegisterId>) -> Self {
        self.inner = self.inner.register_ids(registers);
        self
    }

    /// Sets the client-side operation timeout.
    pub fn op_timeout(mut self, timeout: Duration) -> Self {
        self.inner = self.inner.op_timeout(timeout);
        self
    }

    /// Sets the links' default frame flush policy.
    pub fn flush_policy(mut self, flush: FlushPolicy) -> Self {
        self.inner = self.inner.flush_policy(flush);
        self
    }

    /// Overrides the flush policy for one ordered link `src → dst`.
    pub fn flush_policy_for(
        mut self,
        src: impl Into<ProcessId>,
        dst: impl Into<ProcessId>,
        flush: FlushPolicy,
    ) -> Self {
        self.inner = self.inner.flush_policy_for(src, dst, flush);
        self
    }

    /// Sets the local read-cache mode.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.inner = self.inner.cache_mode(mode);
        self
    }

    /// Caps the per-link resend buffer.
    pub fn resend_buffer(mut self, frames: usize) -> Self {
        self.inner = self.inner.resend_buffer(frames);
        self
    }

    /// Sets the reconnect policy.
    pub fn reconnect_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.inner = self.inner.reconnect_policy(policy);
        self
    }

    /// Sets the drain grace.
    pub fn drain_grace(mut self, grace: Duration) -> Self {
        self.inner = self.inner.drain_grace(grace);
        self
    }

    /// Builds and starts the cluster with one automaton per process.
    ///
    /// # Errors
    ///
    /// As [`ListeningNode::join`].
    pub fn build<A, F>(self, initial: A::Value, mut make: F) -> Result<ReactorNode<A>, BuildError>
    where
        A: Automaton,
        F: FnMut(ProcessId) -> A,
    {
        self.build_sharded(initial, move |_reg, id| make(id))
    }

    /// Builds and starts the cluster with one automaton per
    /// `(register, process)` pair.
    ///
    /// # Errors
    ///
    /// As [`ListeningNode::join`].
    pub fn build_sharded<A, F>(
        self,
        initial: A::Value,
        make: F,
    ) -> Result<ReactorNode<A>, BuildError>
    where
        A: Automaton,
        F: FnMut(RegisterId, ProcessId) -> A,
    {
        self.inner
            .listen(("127.0.0.1", 0))?
            .join(&HashMap::new(), initial, make)
    }
}

// Keep the recv-side partition helper referenced from this module so the
// routing contract (accepting thread vs owning thread) is testable.
#[allow(unused_imports)]
use recv_owner as _recv_owner_contract;

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_core::TwoBitProcess;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    #[test]
    fn write_then_read_over_the_reactor() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let mut node = ReactorClusterBuilder::new(c)
            .pool_size(2)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        node.write(writer, RegisterId::ZERO, 7).unwrap();
        assert_eq!(node.read(ProcessId::new(1), RegisterId::ZERO).unwrap(), 7);
        assert_eq!(node.thread_count(), 3 + 2 + 1, "procs + pool + dialer");
        let (history, stats) = node.shutdown();
        twobit_lincheck::check_swmr(history.shard(RegisterId::ZERO).unwrap()).unwrap();
        assert!(stats.wire_bytes() > 0, "bytes crossed real sockets");
        assert_eq!(stats.links_abandoned(), 0);
        assert_eq!(stats.reconnects(), 0, "no failures were injected");
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
            stats.total_sent(),
            "teardown reconciliation"
        );
        assert_eq!(
            stats.frames_sent(),
            stats.flushes_total(),
            "every sealed frame carries exactly one flush reason"
        );
    }

    #[test]
    fn builder_validates_flush_policy_and_deployment() {
        use twobit_runtime::ConfigError;
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let err = ReactorClusterBuilder::new(c)
            .flush_policy(FlushPolicy::fixed(0, Duration::ZERO))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64));
        assert!(matches!(
            err,
            Err(BuildError::Config(ConfigError::ZeroMaxBatch { link: None }))
        ));

        // Hosting p0 only without a peer address for p1/p2 is a typed
        // deployment error, not a hang.
        let err = ReactorNodeBuilder::new(c)
            .host([0usize])
            .listen(("127.0.0.1", 0))
            .unwrap()
            .join::<TwoBitProcess<u64>, _>(&HashMap::new(), 0u64, |_, id| {
                TwoBitProcess::new(id, c, writer, 0u64)
            });
        assert!(matches!(err, Err(BuildError::Io(_))));
    }

    #[test]
    fn driving_a_remote_process_is_a_typed_error() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        // A node hosting p0 only, with (fake but well-formed) peer
        // addresses for p1/p2 — dials back off in the background while the
        // driver surface stays responsive for hosted processes.
        let mut peers = HashMap::new();
        // An address from TEST-NET-1: dials fail fast or time out; the
        // local driver check must not depend on them at all.
        peers.insert(ProcessId::new(1), "192.0.2.1:9".parse().unwrap());
        peers.insert(ProcessId::new(2), "192.0.2.1:10".parse().unwrap());
        let mut node = ReactorNodeBuilder::new(c)
            .host([0usize])
            .pool_size(1)
            .reconnect_policy(ReconnectPolicy {
                max_attempts: 1,
                dial_timeout: Duration::from_millis(50),
                ..ReconnectPolicy::default()
            })
            .op_timeout(Duration::from_millis(200))
            .listen(("127.0.0.1", 0))
            .unwrap()
            .join::<TwoBitProcess<u64>, _>(&peers, 0u64, |_, id| {
                TwoBitProcess::new(id, c, writer, 0u64)
            })
            .unwrap();
        assert_eq!(node.hosted_processes(), &[ProcessId::new(0)]);
        match node.invoke(ProcessId::new(1), RegisterId::ZERO, Operation::Read) {
            Err(DriverError::Backend(msg)) => {
                assert!(msg.contains("not hosted"), "got: {msg}");
            }
            other => panic!("expected a Backend error, got {other:?}"),
        }
        drop(node);
    }
}
