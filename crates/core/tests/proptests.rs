//! Property-based tests of the two-bit core: codec totality, alternating-bit
//! channel behaviour under arbitrary interleavings, and the exact message
//! economy of Lemma 5 / Theorem 2 on synchronous executions of arbitrary
//! size.

use proptest::prelude::*;
use std::collections::VecDeque;

use twobit_core::msg::codec;
use twobit_core::{Parity, TwoBitMsg, TwoBitProcess};
use twobit_proto::{Automaton, Effects, OpId, Operation, ProcessId, SystemConfig};

proptest! {
    /// Encode/decode is the identity on every message, and WRITE tag
    /// overhead is exactly one byte (2 information bits + fixed padding).
    #[test]
    fn codec_roundtrip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        for msg in [
            TwoBitMsg::Write(Parity::Even, payload.clone()),
            TwoBitMsg::Write(Parity::Odd, payload.clone()),
            TwoBitMsg::Read,
            TwoBitMsg::Proceed,
        ] {
            let bytes = codec::encode(&msg);
            prop_assert_eq!(codec::decode(&bytes).unwrap(), msg.clone());
            let overhead = bytes.len()
                - match &msg {
                    TwoBitMsg::Write(_, v) => v.len(),
                    _ => 0,
                };
            prop_assert_eq!(overhead, 1);
        }
    }

    /// Decoding never panics on arbitrary bytes, and every successful
    /// decode re-encodes to the same bytes (canonical form).
    #[test]
    fn codec_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(msg) = codec::decode(&bytes) {
            let reencoded = codec::encode(&msg);
            prop_assert_eq!(reencoded.as_ref(), &bytes[..]);
        }
    }

    /// Two processes exchanging WRITEs over a channel that delivers the (at
    /// most two) in-flight messages in ANY order always converge: this is
    /// the alternating-bit property P1 exercised directly at the automaton
    /// level, without the simulator.
    #[test]
    fn pairwise_alternating_bit_converges(flip_order in prop::collection::vec(any::<bool>(), 1..40)) {
        let n = 2;
        let cfg = SystemConfig::new(n, 0).unwrap();
        let writer = ProcessId::new(0);
        let mut p0 = TwoBitProcess::new(ProcessId::new(0), cfg, writer, 0u64);
        let mut p1 = TwoBitProcess::new(ProcessId::new(1), cfg, writer, 0u64);
        // Channels as queues; `flip_order[k]` decides whether to deliver the
        // front or the back of the destination's queue at step k.
        let mut chan01: VecDeque<TwoBitMsg<u64>> = VecDeque::new();
        let mut chan10: VecDeque<TwoBitMsg<u64>> = VecDeque::new();
        let mut next_value = 1u64;
        let mut op = 0u64;

        for &flip in &flip_order {
            // Writer writes when idle (its previous write completed because
            // quorum = 2 needs p1's echo; keep issuing as the sim allows).
            if chan01.is_empty() && chan10.is_empty() {
                let mut fx = Effects::new();
                p0.on_invoke(OpId::new(op), Operation::Write(next_value), &mut fx);
                op += 1;
                next_value += 1;
                for (to, m) in fx.drain_sends() {
                    assert_eq!(to.index(), 1);
                    chan01.push_back(m);
                }
            }
            // Deliver one message on each channel, in adversarial order
            // (`flip` picks the newest rather than the oldest in-flight
            // message — P1 says there are at most two, so this explores
            // every reordering).
            let msg = if flip { chan01.pop_back() } else { chan01.pop_front() };
            if let Some(m) = msg {
                let mut fx = Effects::new();
                p1.on_message(ProcessId::new(0), m, &mut fx);
                p1.check_local_invariants().unwrap();
                for (to, m2) in fx.drain_sends() {
                    prop_assert_eq!(to.index(), 0);
                    chan10.push_back(m2);
                }
            }
            let msg = if flip { chan10.pop_back() } else { chan10.pop_front() };
            if let Some(m) = msg {
                let mut fx = Effects::new();
                p0.on_message(ProcessId::new(1), m, &mut fx);
                p0.check_local_invariants().unwrap();
                for (to, m2) in fx.drain_sends() {
                    prop_assert_eq!(to.index(), 1);
                    chan01.push_back(m2);
                }
            }
        }
        // Drain both channels to quiescence (FIFO is fine now).
        let mut guard = 0;
        while !chan01.is_empty() || !chan10.is_empty() {
            guard += 1;
            prop_assert!(guard < 10_000, "no convergence");
            if let Some(m) = chan01.pop_front() {
                let mut fx = Effects::new();
                p1.on_message(ProcessId::new(0), m, &mut fx);
                for (to, m2) in fx.drain_sends() {
                    prop_assert_eq!(to.index(), 0);
                    chan10.push_back(m2);
                }
            }
            if let Some(m) = chan10.pop_front() {
                let mut fx = Effects::new();
                p0.on_message(ProcessId::new(1), m, &mut fx);
                for (to, m2) in fx.drain_sends() {
                    prop_assert_eq!(to.index(), 1);
                    chan01.push_back(m2);
                }
            }
        }
        prop_assert_eq!(p0.history(), p1.history(), "histories must converge");
        p0.check_local_invariants().unwrap();
        p1.check_local_invariants().unwrap();
    }

    /// On a synchronous full-information execution, one write costs exactly
    /// n(n−1) messages for any n (Theorem 2's constant, beyond the sizes
    /// pinned in the harness).
    #[test]
    fn write_message_economy_any_n(n in 2usize..10) {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        let mut procs: Vec<TwoBitProcess<u64>> = (0..n)
            .map(|i| TwoBitProcess::new(ProcessId::new(i), cfg, writer, 0u64))
            .collect();
        let mut fx = Effects::new();
        procs[0].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
        let mut queue: VecDeque<(ProcessId, ProcessId, TwoBitMsg<u64>)> = fx
            .drain_sends()
            .map(|(to, m)| (ProcessId::new(0), to, m))
            .collect();
        let mut delivered = 0usize;
        while let Some((from, to, m)) = queue.pop_front() {
            delivered += 1;
            prop_assert!(delivered <= n * n, "message storm");
            let mut fx = Effects::new();
            procs[to.index()].on_message(from, m, &mut fx);
            for (to2, m2) in fx.drain_sends() {
                queue.push_back((to, to2, m2));
            }
        }
        prop_assert_eq!(delivered, n * (n - 1));
        for p in &procs {
            prop_assert_eq!(p.history(), &[0, 1][..]);
            p.check_local_invariants().unwrap();
        }
    }
}
