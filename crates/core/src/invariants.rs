//! The paper's proof obligations as machine-checkable invariants.
//!
//! The proof in §4 establishes a collection of global properties relating the
//! local states of different processes and the messages in flight. Rather
//! than trusting them, this module *checks them continuously* while a
//! simulation runs (experiments E5/E6 and every property test do this):
//!
//! * [`Lemma2`] — `∀ i,j : w_sync_i[i] ≥ w_sync_j[i]`;
//! * [`Lemma4`] — every local history is a prefix of the writer's history;
//! * [`PropertyP1`] — on each ordered channel, at most two `WRITE`s are
//!   unprocessed (in flight or buffered) and, when two, their parities
//!   differ — "at most one message WRITE can bypass another" (§3.3);
//! * [`PropertyP2`] — `∀ i,j : |w_sync_i[j] − w_sync_j[i]| ≤ 1` (§3.3);
//! * [`WriteValueConsistency`] — every unprocessed `WRITE` carries exactly
//!   the written value its parity position implies (the payload of the
//!   `x`-th message on a channel is `v_x`), which is the engine of Lemma 4;
//! * [`ReadSyncSanity`] — `r_sync_i[j] ≤ r_sync_i[i]`: nobody acknowledges
//!   more read requests than were issued.
//!
//! Local (single-process) obligations — Lemma 3, Lemma 5's R1/R2 counters,
//! and the local half of P1 — are checked by
//! [`check_local_invariants`](twobit_proto::Automaton::check_local_invariants),
//! which the simulator invokes
//! automatically.
//!
//! Use [`all`] to register the full battery on a simulation:
//!
//! ```
//! use twobit_core::{invariants, TwoBitProcess};
//! use twobit_proto::{Operation, ProcessId, SystemConfig};
//! use twobit_simnet::{ClientPlan, SimBuilder};
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let writer = ProcessId::new(0);
//! let mut sim = SimBuilder::new(cfg)
//!     .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
//! for inv in invariants::all::<u64>(writer) {
//!     sim.add_invariant(inv);
//! }
//! sim.client_plan(0, ClientPlan::ops([Operation::Write(1), Operation::Write(2)]));
//! sim.client_plan(2, ClientPlan::ops([Operation::<u64>::Read]));
//! let report = sim.run()?; // any violation would abort the run
//! assert!(report.all_live_ops_completed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use twobit_proto::{Payload, ProcessId};
use twobit_simnet::{SimInvariant, SimView};

use crate::automaton::TwoBitProcess;
use crate::msg::{Parity, TwoBitMsg};

/// Lemma 2: `w_sync_i[i] ≥ w_sync_j[i]` — no process credits `p_i` with
/// more history than `p_i` credits itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lemma2;

impl<V: Payload> SimInvariant<TwoBitProcess<V>> for Lemma2 {
    fn name(&self) -> &'static str {
        "Lemma2: w_sync[i][i] >= w_sync[j][i]"
    }

    fn check(&mut self, view: &SimView<'_, TwoBitProcess<V>>) -> Result<(), String> {
        for (i, pi) in view.procs.iter().enumerate() {
            let own = pi.w_sync()[i];
            for (j, pj) in view.procs.iter().enumerate() {
                let seen = pj.w_sync()[i];
                if seen > own {
                    return Err(format!(
                        "w_sync[p{j}][p{i}] = {seen} > w_sync[p{i}][p{i}] = {own}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Lemma 4: every local history is a prefix of the writer's history (which
/// contains every value ever written, because the writer appends locally
/// before sending).
#[derive(Clone, Copy, Debug)]
pub struct Lemma4 {
    writer: ProcessId,
}

impl Lemma4 {
    /// Creates the invariant for a system whose writer is `writer`.
    pub fn new(writer: ProcessId) -> Self {
        Lemma4 { writer }
    }
}

impl<V: Payload> SimInvariant<TwoBitProcess<V>> for Lemma4 {
    fn name(&self) -> &'static str {
        "Lemma4: local histories are prefixes of the writer's"
    }

    fn check(&mut self, view: &SimView<'_, TwoBitProcess<V>>) -> Result<(), String> {
        let wh = view.procs[self.writer.index()].history();
        for (i, p) in view.procs.iter().enumerate() {
            let h = p.history();
            if h.len() > wh.len() {
                return Err(format!(
                    "p{i} has {} values but the writer only {}",
                    h.len(),
                    wh.len()
                ));
            }
            if h != &wh[..h.len()] {
                return Err(format!("p{i}'s history diverges from the writer's"));
            }
        }
        Ok(())
    }
}

/// Property P1 (§3.3): on each ordered channel at most one `WRITE` can
/// bypass another — equivalently, at most two `WRITE`s are unprocessed
/// (in flight in the network, or delivered but parity-buffered at the
/// destination), and when two are unprocessed their parities differ.
#[derive(Clone, Copy, Debug, Default)]
pub struct PropertyP1;

impl<V: Payload> SimInvariant<TwoBitProcess<V>> for PropertyP1 {
    fn name(&self) -> &'static str {
        "P1: at most one in-flight WRITE bypass per channel"
    }

    fn check(&mut self, view: &SimView<'_, TwoBitProcess<V>>) -> Result<(), String> {
        let n = view.procs.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let from = ProcessId::new(i);
                let to = ProcessId::new(j);
                let mut parities: Vec<Parity> = view
                    .channel(from, to)
                    .iter()
                    .filter_map(|m| match m.msg {
                        TwoBitMsg::Write(p, _) => Some(*p),
                        _ => None,
                    })
                    .collect();
                // Plus any delivered-but-unprocessed message at p_j.
                let buffered = view.procs[j].buffered_from(from);
                if buffered > 1 {
                    return Err(format!("p{j} buffers {buffered} WRITEs from p{i}"));
                }
                if parities.len() + buffered > 2 {
                    return Err(format!(
                        "channel p{i}->p{j} has {} unprocessed WRITEs (max 2)",
                        parities.len() + buffered
                    ));
                }
                if parities.len() == 2 && parities[0] == parities[1] {
                    return Err(format!(
                        "channel p{i}->p{j} carries two WRITEs of equal parity {:?}",
                        parities[0]
                    ));
                }
                parities.clear();
            }
        }
        Ok(())
    }
}

/// Property P2 (§3.3): `|w_sync_i[j] − w_sync_j[i]| ≤ 1` — the fault-tolerant
/// synchronizer keeps every pair of processes within one write of each other.
#[derive(Clone, Copy, Debug, Default)]
pub struct PropertyP2;

impl<V: Payload> SimInvariant<TwoBitProcess<V>> for PropertyP2 {
    fn name(&self) -> &'static str {
        "P2: |w_sync[i][j] - w_sync[j][i]| <= 1"
    }

    fn check(&mut self, view: &SimView<'_, TwoBitProcess<V>>) -> Result<(), String> {
        let n = view.procs.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let a = view.procs[i].w_sync()[j];
                let b = view.procs[j].w_sync()[i];
                if a.abs_diff(b) > 1 {
                    return Err(format!(
                        "w_sync[p{i}][p{j}]={a} vs w_sync[p{j}][p{i}]={b} (gap {})",
                        a.abs_diff(b)
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Every unprocessed `WRITE` on channel `p_i → p_j` must carry the value its
/// position implies: the receiver has processed `w_sync_j[i]` messages, so
/// the unprocessed ones are the `(w_sync_j[i]+1)`-th and possibly the
/// `(w_sync_j[i]+2)`-th — and the parity says which is which. Their payloads
/// must equal `history_w[x]` for the implied `x`. This is the mechanism that
/// makes Lemma 4 go through.
#[derive(Clone, Copy, Debug)]
pub struct WriteValueConsistency {
    writer: ProcessId,
}

impl WriteValueConsistency {
    /// Creates the invariant for a system whose writer is `writer`.
    pub fn new(writer: ProcessId) -> Self {
        WriteValueConsistency { writer }
    }
}

impl<V: Payload> SimInvariant<TwoBitProcess<V>> for WriteValueConsistency {
    fn name(&self) -> &'static str {
        "WRITE payloads match their implied history index"
    }

    fn check(&mut self, view: &SimView<'_, TwoBitProcess<V>>) -> Result<(), String> {
        let wh = view.procs[self.writer.index()].history();
        let n = view.procs.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let from = ProcessId::new(i);
                let to = ProcessId::new(j);
                let processed = view.procs[j].w_sync()[i];
                for m in view.channel(from, to) {
                    let TwoBitMsg::Write(parity, v) = m.msg else {
                        continue;
                    };
                    // The unprocessed messages are #processed+1 and
                    // #processed+2; parity selects the index.
                    let x = if *parity == Parity::of(processed + 1) {
                        processed + 1
                    } else {
                        processed + 2
                    };
                    match wh.get(x as usize) {
                        None => {
                            return Err(format!(
                                "channel p{i}->p{j}: WRITE implies index {x} but writer has \
                                 only {} values",
                                wh.len()
                            ));
                        }
                        Some(expected) if expected != v => {
                            return Err(format!(
                                "channel p{i}->p{j}: WRITE #{x} carries {v:?}, writer wrote \
                                 {expected:?}"
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        Ok(())
    }
}

/// Sanity: `r_sync_i[j] ≤ r_sync_i[i]` — a process can only have had `READ`s
/// acknowledged that it actually issued.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadSyncSanity;

impl<V: Payload> SimInvariant<TwoBitProcess<V>> for ReadSyncSanity {
    fn name(&self) -> &'static str {
        "r_sync[i][j] <= r_sync[i][i]"
    }

    fn check(&mut self, view: &SimView<'_, TwoBitProcess<V>>) -> Result<(), String> {
        for (i, p) in view.procs.iter().enumerate() {
            let own = p.r_sync()[i];
            for (j, &acks) in p.r_sync().iter().enumerate() {
                if acks > own {
                    return Err(format!(
                        "r_sync[p{i}][p{j}]={acks} > r_sync[p{i}][p{i}]={own}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The full battery of global invariants for a system with the given writer.
pub fn all<V: Payload>(writer: ProcessId) -> Vec<Box<dyn SimInvariant<TwoBitProcess<V>>>> {
    vec![
        Box::new(Lemma2),
        Box::new(Lemma4::new(writer)),
        Box::new(PropertyP1),
        Box::new(PropertyP2),
        Box::new(WriteValueConsistency::new(writer)),
        Box::new(ReadSyncSanity),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_proto::{Automaton as _, Operation, SystemConfig};
    use twobit_simnet::{ClientPlan, CrashPlan, CrashPoint, DelayModel, SimBuilder};

    fn run_with_invariants(
        n: usize,
        seed: u64,
        delay: DelayModel,
        crashes: CrashPlan,
        writes: u64,
        readers: &[usize],
    ) {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(delay)
            .crashes(crashes)
            .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
        for inv in all::<u64>(writer) {
            sim.add_invariant(inv);
        }
        sim.client_plan(0, ClientPlan::ops((1..=writes).map(Operation::Write)));
        for &r in readers {
            sim.client_plan(
                r,
                ClientPlan::ops((0..writes).map(|_| Operation::<u64>::Read)),
            );
        }
        sim.run().expect("invariants must hold");
    }

    #[test]
    fn invariants_hold_failure_free_fixed_delay() {
        run_with_invariants(
            5,
            1,
            DelayModel::Fixed(1_000),
            CrashPlan::none(),
            10,
            &[1, 2],
        );
    }

    #[test]
    fn invariants_hold_under_reordering_delays() {
        run_with_invariants(
            4,
            99,
            DelayModel::Spiky {
                lo: 1,
                hi: 100,
                spike_ppm: 300_000,
                spike_lo: 1_000,
                spike_hi: 10_000,
            },
            CrashPlan::none(),
            15,
            &[1, 2, 3],
        );
    }

    #[test]
    fn invariants_hold_with_crashes() {
        run_with_invariants(
            5,
            7,
            DelayModel::Uniform { lo: 10, hi: 500 },
            CrashPlan::none()
                .with_crash(3, CrashPoint::AtTime(2_000))
                .with_crash(
                    4,
                    CrashPoint::OnStep {
                        step: 4,
                        sends_allowed: 1,
                    },
                ),
            8,
            &[1, 2],
        );
    }

    fn fresh(n: usize) -> Vec<TwoBitProcess<u64>> {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        (0..n)
            .map(|i| TwoBitProcess::new(ProcessId::new(i), cfg, writer, 0u64))
            .collect()
    }

    fn view_of<'a>(
        procs: &'a [TwoBitProcess<u64>],
        crashed: &'a [bool],
        inflight: &'a [twobit_simnet::InFlightMsg<'a, crate::msg::TwoBitMsg<u64>>],
    ) -> twobit_simnet::SimView<'a, TwoBitProcess<u64>> {
        twobit_simnet::SimView {
            now: 0,
            procs,
            crashed,
            inflight,
        }
    }

    #[test]
    fn lemma2_trips_on_overcredit() {
        let mut procs = fresh(3);
        // p1 credits p2 with 5 writes while p2 credits itself 0.
        procs[1].forge_w_sync(2, 5);
        // (also forge p1's own counter so its local Lemma 3 check would
        // pass — the violation must be caught by the *global* Lemma 2.)
        procs[1].forge_w_sync(1, 5);
        let crashed = vec![false; 3];
        let inflight = Vec::new();
        let view = view_of(&procs, &crashed, &inflight);
        assert!(Lemma2.check(&view).is_err());
    }

    #[test]
    fn lemma4_trips_on_diverged_history() {
        let mut procs = fresh(3);
        // p2 fabricates a value the writer never wrote.
        procs[2].forge_history_push(99);
        procs[2].forge_w_sync(2, 1);
        let crashed = vec![false; 3];
        let inflight = Vec::new();
        let view = view_of(&procs, &crashed, &inflight);
        assert!(Lemma4::new(ProcessId::new(0)).check(&view).is_err());
        // Longer-than-writer histories are also flagged.
        let mut procs = fresh(3);
        procs[1].forge_history_push(1);
        procs[1].forge_w_sync(1, 1);
        let view = view_of(&procs, &crashed, &inflight);
        assert!(Lemma4::new(ProcessId::new(0)).check(&view).is_err());
    }

    #[test]
    fn p1_trips_on_double_buffering() {
        let mut procs = fresh(3);
        procs[1].forge_buffer(0, crate::msg::Parity::Even, 1);
        procs[1].forge_buffer(0, crate::msg::Parity::Even, 2);
        let crashed = vec![false; 3];
        let inflight = Vec::new();
        let view = view_of(&procs, &crashed, &inflight);
        assert!(PropertyP1.check(&view).is_err());
    }

    #[test]
    fn p2_trips_on_gap_of_two() {
        let mut procs = fresh(3);
        procs[0].forge_w_sync(0, 2);
        procs[0].forge_w_sync(1, 2);
        procs[0].forge_history_push(1);
        procs[0].forge_history_push(2);
        // p1 still believes p0 is at 0: gap of 2.
        let crashed = vec![false; 3];
        let inflight = Vec::new();
        let view = view_of(&procs, &crashed, &inflight);
        assert!(PropertyP2.check(&view).is_err());
    }

    #[test]
    fn write_value_consistency_trips_on_wrong_payload() {
        let mut procs = fresh(3);
        // Writer legitimately wrote value 1...
        procs[0].forge_w_sync(0, 1);
        procs[0].forge_history_push(1);
        procs[0].forge_sent_writes(1, 1);
        procs[0].forge_sent_writes(2, 1);
        let crashed = vec![false; 3];
        // ...but the in-flight WRITE #1 carries 42.
        let bogus = crate::msg::TwoBitMsg::Write(crate::msg::Parity::Odd, 42u64);
        let inflight = vec![twobit_simnet::InFlightMsg {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            msg: &bogus,
            sent_at: 0,
            deliver_at: 1,
            send_seq: 0,
        }];
        let view = view_of(&procs, &crashed, &inflight);
        assert!(WriteValueConsistency::new(ProcessId::new(0))
            .check(&view)
            .is_err());
        // An index beyond the writer's history is also flagged.
        let bogus2 = crate::msg::TwoBitMsg::Write(crate::msg::Parity::Even, 2u64);
        let inflight = vec![twobit_simnet::InFlightMsg {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            msg: &bogus2,
            sent_at: 0,
            deliver_at: 1,
            send_seq: 0,
        }];
        let view = view_of(&procs, &crashed, &inflight);
        assert!(WriteValueConsistency::new(ProcessId::new(0))
            .check(&view)
            .is_err());
    }

    #[test]
    fn read_sync_sanity_trips() {
        let mut procs = fresh(3);
        // p1 claims p2 acknowledged 3 reads while p1 issued none.
        procs[1].forge_r_sync(2, 3);
        let crashed = vec![false; 3];
        let inflight = Vec::new();
        let view = view_of(&procs, &crashed, &inflight);
        assert!(ReadSyncSanity.check(&view).is_err());
    }

    #[test]
    fn local_lemma5_trips_on_wrong_send_count() {
        let mut procs = fresh(3);
        procs[0].forge_sent_writes(1, 7);
        assert!(procs[0].check_local_invariants().is_err());
    }

    #[test]
    fn local_lemma3_trips_on_non_max_self() {
        let mut procs = fresh(3);
        // p0 credits p1 with more than itself.
        procs[0].forge_w_sync(1, 4);
        // keep Lemma 5 consistent so the Lemma 3 branch is what fires
        procs[0].forge_sent_writes(1, 4);
        assert!(procs[0]
            .check_local_invariants()
            .unwrap_err()
            .contains("Lemma 3"));
    }

    #[test]
    fn lemma2_detects_forged_state() {
        // Forge an inconsistent pair of processes and check the invariant
        // trips (mutation test of the checker itself).
        let cfg = SystemConfig::new(2, 0).unwrap();
        let writer = ProcessId::new(0);
        let p0 = TwoBitProcess::<u64>::new(ProcessId::new(0), cfg, writer, 0);
        let p1 = TwoBitProcess::<u64>::new(ProcessId::new(1), cfg, writer, 0);
        let procs = vec![p0, p1];
        // p0 claims p1 knows 3 writes while p1 knows none. Reach the forged
        // state through the public API: impossible — so instead check via a
        // custom view with a hand-built invariant result. Here we simply
        // verify the closure formulation agrees on the healthy state.
        let crashed = vec![false, false];
        let inflight = Vec::new();
        let view = SimView {
            now: 0,
            procs: &procs,
            crashed: &crashed,
            inflight: &inflight,
        };
        assert!(Lemma2.check(&view).is_ok());
        assert!(PropertyP2.check(&view).is_ok());
        assert!(ReadSyncSanity.check(&view).is_ok());
        assert!(Lemma4::new(writer).check(&view).is_ok());
    }
}
