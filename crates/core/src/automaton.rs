//! The per-process automaton of the paper's Fig. 1.
//!
//! Fig. 1 is written with blocking `wait` statements; this implementation is
//! the equivalent *reactive* automaton. Every `wait` becomes a guard that is
//! re-examined after each state change:
//!
//! | Fig. 1 | here |
//! |--------|------|
//! | line 11 `wait (b = (w_sync_i[j]+1) mod 2)` | per-sender buffer of out-of-order `WRITE`s, drained when the parity matches |
//! | line 20 `wait (w_sync_i[j] ≥ sn)` | per-reader queue of pending `PROCEED` guards |
//! | line 3 / 7 / 9 operation waits | a pending-operation state machine re-checked after every mutation |
//!
//! Line numbers in comments below refer to Fig. 1 of the paper.

use std::collections::VecDeque;

use twobit_proto::{Automaton, Effects, OpId, Operation, Payload, ProcessId, SystemConfig};

use crate::msg::{Parity, TwoBitMsg};

/// Tuning knobs for [`TwoBitProcess`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoBitOptions {
    /// Fig. 1's comment on the read operation: "the writer can directly
    /// return `history_i[w_sync_i[i]]`". When `true` (the default, as in the
    /// paper) the writer serves its own reads locally in zero time; when
    /// `false` the writer runs the full two-phase read protocol — useful as
    /// an ablation (experiment E7).
    pub writer_fast_read: bool,
    /// Whether reads perform Fig. 1's **second wait** (line 9: wait until
    /// `n−t` processes are known to hold the value about to be returned).
    ///
    /// `true` is the paper's algorithm. `false` is an **ablation that
    /// deliberately weakens the register**: reads return right after the
    /// `PROCEED` quorum (line 7), which preserves conditions 1–2 of
    /// atomicity (no read from the future, no overwritten read — i.e. the
    /// register is still *regular*) but permits new/old inversions between
    /// non-overlapping reads. The experiments use this to demonstrate what
    /// the line 9 wait buys (and the checker's ability to see the
    /// difference). Never disable outside experiments.
    pub read_confirmation: bool,
}

impl Default for TwoBitOptions {
    fn default() -> Self {
        TwoBitOptions {
            writer_fast_read: true,
            read_confirmation: true,
        }
    }
}

/// The operation currently pending at this (sequential) process.
#[derive(Clone, Debug, PartialEq, Eq)]
enum PendingOp {
    /// Writer blocked at line 3: waiting for `n−t` processes `p_j` with
    /// `w_sync_w[j] = wsn`.
    Write { op_id: OpId, wsn: u64 },
    /// Reader blocked at line 7: waiting for `n−t` processes `p_j` with
    /// `r_sync_i[j] = rsn`.
    ReadAck { op_id: OpId, rsn: u64 },
    /// Reader blocked at line 9: waiting for `n−t` processes `p_j` with
    /// `w_sync_i[j] ≥ sn`; will return `history_i[sn]`.
    ReadConfirm { op_id: OpId, sn: u64 },
}

/// One process `p_i` of the two-bit SWMR atomic register algorithm.
///
/// Create one instance per process with identical `cfg`, `writer` and
/// initial value `v0`. The instance whose `id == writer` is the single
/// writer `p_w`; it alone may be handed [`Operation::Write`]s.
///
/// See the [crate docs](crate) for a hand-driven example.
#[derive(Clone, Debug)]
pub struct TwoBitProcess<V> {
    id: ProcessId,
    cfg: SystemConfig,
    writer: ProcessId,
    options: TwoBitOptions,

    /// `history_i[0..w_sync_i[i]]` — the known prefix of written values;
    /// `history[0]` is the initial value `v0`.
    history: Vec<V>,
    /// `w_sync_i[1..n]` — write-synchronization sequence numbers.
    w_sync: Vec<u64>,
    /// `r_sync_i[1..n]` — read-request acknowledgement counters.
    r_sync: Vec<u64>,

    /// Line 11's wait: `WRITE`s from `p_j` whose parity is not yet
    /// `(w_sync_i[j]+1) mod 2`, buffered until they are next in order.
    /// Property P1 bounds each buffer to one message; the invariant checker
    /// asserts that, but the code tolerates more defensively.
    buffered: Vec<VecDeque<(Parity, V)>>,
    /// Line 20's wait: for each requester `p_j`, the `sn` thresholds of
    /// `READ()`s not yet answered with `PROCEED()` (FIFO per requester).
    read_guards: Vec<VecDeque<u64>>,
    /// The operation this process is currently executing, if any.
    pending: Option<PendingOp>,
    /// Messages `WRITE(−,−)` sent to each peer, for the Lemma 5 invariant
    /// (`sent_writes[j] ∈ {w_sync_i[j], w_sync_i[j]+1}`). Not part of the
    /// paper's state: it exists purely for invariant checking.
    sent_writes: Vec<u64>,
}

impl<V: Payload> TwoBitProcess<V> {
    /// Creates process `id` of an `n`-process system whose single writer is
    /// `writer`, with initial register value `v0`.
    pub fn new(id: ProcessId, cfg: SystemConfig, writer: ProcessId, v0: V) -> Self {
        Self::with_options(id, cfg, writer, v0, TwoBitOptions::default())
    }

    /// Like [`TwoBitProcess::new`], with explicit [`TwoBitOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `id` or `writer` is out of range for `cfg`.
    pub fn with_options(
        id: ProcessId,
        cfg: SystemConfig,
        writer: ProcessId,
        v0: V,
        options: TwoBitOptions,
    ) -> Self {
        assert!(id.index() < cfg.n(), "process id out of range");
        assert!(writer.index() < cfg.n(), "writer id out of range");
        let n = cfg.n();
        TwoBitProcess {
            id,
            cfg,
            writer,
            options,
            history: vec![v0],
            w_sync: vec![0; n],
            r_sync: vec![0; n],
            buffered: (0..n).map(|_| VecDeque::new()).collect(),
            read_guards: (0..n).map(|_| VecDeque::new()).collect(),
            pending: None,
            sent_writes: vec![0; n],
        }
    }

    /// The single writer's identity.
    pub fn writer(&self) -> ProcessId {
        self.writer
    }

    /// `true` if this process is the writer.
    pub fn is_writer(&self) -> bool {
        self.id == self.writer
    }

    /// The `w_sync_i[1..n]` vector (read-only, for invariant checking).
    pub fn w_sync(&self) -> &[u64] {
        &self.w_sync
    }

    /// The `r_sync_i[1..n]` vector (read-only, for invariant checking).
    pub fn r_sync(&self) -> &[u64] {
        &self.r_sync
    }

    /// The local history prefix (read-only, for invariant checking).
    pub fn history(&self) -> &[V] {
        &self.history
    }

    /// Number of `WRITE` messages this process has sent to `peer`.
    pub fn writes_sent_to(&self, peer: ProcessId) -> u64 {
        self.sent_writes[peer.index()]
    }

    /// Number of out-of-order `WRITE`s currently buffered from `peer`
    /// (property P1 says this never exceeds 1).
    pub fn buffered_from(&self, peer: ProcessId) -> usize {
        self.buffered[peer.index()].len()
    }

    /// Number of `PROCEED` guards currently pending (line 20 waits).
    pub fn pending_read_guards(&self) -> usize {
        self.read_guards
            .iter()
            .map(std::collections::VecDeque::len)
            .sum()
    }

    fn me(&self) -> usize {
        self.id.index()
    }

    /// Sends `WRITE(parity(wsn), history[wsn])` to `to`, bumping the Lemma 5
    /// counter.
    fn send_write(&mut self, to: ProcessId, wsn: u64, fx: &mut Effects<TwoBitMsg<V>, V>) {
        debug_assert_ne!(to, self.id, "never send WRITE to self");
        let v = self.history[wsn as usize].clone();
        self.sent_writes[to.index()] += 1;
        fx.send(to, TwoBitMsg::Write(Parity::of(wsn), v));
    }

    /// Lines 12–18: processes an *in-order* `WRITE` from `p_j` (the line 11
    /// wait has already been satisfied by the caller).
    fn process_write(&mut self, j: ProcessId, v: V, fx: &mut Effects<TwoBitMsg<V>, V>) {
        let me = self.me();
        let wsn = self.w_sync[j.index()] + 1; // line 12
        if wsn == self.w_sync[me] + 1 {
            // line 13: this is the next value of our own history.
            self.w_sync[me] = wsn; // line 14
            self.history.push(v);
            debug_assert_eq!(self.history.len() as u64, wsn + 1);
            // line 15, forwarding rule R1: to every process that (to our
            // knowledge) knows exactly the first wsn−1 values — including
            // p_j itself, whose w_sync entry is still wsn−1 here; the echo
            // back to the sender is what closes the alternating-bit loop.
            for l in 0..self.cfg.n() {
                if l != me && self.w_sync[l] == wsn - 1 {
                    self.send_write(ProcessId::new(l), wsn, fx);
                }
            }
        } else if wsn < self.w_sync[me] {
            // line 16, forwarding rule R2: p_j lags; send it the next value
            // it is missing (and only that one).
            self.send_write(j, wsn + 1, fx);
        }
        // (wsn == w_sync_i[i]: nothing to send — Lemma 3 case 3.)
        self.w_sync[j.index()] = wsn; // line 18
    }

    /// Drains every buffered `WRITE` that has become in-order, then
    /// re-evaluates all read guards and the pending operation. Idempotent;
    /// called after every state mutation.
    fn react(&mut self, fx: &mut Effects<TwoBitMsg<V>, V>) {
        // Line 11 buffers: a processed WRITE from p_j advances w_sync_i[j],
        // which can make a buffered message from p_j in-order. Selection is
        // by parity, not arrival order: the channel is not FIFO, so the
        // earliest-arrived buffered message may be the *later* of the two
        // in-flight WRITEs (P1 guarantees at most one such inversion).
        loop {
            let mut progressed = false;
            for j in 0..self.cfg.n() {
                let expected = Parity::of(self.w_sync[j] + 1);
                if let Some(pos) = self.buffered[j].iter().position(|(p, _)| *p == expected) {
                    let (_, v) = self.buffered[j].remove(pos).expect("position checked");
                    self.process_write(ProcessId::new(j), v, fx);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        // Line 20 guards: answer READ()s whose freshness condition now holds.
        for j in 0..self.cfg.n() {
            while self.read_guards[j]
                .front()
                .is_some_and(|sn| self.w_sync[j] >= *sn)
            {
                self.read_guards[j].pop_front();
                fx.send(ProcessId::new(j), TwoBitMsg::Proceed); // line 21
            }
        }

        // Operation waits (lines 3, 7, 9).
        self.check_pending(fx);
    }

    /// Re-evaluates the pending operation's wait predicate.
    fn check_pending(&mut self, fx: &mut Effects<TwoBitMsg<V>, V>) {
        let quorum = self.cfg.quorum();
        loop {
            match self.pending.clone() {
                Some(PendingOp::Write { op_id, wsn }) => {
                    // Line 3: |{j : w_sync_w[j] = wsn}| ≥ n−t. Since
                    // w_sync_w[w] = wsn is the maximum (Lemma 3), `≥ wsn`
                    // and `= wsn` coincide for the writer.
                    let z = self.w_sync.iter().filter(|&&s| s >= wsn).count();
                    if z >= quorum {
                        self.pending = None;
                        fx.complete_write(op_id); // line 4
                    }
                    return;
                }
                Some(PendingOp::ReadAck { op_id, rsn }) => {
                    // Line 7: |{j : r_sync_i[j] = rsn}| ≥ n−t (counting
                    // ourselves: r_sync_i[i] = rsn since line 5).
                    let z = self.r_sync.iter().filter(|&&s| s == rsn).count();
                    if z < quorum {
                        return;
                    }
                    // Line 8: freeze sn = w_sync_i[i] and fall through to
                    // the line 9 wait, which may already be satisfied.
                    let sn = self.w_sync[self.me()];
                    if !self.options.read_confirmation {
                        // Ablation: skip line 9 entirely (see
                        // [`TwoBitOptions::read_confirmation`]).
                        self.pending = None;
                        let v = self.history[sn as usize].clone();
                        fx.complete_read(op_id, v);
                        return;
                    }
                    self.pending = Some(PendingOp::ReadConfirm { op_id, sn });
                }
                Some(PendingOp::ReadConfirm { op_id, sn }) => {
                    // Line 9: |{j : w_sync_i[j] ≥ sn}| ≥ n−t.
                    let z = self.w_sync.iter().filter(|&&s| s >= sn).count();
                    if z >= quorum {
                        self.pending = None;
                        let v = self.history[sn as usize].clone();
                        fx.complete_read(op_id, v); // line 10
                    }
                    return;
                }
                None => return,
            }
        }
    }
}

/// Test-only state mutators: the invariant checkers must be shown to
/// *reject* broken states, and broken states are unreachable through the
/// public API (that is the point), so tests forge them directly.
#[cfg(test)]
impl<V: Payload> TwoBitProcess<V> {
    pub(crate) fn forge_w_sync(&mut self, j: usize, v: u64) {
        self.w_sync[j] = v;
    }
    pub(crate) fn forge_r_sync(&mut self, j: usize, v: u64) {
        self.r_sync[j] = v;
    }
    pub(crate) fn forge_history_push(&mut self, v: V) {
        self.history.push(v);
    }
    pub(crate) fn forge_buffer(&mut self, from: usize, parity: Parity, v: V) {
        self.buffered[from].push_back((parity, v));
    }
    pub(crate) fn forge_sent_writes(&mut self, j: usize, v: u64) {
        self.sent_writes[j] = v;
    }
}

impl<V: Payload> Automaton for TwoBitProcess<V> {
    type Value = V;
    type Msg = TwoBitMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// Lines 1–4 (write, at the writer) and 5–10 (read, at any process).
    ///
    /// # Panics
    ///
    /// Panics if a write is invoked on a process other than the writer, or
    /// if an operation is invoked while another is pending (processes are
    /// sequential — the substrate enforces this too).
    fn on_invoke(&mut self, op_id: OpId, op: Operation<V>, fx: &mut Effects<TwoBitMsg<V>, V>) {
        assert!(
            self.pending.is_none(),
            "{}: operation invoked while another is pending",
            self.id
        );
        match op {
            Operation::Write(v) => {
                assert!(
                    self.is_writer(),
                    "{}: write invoked on a non-writer process (writer is {})",
                    self.id,
                    self.writer
                );
                let me = self.me();
                // Line 1.
                let wsn = self.w_sync[me] + 1;
                self.w_sync[me] = wsn;
                self.history.push(v);
                // Line 2: to every process believed to know exactly the
                // first wsn−1 values.
                for j in 0..self.cfg.n() {
                    if j != me && self.w_sync[j] == wsn - 1 {
                        self.send_write(ProcessId::new(j), wsn, fx);
                    }
                }
                // Line 3.
                self.pending = Some(PendingOp::Write { op_id, wsn });
                self.check_pending(fx);
            }
            Operation::Read => {
                // Fig. 1 comment: the writer can return its freshest value
                // directly (it is always a quorum-confirmed... no — it is
                // correct because the writer's history is the full history
                // and its previous write completed on a quorum).
                if self.is_writer() && self.options.writer_fast_read {
                    let v = self.history[self.w_sync[self.me()] as usize].clone();
                    fx.complete_read(op_id, v);
                    return;
                }
                // Line 5.
                let me = self.me();
                let rsn = self.r_sync[me] + 1;
                self.r_sync[me] = rsn;
                // Line 6.
                for j in 0..self.cfg.n() {
                    if j != me {
                        fx.send(ProcessId::new(j), TwoBitMsg::Read);
                    }
                }
                // Line 7.
                self.pending = Some(PendingOp::ReadAck { op_id, rsn });
                self.check_pending(fx);
            }
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: TwoBitMsg<V>,
        fx: &mut Effects<TwoBitMsg<V>, V>,
    ) {
        debug_assert_ne!(from, self.id, "no self-messages in this protocol");
        match msg {
            TwoBitMsg::Write(parity, v) => {
                // Line 11: buffer unconditionally; `react` processes every
                // buffered WRITE whose parity is next in order (possibly
                // this one, immediately).
                self.buffered[from.index()].push_back((parity, v));
                self.react(fx);
            }
            TwoBitMsg::Read => {
                // Lines 19–20: remember sn = w_sync_i[i] now; PROCEED will
                // be sent once w_sync_i[from] ≥ sn.
                let sn = self.w_sync[self.me()];
                self.read_guards[from.index()].push_back(sn);
                self.react(fx);
            }
            TwoBitMsg::Proceed => {
                // Line 22.
                self.r_sync[from.index()] += 1;
                self.react(fx);
            }
        }
    }

    /// Measured size of the local state: the history values plus the two
    /// sequence-number vectors (and the transient buffers/guards). This is
    /// the "local memory" row of Table 1 — unbounded, because the history
    /// grows with the number of writes (the paper's §5 discusses why a
    /// modulo-based bound does not obviously apply).
    fn state_bits(&self) -> u64 {
        let history_bits: u64 = self.history.iter().map(Payload::data_bits).sum();
        let vec_bits = 64 * (self.w_sync.len() + self.r_sync.len() + self.sent_writes.len()) as u64;
        let buffered_bits: u64 = self
            .buffered
            .iter()
            .flat_map(|q| q.iter())
            .map(|(_, v)| 1 + v.data_bits())
            .sum();
        let guard_bits: u64 = 64 * self.read_guards.iter().map(|q| q.len() as u64).sum::<u64>();
        history_bits + vec_bits + buffered_bits + guard_bits
    }

    /// Fig. 1's write permission is statically pinned: `p_w` alone writes,
    /// so the local read cache may serve reads there (the driver-level
    /// generalization of the `writer_fast_read` option).
    fn swmr_writer(&self) -> Option<ProcessId> {
        Some(self.writer)
    }

    /// Donor side of recovery: this process's confirmed prefix *is* its
    /// history (Lemma 3 — `history_i[0..w_sync_i[i]]` is a prefix of the
    /// written sequence), so the whole vector ships as the snapshot.
    fn recovery_snapshot(&self) -> Option<Vec<V>> {
        Some(self.history.clone())
    }

    /// Rebuilds this (recovering) process's state from the quorum-adopted
    /// `snapshot`, as if it had witnessed every write up to the snapshot
    /// barrier `s = snapshot.len() − 1` and nothing since:
    ///
    /// * `history := snapshot`, `w_sync := [s; n]` — every peer is assumed
    ///   to sit exactly at the barrier (the live peers are simultaneously
    ///   hard-reset to it by [`Automaton::apply_rejoin`]);
    /// * `r_sync := [0; n]` — read sequence numbering restarts; `r_sync`
    ///   rows are process-local counters, so restarting is sound as long
    ///   as pre-recovery `PROCEED`s can no longer arrive, which the
    ///   incarnation fence guarantees;
    /// * buffers, guards and the pending op are discarded — any operation
    ///   interrupted by the crash stays incomplete in the history;
    /// * `sent_writes := [s; n]` keeps the Lemma 5 bookkeeping consistent
    ///   with the equal-`w_sync` case.
    fn install_recovery(&mut self, snapshot: &[V]) {
        debug_assert!(!snapshot.is_empty(), "snapshot always contains v0");
        let n = self.cfg.n();
        let s = snapshot.len() as u64 - 1;
        self.history = snapshot.to_vec();
        self.w_sync = vec![s; n];
        self.r_sync = vec![0; n];
        for q in &mut self.buffered {
            q.clear();
        }
        for q in &mut self.read_guards {
            q.clear();
        }
        self.pending = None;
        self.sent_writes = vec![s; n];
    }

    /// Hard-resets this (live) process's per-peer bookkeeping to the
    /// snapshot barrier when `rejoining` comes back. The snapshot is the
    /// longest live prefix, so it extends this process's own history
    /// (histories are prefixes of one another — Lemma 2); adopting it and
    /// declaring every peer to be exactly at the barrier is consistent
    /// because *every* live process performs the same reset atomically and
    /// all pre-recovery in-flight frames are fenced as stale:
    ///
    /// * read guards are dropped *without* sending `PROCEED` — the
    ///   requester's matching wait is resolved at the barrier below, and a
    ///   late `PROCEED` on top of that would double-count;
    /// * `r_sync[j] := r_sync[me]` for all `j` aligns the local `PROCEED`
    ///   ledger so a read this process has pending (or invokes next)
    ///   counts quorums from a consistent base;
    /// * the final `check_pending` completes any own operation whose
    ///   quorum predicate the barrier satisfies: a pending write's value
    ///   is inside the snapshot (this process is live, so its history is
    ///   part of the longest-prefix computation) and a pending read
    ///   returns the barrier value — the recovery barrier is its
    ///   linearization point.
    fn apply_rejoin(
        &mut self,
        rejoining: ProcessId,
        snapshot: &[V],
        fx: &mut Effects<TwoBitMsg<V>, V>,
    ) {
        debug_assert_ne!(
            rejoining, self.id,
            "the rejoining process installs, not rejoins"
        );
        debug_assert!(
            snapshot.len() >= self.history.len(),
            "snapshot is the longest live prefix"
        );
        let n = self.cfg.n();
        let s = snapshot.len() as u64 - 1;
        self.history = snapshot.to_vec();
        self.w_sync = vec![s; n];
        self.sent_writes = vec![s; n];
        for q in &mut self.buffered {
            q.clear();
        }
        for q in &mut self.read_guards {
            q.clear();
        }
        let mine = self.r_sync[self.me()];
        for r in &mut self.r_sync {
            *r = mine;
        }
        self.check_pending(fx);
    }

    /// Locally-checkable pieces of the paper's proof obligations:
    ///
    /// * Lemma 3: `w_sync_i[i] = max_j w_sync_i[j]`;
    /// * `history` length is `w_sync_i[i] + 1`;
    /// * Lemma 5 (R1/R2): `sent_writes[j] = w_sync_i[j]` when
    ///   `w_sync_i[i] = w_sync_i[j]`, and `w_sync_i[j] + 1` when
    ///   `w_sync_i[i] > w_sync_i[j]`;
    /// * P1 (local half): at most one out-of-order `WRITE` buffered per
    ///   sender.
    fn check_local_invariants(&self) -> Result<(), String> {
        let me = self.me();
        let max = self.w_sync.iter().copied().max().unwrap_or(0);
        if self.w_sync[me] != max {
            return Err(format!(
                "Lemma 3: w_sync[{me}]={} but max is {max}",
                self.w_sync[me]
            ));
        }
        if self.history.len() as u64 != self.w_sync[me] + 1 {
            return Err(format!(
                "history length {} != w_sync[i]+1 = {}",
                self.history.len(),
                self.w_sync[me] + 1
            ));
        }
        for j in 0..self.cfg.n() {
            if j == me {
                continue;
            }
            let expected = if self.w_sync[me] == self.w_sync[j] {
                self.w_sync[j]
            } else {
                self.w_sync[j] + 1
            };
            if self.sent_writes[j] != expected {
                return Err(format!(
                    "Lemma 5: sent_writes[{j}]={} but w_sync[i]={}, w_sync[{j}]={} expects {expected}",
                    self.sent_writes[j], self.w_sync[me], self.w_sync[j]
                ));
            }
            if self.buffered[j].len() > 1 {
                return Err(format!(
                    "P1: {} WRITEs buffered from p{j} (at most 1 allowed)",
                    self.buffered[j].len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_proto::{OpOutcome, WireMessage};

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    fn procs(n: usize) -> Vec<TwoBitProcess<u64>> {
        (0..n)
            .map(|i| TwoBitProcess::new(ProcessId::new(i), cfg(n), ProcessId::new(0), 0u64))
            .collect()
    }

    /// Delivers every queued send immediately (synchronous network), in
    /// FIFO order, until quiescence. Returns the total number of messages.
    fn settle(procs: &mut [TwoBitProcess<u64>], fx: &mut Effects<TwoBitMsg<u64>, u64>) -> usize {
        let mut delivered = 0;
        let mut queue: VecDeque<(ProcessId, ProcessId, TwoBitMsg<u64>)> = VecDeque::new();
        let mut from0: Vec<(ProcessId, TwoBitMsg<u64>)> = fx.drain_sends().collect();
        // The initial sends originate from whoever produced `fx`; caller
        // tags them via the `sender` convention below: we require the first
        // automaton in `procs` to be the sender of the seed messages only in
        // tests that use it that way. To stay general, the seed sender is
        // found by Lemma 5 counters — simpler: tests using settle() only
        // seed from the writer p0.
        for (to, m) in from0.drain(..) {
            queue.push_back((ProcessId::new(0), to, m));
        }
        while let Some((from, to, m)) = queue.pop_front() {
            delivered += 1;
            let mut fx2 = Effects::new();
            procs[to.index()].on_message(from, m, &mut fx2);
            for (next_to, next_m) in fx2.drain_sends() {
                queue.push_back((to, next_to, next_m));
            }
            for p in procs.iter() {
                p.check_local_invariants().expect("local invariants");
            }
        }
        delivered
    }

    #[test]
    fn initial_state() {
        let p = TwoBitProcess::new(ProcessId::new(1), cfg(3), ProcessId::new(0), 7u64);
        assert_eq!(p.history(), &[7]);
        assert_eq!(p.w_sync(), &[0, 0, 0]);
        assert_eq!(p.r_sync(), &[0, 0, 0]);
        assert!(!p.is_writer());
        assert_eq!(p.writer(), ProcessId::new(0));
        p.check_local_invariants().unwrap();
    }

    #[test]
    fn write_broadcasts_to_up_to_date_peers_only() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
        // All peers are believed up to date initially → 2 sends, WRITE1.
        let sends: Vec<_> = fx.sends().to_vec();
        assert_eq!(sends.len(), 2);
        for (_, m) in &sends {
            assert_eq!(m.kind(), "WRITE1");
        }
        assert_eq!(ps[0].w_sync(), &[1, 0, 0]);
        assert_eq!(ps[0].history(), &[0, 1]);
        ps[0].check_local_invariants().unwrap();
    }

    #[test]
    fn full_write_settles_with_n_times_n_minus_1_messages() {
        // Theorem 2: a write generates n(n−1) WRITE messages in total
        // (writer broadcast + one forward per ordered pair).
        for n in [2usize, 3, 5, 7] {
            let mut ps = procs(n);
            let mut fx = Effects::new();
            ps[0].on_invoke(OpId::new(0), Operation::Write(9), &mut fx);
            assert_eq!(fx.completions().len(), if n == 1 { 1 } else { 0 });
            let delivered = settle(&mut ps, &mut fx);
            assert_eq!(delivered, n * (n - 1), "n={n}");
            for p in &ps {
                assert_eq!(p.history(), &[0, 9]);
                assert_eq!(p.w_sync(), &vec![1u64; n][..]);
            }
        }
    }

    #[test]
    fn write_completes_on_quorum_of_echoes() {
        let mut ps = procs(5);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(3), Operation::Write(5), &mut fx);
        let sends: Vec<_> = fx.drain_sends().collect();
        assert_eq!(sends.len(), 4);
        // Deliver to p1; p1 echoes back (and forwards to p2, p3, p4).
        let mut fx1 = Effects::new();
        ps[1].on_message(ProcessId::new(0), sends[0].1.clone(), &mut fx1);
        let echoes: Vec<_> = fx1.drain_sends().collect();
        assert_eq!(echoes.len(), 4, "p1 forwards to everyone else");
        // Echo back to writer: quorum is n−t = 3; writer counts itself and
        // p1 after the echo: that's 2 → not yet complete.
        let echo_to_writer = echoes.iter().find(|(to, _)| to.index() == 0).unwrap();
        let mut fx0 = Effects::new();
        ps[0].on_message(ProcessId::new(1), echo_to_writer.1.clone(), &mut fx0);
        assert!(fx0.completions().is_empty(), "2 < quorum of 3");
        // p2 echoes as well → 3 = quorum → write completes.
        let mut fx2 = Effects::new();
        ps[2].on_message(ProcessId::new(0), sends[1].1.clone(), &mut fx2);
        let echo2 = fx2
            .drain_sends()
            .find(|(to, _)| to.index() == 0)
            .expect("echo to writer");
        let mut fx0b = Effects::new();
        ps[0].on_message(ProcessId::new(2), echo2.1, &mut fx0b);
        assert_eq!(fx0b.completions(), &[(OpId::new(3), OpOutcome::Written)]);
    }

    #[test]
    fn writer_fast_read_returns_immediately() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        assert_eq!(fx.completions(), &[(OpId::new(0), OpOutcome::ReadValue(0))]);
        assert!(fx.sends().is_empty());
    }

    #[test]
    fn writer_slow_read_runs_protocol() {
        let c = cfg(3);
        let mut p0 = TwoBitProcess::with_options(
            ProcessId::new(0),
            c,
            ProcessId::new(0),
            0u64,
            TwoBitOptions {
                writer_fast_read: false,
                ..TwoBitOptions::default()
            },
        );
        let mut fx = Effects::new();
        p0.on_invoke(OpId::new(0), Operation::Read, &mut fx);
        assert!(fx.completions().is_empty());
        assert_eq!(fx.sends().len(), 2); // READ() broadcast
        for (_, m) in fx.sends() {
            assert_eq!(m.kind(), "READ");
        }
    }

    #[test]
    fn read_waits_for_proceed_quorum_then_confirm() {
        let mut ps = procs(3);
        // p1 reads the initial value: READ to p0, p2.
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        let reads: Vec<_> = fx.drain_sends().collect();
        assert_eq!(reads.len(), 2);
        assert!(fx.completions().is_empty());
        // p0 answers PROCEED immediately (its sn=0 guard holds: w_sync[1]≥0).
        let mut fx0 = Effects::new();
        ps[0].on_message(ProcessId::new(1), TwoBitMsg::Read, &mut fx0);
        let proceeds: Vec<_> = fx0.drain_sends().collect();
        assert_eq!(proceeds.len(), 1);
        assert_eq!(proceeds[0].1.kind(), "PROCEED");
        // PROCEED reaches p1: r_sync quorum = 2 (self + p0) → phase 2, whose
        // predicate (w_sync[j] ≥ 0) holds for all → read completes with v0.
        let mut fx1 = Effects::new();
        ps[1].on_message(ProcessId::new(0), TwoBitMsg::Proceed, &mut fx1);
        assert_eq!(
            fx1.completions(),
            &[(OpId::new(0), OpOutcome::ReadValue(0))]
        );
    }

    #[test]
    fn read_guard_defers_proceed_until_reader_catches_up() {
        let mut ps = procs(3);
        // p0 writes 1 and the write settles fully at p0 and p2 but NOT p1:
        // deliver the WRITE to p2 only.
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
        let sends: Vec<_> = fx.drain_sends().collect();
        let to_p2 = sends.iter().find(|(to, _)| to.index() == 2).unwrap();
        let mut fx2 = Effects::new();
        ps[2].on_message(ProcessId::new(0), to_p2.1.clone(), &mut fx2);
        // Now p2 knows value #1 and believes p1 knows 0 values.
        // p1 issues a read; p2 must NOT proceed until it believes p1 knows
        // value #1.
        let mut fxr = Effects::new();
        ps[1].on_invoke(OpId::new(1), Operation::Read, &mut fxr);
        let mut fx2b = Effects::new();
        ps[2].on_message(ProcessId::new(1), TwoBitMsg::Read, &mut fx2b);
        assert!(
            fx2b.sends().is_empty(),
            "PROCEED must be deferred (guard sn=1, w_sync[p1]=0)"
        );
        assert_eq!(ps[2].pending_read_guards(), 1);
        // p1 receives the forwarded WRITE from p2 (rule R1 sent it one):
        let fwd = fx2
            .drain_sends()
            .find(|(to, _)| to.index() == 1)
            .expect("p2 forwards to p1");
        let mut fx1 = Effects::new();
        ps[1].on_message(ProcessId::new(2), fwd.1, &mut fx1);
        // p1 echoes to p2; when p2 processes it, w_sync[p1] becomes 1 and
        // the deferred PROCEED fires.
        let echo = fx1
            .drain_sends()
            .find(|(to, _)| to.index() == 2)
            .expect("p1 echoes to p2");
        let mut fx2c = Effects::new();
        ps[2].on_message(ProcessId::new(1), echo.1, &mut fx2c);
        let out: Vec<_> = fx2c.drain_sends().collect();
        assert!(
            out.iter()
                .any(|(to, m)| to.index() == 1 && m.kind() == "PROCEED"),
            "deferred PROCEED released: {out:?}"
        );
        assert_eq!(ps[2].pending_read_guards(), 0);
    }

    #[test]
    fn out_of_order_write_is_buffered_then_drained() {
        let mut ps = procs(3);
        // p0 writes twice; capture the two WRITEs addressed to p1.
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
        let w1 = fx.drain_sends().find(|(to, _)| to.index() == 1).unwrap().1;
        // Simulate p1's echo arriving at p0 so the writer may proceed
        // (quorum 2 = itself + p1's echo).
        let mut fx1 = Effects::new();
        ps[1].on_message(ProcessId::new(0), w1.clone(), &mut fx1);
        let echo = fx1.drain_sends().find(|(to, _)| to.index() == 0).unwrap().1;
        // Reset p1 to a fresh state to replay out-of-order delivery below.
        ps[1] = TwoBitProcess::new(ProcessId::new(1), cfg(3), ProcessId::new(0), 0u64);
        let mut fx0 = Effects::new();
        ps[0].on_message(ProcessId::new(1), echo, &mut fx0);
        assert_eq!(fx0.completions().len(), 1);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(1), Operation::Write(2), &mut fx);
        let w2 = fx.drain_sends().find(|(to, _)| to.index() == 1).unwrap().1;
        assert_eq!(w1.kind(), "WRITE1");
        assert_eq!(w2.kind(), "WRITE0");
        // Deliver WRITE0(2) *before* WRITE1(1) at the fresh p1: it must be
        // buffered (line 11), leaving the state untouched.
        let mut fxa = Effects::new();
        ps[1].on_message(ProcessId::new(0), w2, &mut fxa);
        assert!(fxa.is_empty());
        assert_eq!(ps[1].history(), &[0]);
        assert_eq!(ps[1].buffered_from(ProcessId::new(0)), 1);
        // Now WRITE1(1) arrives: both are processed, in order.
        let mut fxb = Effects::new();
        ps[1].on_message(ProcessId::new(0), w1, &mut fxb);
        assert_eq!(ps[1].history(), &[0, 1, 2]);
        assert_eq!(ps[1].buffered_from(ProcessId::new(0)), 0);
        ps[1].check_local_invariants().unwrap();
    }

    #[test]
    fn catch_up_rule_r2_sends_successor() {
        let mut ps = procs(3);
        // Writer writes twice, with full settling in between, except p1
        // never hears anything (we drop its messages).
        for (op, v) in [(0u64, 10u64), (1, 20)] {
            let mut fx = Effects::new();
            ps[0].on_invoke(OpId::new(op), Operation::Write(v), &mut fx);
            // deliver only to p2, drop p1's copy
            let sends: Vec<_> = fx.drain_sends().collect();
            for (to, m) in sends {
                if to.index() == 2 {
                    let mut fx2 = Effects::new();
                    ps[2].on_message(ProcessId::new(0), m, &mut fx2);
                    // deliver p2's echo to p0; drop p2→p1 forward
                    for (to2, m2) in fx2.drain_sends() {
                        if to2.index() == 0 {
                            let mut fx0 = Effects::new();
                            ps[0].on_message(ProcessId::new(2), m2, &mut fx0);
                        }
                    }
                }
            }
        }
        assert_eq!(ps[2].history(), &[0, 10, 20]);
        // p1 now learns value #1 from p2's dropped... instead simulate: p1
        // sends its own (stale) echo? p1 knows nothing, so instead deliver
        // the ORIGINAL WRITE1(10) from p0 that we "delayed": simplest is to
        // have p2 receive a WRITE from p1? p1 never sends. Use the writer:
        // p0 believes p1 knows 0 values and p0 has 2 → when p0 processes a
        // WRITE from p1 it would catch it up; but p1 has nothing to send.
        // The R2 path triggers at p2 when a *stale* WRITE arrives: forge the
        // situation by delivering p1's initial-echo scenario: p1 processes
        // WRITE1(10) from p2 (rule R1 would have sent it; reconstruct it).
        let mut fx1 = Effects::new();
        ps[1].on_message(
            ProcessId::new(2),
            TwoBitMsg::Write(Parity::Odd, 10u64),
            &mut fx1,
        );
        // p1 echoes WRITE1 back to p2 (and forwards to p0 — both believed
        // to know 0 values... p0 is at w_sync 0 in p1's view).
        let echo_to_p2 = fx1
            .drain_sends()
            .find(|(to, _)| to.index() == 2)
            .expect("echo to p2")
            .1;
        // p2 processes p1's echo: wsn=1 < w_sync_2[2]=2 → R2: send
        // WRITE0(history[2]=20) to p1.
        let mut fx2 = Effects::new();
        ps[2].on_message(ProcessId::new(1), echo_to_p2, &mut fx2);
        let catch_up: Vec<_> = fx2.drain_sends().collect();
        assert_eq!(catch_up.len(), 1);
        assert_eq!(catch_up[0].0, ProcessId::new(1));
        assert_eq!(catch_up[0].1, TwoBitMsg::Write(Parity::Even, 20));
        ps[2].check_local_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "write invoked on a non-writer")]
    fn non_writer_write_panics() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
    }

    #[test]
    #[should_panic(expected = "while another is pending")]
    fn concurrent_ops_on_one_process_panic() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        ps[1].on_invoke(OpId::new(1), Operation::Read, &mut fx);
    }

    #[test]
    fn singleton_system_completes_everything_locally() {
        let c = SystemConfig::new(1, 0).unwrap();
        let mut p = TwoBitProcess::new(ProcessId::new(0), c, ProcessId::new(0), 0u64);
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(0), Operation::Write(5), &mut fx);
        assert_eq!(fx.completions(), &[(OpId::new(0), OpOutcome::Written)]);
        assert!(fx.sends().is_empty());
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(1), Operation::Read, &mut fx);
        assert_eq!(fx.completions(), &[(OpId::new(1), OpOutcome::ReadValue(5))]);
        p.check_local_invariants().unwrap();
    }

    #[test]
    fn recovery_snapshot_is_the_history() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(9), &mut fx);
        settle(&mut ps, &mut fx);
        assert_eq!(ps[2].recovery_snapshot().unwrap(), vec![0, 9]);
    }

    #[test]
    fn install_recovery_rebuilds_state_at_the_barrier() {
        let mut p1 = TwoBitProcess::new(ProcessId::new(1), cfg(3), ProcessId::new(0), 0u64);
        // Dirty the state a little: a buffered out-of-order WRITE and a
        // read guard, both of which must be discarded.
        let mut fx = Effects::new();
        p1.on_message(
            ProcessId::new(0),
            TwoBitMsg::Write(Parity::Even, 2),
            &mut fx,
        );
        p1.on_message(ProcessId::new(2), TwoBitMsg::Read, &mut fx);
        p1.install_recovery(&[0u64, 5, 6]);
        assert_eq!(p1.history(), &[0, 5, 6]);
        assert_eq!(p1.w_sync(), &[2, 2, 2]);
        assert_eq!(p1.r_sync(), &[0, 0, 0]);
        assert_eq!(p1.buffered_from(ProcessId::new(0)), 0);
        assert_eq!(p1.pending_read_guards(), 0);
        p1.check_local_invariants().unwrap();
    }

    #[test]
    fn apply_rejoin_completes_pending_write_at_the_barrier() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(7), Operation::Write(4), &mut fx);
        assert!(fx.completions().is_empty(), "no echo yet: write pending");
        // p1 crashes and rejoins; the adopted snapshot is the longest live
        // prefix, which includes the writer's own in-flight value.
        let mut fxr = Effects::new();
        ps[0].apply_rejoin(ProcessId::new(1), &[0u64, 4], &mut fxr);
        assert_eq!(fxr.completions(), &[(OpId::new(7), OpOutcome::Written)]);
        assert!(fxr.sends().is_empty(), "rejoin emits completions only");
        ps[0].check_local_invariants().unwrap();
    }

    #[test]
    fn apply_rejoin_completes_pending_read_at_the_barrier() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(3), Operation::Read, &mut fx);
        assert!(fx.completions().is_empty(), "no PROCEED yet: read pending");
        let mut fxr = Effects::new();
        ps[1].apply_rejoin(ProcessId::new(2), &[0u64, 8], &mut fxr);
        assert_eq!(
            fxr.completions(),
            &[(OpId::new(3), OpOutcome::ReadValue(8))],
            "the barrier value is the read's linearization point"
        );
        ps[1].check_local_invariants().unwrap();
    }

    #[test]
    fn state_bits_grow_with_history() {
        let mut ps = procs(2);
        let before = ps[0].state_bits();
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
        let after = ps[0].state_bits();
        assert_eq!(after - before, 64, "one more 64-bit value in history");
    }
}
