//! The Mostéfaoui–Raynal **two-bit-message SWMR atomic register** (Fig. 1 of
//! the paper), as an event-driven automaton.
//!
//! # The algorithm in one paragraph
//!
//! One distinguished process is the *writer*; everyone may read. Each process
//! keeps a local copy `history_i` of the sequence of written values plus two
//! vectors of **local** sequence numbers: `w_sync_i[j]` (how much of the
//! write history `p_j` knows, from `p_i`'s point of view) and `r_sync_i[j]`
//! (how many of `p_i`'s read requests `p_j` has acknowledged). New values
//! propagate by *forwarding*: a process that learns the `x`-th value sends it
//! to every process it believes to know exactly `x−1` values (rule R1), and a
//! process that receives a stale value replies with the successor value the
//! sender is missing (rule R2). Between each ordered pair of processes the
//! `WRITE` traffic follows an **alternating-bit** discipline — `p_i` sends its
//! `x`-th `WRITE` to `p_j` only after processing `p_j`'s `(x−1)`-th — so a
//! single parity bit suffices to reorder the (non-FIFO) channel, and no
//! sequence number ever travels on the wire. Reads use two empty control
//! messages: `READ()` asks every process to *wait* until it believes the
//! reader knows a value at least as fresh as its own, then answer
//! `PROCEED()`; after a quorum of `n−t` `PROCEED`s the reader waits until a
//! quorum knows its own freshest value and returns it.
//!
//! Hence exactly four message types — [`WRITE0`/`WRITE1`](msg::TwoBitMsg::Write)
//! (carrying a data value) and [`READ`](msg::TwoBitMsg::Read) /
//! [`PROCEED`](msg::TwoBitMsg::Proceed) (carrying nothing) — i.e. **two bits
//! of control information per message**, which is the paper's headline
//! result. Failure-free time complexity: writes ≤ 2Δ, reads ≤ 4Δ.
//!
//! # Crate layout
//!
//! * [`TwoBitProcess`] — the per-process automaton (paper Fig. 1).
//! * [`msg`] — the four-type message set and its 2-bit wire codec.
//! * [`invariants`] — the paper's Lemmas 1–5 and properties P1/P2 as
//!   machine-checkable predicates over a running simulation.
//!
//! # Examples
//!
//! Driving a 3-process system by hand (no simulator), showing a full write
//! round trip:
//!
//! ```
//! use twobit_core::{TwoBitOptions, TwoBitProcess};
//! use twobit_proto::{Automaton, Effects, OpId, Operation, ProcessId, SystemConfig};
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let writer = ProcessId::new(0);
//! let mk = |i: usize| TwoBitProcess::new(ProcessId::new(i), cfg, writer, 0u64);
//! let (mut p0, mut p1, mut p2) = (mk(0), mk(1), mk(2));
//!
//! // p0 writes 42: it broadcasts WRITE1(42) to p1 and p2 …
//! let mut fx = Effects::new();
//! p0.on_invoke(OpId::new(0), Operation::Write(42), &mut fx);
//! let sends: Vec<_> = fx.drain_sends().collect();
//! assert_eq!(sends.len(), 2);
//!
//! // … p1 receives it, echoes WRITE1(42) back to p0 (and forwards to p2) …
//! let mut fx1 = Effects::new();
//! p1.on_message(writer, sends[0].1.clone(), &mut fx1);
//!
//! // … and the echo back at p0 counts towards the n−t = 2 quorum:
//! let echo = fx1.drain_sends().find(|(to, _)| *to == writer).unwrap();
//! let mut fx0 = Effects::new();
//! p0.on_message(ProcessId::new(1), echo.1, &mut fx0);
//! assert_eq!(fx0.completions().len(), 1, "write completed after one echo");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod invariants;
pub mod msg;

pub use automaton::{TwoBitOptions, TwoBitProcess};
pub use msg::{Parity, TwoBitMsg};
