//! The four-type message set and its two-bit wire codec.
//!
//! The paper's entire point is that these messages carry **no control
//! information beyond their type**: `WRITE0(v)` and `WRITE1(v)` carry a data
//! value and one implicit parity bit (folded into the type), `READ()` and
//! `PROCEED()` carry nothing. Four types = 2 bits. The [`codec`] module
//! makes this concrete by serializing messages with exactly one 2-bit tag.

use serde::{Deserialize, Serialize};
use twobit_proto::bits::{BitReader, BitWriter, WireError};
use twobit_proto::{MessageCost, Payload, WireMessage};

/// Parity of a write sequence number — the alternating bit of §3.3.
///
/// The `x`-th written value is carried by `WRITE(x mod 2, v_x)`; this enum is
/// that `x mod 2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parity {
    /// `x mod 2 == 0` → message type `WRITE0`.
    Even,
    /// `x mod 2 == 1` → message type `WRITE1`.
    Odd,
}

impl Parity {
    /// The parity of sequence number `x`.
    pub fn of(x: u64) -> Self {
        if x.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// The parity bit as 0 or 1.
    pub fn bit(self) -> u8 {
        match self {
            Parity::Even => 0,
            Parity::Odd => 1,
        }
    }

    /// The other parity.
    pub fn flip(self) -> Self {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }
}

/// A message of the two-bit algorithm. Exactly four wire types exist.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TwoBitMsg<V> {
    /// `WRITE0(v)` / `WRITE1(v)` — carries a written value; the parity is
    /// the alternating bit (it is part of the *type*, not a field, on the
    /// wire: see [`codec`]).
    Write(Parity, V),
    /// `READ()` — a read request; carries nothing.
    Read,
    /// `PROCEED()` — unblocks a reader; carries nothing.
    Proceed,
}

impl<V: Payload> WireMessage for TwoBitMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            TwoBitMsg::Write(Parity::Even, _) => "WRITE0",
            TwoBitMsg::Write(Parity::Odd, _) => "WRITE1",
            TwoBitMsg::Read => "READ",
            TwoBitMsg::Proceed => "PROCEED",
        }
    }

    /// Every message costs exactly **2 control bits**; only `WRITE`s carry
    /// data bits. This is Table 1 row 3, column "Proposed algorithm".
    fn cost(&self) -> MessageCost {
        match self {
            TwoBitMsg::Write(_, v) => MessageCost::new(2, v.data_bits()),
            TwoBitMsg::Read | TwoBitMsg::Proceed => MessageCost::new(2, 0),
        }
    }

    /// The bit-exact wire size: the two-bit type tag plus, for writes, the
    /// value's own encoding. For fixed-width payloads this equals
    /// `cost().control_bits + cost().data_bits` exactly — the two-bit claim
    /// on real bits, not just in the accounting.
    fn encoded_bits(&self) -> u64 {
        match self {
            TwoBitMsg::Write(_, v) => 2 + v.encoded_bits(),
            TwoBitMsg::Read | TwoBitMsg::Proceed => 2,
        }
    }

    /// Layout: tag `00`=WRITE0, `01`=WRITE1, `10`=READ, `11`=PROCEED (the
    /// same tag values as the legacy byte-aligned [`codec`]), then the
    /// value bits for writes. Exactly two control bits per message on the
    /// wire.
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        match self {
            TwoBitMsg::Write(p, v) => {
                w.put_bits(u64::from(p.bit()), 2);
                v.encode_into(w)
            }
            TwoBitMsg::Read => {
                w.put_bits(0b10, 2);
                Ok(())
            }
            TwoBitMsg::Proceed => {
                w.put_bits(0b11, 2);
                Ok(())
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        match r.get_bits(2)? {
            0b00 => Ok(TwoBitMsg::Write(Parity::Even, V::decode(r)?)),
            0b01 => Ok(TwoBitMsg::Write(Parity::Odd, V::decode(r)?)),
            0b10 => Ok(TwoBitMsg::Read),
            0b11 => Ok(TwoBitMsg::Proceed),
            _ => unreachable!("two-bit tags are exhaustive"),
        }
    }
}

/// Serialization proving the 2-bit claim on real bytes.
///
/// Layout: the first byte's two low bits are the type tag
/// (`00`=WRITE0, `01`=WRITE1, `10`=READ, `11`=PROCEED); the six high bits are
/// zero padding (wire formats are byte-granular; the *information content* is
/// 2 bits). `WRITE` messages are followed by the raw value bytes.
pub mod codec {
    use super::{Parity, TwoBitMsg};
    use bytes::{BufMut, Bytes, BytesMut};

    /// Tag values for the four message types.
    const TAG_WRITE0: u8 = 0b00;
    const TAG_WRITE1: u8 = 0b01;
    const TAG_READ: u8 = 0b10;
    const TAG_PROCEED: u8 = 0b11;

    /// Decoding error.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum DecodeError {
        /// The buffer was empty.
        Empty,
        /// The tag byte had non-zero padding bits.
        BadPadding,
        /// A READ/PROCEED message unexpectedly carried payload bytes.
        TrailingBytes,
    }

    impl std::fmt::Display for DecodeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                DecodeError::Empty => write!(f, "empty message buffer"),
                DecodeError::BadPadding => write!(f, "non-zero padding bits in tag byte"),
                DecodeError::TrailingBytes => {
                    write!(f, "control-only message carried payload bytes")
                }
            }
        }
    }

    impl std::error::Error for DecodeError {}

    /// Encodes a message whose value is a byte string.
    pub fn encode(msg: &TwoBitMsg<Vec<u8>>) -> Bytes {
        let mut buf = BytesMut::new();
        match msg {
            TwoBitMsg::Write(p, v) => {
                buf.put_u8(match p {
                    Parity::Even => TAG_WRITE0,
                    Parity::Odd => TAG_WRITE1,
                });
                buf.put_slice(v);
            }
            TwoBitMsg::Read => buf.put_u8(TAG_READ),
            TwoBitMsg::Proceed => buf.put_u8(TAG_PROCEED),
        }
        buf.freeze()
    }

    /// Decodes a message produced by [`encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on an empty buffer, non-zero padding bits,
    /// or payload bytes on a control-only message.
    pub fn decode(bytes: &[u8]) -> Result<TwoBitMsg<Vec<u8>>, DecodeError> {
        let (&tag, rest) = bytes.split_first().ok_or(DecodeError::Empty)?;
        if tag & !0b11 != 0 {
            return Err(DecodeError::BadPadding);
        }
        match tag {
            TAG_WRITE0 => Ok(TwoBitMsg::Write(Parity::Even, rest.to_vec())),
            TAG_WRITE1 => Ok(TwoBitMsg::Write(Parity::Odd, rest.to_vec())),
            TAG_READ | TAG_PROCEED => {
                if !rest.is_empty() {
                    return Err(DecodeError::TrailingBytes);
                }
                Ok(if tag == TAG_READ {
                    TwoBitMsg::Read
                } else {
                    TwoBitMsg::Proceed
                })
            }
            _ => unreachable!("two-bit tags are exhaustive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::codec::{decode, encode, DecodeError};
    use super::*;

    #[test]
    fn parity_of_sequence_numbers() {
        assert_eq!(Parity::of(0), Parity::Even);
        assert_eq!(Parity::of(1), Parity::Odd);
        assert_eq!(Parity::of(2), Parity::Even);
        assert_eq!(Parity::of(u64::MAX), Parity::Odd);
        assert_eq!(Parity::Even.flip(), Parity::Odd);
        assert_eq!(Parity::Odd.flip(), Parity::Even);
        assert_eq!(Parity::Even.bit(), 0);
        assert_eq!(Parity::Odd.bit(), 1);
    }

    #[test]
    fn kinds_are_the_four_types() {
        let w0: TwoBitMsg<u64> = TwoBitMsg::Write(Parity::Even, 5);
        let w1: TwoBitMsg<u64> = TwoBitMsg::Write(Parity::Odd, 5);
        let r: TwoBitMsg<u64> = TwoBitMsg::Read;
        let p: TwoBitMsg<u64> = TwoBitMsg::Proceed;
        assert_eq!(w0.kind(), "WRITE0");
        assert_eq!(w1.kind(), "WRITE1");
        assert_eq!(r.kind(), "READ");
        assert_eq!(p.kind(), "PROCEED");
    }

    #[test]
    fn control_cost_is_always_two_bits() {
        let msgs: Vec<TwoBitMsg<u64>> = vec![
            TwoBitMsg::Write(Parity::Even, u64::MAX),
            TwoBitMsg::Write(Parity::Odd, 0),
            TwoBitMsg::Read,
            TwoBitMsg::Proceed,
        ];
        for m in msgs {
            assert_eq!(m.cost().control_bits, 2, "{m:?}");
        }
        // Only WRITEs carry data.
        assert_eq!(TwoBitMsg::Write(Parity::Even, 1u64).cost().data_bits, 64);
        assert_eq!(TwoBitMsg::<u64>::Read.cost().data_bits, 0);
        assert_eq!(TwoBitMsg::<u64>::Proceed.cost().data_bits, 0);
    }

    #[test]
    fn bit_codec_roundtrips_with_exactly_two_control_bits() {
        use twobit_proto::bits::{BitReader, BitWriter};
        let msgs: Vec<TwoBitMsg<u64>> = vec![
            TwoBitMsg::Write(Parity::Even, u64::MAX),
            TwoBitMsg::Write(Parity::Odd, 0),
            TwoBitMsg::Read,
            TwoBitMsg::Proceed,
        ];
        for msg in msgs {
            let mut w = BitWriter::new();
            msg.encode_into(&mut w).unwrap();
            assert_eq!(w.bit_len(), msg.encoded_bits(), "{msg:?}");
            // The wire size IS the modeled cost: 2 control bits + data.
            let c = msg.cost();
            assert_eq!(msg.encoded_bits(), c.control_bits + c.data_bits);
            assert_eq!(msg.encoded_bits() - c.data_bits, 2, "two bits, on-wire");
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(TwoBitMsg::<u64>::decode(&mut r).unwrap(), msg);
            assert_eq!(r.bits_read(), msg.encoded_bits());
        }
    }

    #[test]
    fn codec_roundtrip() {
        let cases = vec![
            TwoBitMsg::Write(Parity::Even, b"hello".to_vec()),
            TwoBitMsg::Write(Parity::Odd, Vec::new()),
            TwoBitMsg::Read,
            TwoBitMsg::Proceed,
        ];
        for msg in cases {
            let bytes = encode(&msg);
            assert_eq!(decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn codec_control_messages_are_one_byte() {
        assert_eq!(encode(&TwoBitMsg::Read).len(), 1);
        assert_eq!(encode(&TwoBitMsg::Proceed).len(), 1);
        // WRITE overhead is exactly one tag byte.
        let v = vec![0u8; 100];
        assert_eq!(encode(&TwoBitMsg::Write(Parity::Even, v)).len(), 101);
    }

    #[test]
    fn codec_rejects_garbage() {
        assert_eq!(decode(&[]), Err(DecodeError::Empty));
        assert_eq!(decode(&[0b0000_0100]), Err(DecodeError::BadPadding));
        assert_eq!(decode(&[0b10, 1]), Err(DecodeError::TrailingBytes));
        assert_eq!(decode(&[0b11, 1, 2]), Err(DecodeError::TrailingBytes));
    }
}
