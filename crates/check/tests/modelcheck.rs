//! End-to-end exploration tests: the positive scenarios hold on every
//! schedule, DPOR demonstrably prunes against naive enumeration, and
//! crash injection widens the explored space without breaking anything.

use twobit_check::{explore, scenarios, ExploreOptions, Strategy};

#[test]
fn exhaustive_swmr_writer_and_concurrent_reader_n3t1() {
    let report = explore(&scenarios::twobit_swmr_wr(), &ExploreOptions::default()).unwrap();
    assert!(
        report.violation.is_none(),
        "the paper's protocol linearizes on every schedule: {:?}",
        report.violation
    );
    assert!(report.exhausted, "the configuration must be fully covered");
    // The write/read interleaving space is real: many inequivalent paths,
    // and sleep sets must actually prune some enumerations.
    assert!(
        report.stats.paths_explored > 50,
        "suspiciously few paths: {:?}",
        report.stats
    );
    assert!(report.stats.replays > 0, "DFS backtracking must replay");
    assert!(report.stats.max_depth > 5, "paths are many events long");
}

#[test]
fn exhaustive_swmr_with_safe_read_cache_n3t1() {
    let report = explore(&scenarios::twobit_swmr_cached(), &ExploreOptions::default()).unwrap();
    assert!(
        report.violation.is_none(),
        "the writer-gated cache stays linearizable on every schedule: {:?}",
        report.violation
    );
    assert!(report.exhausted, "the configuration must be fully covered");
    // The cached scenario adds the writer's local read on top of the
    // write/read interleaving space — it must still branch for real.
    assert!(
        report.stats.paths_explored > 50,
        "suspiciously few paths: {:?}",
        report.stats
    );
}

#[test]
fn exhaustive_ohram_writer_and_concurrent_reader_n3t1() {
    let report = explore(&scenarios::ohram_swmr_wr(), &ExploreOptions::default()).unwrap();
    assert!(
        report.violation.is_none(),
        "Oh-RAM linearizes on every schedule: {:?}",
        report.violation
    );
    assert!(report.exhausted, "the configuration must be fully covered");
    // The read fans out to n servers which each relay to all n, so even
    // with the settlement cut (exploration stops once every planned op
    // completed) the space must out-branch the two-bit write/read
    // scenario. If this comes in small, the explorer is not actually
    // driving the relay round.
    assert!(
        report.stats.paths_explored > 100,
        "relay traffic must branch: {:?}",
        report.stats
    );
    assert!(report.stats.replays > 0, "DFS backtracking must replay");
}

#[test]
fn exhaustive_mwmr_two_concurrent_writers_n3t1() {
    let report = explore(&scenarios::mwmr_two_writer(), &ExploreOptions::default()).unwrap();
    assert!(
        report.violation.is_none(),
        "the healthy MWMR baseline holds on every schedule: {:?}",
        report.violation
    );
    assert!(report.exhausted);
    // Two concurrent two-phase writes at n = 3 leave tens of thousands of
    // inequivalent interleavings even after DPOR; anything small means the
    // explorer stopped looking.
    assert!(
        report.stats.paths_explored > 10_000,
        "two concurrent writers must branch: {:?}",
        report.stats
    );
}

#[test]
fn dpor_explores_fewer_paths_than_naive_with_the_same_verdict() {
    let dpor = explore(
        &scenarios::twobit_swmr_w(),
        &ExploreOptions {
            strategy: Strategy::Dpor,
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    let naive = explore(
        &scenarios::twobit_swmr_w(),
        &ExploreOptions {
            strategy: Strategy::Naive,
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert!(dpor.violation.is_none() && naive.violation.is_none());
    assert!(dpor.exhausted && naive.exhausted);
    assert!(
        dpor.stats.paths_explored < naive.stats.paths_explored,
        "DPOR must prune: dpor={:?} naive={:?}",
        dpor.stats,
        naive.stats
    );
    // The reduction is the point — require a real factor, not an
    // off-by-a-few difference.
    assert!(
        naive.stats.paths_explored >= 4 * dpor.stats.paths_explored,
        "reduction factor collapsed: dpor={:?} naive={:?}",
        dpor.stats,
        naive.stats
    );
}

#[test]
fn crash_injection_stays_safe_within_the_fault_bound() {
    // One injected crash (= t) at any point of the single-writer run:
    // the protocol must stay safe and no live process may starve.
    let scenario = scenarios::twobit_swmr_w().crash_budget(1);
    let report = explore(&scenario, &ExploreOptions::default()).unwrap();
    assert!(
        report.violation.is_none(),
        "t = 1 crash must be tolerated: {:?}",
        report.violation
    );
    assert!(report.exhausted);
    let no_crash = explore(&scenarios::twobit_swmr_w(), &ExploreOptions::default()).unwrap();
    assert!(
        report.stats.paths_explored > no_crash.stats.paths_explored,
        "crash branches must add paths: with={:?} without={:?}",
        report.stats,
        no_crash.stats
    );
}

#[test]
fn crash_budget_is_clamped_to_t() {
    // Asking for more crashes than the fault bound must not let the
    // explorer crash a majority (which would starve live processes and
    // flag phantom liveness violations).
    let scenario = scenarios::twobit_swmr_w().crash_budget(9);
    let report = explore(&scenario, &ExploreOptions::default()).unwrap();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.exhausted);
}

#[test]
fn crash_and_rejoin_is_exhausted_and_stays_safe_n3t1() {
    // One crash plus one full recovery (snapshot adoption, rejoin
    // barrier, incarnation bump) at any pair of points in the
    // write-then-read run: every schedule must linearize and the whole
    // space must be covered.
    // The recovery step is conservatively dependent with every other step
    // (a rejoin rewrites every live process's state), so DPOR prunes little
    // here and the space is genuinely large: just over the default path
    // cap. Raise it — exhaustion is the point of this test.
    let opts = ExploreOptions {
        max_paths: 2_000_000,
        ..ExploreOptions::default()
    };
    let scenario = twobit_check::scenarios::twobit_swmr_recover();
    let report = explore(&scenario, &opts).unwrap();
    assert!(
        report.violation.is_none(),
        "crash-and-rejoin must stay linearizable: {:?}",
        report.violation
    );
    assert!(report.exhausted, "the configuration must be fully covered");
    // Recovery branches must genuinely widen the space beyond crash-only.
    let crash_only = scenarios::twobit_swmr_recover().recover_budget(0);
    let crash_report = explore(&crash_only, &opts).unwrap();
    assert!(crash_report.violation.is_none());
    assert!(
        report.stats.paths_explored > crash_report.stats.paths_explored,
        "recovery branches must add paths: with={:?} without={:?}",
        report.stats,
        crash_report.stats
    );
}

#[test]
fn post_settlement_drain_is_explored_when_asked() {
    // Closing the drain gap: by default, paths end at the settlement cut
    // (every plan step responded), leaving late deliveries to the
    // randomized tier. With `drain_after_settlement` the same n = 3,
    // t = 1 scenario keeps each path open until the network is empty, so
    // every post-settlement delivery interleaving is driven against the
    // automata's local invariants — and the space must grow for real.
    let drained = explore(
        &scenarios::twobit_swmr_wr(),
        &ExploreOptions {
            drain_after_settlement: true,
            max_paths: 2_000_000,
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert!(
        drained.violation.is_none(),
        "late deliveries must be harmless: {:?}",
        drained.violation
    );
    assert!(drained.exhausted, "the drained space must be fully covered");
    let cut = explore(&scenarios::twobit_swmr_wr(), &ExploreOptions::default()).unwrap();
    assert!(
        drained.stats.paths_explored > cut.stats.paths_explored,
        "draining must widen the space: drained={:?} cut={:?}",
        drained.stats,
        cut.stats
    );
    assert!(
        drained.stats.max_depth > cut.stats.max_depth,
        "drained paths must run longer than the settlement cut: drained={:?} cut={:?}",
        drained.stats,
        cut.stats
    );
}

#[test]
fn path_cap_reports_non_exhaustive() {
    let report = explore(
        &scenarios::twobit_swmr_wr(),
        &ExploreOptions {
            max_paths: 3,
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert!(!report.exhausted);
    assert!(report.stats.paths_explored + report.stats.paths_pruned <= 3);
}
