//! Checkable configurations: a space factory plus an operation script.
//!
//! A [`Scenario`] is everything the explorer needs to enumerate one small
//! configuration: a factory that builds a fresh scheduled-mode
//! [`SimSpace`] (exploration is stateless-replay based, loom-style — the
//! backend is rebuilt and the prefix re-fired on every backtrack), the
//! scripted operations with their cross-process sequencing, the
//! per-register consistency [`RegisterMode`]s to check each terminal path
//! against, and the crash budget (`≤ t`).

use std::collections::BTreeMap;
use std::fmt;

use twobit_proto::{Automaton, Operation, ProcessId, RegisterId, RegisterMode};
use twobit_simnet::SimSpace;

/// One scripted operation of a scenario.
#[derive(Clone, Debug)]
pub struct PlanStep<V> {
    /// The invoking process.
    pub proc: ProcessId,
    /// Target register.
    pub reg: RegisterId,
    /// The operation.
    pub op: Operation<V>,
    /// Plan index whose response must precede this invocation (real-time
    /// sequencing across processes; same-process steps are sequential by
    /// position).
    pub after: Option<usize>,
}

/// A small configuration the model checker can exhaustively explore.
pub struct Scenario<A: Automaton> {
    /// Display name (used in reports and bench rows).
    pub name: String,
    make_space: Box<dyn Fn() -> SimSpace<A>>,
    plan: Vec<PlanStep<A::Value>>,
    /// Consistency mode checked per register on every terminal path
    /// (absent registers default to SWMR).
    pub modes: BTreeMap<RegisterId, RegisterMode>,
    /// Maximum number of crash steps the explorer may inject per path.
    pub crash_budget: usize,
    /// Maximum number of recovery steps the explorer may inject per path
    /// (each brings one currently-crashed process back up; requires the
    /// factory to build its spaces with `SpaceBuilder::recovery(true)`).
    pub recover_budget: usize,
}

impl<A: Automaton> fmt::Debug for Scenario<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("plan", &self.plan)
            .field("modes", &self.modes)
            .field("crash_budget", &self.crash_budget)
            .field("recover_budget", &self.recover_budget)
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> Scenario<A> {
    /// Starts a scenario from a factory producing a fresh scheduled-mode
    /// space (build it with `SpaceBuilder::scheduled(true)`).
    pub fn new(name: impl Into<String>, make_space: impl Fn() -> SimSpace<A> + 'static) -> Self {
        Scenario {
            name: name.into(),
            make_space: Box::new(make_space),
            plan: Vec::new(),
            modes: BTreeMap::new(),
            crash_budget: 0,
            recover_budget: 0,
        }
    }

    /// Scripts an operation with no cross-process ordering constraint.
    #[must_use]
    pub fn op(mut self, proc: ProcessId, reg: RegisterId, op: Operation<A::Value>) -> Self {
        self.plan.push(PlanStep {
            proc,
            reg,
            op,
            after: None,
        });
        self
    }

    /// Scripts an operation that must be invoked only after plan step
    /// `after` has responded.
    #[must_use]
    pub fn op_after(
        mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
        after: usize,
    ) -> Self {
        assert!(after < self.plan.len(), "op_after: unknown plan step");
        self.plan.push(PlanStep {
            proc,
            reg,
            op,
            after: Some(after),
        });
        self
    }

    /// Sets the consistency mode checked for `reg`.
    #[must_use]
    pub fn mode(mut self, reg: RegisterId, mode: RegisterMode) -> Self {
        self.modes.insert(reg, mode);
        self
    }

    /// Allows up to `budget` injected crashes per explored path.
    #[must_use]
    pub fn crash_budget(mut self, budget: usize) -> Self {
        self.crash_budget = budget;
        self
    }

    /// Allows up to `budget` injected recoveries per explored path. Only
    /// meaningful together with a non-zero crash budget and a factory
    /// that enables `SpaceBuilder::recovery` — a recovery is offered at a
    /// node exactly when some process is crashed there.
    #[must_use]
    pub fn recover_budget(mut self, budget: usize) -> Self {
        self.recover_budget = budget;
        self
    }

    /// The scripted operations.
    pub fn plan(&self) -> &[PlanStep<A::Value>] {
        &self.plan
    }

    /// Builds a fresh space with the scenario's plan scripted — one
    /// independent replayable run.
    pub fn build(&self) -> SimSpace<A> {
        let mut space = (self.make_space)();
        for st in &self.plan {
            match st.after {
                Some(a) => {
                    space.plan_op_after(st.proc, st.reg, st.op.clone(), a);
                }
                None => {
                    space.plan_op(st.proc, st.reg, st.op.clone());
                }
            }
        }
        space
    }

    /// Plan steps whose responses causally enable step `i`'s invocation:
    /// every earlier step of the same process, plus the explicit `after`
    /// dependency. This is the *true* enabling cause the explorer's
    /// happens-before tracking uses — responses of unrelated steps order
    /// with the invocation only through the schedule, which is exactly
    /// the reorderable part.
    pub(crate) fn invoke_deps(&self, i: usize) -> Vec<u64> {
        let me = &self.plan[i];
        let mut deps: Vec<u64> = self
            .plan
            .iter()
            .enumerate()
            .take(i)
            .filter(|(_, st)| st.proc == me.proc)
            .map(|(j, _)| j as u64)
            .collect();
        if let Some(a) = me.after {
            let a = a as u64;
            if !deps.contains(&a) {
                deps.push(a);
            }
        }
        deps
    }
}
