//! The canonical small configurations the repository model-checks.
//!
//! Each function returns a [`Scenario`] over one of the first-party
//! automata. The positive scenarios (the paper's protocol, the healthy
//! MWMR baseline) must pass on every path; the `*_broken` scenarios wire
//! in deliberately damaged automata and exist as negative controls — the
//! explorer must find their violations, or it is not looking hard enough.
//!
//! Sizes are chosen to be the smallest configurations that exercise the
//! property: `n = 3, t = 1` is the minimum for quorum-based SWMR/MWMR
//! protocols, while the no-second-phase SWMR ablation needs `n = 5,
//! t = 2` — with one faulty process the skipped wait is still masked by
//! the writer's own quorum, and the new/old inversion only has room to
//! appear once two readers can see disjoint-but-intersecting quorums.

use twobit_baselines::{MwmrProcess, OhRamProcess};
use twobit_cache::CacheMode;
use twobit_core::{TwoBitOptions, TwoBitProcess};
use twobit_proto::{Operation, ProcessId, RegisterId, RegisterMode, SystemConfig};
use twobit_simnet::{DelayModel, SimSpace, SpaceBuilder};

use crate::scenario::Scenario;

fn scheduled_space<A, F>(cfg: SystemConfig, make: F) -> SimSpace<A>
where
    A: twobit_proto::Automaton<Value = u64>,
    F: Fn(RegisterId, ProcessId) -> A + Send + 'static,
{
    cached_space(cfg, CacheMode::Off, make)
}

fn cached_space<A, F>(cfg: SystemConfig, cache: CacheMode, make: F) -> SimSpace<A>
where
    A: twobit_proto::Automaton<Value = u64>,
    F: Fn(RegisterId, ProcessId) -> A + Send + 'static,
{
    SpaceBuilder::new(cfg)
        .seed(1)
        .delay(DelayModel::Fixed(1))
        .registers(1)
        .scheduled(true)
        .cache_mode(cache)
        .build(0u64, make)
}

fn recovery_space<A, F>(cfg: SystemConfig, skip_bump: bool, make: F) -> SimSpace<A>
where
    A: twobit_proto::Automaton<Value = u64>,
    F: Fn(RegisterId, ProcessId) -> A + Send + 'static,
{
    SpaceBuilder::new(cfg)
        .seed(1)
        .delay(DelayModel::Fixed(1))
        .registers(1)
        .scheduled(true)
        .recovery(true)
        .recovery_skip_incarnation_bump(skip_bump)
        .build(0u64, make)
}

const R: RegisterId = RegisterId::ZERO;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The paper's SWMR register at `n = 3, t = 1`: the writer writes `1`
/// while `p1` reads concurrently. Every schedule must linearize.
pub fn twobit_swmr_wr() -> Scenario<TwoBitProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("twobit-swmr-wr/n3t1", move || {
        scheduled_space(cfg, move |_reg, id| TwoBitProcess::new(id, cfg, p(0), 0u64))
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(1), R, Operation::Read)
    .mode(R, RegisterMode::Swmr)
}

/// The paper's SWMR register at `n = 3, t = 1`, single writer and no
/// reader — the smallest non-trivial state space. Used to measure DPOR
/// against naive enumeration.
pub fn twobit_swmr_w() -> Scenario<TwoBitProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("twobit-swmr-w/n3t1", move || {
        scheduled_space(cfg, move |_reg, id| TwoBitProcess::new(id, cfg, p(0), 0u64))
    })
    .op(p(0), R, Operation::Write(1))
    .mode(R, RegisterMode::Swmr)
}

/// The paper's SWMR register at `n = 3, t = 1` with the gated local read
/// cache on ([`CacheMode::Safe`]): the writer writes `1` and then reads
/// its own register — served from its cache with zero messages — while
/// `p1` reads concurrently through the protocol. Every schedule must
/// still linearize: the gate only admits the writer's own
/// locally-confirmed value, which is current by the SWMR argument.
pub fn twobit_swmr_cached() -> Scenario<TwoBitProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("twobit-swmr-cached/n3t1", move || {
        cached_space(cfg, CacheMode::Safe, move |_reg, id| {
            TwoBitProcess::new(id, cfg, p(0), 0u64)
        })
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(1), R, Operation::Read)
    .op_after(p(0), R, Operation::Read, 0)
    .mode(R, RegisterMode::Swmr)
}

/// Negative control: the read cache with its safety gate removed
/// ([`CacheMode::UnsafeAblated`]), at `n = 3, t = 1`. `p1`'s first read
/// runs the protocol and caches what it returned; after the write of `1`
/// completes, `p1`'s second read is served blindly from that cache. On
/// any schedule where the first read finished before the write took
/// effect, the second read returns the overwritten `0` — a stale read
/// the explorer must find, proving the writer-co-location gate is
/// load-bearing.
pub fn twobit_swmr_cache_ablated_broken() -> Scenario<TwoBitProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("twobit-swmr-cache-ablated/n3t1", move || {
        cached_space(cfg, CacheMode::UnsafeAblated, move |_reg, id| {
            TwoBitProcess::new(id, cfg, p(0), 0u64)
        })
    })
    .op(p(1), R, Operation::Read)
    .op(p(0), R, Operation::Write(1))
    .op_after(p(1), R, Operation::Read, 1)
    .mode(R, RegisterMode::Swmr)
}

/// Negative control: the SWMR ablation that skips Fig. 1's second wait
/// (line 9), at `n = 5, t = 2`. The writer delivers only to `p1`, whose
/// read then returns the new value on stale `PROCEED`s; `p2`'s later
/// read still sees a quorum of old-value holders — a new/old inversion
/// the explorer must find. At `n = 3` or `n = 4` the guard on line 20
/// masks the skipped wait, which is why this control needs `t = 2`.
pub fn twobit_swmr_no_confirmation_broken() -> Scenario<TwoBitProcess<u64>> {
    let cfg = SystemConfig::new(5, 2).expect("5 > 2·2");
    let options = TwoBitOptions {
        read_confirmation: false,
        ..TwoBitOptions::default()
    };
    Scenario::new("twobit-swmr-noconfirm/n5t2", move || {
        scheduled_space(cfg, move |_reg, id| {
            TwoBitProcess::with_options(id, cfg, p(0), 0u64, options)
        })
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(1), R, Operation::Read)
    .op_after(p(2), R, Operation::Read, 1)
    .mode(R, RegisterMode::Swmr)
}

/// The paper's SWMR register at `n = 3, t = 1` under crash **and
/// rejoin**: the writer writes `1` then `2` (same-process steps run in
/// order; a step orphaned by a crash dies and unblocks its successor),
/// `p1` reads after the second write responds, and the explorer may
/// crash any one process at any point and later bring it back through
/// the full recovery path (snapshot adoption, rejoin barrier,
/// incarnation bump). Every schedule must linearize — in particular the
/// adversarial one where the writer crashes mid-write and its
/// post-recovery write reuses the dead write's sequence number: the
/// bump fences the previous incarnation's in-flight frames as stale, so
/// the colliding old-value frame is never absorbed.
pub fn twobit_swmr_recover() -> Scenario<TwoBitProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("twobit-swmr-recover/n3t1", move || {
        recovery_space(cfg, false, move |_reg, id| {
            TwoBitProcess::new(id, cfg, p(0), 0u64)
        })
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(0), R, Operation::Write(2))
    .op_after(p(1), R, Operation::Read, 1)
    .mode(R, RegisterMode::Swmr)
    .crash_budget(1)
    .recover_budget(1)
}

/// Negative control: the same crash-and-rejoin configuration with the
/// incarnation bump (and with it the stale-frame fence) ablated
/// ([`SpaceBuilder::recovery_skip_incarnation_bump`]). The witness is a
/// sequence-number collision across incarnations: the writer crashes
/// with `WRITE(1)` still in flight, rejoins at the pre-write barrier,
/// and its next write reuses the dead write's sequence number — one
/// replica absorbs the stale `WRITE(1)` as that sequence number and
/// echoes it, the writer counts the echo toward `WRITE(2)`'s quorum,
/// and the post-write read served by the poisoned replica returns `1`.
/// The explorer must find this, proving the incarnation fence is
/// load-bearing.
pub fn twobit_swmr_recover_no_fence_broken() -> Scenario<TwoBitProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("twobit-swmr-recover-nofence/n3t1", move || {
        recovery_space(cfg, true, move |_reg, id| {
            TwoBitProcess::new(id, cfg, p(0), 0u64)
        })
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(0), R, Operation::Write(2))
    .op_after(p(1), R, Operation::Read, 1)
    .mode(R, RegisterMode::Swmr)
    .crash_budget(1)
    .recover_budget(1)
}

/// The Oh-RAM fast-read automaton at `n = 3, t = 1`: the writer writes
/// `1` while `p1` reads concurrently. The read may complete by either
/// rule — a uniform fast quorum of direct acks, or the minimum over a
/// quorum of relay acks — and the explorer drives both through every
/// inequivalent interleaving of the n² relay traffic. Every schedule
/// must linearize under the SWMR checker (Oh-RAM keeps the paper's
/// single-writer correctness contract; only the delay budget differs).
pub fn ohram_swmr_wr() -> Scenario<OhRamProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("ohram-swmr-wr/n3t1", move || {
        scheduled_space(cfg, move |_reg, id| OhRamProcess::new(id, cfg, p(0), 0u64))
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(1), R, Operation::Read)
    .mode(R, RegisterMode::OhRam)
}

/// Negative control: Oh-RAM with the server-relay step ablated
/// ([`OhRamProcess::with_no_relay`]) — readers return the **maximum**
/// over any quorum of direct acks without demanding timestamp
/// uniformity, i.e. the one-round read of a protocol that forgot why the
/// half round exists. The witness is a new/old inversion: `p1`'s read
/// overlaps the write and returns `1` off a lone fresh ack, then `p2`'s
/// later read sees a quorum that never absorbed the write and returns
/// `0`. The explorer must find this at the minimum configuration,
/// proving the relay round is load-bearing.
pub fn ohram_no_relay_broken() -> Scenario<OhRamProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("ohram-no-relay/n3t1", move || {
        scheduled_space(cfg, move |_reg, id| {
            OhRamProcess::with_no_relay(id, cfg, p(0), 0u64)
        })
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(1), R, Operation::Read)
    .op_after(p(2), R, Operation::Read, 1)
    .mode(R, RegisterMode::OhRam)
}

/// The timestamp-based MWMR baseline at `n = 3, t = 1` with two
/// concurrent writers. Every schedule must satisfy the MWMR mode, and
/// every reachable pre-settlement state must satisfy the replicas' local
/// invariants. (Adding a trailing reader pushes the space past half a
/// million inequivalent paths — the read-visibility direction is instead
/// covered exhaustively by the SWMR scenario and, for this baseline, by
/// the stale-acks negative control.)
pub fn mwmr_two_writer() -> Scenario<MwmrProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("mwmr-two-writer/n3t1", move || {
        scheduled_space(cfg, move |_reg, id| MwmrProcess::new(id, cfg, 0u64))
    })
    .op(p(0), R, Operation::Write(1))
    .op(p(1), R, Operation::Write(2))
    .mode(R, RegisterMode::Mwmr)
}

/// Negative control: an MWMR replica that acknowledges update messages
/// **without absorbing them** (`MwmrProcess::with_stale_acks`). A write
/// then "completes" while a quorum still holds the old value, and a
/// subsequent read returns it — a stale read the explorer must find at
/// the minimum configuration.
pub fn mwmr_stale_acks_broken() -> Scenario<MwmrProcess<u64>> {
    let cfg = SystemConfig::new(3, 1).expect("3 > 2·1");
    Scenario::new("mwmr-stale-acks/n3t1", move || {
        scheduled_space(cfg, move |_reg, id| {
            MwmrProcess::with_stale_acks(id, cfg, 0u64)
        })
    })
    .op(p(0), R, Operation::Write(1))
    .op_after(p(1), R, Operation::Read, 0)
    .mode(R, RegisterMode::Mwmr)
}
