//! `twobit-check` — a DPOR model checker for the deterministic backend.
//!
//! Where the rest of the workspace *samples* schedules (seeded event
//! loops, randomized delay models), this crate *enumerates* them: it
//! drives a scheduled-mode [`SimSpace`](twobit_simnet::SimSpace) through
//! every partial-order-inequivalent interleaving of a small
//! configuration's deliveries, invocations, responses and (budgeted)
//! crashes, and checks every terminal path for linearizability and the
//! automata's local invariants. A failing path is shrunk to a 1-minimal
//! [`Schedule`](twobit_proto::Schedule) whose string form replays
//! verbatim.
//!
//! The crate splits into:
//!
//! * [`scenario`] — what to check: a space factory, an operation script
//!   with real-time sequencing, register modes, a crash budget;
//! * [`explore`] — the depth-first explorer with vector-clock
//!   happens-before tracking and sleep-set + persistent-set dynamic
//!   partial-order reduction;
//! * [`scenarios`] — the canonical small configurations this repository
//!   checks in CI, including the deliberately broken negative controls.
//!
//! ```
//! use twobit_check::{explore, ExploreOptions, scenarios};
//!
//! let report = explore(&scenarios::twobit_swmr_w(), &ExploreOptions::default())?;
//! assert!(report.violation.is_none());
//! assert!(report.exhausted);
//! # Ok::<(), twobit_proto::DriverError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
mod minimize;
pub mod scenario;
pub mod scenarios;

pub use explore::{explore, Counterexample, ExploreOptions, ExploreReport, ExploreStats, Strategy};
pub use scenario::{PlanStep, Scenario};
