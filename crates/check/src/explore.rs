//! The depth-first path explorer with sleep-set + persistent-set DPOR.
//!
//! # What is explored
//!
//! A scheduled-mode [`SimSpace`](twobit_simnet::SimSpace) exposes, at
//! every point, the set of fireable events: frame deliveries, plan-step
//! invocations and plan-step responses ([`EnabledEvent`]). The explorer
//! drives a depth-first search over *which enabled event fires next*,
//! plus bounded crash injection (at any point, any live process may crash,
//! up to the scenario's budget). Every terminal path (empty enabled set)
//! is checked: schedule liveness, each automaton's local invariants, and
//! linearizability per register mode via
//! [`check_sharded_modes`](twobit_lincheck::check_sharded_modes).
//!
//! # Why invocations and responses are schedulable
//!
//! Linearizability is a *real-time* property: which operations precede
//! which is part of the input to the checker. Exploring only message
//! interleavings would fix one arbitrary real-time order per delivery
//! order and silently skip the others — unsound, because two delivery
//! orders that commute at the processes can still differ in whether a
//! response became visible before another invocation. Making `Invoke` and
//! `Respond` events of the schedule puts the real-time order under the
//! explorer's control, and the dependence relation below makes response →
//! invocation reorderings first-class race candidates.
//!
//! # Partial-order reduction
//!
//! Two schedule steps are **dependent** iff they touch the same process,
//! or one is a response and the other an invocation (they order the
//! operations on the real-time line). Everything else commutes: swapping
//! two adjacent independent events yields the same automaton states, the
//! same in-flight frames and the same history up to timestamps the
//! checker does not inspect. The explorer tracks a vector clock per fired
//! event; when a newly fired event races with an earlier one (dependent,
//! not happens-before), the earlier decision point gains a backtrack
//! choice (persistent-set construction, with the Flanagan–Godefroid
//! conservative fallback when the racing event was not yet enabled
//! there). Sleep sets then keep already-covered commutations from being
//! re-explored. [`Strategy::Naive`] disables all of this — every enabled
//! event branches at every node — and exists so tests can *measure* the
//! reduction.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use twobit_lincheck::check_sharded_modes;
use twobit_proto::{
    Automaton, Driver, DriverError, EnabledEvent, ProcessId, RegisterId, RegisterMode, Schedule,
    ScheduleStep,
};
use twobit_simnet::SimSpace;

use crate::minimize::{annotate, minimize, replay_lenient};
use crate::scenario::Scenario;

/// Path enumeration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Sleep-set + persistent-set dynamic partial-order reduction.
    Dpor,
    /// Branch on every enabled event at every node (no pruning). For
    /// measuring what DPOR saves; same verdicts, many more paths.
    Naive,
}

/// Exploration knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Enumeration strategy.
    pub strategy: Strategy,
    /// Stop after this many paths (explored + pruned); the report's
    /// `exhausted` flag records whether the cap was hit.
    pub max_paths: u64,
    /// Delay-bounded bug hunting: explore only paths that deviate from the
    /// heuristically-preferred first choice at most this many times. The
    /// preferred order starves replicas (control frames before
    /// value-spreading ones), so staleness witnesses sit a handful of
    /// deviations from the first path — a bounded search finds in hundreds
    /// of paths what plain DFS only reaches after draining astronomically
    /// many equivalent suffixes. Bounded runs enumerate all choices
    /// (sleep-set/persistent-set reasoning assumes full subtrees, which a
    /// bound truncates) and always report `exhausted = false`. `None` (the
    /// default) explores fully.
    pub deviation_bound: Option<usize>,
    /// Shrink the counterexample schedule by event elision on failure.
    pub minimize: bool,
    /// Keep exploring past the settlement cut. By default a path ends
    /// once every plan step has responded (or died with its process):
    /// the operation history is then immutable, so the remaining network
    /// drain cannot change the linearizability verdict. What it *can*
    /// still change is automaton state — a late delivery absorbed after
    /// the last response must not break a local invariant or complete a
    /// ghost operation. With this knob on, settled paths stay open until
    /// the enabled set is genuinely empty, interleaving the full
    /// post-settlement drain (crash/recovery injection stays closed after
    /// settlement — faults there cannot reach any checked property that
    /// the drained deliveries do not already reach).
    pub drain_after_settlement: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            strategy: Strategy::Dpor,
            max_paths: 1_000_000,
            deviation_bound: None,
            minimize: true,
            drain_after_settlement: false,
        }
    }
}

/// Exploration counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Terminal paths fully executed and checked.
    pub paths_explored: u64,
    /// Paths cut by sleep sets (every remaining choice already covered by
    /// an explored sibling subtree).
    pub paths_pruned: u64,
    /// Events fired on live (non-replay) exploration.
    pub events_fired: u64,
    /// Longest path, in events.
    pub max_depth: usize,
    /// Backtrack rebuilds (fresh space + prefix replay).
    pub replays: u64,
}

/// A failing schedule, minimized and annotated for humans.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The (minimized) failing schedule — replay it verbatim with
    /// [`ReplayScheduler::strict`](twobit_proto::ReplayScheduler::strict)
    /// after parsing `schedule.to_string()`.
    pub schedule: Schedule,
    /// What check failed on this schedule.
    pub reason: String,
    /// One line per step: the token plus the event's label.
    pub annotated: String,
}

/// What an exploration did and found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Counters.
    pub stats: ExploreStats,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<Counterexample>,
    /// `true` iff every path of the configuration was covered (no cap
    /// hit, no early stop on violation).
    pub exhausted: bool,
}

pub(crate) type Clock = Vec<u64>;

fn leq(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn join_into(a: &mut Clock, b: &Clock) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x).max(*y);
    }
}

/// One branching option at a node: the step plus the process it touches
/// (the `dest` of the dependence relation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Choice {
    step: ScheduleStep,
    dest: ProcessId,
}

fn is_invoke(s: ScheduleStep) -> bool {
    matches!(s, ScheduleStep::Invoke(_))
}

fn is_respond(s: ScheduleStep) -> bool {
    matches!(s, ScheduleStep::Respond(_))
}

fn is_deliver(s: ScheduleStep) -> bool {
    matches!(s, ScheduleStep::Deliver(_))
}

/// The dependence relation: same process, or an invocation/response pair
/// (their order fixes a real-time precedence the checker consumes).
///
/// One same-process pair is exempt: a response commutes with *any*
/// delivery. Responding only stamps the operation record — it neither
/// reads nor writes automaton state, a delivery can never disable a
/// ready response (or vice versa), and the linearizability verdict
/// depends only on the relative order of invocations and responses,
/// which a respond/deliver swap leaves untouched.
///
/// A recovery is dependent with *everything*: the atomic rejoin reads
/// every live process's state for snapshot selection, runs the
/// `apply_rejoin` hook at each of them, and purges the rejoiner's
/// in-flight frames — no event commutes with it. Conservative dependence
/// only costs paths, never soundness.
fn dependent(a: Choice, b: Choice) -> bool {
    if matches!(a.step, ScheduleStep::Recover(_)) || matches!(b.step, ScheduleStep::Recover(_)) {
        return true;
    }
    if (is_respond(a.step) && is_deliver(b.step)) || (is_deliver(a.step) && is_respond(b.step)) {
        return false;
    }
    a.dest == b.dest
        || (is_respond(a.step) && is_invoke(b.step))
        || (is_invoke(a.step) && is_respond(b.step))
}

/// One fired event of the current path, with its happens-before clocks.
struct PathEvent {
    choice: Choice,
    /// Full happens-before clock of the event.
    clock: Clock,
    /// Frames the fired handler created (their birth clocks are this
    /// event's clock).
    created: Vec<u64>,
    /// Plan steps the fired handler completed internally.
    became_ready: Vec<u64>,
}

/// One decision point of the DFS.
struct Node {
    /// Every branching option here (enabled events first, then crash
    /// injections when budget remains).
    choices: Vec<Choice>,
    /// Steps scheduled for exploration at this node.
    backtrack: BTreeSet<ScheduleStep>,
    /// Steps whose subtrees are fully explored.
    done: BTreeSet<ScheduleStep>,
    /// Steps covered by an already-explored sibling (sleep set).
    sleep: BTreeSet<ScheduleStep>,
    /// The event currently fired from this node (the path continues in
    /// its subtree).
    fired: Option<PathEvent>,
    /// No non-crash event was enabled: the path ends here.
    terminal: bool,
}

/// Derived happens-before state along the current path.
struct ClockState {
    n: usize,
    /// Clock of the last event at each process.
    proc_clock: Vec<Clock>,
    /// Frame birth clocks, by frame sequence number.
    frame_birth: HashMap<u64, Clock>,
    /// Clock of the event that readied each plan step's response.
    ready_cause: HashMap<u64, Clock>,
    /// Clock of each plan step's response event.
    resp_clock: HashMap<u64, Clock>,
    /// Join of all response clocks (responses precede later invocations
    /// on the real-time line).
    all_resp: Clock,
    /// Join of all invocation clocks.
    all_inv: Clock,
}

impl ClockState {
    fn new(n: usize) -> Self {
        ClockState {
            n,
            proc_clock: vec![vec![0; n]; n],
            frame_birth: HashMap::new(),
            ready_cause: HashMap::new(),
            resp_clock: HashMap::new(),
            all_resp: vec![0; n],
            all_inv: vec![0; n],
        }
    }

    /// The event's *enabling cause* clock: what must have happened for
    /// this event to be fireable at all, excluding orderings that are
    /// mere trace accidents. This is the right-hand side of the race
    /// test — an earlier dependent event not in the cause is a race.
    fn cause_of(&self, c: Choice, invoke_deps: &[u64]) -> Clock {
        match c.step {
            ScheduleStep::Deliver(seq) => self
                .frame_birth
                .get(&seq)
                .cloned()
                .unwrap_or_else(|| vec![0; self.n]),
            ScheduleStep::Invoke(_) => {
                let mut k = vec![0; self.n];
                for dep in invoke_deps {
                    if let Some(rc) = self.resp_clock.get(dep) {
                        join_into(&mut k, rc);
                    }
                }
                k
            }
            ScheduleStep::Respond(plan) => self
                .ready_cause
                .get(&plan)
                .cloned()
                .unwrap_or_else(|| vec![0; self.n]),
            ScheduleStep::Crash(_) | ScheduleStep::Recover(_) => vec![0; self.n],
        }
    }

    /// The event's full happens-before clock: its cause, everything that
    /// already happened at its process, and (for invocations/responses)
    /// every earlier event of the dependent real-time-line kind.
    fn clock_of(&self, c: Choice, cause: &Clock) -> Clock {
        let mut k = cause.clone();
        join_into(&mut k, &self.proc_clock[c.dest.index()]);
        if is_invoke(c.step) {
            join_into(&mut k, &self.all_resp);
        }
        if is_respond(c.step) {
            join_into(&mut k, &self.all_inv);
        }
        k[c.dest.index()] += 1;
        k
    }

    fn apply(&mut self, ev: &PathEvent) {
        self.proc_clock[ev.choice.dest.index()] = ev.clock.clone();
        for seq in &ev.created {
            self.frame_birth.insert(*seq, ev.clock.clone());
        }
        for plan in &ev.became_ready {
            self.ready_cause.insert(*plan, ev.clock.clone());
        }
        match ev.choice.step {
            ScheduleStep::Respond(plan) => {
                self.resp_clock.insert(plan, ev.clock.clone());
                let clock = ev.clock.clone();
                join_into(&mut self.all_resp, &clock);
            }
            ScheduleStep::Invoke(_) => {
                let clock = ev.clock.clone();
                join_into(&mut self.all_inv, &clock);
            }
            _ => {}
        }
    }
}

/// Runs every terminal-path check and returns the first failure.
/// `terminal` gates the liveness check — a partial (minimization) replay
/// legitimately leaves operations in flight.
pub(crate) fn check_path<A: Automaton>(
    space: &SimSpace<A>,
    modes: &BTreeMap<RegisterId, RegisterMode>,
    terminal: bool,
) -> Option<String> {
    if terminal {
        if let Err(e) = space.check_schedule_liveness() {
            return Some(format!("liveness: {e}"));
        }
    }
    if let Err(e) = space.check_local_invariants() {
        return Some(format!("local invariant: {e}"));
    }
    if let Err(e) = check_sharded_modes(&space.history(), modes) {
        return Some(format!("linearizability: {e}"));
    }
    None
}

/// Per-path injection budgets and spend, threaded through node creation.
#[derive(Clone, Copy, Debug)]
struct Budgets {
    crashes_used: usize,
    crash_budget: usize,
    recovers_used: usize,
    recover_budget: usize,
}

fn make_node<A: Automaton>(
    space: &SimSpace<A>,
    budgets: Budgets,
    sleep: BTreeSet<ScheduleStep>,
    strategy: Strategy,
    drain: bool,
) -> Node {
    // Whether a recovery could still fire somewhere down this path.
    let revivable = budgets.recovers_used < budgets.recover_budget && space.recovery_enabled();
    // A path ends when nothing can fire — or when every plan step has
    // responded (or died with its process): the operation history is
    // then immutable, so the remaining network drain cannot affect any
    // checked property and its interleavings would only pad the tree.
    // One exception: a plan step parked on a crashed process counts as
    // settled, but a recovery would make it runnable again — with budget
    // left, such nodes stay open. With `drain_after_settlement` the cut
    // moves: settled paths stay open until the network is empty, so late
    // deliveries are themselves explored against the local invariants.
    let settled = space.plan_settled() && !(revivable && space.plan_waiting_on_crashed());
    if settled && !drain {
        return Node {
            choices: Vec::new(),
            backtrack: BTreeSet::new(),
            done: BTreeSet::new(),
            sleep,
            fired: None,
            terminal: true,
        };
    }
    let mut enabled = space.enabled_events();
    // Search-order heuristic (soundness-neutral — only DFS visit order):
    // among deliveries, serve control frames before knowledge-spreading
    // ones (WRITE/UPDATE kinds). The first paths explored then keep
    // replicas maximally stale, which is the adversarial direction for
    // staleness bugs — their witnesses end up a short edit distance from
    // the first path instead of across the whole tree.
    enabled.sort_by_key(|e| match e {
        EnabledEvent::Respond { plan, .. } => (0u8, *plan),
        EnabledEvent::Invoke { plan, .. } => (1, *plan),
        EnabledEvent::Deliver { seq, label, .. } => {
            let spreads =
                label.contains("WRITE") || (label.contains("UPDATE") && !label.contains("ACK"));
            (if spreads { 3 } else { 2 }, *seq)
        }
    });
    let mut choices: Vec<Choice> = enabled
        .iter()
        .map(|e| Choice {
            step: e.step(),
            dest: e.dest(),
        })
        .collect();
    // No enabled event usually ends the path — unless a recovery can
    // still revive a parked plan step, in which case the recovery choices
    // below keep the node open.
    let terminal = choices.is_empty() && !(revivable && space.plan_waiting_on_crashed());
    // Crash injection points: any live process, between any two events.
    // Not offered at terminal nodes — crashing after all operations
    // completed cannot change any checked property — nor on drained
    // post-settlement nodes, where a fault cannot reach anything the
    // drained deliveries themselves do not.
    if !terminal && !settled {
        let n = space.config().n();
        if budgets.crashes_used < budgets.crash_budget {
            for i in 0..n {
                let p = ProcessId::new(i);
                if !space.is_crashed(p) {
                    choices.push(Choice {
                        step: ScheduleStep::Crash(p),
                        dest: p,
                    });
                }
            }
        }
        // Recovery injection points: any crashed process, between any two
        // events, while budget remains.
        if revivable {
            for i in 0..n {
                let p = ProcessId::new(i);
                if space.is_crashed(p) {
                    choices.push(Choice {
                        step: ScheduleStep::Recover(p),
                        dest: p,
                    });
                }
            }
        }
    }
    let mut backtrack = BTreeSet::new();
    match strategy {
        Strategy::Naive => {
            for c in &choices {
                backtrack.insert(c.step);
            }
        }
        Strategy::Dpor => {
            // Seed with the first non-sleeping event; races discovered
            // deeper add the rest on demand. Crash and recovery choices
            // are genuine branches (a crash is never equivalent to not
            // crashing, a rejoin never to staying down), so they are
            // always scheduled — sleep sets still prune injection
            // positions that differ only by commuting events.
            let injected =
                |s: ScheduleStep| matches!(s, ScheduleStep::Crash(_) | ScheduleStep::Recover(_));
            if let Some(c) = choices
                .iter()
                .find(|c| !injected(c.step) && !sleep.contains(&c.step))
            {
                backtrack.insert(c.step);
            }
            for c in &choices {
                if injected(c.step) && !sleep.contains(&c.step) {
                    backtrack.insert(c.step);
                }
            }
        }
    }
    Node {
        choices,
        backtrack,
        done: BTreeSet::new(),
        sleep,
        fired: None,
        terminal,
    }
}

/// Rebuilds the backend to the stack's current prefix (stateless replay:
/// the space is not snapshotable, so backtracking = fresh build + re-fire).
fn rebuild<A: Automaton>(
    scenario: &Scenario<A>,
    stack: &[Node],
    space: &mut SimSpace<A>,
    clocks: &mut ClockState,
    stats: &mut ExploreStats,
) -> Result<(), DriverError> {
    *space = scenario.build();
    *clocks = ClockState::new(space.config().n());
    stats.replays += 1;
    for node in stack {
        if let Some(ev) = &node.fired {
            space.fire(ev.choice.step)?;
            clocks.apply(ev);
        }
    }
    Ok(())
}

fn schedule_of(stack: &[Node]) -> Schedule {
    Schedule::from_steps(
        stack
            .iter()
            .filter_map(|n| n.fired.as_ref().map(|ev| ev.choice.step)),
    )
}

/// Explores every partial-order-inequivalent schedule of the scenario,
/// checking each terminal path, and stops on the first violation.
///
/// # Errors
///
/// [`DriverError`] on backend misbehaviour (a bug in the explorer or the
/// simulator, never a property violation — those land in the report).
pub fn explore<A: Automaton>(
    scenario: &Scenario<A>,
    opts: &ExploreOptions,
) -> Result<ExploreReport, DriverError> {
    let mut stats = ExploreStats::default();
    let mut space = scenario.build();
    let n = space.config().n();
    let crash_budget = scenario.crash_budget.min(space.config().t());
    // A deviation bound truncates subtrees, which invalidates the
    // subtree-coverage argument behind sleep sets and race-driven
    // backtracking — bounded runs therefore enumerate naively (the bound
    // itself is the pruning).
    let strategy = if opts.deviation_bound.is_some() {
        Strategy::Naive
    } else {
        opts.strategy
    };
    let bound = opts.deviation_bound.unwrap_or(usize::MAX);
    let mut deviations_used = 0usize;
    let mut clocks = ClockState::new(n);
    let mut budgets = Budgets {
        crashes_used: 0,
        crash_budget,
        recovers_used: 0,
        recover_budget: scenario.recover_budget,
    };
    let mut stack: Vec<Node> = vec![make_node(
        &space,
        budgets,
        BTreeSet::new(),
        strategy,
        opts.drain_after_settlement,
    )];
    let mut failure: Option<(Schedule, String)> = None;
    let mut exhausted = opts.deviation_bound.is_none();

    while !stack.is_empty() {
        if stats.paths_explored + stats.paths_pruned >= opts.max_paths {
            exhausted = false;
            break;
        }
        let candidate = {
            let node = stack.last().expect("stack checked non-empty");
            let preferred = node.choices.first().map(|x| x.step);
            node.choices.iter().copied().find(|c| {
                node.backtrack.contains(&c.step)
                    && !node.done.contains(&c.step)
                    && !node.sleep.contains(&c.step)
                    && (Some(c.step) == preferred || deviations_used < bound)
            })
        };
        let Some(c) = candidate else {
            // Leaf or fully-explored node: classify, pop, restore parent.
            let node = stack.last().expect("stack checked non-empty");
            if node.terminal && node.done.is_empty() {
                stats.paths_explored += 1;
                stats.max_depth = stats.max_depth.max(stack.len() - 1);
                if let Some(reason) = check_path(&space, &scenario.modes, true) {
                    failure = Some((schedule_of(&stack), reason));
                    exhausted = false;
                    break;
                }
            } else if node.done.is_empty() && !node.choices.is_empty() {
                // Everything here is asleep: the path is covered by an
                // explored sibling ordering.
                stats.paths_pruned += 1;
            }
            stack.pop();
            let Some(parent) = stack.last_mut() else {
                break;
            };
            if let Some(ev) = parent.fired.take() {
                match ev.choice.step {
                    ScheduleStep::Crash(_) => budgets.crashes_used -= 1,
                    ScheduleStep::Recover(_) => budgets.recovers_used -= 1,
                    _ => {}
                }
                if parent.choices.first().map(|x| x.step) != Some(ev.choice.step) {
                    deviations_used -= 1;
                }
                // The explored subtree covers every continuation in which
                // this step fires next — siblings need not re-fire it
                // until a dependent event invalidates the equivalence.
                if strategy == Strategy::Dpor {
                    parent.sleep.insert(ev.choice.step);
                }
            }
            rebuild(scenario, &stack, &mut space, &mut clocks, &mut stats)?;
            continue;
        };

        // Fire the candidate: clocks, race detection, then the event.
        let invoke_deps = match c.step {
            ScheduleStep::Invoke(plan) => scenario.invoke_deps(plan as usize),
            _ => Vec::new(),
        };
        let cause = clocks.cause_of(c, &invoke_deps);
        let clock = clocks.clock_of(c, &cause);
        if strategy == Strategy::Dpor {
            let depth = stack.len() - 1;
            for j in 0..depth {
                let races = {
                    let Some(ev_j) = &stack[j].fired else {
                        continue;
                    };
                    dependent(ev_j.choice, c) && !leq(&ev_j.clock, &cause)
                };
                if !races {
                    continue;
                }
                // The reversal of this pair is a distinct partial order:
                // schedule our step at the earlier point. If it was not
                // fireable there, schedule instead the earliest
                // already-fired causal predecessor of our event that *was*
                // a choice at j (Flanagan–Godefroid's refinement: running
                // any cause of the racing event from j eventually
                // re-enables it), and only when no such predecessor exists
                // fall back to every option.
                let fireable_there = stack[j].choices.iter().any(|x| x.step == c.step);
                let cause_step = if fireable_there {
                    None
                } else {
                    stack[j + 1..depth]
                        .iter()
                        .filter_map(|node| node.fired.as_ref())
                        .find(|ev_k| {
                            leq(&ev_k.clock, &clock)
                                && stack[j].choices.iter().any(|x| x.step == ev_k.choice.step)
                        })
                        .map(|ev_k| ev_k.choice.step)
                };
                let node_j = &mut stack[j];
                if fireable_there {
                    node_j.backtrack.insert(c.step);
                } else if let Some(step) = cause_step {
                    node_j.backtrack.insert(step);
                } else {
                    let all: Vec<ScheduleStep> = node_j.choices.iter().map(|x| x.step).collect();
                    node_j.backtrack.extend(all);
                }
            }
        }
        let outcome = space.fire(c.step)?;
        stats.events_fired += 1;
        // Local invariants must hold in every reachable state, so check
        // them per event — a violation mid-path surfaces with the short
        // prefix schedule instead of some drained-out descendant.
        if let Err(e) = space.check_local_invariants() {
            let mut schedule = schedule_of(&stack);
            schedule.push(c.step);
            failure = Some((schedule, format!("local invariant: {e}")));
            exhausted = false;
            break;
        }
        match c.step {
            ScheduleStep::Crash(_) => budgets.crashes_used += 1,
            ScheduleStep::Recover(_) => budgets.recovers_used += 1,
            _ => {}
        }
        if stack
            .last()
            .and_then(|node| node.choices.first())
            .map(|x| x.step)
            != Some(c.step)
        {
            deviations_used += 1;
        }
        let ev = PathEvent {
            choice: c,
            clock,
            created: outcome.created,
            became_ready: outcome.became_ready,
        };
        clocks.apply(&ev);
        let child_sleep: BTreeSet<ScheduleStep> = {
            let node = stack.last_mut().expect("stack checked non-empty");
            node.done.insert(c.step);
            let sleep = node
                .sleep
                .iter()
                .copied()
                .filter(|w| {
                    node.choices
                        .iter()
                        .find(|x| x.step == *w)
                        .is_some_and(|wc| !dependent(*wc, c))
                })
                .collect();
            node.fired = Some(ev);
            sleep
        };
        stack.push(make_node(
            &space,
            budgets,
            child_sleep,
            strategy,
            opts.drain_after_settlement,
        ));
    }

    let violation = match failure {
        None => None,
        Some((schedule, reason)) => {
            let (schedule, reason) = if opts.minimize {
                let min = minimize(scenario, &schedule);
                let (_, min_reason) = replay_lenient(scenario, &min);
                (min, min_reason.unwrap_or(reason))
            } else {
                (schedule, reason)
            };
            let annotated = annotate(scenario, &schedule);
            Some(Counterexample {
                schedule,
                reason,
                annotated,
            })
        }
    };
    Ok(ExploreReport {
        stats,
        violation,
        exhausted,
    })
}
