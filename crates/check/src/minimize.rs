//! Counterexample shrinking by greedy event elision.
//!
//! A failing schedule straight out of the explorer carries everything the
//! path happened to fire, most of it irrelevant to the violation. The
//! minimizer repeatedly tries dropping one step and replaying leniently
//! (steps whose preconditions the elision destroyed are skipped rather
//! than erroring); whenever the replay still fails, it adopts the
//! schedule that *actually fired* — which is at most as long as the
//! candidate, so the loop strictly shrinks — and restarts. The fixpoint
//! is 1-minimal: dropping any single step loses the violation. Because
//! the result is exactly a sequence of steps that fired in order on a
//! fresh build, it is strictly replayable by construction.

use twobit_proto::{Automaton, Driver, ProcessId, Schedule, ScheduleStep};

use crate::explore::check_path;
use crate::scenario::Scenario;

/// `true` if `step` can fire right now on `space` (crashes and recoveries
/// additionally consume the scenario's budgets, tracked by the caller).
fn fireable<A: Automaton>(
    space: &twobit_simnet::SimSpace<A>,
    step: ScheduleStep,
    used: &InjectionSpend,
    budget: &InjectionSpend,
) -> bool {
    match step {
        ScheduleStep::Crash(p) => {
            used.crashes < budget.crashes && p.index() < space.config().n() && !space.is_crashed(p)
        }
        ScheduleStep::Recover(p) => {
            used.recovers < budget.recovers
                && space.recovery_enabled()
                && p.index() < space.config().n()
                && space.is_crashed(p)
        }
        _ => space.enabled_events().iter().any(|ev| ev.step() == step),
    }
}

/// Crash/recover counters (both the replay's spend and the budgets).
#[derive(Clone, Copy, Debug, Default)]
struct InjectionSpend {
    crashes: usize,
    recovers: usize,
}

/// Replays `schedule` leniently on a fresh build: steps that are not
/// fireable when their turn comes are skipped. Returns the schedule that
/// actually fired and the first failing check on the end state, if any
/// (liveness is only consulted when the replay ends on a terminal state —
/// a partial replay legitimately leaves operations in flight).
pub(crate) fn replay_lenient<A: Automaton>(
    scenario: &Scenario<A>,
    schedule: &Schedule,
) -> (Schedule, Option<String>) {
    let mut space = scenario.build();
    let budget = InjectionSpend {
        crashes: scenario.crash_budget.min(space.config().t()),
        recovers: scenario.recover_budget,
    };
    let mut used = InjectionSpend::default();
    let mut fired = Schedule::new();
    for &step in schedule.steps() {
        if !fireable(&space, step, &used, &budget) {
            continue;
        }
        space
            .fire(step)
            .expect("fireability was checked before firing");
        match step {
            ScheduleStep::Crash(_) => used.crashes += 1,
            ScheduleStep::Recover(_) => used.recovers += 1,
            _ => {}
        }
        fired.push(step);
        // Mirror the explorer: local invariants are per-state properties,
        // so a replay reproduces an invariant counterexample at the same
        // prefix length it was found at.
        if let Err(e) = space.check_local_invariants() {
            return (fired, Some(format!("local invariant: {e}")));
        }
    }
    let terminal = space.plan_settled() || space.enabled_events().is_empty();
    let reason = check_path(&space, &scenario.modes, terminal);
    (fired, reason)
}

/// Shrinks a failing schedule to a 1-minimal failing schedule (see the
/// module docs). `schedule` must fail when replayed; the result fails and
/// is strictly replayable.
pub(crate) fn minimize<A: Automaton>(scenario: &Scenario<A>, schedule: &Schedule) -> Schedule {
    let mut current = schedule.clone();
    'shrink: loop {
        for i in 0..current.len() {
            let candidate = current.without(i);
            let (fired, reason) = replay_lenient(scenario, &candidate);
            if reason.is_some() {
                // `fired` ⊆ candidate ⊂ current, so this strictly shrinks.
                current = fired;
                continue 'shrink;
            }
        }
        return current;
    }
}

fn crash_label(p: ProcessId) -> String {
    format!("crash p{}", p.index())
}

/// Renders `schedule` as one `token  label` line per step by replaying it
/// and reading each event's label off the enabled set as it fires.
pub(crate) fn annotate<A: Automaton>(scenario: &Scenario<A>, schedule: &Schedule) -> String {
    let mut space = scenario.build();
    let mut out = String::new();
    for &step in schedule.steps() {
        let label = match step {
            ScheduleStep::Crash(p) => Some(crash_label(p)),
            ScheduleStep::Recover(p) => Some(format!("recover p{}", p.index())),
            _ => space
                .enabled_events()
                .iter()
                .find(|ev| ev.step() == step)
                .map(|ev| ev.label().to_string()),
        };
        let token = step.to_string();
        match label {
            Some(label) if space.fire(step).is_ok() => {
                out.push_str(&format!("{token:<5} {label}\n"));
            }
            _ => {
                out.push_str(&format!("{token:<5} (not fireable here — skipped)\n"));
            }
        }
    }
    out
}
