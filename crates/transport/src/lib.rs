//! Real-socket transport: the register cluster over loopback TCP, behind
//! the same [`Driver`] API as the simulator and the in-process runtime.
//!
//! This is the first backend that is not a simulation of a network but an
//! actual one: every ordered process pair `(p_i, p_j)` gets its own TCP
//! connection carrying a stream of length-prefixed [`Frame`] blobs
//! ([`Frame::encode`] / [`Frame::decode`] — the byte-level codec the
//! message-path redesign introduced), so the bits the accounting reports
//! are the bits `write(2)` hands to the kernel. Everything above the
//! socket is shared with the in-process runtime:
//!
//! * the process threads run the *same*
//!   [`process_loop`](twobit_runtime::process_loop) (one [`ShardSet`] per
//!   process, atomic frame handling, identical crash and accounting
//!   semantics);
//! * the per-link writer threads coalesce envelopes in the *same*
//!   [`LinkBatcher`] (one shared batching state machine, static or
//!   adaptive [`FlushPolicy`], per-link overrides) as the runtime's chaos
//!   links;
//! * histories come from the *same* [`Recorder`], so
//!   `check_swmr_sharded` applies unchanged.
//!
//! What the TCP backend does **not** re-create is the chaos: delay and
//! reordering come from the real kernel scheduler and socket buffers, not
//! from a seeded sampler — runs are not reproducible, which is exactly why
//! the deterministic backends continue to exist. A message type must be
//! codec-capable (override the [`WireMessage`] codec methods) to cross
//! this backend; the paper's protocol and all baselines are.
//!
//! # Examples
//!
//! ```
//! use twobit_core::TwoBitProcess;
//! use twobit_proto::{Driver, ProcessId, RegisterId, SystemConfig};
//! use twobit_transport::TcpClusterBuilder;
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let writer = ProcessId::new(0);
//! let mut cluster = TcpClusterBuilder::new(cfg)
//!     .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
//! cluster.write(writer, RegisterId::ZERO, 42)?;
//! assert_eq!(cluster.read(ProcessId::new(1), RegisterId::ZERO)?, 42);
//! let stats = cluster.stats();
//! assert!(stats.wire_bytes() > 0, "real bytes crossed real sockets");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use twobit_cache::CacheMode;
use twobit_proto::{
    Automaton, BufferPool, Bytes, Driver, DriverError, Envelope, Frame, Lifecycle, LifecycleState,
    NetStats, OpId, OpOutcome, OpTicket, Operation, ProcessId, RegisterId, ShardSet,
    ShardedHistory, SystemConfig, WireMessage, MAX_FRAME_BODY_BYTES,
};
use twobit_runtime::{
    process_loop, recover_process, BuildError, FlushPolicy, Incoming, LinkBatcher, OutboundLinks,
    Recorder, RecoveryParts,
};

/// Builder for a [`TcpCluster`].
#[derive(Debug)]
pub struct TcpClusterBuilder {
    cfg: SystemConfig,
    registers: Vec<RegisterId>,
    op_timeout: Duration,
    flush: FlushPolicy,
    flush_overrides: HashMap<(ProcessId, ProcessId), FlushPolicy>,
    cache_mode: CacheMode,
}

impl TcpClusterBuilder {
    /// Starts configuring a TCP cluster of `cfg.n()` processes hosting a
    /// single register (use [`TcpClusterBuilder::registers`] for more).
    pub fn new(cfg: SystemConfig) -> Self {
        TcpClusterBuilder {
            cfg,
            registers: vec![RegisterId::ZERO],
            op_timeout: Duration::from_secs(10),
            flush: FlushPolicy::default(),
            flush_overrides: HashMap::new(),
            cache_mode: CacheMode::Off,
        }
    }

    /// Sets the local read-cache mode (default [`CacheMode::Off`]) — the
    /// same knob as the other backends: each process thread serves gated
    /// reads from its confirmed snapshot with zero socket traffic, counted
    /// in `NetStats::cache_hits` / `cache_misses` / `cache_fallbacks`.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Sets the links' default frame flush policy (how aggressively
    /// envelopes coalesce before each socket write;
    /// [`FlushPolicy::immediate`] writes every message as its own frame,
    /// [`FlushPolicy::adaptive`] auto-tunes the hold per link). Validated
    /// at build time — an unsatisfiable policy is a typed
    /// [`BuildError::Config`], not a panic inside a writer thread.
    pub fn flush_policy(mut self, flush: FlushPolicy) -> Self {
        self.flush = flush;
        self
    }

    /// Overrides the flush policy for one ordered link `src → dst`,
    /// leaving every other link on the cluster-wide default. Also
    /// validated at build time.
    pub fn flush_policy_for(
        mut self,
        src: impl Into<ProcessId>,
        dst: impl Into<ProcessId>,
        flush: FlushPolicy,
    ) -> Self {
        self.flush_overrides.insert((src.into(), dst.into()), flush);
        self
    }

    /// Sets the client-side operation timeout.
    pub fn op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Hosts registers `r0 .. r(count-1)`.
    pub fn registers(mut self, count: usize) -> Self {
        self.registers = RegisterId::first(count);
        self
    }

    /// Hosts exactly the given registers.
    pub fn register_ids(mut self, registers: Vec<RegisterId>) -> Self {
        self.registers = registers;
        self
    }

    /// Builds and starts the cluster with one automaton per process (all
    /// hosted registers get identical per-process instances).
    ///
    /// # Errors
    ///
    /// [`BuildError::Config`] for an unsatisfiable flush policy;
    /// [`BuildError::Io`] for any socket error while binding the loopback
    /// listeners or wiring the `n(n−1)` connection mesh.
    pub fn build<A, F>(self, initial: A::Value, mut make: F) -> Result<TcpCluster<A>, BuildError>
    where
        A: Automaton,
        F: FnMut(ProcessId) -> A,
    {
        self.build_sharded(initial, move |_reg, id| make(id))
    }

    /// Builds and starts the cluster: binds one loopback listener per
    /// process, wires one TCP connection per ordered process pair, and
    /// spawns the process / socket-writer / socket-reader threads.
    ///
    /// # Errors
    ///
    /// [`BuildError::Config`] for an unsatisfiable flush policy (default
    /// or per-link override) — caught here, before any socket or thread
    /// exists, because a policy that panics a spawned writer thread would
    /// silently strand every message on that pair; [`BuildError::Io`] for
    /// any socket error during setup.
    pub fn build_sharded<A, F>(
        self,
        initial: A::Value,
        mut make: F,
    ) -> Result<TcpCluster<A>, BuildError>
    where
        A: Automaton,
        F: FnMut(RegisterId, ProcessId) -> A,
    {
        let n = self.cfg.n();
        assert!(
            !self.registers.is_empty(),
            "cluster needs at least one register"
        );
        self.flush.validate()?;
        for (link, policy) in &self.flush_overrides {
            policy.validate_for(Some(*link))?;
        }
        let crashed: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let stats = Arc::new(Mutex::new(NetStats::new()));
        let tag_bits = RegisterId::routing_bits(self.registers.len());

        // One loopback listener per process; the OS assigns the ports.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }

        let (inbox_txs, inbox_rxs): (Vec<_>, Vec<_>) =
            (0..n).map(|_| unbounded::<Incoming<A>>()).unzip();

        // Wire the mesh. Connect every ordered pair first (the listeners'
        // backlogs park the connections), sending a 4-byte hello naming
        // the connecting process; then accept and sort them out per
        // destination. The write half goes to a writer thread fed by the
        // sender's process loop; the read half to a reader thread feeding
        // the destination's inbox.
        let mut link_txs: Vec<OutboundLinks<A::Msg>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        for (i, out_row) in link_txs.iter_mut().enumerate() {
            for (j, slot) in out_row.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                let stream = TcpStream::connect(addrs[j])?;
                stream.set_nodelay(true)?;
                let mut hello = stream.try_clone()?;
                hello.write_all(&(i as u32).to_be_bytes())?;
                let (tx, rx) = unbounded::<Envelope<A::Msg>>();
                let policy = self
                    .flush_overrides
                    .get(&(ProcessId::new(i), ProcessId::new(j)))
                    .copied()
                    .unwrap_or(self.flush);
                let stats_w = Arc::clone(&stats);
                threads.push(std::thread::spawn(move || {
                    writer_loop(rx, stream, policy, tag_bits, stats_w);
                }));
                *slot = Some(tx);
            }
        }
        for (j, listener) in listeners.into_iter().enumerate() {
            for _ in 0..n.saturating_sub(1) {
                let (mut stream, _) = listener.accept()?;
                let mut hello = [0u8; 4];
                stream.read_exact(&mut hello)?;
                let from = ProcessId::new(u32::from_be_bytes(hello) as usize);
                let inbox = inbox_txs[j].clone();
                let my_crash = Arc::clone(&crashed[j]);
                let stats_r = Arc::clone(&stats);
                threads.push(std::thread::spawn(move || {
                    reader_loop::<A>(stream, from, inbox, my_crash, stats_r);
                }));
            }
        }

        // Process threads: the exact same loop as the in-process runtime —
        // only the `outs` now feed sockets instead of chaos links.
        for (i, inbox_rx) in inbox_rxs.into_iter().enumerate() {
            let shards = ShardSet::new(ProcessId::new(i), &self.registers, &mut make);
            let outs = link_txs[i].clone();
            let crashed = crashed.clone();
            let stats = Arc::clone(&stats);
            let cache_mode = self.cache_mode;
            threads.push(std::thread::spawn(move || {
                process_loop(shards, inbox_rx, outs, crashed, stats, cache_mode);
            }));
        }
        drop(link_txs); // writers hang up once their process thread exits

        Ok(TcpCluster {
            cfg: self.cfg,
            registers: self.registers,
            addrs,
            inbox_txs,
            crashed,
            life: Mutex::new(vec![LifecycleState::new(); n]),
            recorder: Recorder::new(initial),
            stats,
            op_ids: AtomicU64::new(0),
            op_timeout: self.op_timeout,
            pending: HashMap::new(),
            completed: HashMap::new(),
            threads,
        })
    }
}

/// Per-link socket writer: coalesce envelopes in the shared
/// [`LinkBatcher`] (the same state machine as the runtime's chaos links),
/// then write each batch as one length-prefixed frame blob.
///
/// Accounting happens **after** `write_all` succeeds — a frame recorded
/// before a failed write would leave `frames_sent`/`wire_bytes`
/// overcounted and break the `delivered + dropped + abandoned == sent`
/// reconciliation at teardown. A failed write instead abandons the link:
/// the frame's messages, anything still pending, and everything the
/// process loop sends afterwards are drained and counted as abandoned so
/// the books still balance.
fn writer_loop<M: WireMessage>(
    rx: Receiver<Envelope<M>>,
    mut stream: TcpStream,
    policy: FlushPolicy,
    tag_bits: u64,
    stats: Arc<Mutex<NetStats>>,
) {
    let mut batcher: LinkBatcher<Envelope<M>> = LinkBatcher::new(policy);
    let mut disconnected = false;
    // Per-link buffer pool: once the kernel has taken a frame's bytes the
    // buffer returns here, so a steady link stops allocating per flush.
    let pool = BufferPool::new();
    loop {
        // Gulp whatever is already queued (coalescing without holding).
        if batcher.gulp(&rx) {
            disconnected = true;
        }

        if let Some(f) = batcher.take_due(Instant::now(), disconnected) {
            let frame = Frame::from_envelopes(f.batch);
            let messages = frame.len() as u64;
            let cost = frame.cost(tag_bits);
            let blob = frame
                .encode_pooled(&pool)
                .expect("the TCP transport requires a codec-capable message type");
            if stream.write_all(&blob).is_ok() {
                // Only a write the kernel accepted whole is accounted.
                let mut st = stats.lock();
                st.record_frame(cost);
                st.record_flush(f.reason, f.held.as_nanos().min(u128::from(u64::MAX)) as u64);
                st.record_wire_bytes(blob.len() as u64);
            } else {
                // Peer gone mid-run: abandon the link, keeping every
                // in-flight and future message on it accounted.
                abandon_link(messages, &mut batcher, &rx, &stats);
                return;
            }
        }

        if disconnected {
            if !batcher.has_pending() {
                let _ = stream.shutdown(Shutdown::Write);
                return;
            }
            continue; // flush the remainder before hanging up
        }

        match batcher.flush_deadline() {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(env) => batcher.push(env, Instant::now()),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => disconnected = true,
                }
            }
            None => match rx.recv() {
                Ok(env) => batcher.push(env, Instant::now()),
                Err(_) => disconnected = true,
            },
        }
    }
}

/// The failed-write path of [`writer_loop`]: records the link as
/// abandoned, then counts the failed frame's messages, the batcher's
/// remainder, and everything still arriving from the process loop as
/// abandoned — draining until the sender hangs up so the teardown
/// invariant `delivered + dropped + abandoned == sent` holds even though
/// the socket died mid-run.
fn abandon_link<M>(
    failed_frame_messages: u64,
    batcher: &mut LinkBatcher<Envelope<M>>,
    rx: &Receiver<Envelope<M>>,
    stats: &Mutex<NetStats>,
) {
    {
        let mut st = stats.lock();
        st.record_link_abandoned();
        st.record_messages_abandoned(failed_frame_messages);
        st.record_messages_abandoned(batcher.drain_remaining().len() as u64);
    }
    // Late sends stay accounted (and visible mid-run) one by one.
    while rx.recv().is_ok() {
        stats.lock().record_messages_abandoned(1);
    }
}

/// Per-link socket reader: slice the byte stream into length-prefixed
/// blobs, decode each into a frame, and deliver it to the destination's
/// inbox — or, if the destination has crashed, drop it whole (the frame's
/// atomic non-delivery, with the drop accounted like the other backends).
/// Keeps draining after a crash so the peer's writer never blocks on a
/// full socket buffer.
///
/// A poisoned stream — oversized length prefix, truncated body, corrupt
/// frame — abandons the link, but never silently: the event lands in
/// [`NetStats::links_abandoned`], because a bailed reader strands every
/// in-flight send on this link outside both `delivered` and `dropped`,
/// and the teardown reconciliation needs to know the books cannot balance
/// (a corrupt frame's message count is unknowable).
fn reader_loop<A: Automaton>(
    mut stream: TcpStream,
    from: ProcessId,
    inbox: Sender<Incoming<A>>,
    my_crash: Arc<AtomicBool>,
    stats: Arc<Mutex<NetStats>>,
) {
    loop {
        let mut prefix = [0u8; 4];
        if stream.read_exact(&mut prefix).is_err() {
            return; // clean EOF: peer flushed everything and hung up
        }
        let len = u32::from_be_bytes(prefix);
        if len > MAX_FRAME_BODY_BYTES {
            // Poisoned stream; abandon the link, accounted.
            stats.lock().record_link_abandoned();
            return;
        }
        let mut blob = vec![0u8; 4 + len as usize];
        blob[..4].copy_from_slice(&prefix);
        if stream.read_exact(&mut blob[4..]).is_err() {
            // Truncated mid-frame: the peer died between prefix and body.
            stats.lock().record_link_abandoned();
            return;
        }
        // One receive buffer per frame, shared onward: decoded payloads
        // are zero-copy `Bytes` views into it where the layout aligns.
        let blob = Bytes::from(blob);
        let Ok(frame) = Frame::<A::Msg>::decode_shared(&blob) else {
            // Corrupt frame; a byzantine-free peer never sends one.
            stats.lock().record_link_abandoned();
            return;
        };
        let messages = frame.len() as u64;
        // Deliver only to a live process loop, and record the delivery
        // only once the inbox accepted it — a process thread that already
        // returned (crash, or shutdown racing with in-flight traffic) has
        // stopped taking steps, which is exactly crash semantics, so its
        // frames drop whole and stay accounted. Keep draining either way:
        // `delivered + dropped == sent` must reconcile at teardown, and a
        // reader that bailed early would both strand unaccounted frames on
        // the socket and let the peer's writer block on a full buffer.
        let delivered = !my_crash.load(Ordering::Relaxed)
            && inbox.send(Incoming::Frame { from, frame }).is_ok();
        let mut st = stats.lock();
        if delivered {
            st.record_deliveries(messages);
        } else {
            st.record_frame_drop_to_crashed(messages);
        }
    }
}

/// A running register cluster whose links are real loopback TCP
/// connections.
///
/// Construct with [`TcpClusterBuilder`]; drive through the [`Driver`]
/// trait — the same `Workload`s, atomicity checkers and benchmarks that
/// run on `SimSpace` and `Cluster` run here unmodified. Tear down with
/// [`TcpCluster::shutdown`] (dropping the cluster also signals the
/// threads, best-effort).
pub struct TcpCluster<A: Automaton> {
    cfg: SystemConfig,
    registers: Vec<RegisterId>,
    addrs: Vec<SocketAddr>,
    inbox_txs: Vec<Sender<Incoming<A>>>,
    crashed: Vec<Arc<AtomicBool>>,
    life: Mutex<Vec<LifecycleState>>,
    recorder: Recorder<A::Value>,
    stats: Arc<Mutex<NetStats>>,
    op_ids: AtomicU64,
    op_timeout: Duration,
    /// Unpolled tickets per `(process, register)` pair.
    #[allow(clippy::type_complexity)]
    pending: HashMap<(ProcessId, RegisterId), (OpId, Receiver<OpOutcome<A::Value>>)>,
    #[allow(clippy::type_complexity)]
    /// Latest polled outcome per pair (so re-polling is idempotent).
    completed: HashMap<(ProcessId, RegisterId), (OpId, OpOutcome<A::Value>)>,
    threads: Vec<JoinHandle<()>>,
}

impl<A: Automaton> std::fmt::Debug for TcpCluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCluster")
            .field("cfg", &self.cfg)
            .field("registers", &self.registers)
            .field("addrs", &self.addrs)
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> TcpCluster<A> {
    /// The loopback socket addresses the processes listen on, indexed by
    /// process.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Snapshot of the network statistics. With this backend
    /// [`NetStats::wire_bytes`] counts bytes actually written to sockets.
    pub fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }

    /// Gracefully stops all threads and returns the final per-register
    /// histories and statistics.
    pub fn shutdown(mut self) -> (ShardedHistory<A::Value>, NetStats) {
        for tx in &self.inbox_txs {
            let _ = tx.send(Incoming::Shutdown);
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        (
            self.recorder.snapshot_sharded(&self.registers),
            self.stats.lock().clone(),
        )
    }
}

impl<A: Automaton> Drop for TcpCluster<A> {
    /// Best-effort, non-blocking teardown signal (the blocking variant is
    /// the explicit [`TcpCluster::shutdown`]).
    fn drop(&mut self) {
        for tx in &self.inbox_txs {
            let _ = tx.send(Incoming::Shutdown);
        }
    }
}

impl<A: Automaton> Driver for TcpCluster<A> {
    type Value = A::Value;

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn registers(&self) -> Vec<RegisterId> {
        self.registers.clone()
    }

    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
    ) -> Result<OpTicket, DriverError> {
        if proc.index() >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if !self.registers.contains(&reg) {
            return Err(DriverError::UnknownRegister(reg));
        }
        if self.crashed[proc.index()].load(Ordering::Relaxed) {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        if self.pending.contains_key(&(proc, reg)) {
            return Err(DriverError::OperationInFlight { proc, reg });
        }
        let op_id = OpId::new(self.op_ids.fetch_add(1, Ordering::Relaxed));
        let (reply_tx, reply_rx) = bounded(1);
        let invoked_at = self.recorder.now();
        if self.inbox_txs[proc.index()]
            .send(Incoming::Invoke {
                reg,
                op_id,
                op: op.clone(),
                reply: reply_tx,
            })
            .is_err()
        {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        self.recorder.invoked(op_id, proc, reg, op, invoked_at);
        self.pending.insert((proc, reg), (op_id, reply_rx));
        Ok(OpTicket { proc, reg, op_id })
    }

    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<A::Value>, DriverError> {
        let key = (ticket.proc, ticket.reg);
        if let Some((op_id, outcome)) = self.completed.get(&key) {
            if *op_id == ticket.op_id {
                return Ok(outcome.clone());
            }
        }
        let Some((op_id, rx)) = self.pending.get(&key) else {
            return Err(DriverError::Stalled(ticket.op_id));
        };
        if *op_id != ticket.op_id {
            let op_id = *op_id;
            return Err(DriverError::Backend(format!(
                "ticket {} superseded by {op_id}",
                ticket.op_id
            )));
        }
        match rx.recv_timeout(self.op_timeout) {
            Ok(outcome) => {
                self.recorder
                    .completed(ticket.op_id, self.recorder.now(), outcome.clone());
                self.pending.remove(&key);
                // Bounded at one entry per pair, evicted by the next poll.
                self.completed.insert(key, (ticket.op_id, outcome.clone()));
                Ok(outcome)
            }
            Err(RecvTimeoutError::Timeout) => Err(DriverError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                self.pending.remove(&key);
                Err(DriverError::ProcessUnavailable(ticket.proc))
            }
        }
    }

    fn crash(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        self.life.lock()[pi]
            .crash()
            .map_err(|_| DriverError::AlreadyCrashed(proc))?;
        self.crashed[pi].store(true, Ordering::Relaxed);
        // Nudge the thread so it observes the flag even when idle. (Not a
        // shutdown — the parked thread must survive for a later recovery.)
        let _ = self.inbox_txs[pi].send(Incoming::Nudge);
        Ok(())
    }

    fn recover(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        // The stop-the-world coordinator needs a quiesced cluster; an op
        // still in flight anywhere would keep the books open forever.
        if let Some((p, r)) = self.pending.keys().next() {
            return Err(DriverError::OperationInFlight { proc: *p, reg: *r });
        }
        let inboxes: Vec<Option<Sender<Incoming<A>>>> =
            self.inbox_txs.iter().cloned().map(Some).collect();
        recover_process(
            proc,
            &RecoveryParts {
                cfg: self.cfg,
                registers: &self.registers,
                inboxes: &inboxes,
                life: &self.life,
                crashed: &self.crashed,
                stats: &self.stats,
                recorder: &self.recorder,
                quiesce_timeout: self.op_timeout,
            },
        )
    }

    fn lifecycle(&self, proc: ProcessId) -> Lifecycle {
        self.life
            .lock()
            .get(proc.index())
            .map_or(Lifecycle::Crashed, |l| l.state)
    }

    fn history(&self) -> ShardedHistory<A::Value> {
        self.recorder.snapshot_sharded(&self.registers)
    }

    fn stats(&self) -> NetStats {
        TcpCluster::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_core::TwoBitProcess;
    use twobit_runtime::ConfigError;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    #[test]
    fn builder_rejects_zero_max_batch_as_typed_error() {
        // Regression: a zero max_batch used to be caught by an assert!
        // inside each spawned writer thread — the panic stranded every
        // message on that pair while the cluster looked healthy.
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let err = TcpClusterBuilder::new(c)
            .flush_policy(FlushPolicy::fixed(0, Duration::ZERO))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64));
        let Err(err) = err else {
            panic!("a zero max_batch must fail the build")
        };
        assert!(
            matches!(
                err,
                BuildError::Config(ConfigError::ZeroMaxBatch { link: None })
            ),
            "expected a typed config error, got {err}"
        );
        // Per-link overrides are validated too, naming the link.
        let err = TcpClusterBuilder::new(c)
            .flush_policy_for(1, 2, FlushPolicy::fixed(0, Duration::ZERO))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64));
        let Err(err) = err else {
            panic!("a zero max_batch override must fail the build")
        };
        assert!(matches!(
            err,
            BuildError::Config(ConfigError::ZeroMaxBatch {
                link: Some((a, b))
            }) if (a, b) == (ProcessId::new(1), ProcessId::new(2))
        ));
    }

    /// Regression for the frame-accounting bugfix: stats used to be
    /// recorded *before* `stream.write_all`, so a failed write left
    /// `frames_sent`/`wire_bytes` overcounted and broke teardown
    /// reconciliation. Drive `writer_loop` against a peer that hangs up
    /// mid-run: only successfully written frames may be accounted as
    /// frames, everything else must land in the abandoned counters, and
    /// the sum must cover every message handed to the link.
    #[test]
    fn write_failure_mid_run_keeps_frame_accounting_reconciled() {
        use twobit_core::TwoBitMsg;

        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted); // peer gone: writes will fail once the RST lands

        let stats = Arc::new(Mutex::new(NetStats::new()));
        let (tx, rx) = unbounded::<Envelope<TwoBitMsg<u64>>>();
        let stats_w = Arc::clone(&stats);
        let h = std::thread::spawn(move || {
            writer_loop(rx, stream, FlushPolicy::immediate(), 0, stats_w);
        });

        let mut sent = 0u64;
        for _ in 0..500 {
            if tx
                .send(Envelope::new(RegisterId::ZERO, TwoBitMsg::Read))
                .is_err()
            {
                break;
            }
            sent += 1;
            std::thread::sleep(Duration::from_millis(1));
            if stats.lock().links_abandoned() > 0 {
                break;
            }
        }
        // A few more sends after the failure: the dead link must keep
        // draining and accounting them instead of stranding them.
        for _ in 0..5 {
            if tx
                .send(Envelope::new(RegisterId::ZERO, TwoBitMsg::Read))
                .is_ok()
            {
                sent += 1;
            }
        }
        drop(tx);
        h.join().unwrap();

        let st = stats.lock();
        assert_eq!(st.links_abandoned(), 1, "the write failure was recorded");
        assert!(st.messages_abandoned() > 0, "failed frames were counted");
        assert_eq!(
            st.framed_messages() + st.messages_abandoned(),
            sent,
            "every message is either in a successfully written frame or abandoned"
        );
        assert_eq!(
            st.frames_sent(),
            st.flushes_total(),
            "flush reasons only cover frames that actually hit the wire"
        );
    }

    /// Regression for the silent reader bail-out: an oversized length
    /// prefix or a corrupt frame used to `return` with zero accounting,
    /// stranding in-flight sends outside both `delivered` and `dropped`.
    #[test]
    fn poisoned_streams_mark_the_link_abandoned() {
        use twobit_core::TwoBitMsg;

        let poison = |bytes: &[u8]| {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let mut attacker = TcpStream::connect(addr).unwrap();
            let (victim, _) = listener.accept().unwrap();
            let stats = Arc::new(Mutex::new(NetStats::new()));
            let (inbox_tx, inbox_rx) = unbounded::<Incoming<TwoBitProcess<u64>>>();
            let stats_r = Arc::clone(&stats);
            let crash = Arc::new(AtomicBool::new(false));
            let h = std::thread::spawn(move || {
                reader_loop::<TwoBitProcess<u64>>(
                    victim,
                    ProcessId::new(1),
                    inbox_tx,
                    crash,
                    stats_r,
                );
            });
            attacker.write_all(bytes).unwrap();
            drop(attacker);
            h.join().unwrap();
            let st = stats.lock().clone();
            let mut delivered = 0usize;
            while inbox_rx.try_recv().is_ok() {
                delivered += 1;
            }
            (st, delivered)
        };

        // Oversized length prefix.
        let huge = (MAX_FRAME_BODY_BYTES + 1).to_be_bytes();
        let (st, delivered) = poison(&huge);
        assert_eq!(st.links_abandoned(), 1, "oversized prefix is accounted");
        assert_eq!(delivered, 0);

        // Truncated body: prefix promises more than the stream carries.
        let (st, delivered) = poison(&[0, 0, 0, 16, 0xAB]);
        assert_eq!(st.links_abandoned(), 1, "truncated body is accounted");
        assert_eq!(delivered, 0);

        // Well-framed garbage: the right length, an undecodable body.
        let mut garbage = vec![0, 0, 0, 8];
        garbage.extend([0xFF; 8]);
        let (st, delivered) = poison(&garbage);
        assert_eq!(st.links_abandoned(), 1, "corrupt frame is accounted");
        assert_eq!(delivered, 0);

        // Control: a clean EOF with no traffic abandons nothing.
        let (st, delivered) = poison(&[]);
        assert_eq!(st.links_abandoned(), 0, "clean EOF is not a poisoning");
        assert_eq!(delivered, 0);
        let _ = TwoBitMsg::<u64>::Read; // keep the import honest
    }

    #[test]
    fn adaptive_flush_policy_serves_reads_and_writes_over_sockets() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let mut cluster = TcpClusterBuilder::new(c)
            .flush_policy(FlushPolicy::adaptive(
                64,
                Duration::ZERO,
                Duration::from_micros(200),
            ))
            .flush_policy_for(0, 1, FlushPolicy::immediate())
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        for i in 1..=5u64 {
            cluster.write(writer, RegisterId::ZERO, i).unwrap();
            assert_eq!(
                cluster.read(ProcessId::new(1), RegisterId::ZERO).unwrap(),
                i
            );
        }
        let (history, stats) = cluster.shutdown();
        twobit_lincheck::check_swmr(history.shard(RegisterId::ZERO).unwrap()).unwrap();
        assert_eq!(
            stats.flushes_total(),
            stats.frames_sent(),
            "every frame that hit a socket carries exactly one flush reason"
        );
        assert_eq!(stats.links_abandoned(), 0);
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
            stats.total_sent(),
            "teardown reconciliation with abandoned accounting"
        );
    }

    #[test]
    fn write_then_read_over_real_sockets() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let mut cluster = TcpClusterBuilder::new(c)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        cluster.write(writer, RegisterId::ZERO, 7).unwrap();
        assert_eq!(
            cluster.read(ProcessId::new(1), RegisterId::ZERO).unwrap(),
            7
        );
        let stats = cluster.stats();
        assert!(stats.wire_bytes() > 0, "bytes crossed the sockets");
        assert_eq!(
            stats.control_bits(),
            2 * stats.total_sent(),
            "two control bits per message survive real serialization"
        );
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(history.shard(RegisterId::ZERO).unwrap()).unwrap();
    }

    #[test]
    fn immediate_flush_sends_every_message_alone() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let mut cluster = TcpClusterBuilder::new(c)
            .flush_policy(FlushPolicy::immediate())
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        cluster.write(writer, RegisterId::ZERO, 1).unwrap();
        // Quiesce before comparing: process threads record sends strictly
        // before the writer threads record the matching frames, so a live
        // snapshot could observe a send whose frame is not yet flushed.
        let (_, stats) = cluster.shutdown();
        assert_eq!(
            stats.frames_sent(),
            stats.total_sent(),
            "immediate policy: one frame per message"
        );
    }

    #[test]
    fn crash_minority_stays_live_and_reconciles() {
        let c = cfg(5); // t = 2
        let writer = ProcessId::new(0);
        let mut cluster = TcpClusterBuilder::new(c)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        cluster.write(writer, RegisterId::ZERO, 1).unwrap();
        Driver::crash(&mut cluster, ProcessId::new(3)).unwrap();
        Driver::crash(&mut cluster, ProcessId::new(4)).unwrap();
        cluster.write(writer, RegisterId::ZERO, 2).unwrap();
        assert_eq!(
            cluster.read(ProcessId::new(1), RegisterId::ZERO).unwrap(),
            2
        );
        assert!(matches!(
            cluster.invoke(ProcessId::new(4), RegisterId::ZERO, Operation::Read),
            Err(DriverError::ProcessUnavailable(_))
        ));
        let (history, stats) = cluster.shutdown();
        twobit_lincheck::check_swmr(history.shard(RegisterId::ZERO).unwrap()).unwrap();
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed(),
            stats.total_sent(),
            "every sent message was delivered or dropped whole-frame"
        );
    }

    #[test]
    fn sharded_workload_is_atomic_per_register() {
        use twobit_proto::Workload;
        let c = cfg(3);
        let regs = 4usize;
        let mut cluster = TcpClusterBuilder::new(c)
            .registers(regs)
            .build_sharded(0u64, |reg, id| {
                TwoBitProcess::new(id, c, ProcessId::new(reg.index() % 3), 0u64)
            })
            .unwrap();
        let mut w = Workload::new();
        for round in 0..4u64 {
            for k in 0..regs {
                let reg = RegisterId::new(k);
                let wr = k % 3;
                w = w.step(wr, reg, Operation::Write(100 * (k as u64 + 1) + round));
                w = w.step((wr + 1) % 3, reg, Operation::Read);
            }
        }
        w.run_pipelined_on(&mut cluster).unwrap();
        let (history, stats) = cluster.shutdown();
        assert_eq!(history.len(), regs);
        twobit_lincheck::check_swmr_sharded(&history).unwrap();
        assert!(stats.frame_header_bits() > 0, "shard tags were routed");
        assert!(
            stats.frame_header_bits() <= stats.frame_header_gamma_bits(),
            "the header-mode chooser never loses to forced gamma"
        );
    }

    #[test]
    fn singleton_cluster_needs_no_sockets() {
        let c = SystemConfig::new(1, 0).unwrap();
        let writer = ProcessId::new(0);
        let mut cluster = TcpClusterBuilder::new(c)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        cluster.write(writer, RegisterId::ZERO, 3).unwrap();
        assert_eq!(cluster.read(writer, RegisterId::ZERO).unwrap(), 3);
        let (_, stats) = cluster.shutdown();
        assert_eq!(stats.total_sent(), 0);
    }

    #[test]
    fn bad_addresses_are_typed() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let mut cluster = TcpClusterBuilder::new(c)
            .registers(2)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        assert_eq!(
            cluster
                .invoke(ProcessId::new(9), RegisterId::ZERO, Operation::Read)
                .unwrap_err(),
            DriverError::UnknownProcess(ProcessId::new(9))
        );
        assert_eq!(
            cluster
                .invoke(ProcessId::new(0), RegisterId::new(7), Operation::Read)
                .unwrap_err(),
            DriverError::UnknownRegister(RegisterId::new(7))
        );
        assert_eq!(cluster.addrs().len(), 3);
    }
}
