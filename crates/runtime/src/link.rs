//! Chaos links: per-pair delivery threads injecting delay and reordering.
//!
//! One link thread serves one ordered process pair `p_i → p_j`. Each message
//! gets an independent sampled delay (ticks of the
//! [`DelayModel`](twobit_simnet::DelayModel) interpreted as microseconds),
//! so a later message with a shorter delay genuinely overtakes an earlier
//! one — the non-FIFO channel of the paper's model, realized with real
//! threads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use twobit_simnet::DelayModel;

/// A message queued on a link, ordered by delivery deadline.
struct Queued<M> {
    deadline: Instant,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// Spawns the link thread for one ordered pair.
///
/// Messages received on `rx` are held until their sampled deadline, then
/// forwarded via `deliver` — unless the destination has crashed (checked at
/// delivery time, like the simulator's drop-at-delivery semantics). The
/// thread exits once `rx` disconnects and the queue has drained.
pub(crate) fn spawn_link<M: Send + 'static>(
    rx: Receiver<M>,
    deliver: Sender<M>,
    delay: DelayModel,
    seed: u64,
    dest_crashed: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap: BinaryHeap<Reverse<Queued<M>>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut disconnected = false;
        loop {
            // Deliver everything due.
            let now = Instant::now();
            while heap.peek().is_some_and(|Reverse(q)| q.deadline <= now) {
                let Reverse(q) = heap.pop().expect("peeked");
                if !dest_crashed.load(Ordering::Relaxed) {
                    // The destination inbox may already be gone on shutdown.
                    let _ = deliver.send(q.msg);
                }
            }
            if disconnected && heap.is_empty() {
                return;
            }
            // Wait for the next deadline or the next incoming message.
            let wait = heap
                .peek()
                .map(|Reverse(q)| q.deadline.saturating_duration_since(Instant::now()));
            let incoming = match wait {
                Some(d) => match rx.recv_timeout(d) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        // Sleep until the earliest deadline, then loop to
                        // drain.
                        if let Some(Reverse(q)) = heap.peek() {
                            let d = q.deadline.saturating_duration_since(Instant::now());
                            std::thread::sleep(d);
                        }
                        None
                    }
                },
                None => {
                    if disconnected {
                        return;
                    }
                    match rx.recv() {
                        Ok(m) => Some(m),
                        Err(_) => return,
                    }
                }
            };
            if let Some(msg) = incoming {
                // One tick of the delay model = 1µs of real time.
                let micros = delay.sample(&mut rng);
                heap.push(Reverse(Queued {
                    deadline: Instant::now() + Duration::from_micros(micros),
                    seq,
                    msg,
                }));
                seq += 1;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn delivers_in_deadline_order_not_send_order() {
        // A deterministic alternating delay (via a two-point uniform range
        // would be random; instead use Fixed and check ordering survives).
        let (tx, link_rx) = unbounded::<u32>();
        let (deliver_tx, out) = unbounded::<u32>();
        let crashed = Arc::new(AtomicBool::new(false));
        let h = spawn_link(
            link_rx,
            deliver_tx,
            DelayModel::Fixed(1_000), // 1ms
            7,
            crashed,
        );
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        h.join().unwrap();
        let got: Vec<u32> = out.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reorders_with_spiky_delays() {
        let (tx, link_rx) = unbounded::<u32>();
        let (deliver_tx, out) = unbounded::<u32>();
        let crashed = Arc::new(AtomicBool::new(false));
        let h = spawn_link(
            link_rx,
            deliver_tx,
            DelayModel::Spiky {
                lo: 1,
                hi: 100,
                spike_ppm: 500_000,
                spike_lo: 5_000,
                spike_hi: 20_000,
            },
            3,
            crashed,
        );
        for i in 0..200 {
            tx.send(i).unwrap();
            // Stagger sends slightly so reordering is about delays.
            std::thread::sleep(Duration::from_micros(50));
        }
        drop(tx);
        h.join().unwrap();
        let got: Vec<u32> = out.iter().collect();
        assert_eq!(got.len(), 200);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
        assert_ne!(got, sorted, "spiky delays should reorder something");
    }

    #[test]
    fn drops_to_crashed_destination() {
        let (tx, link_rx) = unbounded::<u32>();
        let (deliver_tx, out) = unbounded::<u32>();
        let crashed = Arc::new(AtomicBool::new(true));
        let h = spawn_link(link_rx, deliver_tx, DelayModel::Fixed(100), 1, crashed);
        tx.send(1).unwrap();
        drop(tx);
        h.join().unwrap();
        assert!(out.iter().next().is_none());
    }
}
