//! Chaos links: per-pair delivery threads injecting delay and reordering,
//! now speaking *frames*.
//!
//! One link thread serves one ordered process pair `p_i → p_j`. Incoming
//! items accumulate in the shared [`LinkBatcher`] under a [`FlushPolicy`]
//! (size-based, hold-based — static or adaptive); each flush hands the
//! batch to a caller-supplied closure — the cluster builds a
//! [`Frame`](twobit_proto::Frame) there and records its shared-header cost
//! plus the flush reason — and the result enters the delay heap as **one
//! unit** with **one** independently sampled delay (ticks of the
//! [`DelayModel`](twobit_simnet::DelayModel) interpreted as microseconds).
//! A later flush with a shorter delay genuinely overtakes an earlier one —
//! the non-FIFO channel of the paper's model, realized with real threads.
//!
//! Delivery is atomic per flushed unit: the destination's crash flag is
//! checked once at the unit's deadline — in the normal path *and* in the
//! shutdown drain — so a frame reaches a live process whole or, if the
//! process crashed first, not at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use twobit_proto::FlushReason;
use twobit_simnet::DelayModel;

use crate::batcher::{FlushPolicy, LinkBatcher};

/// A flushed unit queued on a link, ordered by delivery deadline.
struct Queued<B> {
    deadline: Instant,
    seq: u64,
    unit: B,
}

impl<B> PartialEq for Queued<B> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<B> Eq for Queued<B> {}
impl<B> PartialOrd for Queued<B> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<B> Ord for Queued<B> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// Static configuration of one link thread.
pub(crate) struct LinkConfig {
    /// When pending items coalesce into a frame (validated by the
    /// builder before this thread exists).
    pub(crate) policy: FlushPolicy,
    /// Per-frame delay sampler (ticks = microseconds).
    pub(crate) delay: DelayModel,
    /// Seed for the delay sampler.
    pub(crate) seed: u64,
    /// The destination's crash switch, checked at delivery time.
    pub(crate) dest_crashed: Arc<AtomicBool>,
}

/// Spawns the link thread for one ordered pair.
///
/// Items received on `rx` accumulate in a [`LinkBatcher`] under the
/// config's flush policy; each flush maps the batch through `flush`
/// (where the cluster builds a frame and accounts its header, the flush
/// reason, and the observed hold) and holds the result until its sampled
/// deadline, then forwards it via `deliver` — unless the destination has
/// crashed, checked **at delivery time** so a crash while a unit is in
/// flight (including during the shutdown drain) hands the whole unit to
/// `on_drop` instead (where the cluster records the drop, keeping
/// `delivered + dropped = sent` reconcilable across backends). The thread
/// exits once `rx` disconnects, the pending batch has been flushed, and
/// the heap has drained.
pub(crate) fn spawn_link<M, B, F, D>(
    rx: Receiver<M>,
    deliver: Sender<B>,
    config: LinkConfig,
    mut flush: F,
    mut on_drop: D,
) -> JoinHandle<()>
where
    M: Send + 'static,
    B: Send + 'static,
    F: FnMut(Vec<M>, FlushReason, Duration) -> B + Send + 'static,
    D: FnMut(B) + Send + 'static,
{
    let LinkConfig {
        policy,
        delay,
        seed,
        dest_crashed,
    } = config;
    std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap: BinaryHeap<Reverse<Queued<B>>> = BinaryHeap::new();
        let mut batcher: LinkBatcher<M> = LinkBatcher::new(policy);
        let mut seq = 0u64;
        let mut disconnected = false;
        loop {
            // Deliver everything due, checking the crash flag per unit so a
            // destination that crashed while the unit was in flight drops
            // it whole — this is the only place units leave the heap, in
            // the live path and the shutdown drain alike.
            let now = Instant::now();
            while heap.peek().is_some_and(|Reverse(q)| q.deadline <= now) {
                let Reverse(q) = heap.pop().expect("peeked");
                if dest_crashed.load(Ordering::Relaxed) {
                    on_drop(q.unit);
                } else {
                    // The destination inbox may already be gone on shutdown.
                    let _ = deliver.send(q.unit);
                }
            }

            // Opportunistically pull whatever is already queued on the
            // channel (up to the batch bound) — coalescing without holding.
            if batcher.gulp(&rx) {
                disconnected = true;
            }

            // Flush when a policy bound is hit, or unconditionally on
            // shutdown so no message is stranded.
            if let Some(f) = batcher.take_due(Instant::now(), disconnected) {
                // One tick of the delay model = 1µs of real time.
                let micros = delay.sample(&mut rng);
                heap.push(Reverse(Queued {
                    deadline: Instant::now() + Duration::from_micros(micros),
                    seq,
                    unit: flush(f.batch, f.reason, f.held),
                }));
                seq += 1;
            }

            if disconnected {
                if heap.is_empty() && !batcher.has_pending() {
                    return;
                }
                // Drain: sleep to the next deadline, then loop so delivery
                // re-checks dest_crashed *after* the sleep.
                if let Some(Reverse(q)) = heap.peek() {
                    let d = q.deadline.saturating_duration_since(Instant::now());
                    std::thread::sleep(d);
                }
                continue;
            }

            // Wait for the next deadline (delivery or flush) or the next
            // incoming item. With nothing pending and nothing in flight
            // this is a plain blocking recv — the no-busy-spin path.
            let next_flush = batcher.flush_deadline();
            let next_delivery = heap.peek().map(|Reverse(q)| q.deadline);
            let next_deadline = match (next_flush, next_delivery) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match next_deadline {
                Some(deadline) => {
                    let d = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(d) {
                        Ok(m) => batcher.push(m, Instant::now()),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => disconnected = true,
                    }
                }
                None => match rx.recv() {
                    Ok(m) => batcher.push(m, Instant::now()),
                    Err(_) => disconnected = true,
                },
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU32;

    use super::*;
    use crate::batcher::HoldPolicy;
    use crossbeam::channel::unbounded;

    /// Spawns a link whose flush unit is simply the batch itself; dropped
    /// messages (not batches) accumulate in the returned counter.
    #[allow(clippy::type_complexity)]
    fn id_link(
        policy: FlushPolicy,
        delay: DelayModel,
        seed: u64,
        crashed: Arc<AtomicBool>,
    ) -> (
        Sender<u32>,
        Receiver<Vec<u32>>,
        Arc<AtomicU32>,
        JoinHandle<()>,
    ) {
        let (tx, link_rx) = unbounded::<u32>();
        let (deliver_tx, out) = unbounded::<Vec<u32>>();
        let dropped = Arc::new(AtomicU32::new(0));
        let dropped_w = Arc::clone(&dropped);
        let h = spawn_link(
            link_rx,
            deliver_tx,
            LinkConfig {
                policy,
                delay,
                seed,
                dest_crashed: crashed,
            },
            |b, _reason, _held| b,
            move |b: Vec<u32>| {
                dropped_w.fetch_add(b.len() as u32, Ordering::Relaxed);
            },
        );
        (tx, out, dropped, h)
    }

    #[test]
    fn delivers_in_deadline_order_not_send_order() {
        let crashed = Arc::new(AtomicBool::new(false));
        let (tx, out, _dropped, h) = id_link(
            FlushPolicy::immediate(),
            DelayModel::Fixed(1_000), // 1ms
            7,
            crashed,
        );
        for i in 0..10 {
            tx.send(i).unwrap();
            // Space sends out so each crosses alone (immediate policy).
            std::thread::sleep(Duration::from_micros(200));
        }
        drop(tx);
        h.join().unwrap();
        let got: Vec<u32> = out.iter().flatten().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reorders_with_spiky_delays() {
        let crashed = Arc::new(AtomicBool::new(false));
        let (tx, out, _dropped, h) = id_link(
            FlushPolicy::immediate(),
            DelayModel::Spiky {
                lo: 1,
                hi: 100,
                spike_ppm: 500_000,
                spike_lo: 5_000,
                spike_hi: 20_000,
            },
            3,
            crashed,
        );
        for i in 0..200 {
            tx.send(i).unwrap();
            // Stagger sends slightly so reordering is about delays.
            std::thread::sleep(Duration::from_micros(50));
        }
        drop(tx);
        h.join().unwrap();
        let got: Vec<u32> = out.iter().flatten().collect();
        assert_eq!(got.len(), 200);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
        assert_ne!(got, sorted, "spiky delays should reorder something");
    }

    #[test]
    fn drops_to_crashed_destination() {
        let crashed = Arc::new(AtomicBool::new(true));
        let (tx, out, dropped, h) =
            id_link(FlushPolicy::immediate(), DelayModel::Fixed(100), 1, crashed);
        tx.send(1).unwrap();
        drop(tx);
        h.join().unwrap();
        assert!(out.iter().next().is_none());
        assert_eq!(dropped.load(Ordering::Relaxed), 1, "drop was accounted");
    }

    #[test]
    fn burst_coalesces_into_one_batch() {
        let crashed = Arc::new(AtomicBool::new(false));
        let (tx, out, _dropped, h) = id_link(
            FlushPolicy::fixed(64, Duration::from_millis(5)),
            DelayModel::Fixed(2_000),
            5,
            crashed,
        );
        for i in 0..40 {
            tx.send(i).unwrap();
        }
        drop(tx);
        h.join().unwrap();
        let batches: Vec<Vec<u32>> = out.iter().collect();
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 40, "nothing lost");
        assert!(
            batches.len() <= 3,
            "a burst should coalesce into few batches, got {}",
            batches.len()
        );
        // Order within each batch is the send order.
        for b in &batches {
            assert!(b.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn max_batch_caps_batch_size() {
        let crashed = Arc::new(AtomicBool::new(false));
        let (tx, out, _dropped, h) = id_link(
            FlushPolicy::fixed(8, Duration::from_millis(5)),
            DelayModel::Fixed(1_000),
            6,
            crashed,
        );
        for i in 0..32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        h.join().unwrap();
        let batches: Vec<Vec<u32>> = out.iter().collect();
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 32);
        assert!(batches.iter().all(|b| b.len() <= 8));
    }

    #[test]
    fn batch_delivered_atomically_or_not_at_all_on_crash_during_drain() {
        // Regression for the shutdown-drain path: the destination crashes
        // while a flushed batch sits in the delay heap *after* the channel
        // has disconnected. The drain must re-check the crash flag at
        // delivery time and drop the whole batch.
        let crashed = Arc::new(AtomicBool::new(false));
        let (tx, out, dropped, h) = id_link(
            FlushPolicy::fixed(64, Duration::ZERO),
            // Long enough in flight that the crash flag below is set well
            // before delivery even on a loaded single-core runner.
            DelayModel::Fixed(400_000), // 400ms
            2,
            Arc::clone(&crashed),
        );
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx); // shutdown: the link is now draining
        std::thread::sleep(Duration::from_millis(10));
        crashed.store(true, Ordering::Relaxed); // crash mid-drain
        h.join().unwrap();
        assert!(
            out.iter().next().is_none(),
            "no partial delivery: the batch crashed with its destination"
        );
        assert_eq!(
            dropped.load(Ordering::Relaxed),
            10,
            "all ten messages were accounted as dropped, none delivered"
        );
    }

    /// The trickle regression the adaptive hold exists for: messages
    /// arriving far apart must neither strand (waiting for company that
    /// never comes) nor busy-spin the thread. Exercises both a zero-hold
    /// static policy and an adaptive one on the same workload.
    #[test]
    fn trickle_workload_strands_nothing_under_static_zero_and_adaptive_holds() {
        for policy in [
            FlushPolicy::fixed(64, Duration::ZERO),
            FlushPolicy::adaptive(64, Duration::ZERO, Duration::from_micros(500)),
        ] {
            let crashed = Arc::new(AtomicBool::new(false));
            let (tx, out, dropped, h) = id_link(policy, DelayModel::Fixed(100), 13, crashed);
            let t0 = Instant::now();
            for i in 0..20 {
                tx.send(i).unwrap();
                std::thread::sleep(Duration::from_millis(2)); // idle link
            }
            drop(tx);
            h.join().unwrap();
            let got: Vec<u32> = out.iter().flatten().collect();
            assert_eq!(got.len(), 20, "no stranded messages under {policy:?}");
            assert_eq!(dropped.load(Ordering::Relaxed), 0);
            // Lone messages on an idle link flush immediately under both
            // policies: the whole trickle (20 × 2ms pacing + 100µs delays)
            // completes promptly instead of waiting out hold ceilings.
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "idle-link flushes were not delayed: {:?}",
                t0.elapsed()
            );
        }
    }

    /// A bursty sender under the adaptive policy coalesces harder than
    /// the trickle case: batches actually fill.
    #[test]
    fn adaptive_link_coalesces_bursts() {
        let crashed = Arc::new(AtomicBool::new(false));
        let (tx, out, _dropped, h) = id_link(
            FlushPolicy {
                max_batch: 16,
                hold: HoldPolicy::Adaptive {
                    floor: Duration::ZERO,
                    ceil: Duration::from_millis(2),
                },
            },
            DelayModel::Fixed(100),
            17,
            crashed,
        );
        for i in 0..64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        h.join().unwrap();
        let batches: Vec<Vec<u32>> = out.iter().collect();
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 64);
        assert!(
            batches.len() <= 8,
            "a burst coalesces under the adaptive hold, got {} batches",
            batches.len()
        );
    }
}
