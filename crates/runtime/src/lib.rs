//! Live threaded message-passing runtime for register automatons.
//!
//! Where `twobit-simnet` executes an [`Automaton`](twobit_proto::Automaton)
//! under *virtual* time for deterministic measurement, this crate runs the
//! same automaton code on real OS threads connected by `crossbeam` channels:
//! one thread per process, one *chaos link* thread per ordered process pair.
//! Links inject sampled delays (reusing
//! [`DelayModel`](twobit_simnet::DelayModel), interpreted in microseconds)
//! and therefore real reordering on the non-FIFO channels; processes can be
//! crashed at any time. Client handles offer a blocking `read`/`write` API —
//! the register abstraction the paper builds.
//!
//! Operation histories are recorded with client-side monotonic timestamps
//! and can be fed to `twobit-lincheck` for post-hoc atomicity checking, so
//! the live runtime doubles as an end-to-end stress test (experiment E10).
//!
//! # Examples
//!
//! ```
//! use twobit_core::TwoBitProcess;
//! use twobit_proto::{ProcessId, SystemConfig};
//! use twobit_runtime::ClusterBuilder;
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let writer = ProcessId::new(0);
//! let cluster = ClusterBuilder::new(cfg)
//!     .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))?;
//!
//! let mut w = cluster.client(writer);
//! let mut r = cluster.client(ProcessId::new(1));
//! w.write(42)?;
//! assert_eq!(r.read()?, 42);
//!
//! let (history, _stats) = cluster.shutdown();
//! twobit_lincheck::check_swmr(&history)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod cluster;
mod link;
pub mod recorder;
pub mod recovery;

pub use batcher::{BuildError, ConfigError, Flush, FlushPolicy, HoldPolicy, LinkBatcher};
pub use client::{ClientError, OpHandle, RegisterClient};
pub use cluster::{
    process_loop, Cluster, ClusterBuilder, Incoming, OutboundLinks, OutboundSink, RegisterSnapshots,
};
pub use recorder::Recorder;
pub use recovery::{recover_process, RecoveryParts};
