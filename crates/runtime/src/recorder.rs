//! Shared history recorder with client-side monotonic timestamps.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;
use twobit_proto::{
    History, OpId, OpOutcome, OpRecord, Operation, ProcessId, RecoveryRecord, RegisterId,
    ShardedHistory,
};

/// Records operation invocations/responses from many client threads,
/// tagging each operation with its target register.
///
/// Public so other live backends (the TCP transport) can record histories
/// with the same clock and projection semantics as the in-process cluster.
pub struct Recorder<V> {
    start: Instant,
    initial: V,
    inner: Mutex<Inner<V>>,
}

impl<V: std::fmt::Debug> std::fmt::Debug for Recorder<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("initial", &self.initial)
            .finish_non_exhaustive()
    }
}

struct Inner<V> {
    records: Vec<(RegisterId, OpRecord<V>)>,
    index: HashMap<OpId, usize>,
    recoveries: Vec<RecoveryRecord>,
}

impl<V: Clone> Recorder<V> {
    /// Creates a recorder whose histories start from `initial`.
    pub fn new(initial: V) -> Self {
        Recorder {
            start: Instant::now(),
            initial,
            inner: Mutex::new(Inner {
                records: Vec::new(),
                index: HashMap::new(),
                recoveries: Vec::new(),
            }),
        }
    }

    /// Nanoseconds since the recorder was created (monotonic).
    pub fn now(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the invocation of `op_id` by `proc` on `reg` at time `at`.
    pub fn invoked(
        &self,
        op_id: OpId,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<V>,
        at: u64,
    ) {
        let mut g = self.inner.lock();
        let idx = g.records.len();
        g.records.push((
            reg,
            OpRecord {
                op_id,
                proc,
                op,
                invoked_at: at,
                completed: None,
            },
        ));
        g.index.insert(op_id, idx);
    }

    /// Records the completion of `op_id` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `op_id` was never recorded as invoked.
    pub fn completed(&self, op_id: OpId, at: u64, outcome: OpOutcome<V>) {
        let mut g = self.inner.lock();
        let idx = *g.index.get(&op_id).expect("completion for unknown op");
        let rec = &mut g.records[idx].1;
        debug_assert!(rec.completed.is_none(), "op completed twice");
        rec.completed = Some((at, outcome));
    }

    /// Records a completed crash-recovery of `proc` at time `at`, with the
    /// process's post-recovery incarnation number. Recoveries are global
    /// events of the run — every snapshot (flat or sharded) carries them.
    pub fn recovered(&self, proc: ProcessId, at: u64, incarnation: u64) {
        self.inner.lock().recoveries.push(RecoveryRecord {
            proc,
            at,
            incarnation,
        });
    }

    /// All records flattened into one history (register tags dropped) —
    /// the single-register view, also useful for whole-run accounting.
    pub fn snapshot(&self) -> History<V> {
        let g = self.inner.lock();
        let mut h = History::new(self.initial.clone());
        h.records.extend(g.records.iter().map(|(_, r)| r.clone()));
        h.recoveries = g.recoveries.clone();
        h
    }

    /// Per-register projection over `registers` (empty shards included).
    pub fn snapshot_sharded(&self, registers: &[RegisterId]) -> ShardedHistory<V> {
        let g = self.inner.lock();
        ShardedHistory::from_tagged(
            self.initial.clone(),
            registers.iter().copied(),
            g.records.iter().cloned(),
        )
        .with_recoveries(&g.recoveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let r = Recorder::new(0u64);
        let t0 = r.now();
        r.invoked(
            OpId::new(0),
            ProcessId::new(1),
            RegisterId::ZERO,
            Operation::Write(5),
            t0,
        );
        let h = r.snapshot();
        assert_eq!(h.records.len(), 1);
        assert!(!h.records[0].is_complete());
        r.completed(OpId::new(0), t0 + 10, OpOutcome::Written);
        let h = r.snapshot();
        assert_eq!(h.records[0].completed, Some((t0 + 10, OpOutcome::Written)));
    }

    #[test]
    fn sharded_snapshot_projects_by_register() {
        let r = Recorder::new(0u64);
        let regs = [RegisterId::new(0), RegisterId::new(1)];
        let t = r.now();
        r.invoked(
            OpId::new(0),
            ProcessId::new(0),
            regs[1],
            Operation::Write(7),
            t,
        );
        r.completed(OpId::new(0), t + 1, OpOutcome::Written);
        let sh = r.snapshot_sharded(&regs);
        assert_eq!(sh.len(), 2);
        assert_eq!(sh.shard(regs[0]).unwrap().len(), 0);
        assert_eq!(sh.shard(regs[1]).unwrap().len(), 1);
    }

    #[test]
    fn clock_is_monotone() {
        let r = Recorder::new(0u64);
        let a = r.now();
        let b = r.now();
        assert!(b >= a);
    }
}
