//! Shared history recorder with client-side monotonic timestamps.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;
use twobit_proto::{History, OpId, OpOutcome, OpRecord, Operation, ProcessId};

/// Records operation invocations/responses from many client threads.
pub(crate) struct Recorder<V> {
    start: Instant,
    inner: Mutex<Inner<V>>,
}

struct Inner<V> {
    history: History<V>,
    index: HashMap<OpId, usize>,
}

impl<V: Clone> Recorder<V> {
    pub(crate) fn new(initial: V) -> Self {
        Recorder {
            start: Instant::now(),
            inner: Mutex::new(Inner {
                history: History::new(initial),
                index: HashMap::new(),
            }),
        }
    }

    /// Nanoseconds since the recorder was created (monotonic).
    pub(crate) fn now(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn invoked(&self, op_id: OpId, proc: ProcessId, op: Operation<V>, at: u64) {
        let mut g = self.inner.lock();
        let idx = g.history.records.len();
        g.history.records.push(OpRecord {
            op_id,
            proc,
            op,
            invoked_at: at,
            completed: None,
        });
        g.index.insert(op_id, idx);
    }

    pub(crate) fn completed(&self, op_id: OpId, at: u64, outcome: OpOutcome<V>) {
        let mut g = self.inner.lock();
        let idx = *g.index.get(&op_id).expect("completion for unknown op");
        let rec = &mut g.history.records[idx];
        debug_assert!(rec.completed.is_none(), "op completed twice");
        rec.completed = Some((at, outcome));
    }

    pub(crate) fn snapshot(&self) -> History<V> {
        self.inner.lock().history.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let r = Recorder::new(0u64);
        let t0 = r.now();
        r.invoked(OpId::new(0), ProcessId::new(1), Operation::Write(5), t0);
        let h = r.snapshot();
        assert_eq!(h.records.len(), 1);
        assert!(!h.records[0].is_complete());
        r.completed(OpId::new(0), t0 + 10, OpOutcome::Written);
        let h = r.snapshot();
        assert_eq!(h.records[0].completed, Some((t0 + 10, OpOutcome::Written)));
    }

    #[test]
    fn clock_is_monotone() {
        let r = Recorder::new(0u64);
        let a = r.now();
        let b = r.now();
        assert!(b >= a);
    }
}
