//! Blocking client handles: the register API end users see.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use twobit_proto::{Automaton, OpId, OpOutcome, Operation, ProcessId};

use crate::cluster::Incoming;
use crate::recorder::Recorder;

/// Errors surfaced by the blocking client API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The target process is crashed or shut down.
    ProcessUnavailable,
    /// The operation did not complete within the configured timeout —
    /// with more than `t` crashes the required quorum may never form.
    Timeout,
    /// The operation completed with an outcome of the wrong kind
    /// (indicates a bug in the automaton).
    ProtocolMismatch,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::ProcessUnavailable => write!(f, "target process unavailable"),
            ClientError::Timeout => write!(f, "operation timed out"),
            ClientError::ProtocolMismatch => write!(f, "mismatched operation outcome"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking handle to the register, bound to one process.
///
/// Processes are sequential, so use **one client per process** and do not
/// issue concurrent operations through clones of the same process's inbox —
/// the automaton will panic its thread on a protocol violation, surfacing
/// as [`ClientError::ProcessUnavailable`] here.
pub struct RegisterClient<A: Automaton> {
    pub(crate) proc: ProcessId,
    pub(crate) inbox: Sender<Incoming<A>>,
    pub(crate) recorder: Arc<Recorder<A::Value>>,
    pub(crate) op_ids: Arc<AtomicU64>,
    pub(crate) timeout: Duration,
}

impl<A: Automaton> RegisterClient<A> {
    /// The process this client drives.
    pub fn process(&self) -> ProcessId {
        self.proc
    }

    fn invoke(&mut self, op: Operation<A::Value>) -> Result<OpOutcome<A::Value>, ClientError> {
        let op_id = OpId::new(self.op_ids.fetch_add(1, Ordering::Relaxed));
        let (reply_tx, reply_rx) = bounded(1);
        let invoked_at = self.recorder.now();
        self.inbox
            .send(Incoming::Invoke {
                op_id,
                op: op.clone(),
                reply: reply_tx,
            })
            .map_err(|_| ClientError::ProcessUnavailable)?;
        self.recorder.invoked(op_id, self.proc, op, invoked_at);
        match reply_rx.recv_timeout(self.timeout) {
            Ok(outcome) => {
                self.recorder
                    .completed(op_id, self.recorder.now(), outcome.clone());
                Ok(outcome)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(ClientError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(ClientError::ProcessUnavailable)
            }
        }
    }

    /// Writes `v` to the register (only valid on the writer's client for
    /// SWMR algorithms; the process thread panics otherwise).
    ///
    /// # Errors
    ///
    /// [`ClientError::ProcessUnavailable`] if the process crashed or shut
    /// down; [`ClientError::Timeout`] if no quorum answered in time.
    pub fn write(&mut self, v: A::Value) -> Result<(), ClientError> {
        match self.invoke(Operation::Write(v))? {
            OpOutcome::Written => Ok(()),
            OpOutcome::ReadValue(_) => Err(ClientError::ProtocolMismatch),
        }
    }

    /// Reads the register.
    ///
    /// # Errors
    ///
    /// Same as [`RegisterClient::write`].
    pub fn read(&mut self) -> Result<A::Value, ClientError> {
        match self.invoke(Operation::Read)? {
            OpOutcome::ReadValue(v) => Ok(v),
            OpOutcome::Written => Err(ClientError::ProtocolMismatch),
        }
    }
}
