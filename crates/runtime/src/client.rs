//! Blocking client handles: the register API end users see.
//!
//! A [`RegisterClient`] is bound to one `(process, register)` pair. The
//! blocking [`RegisterClient::write`] / [`RegisterClient::read`] calls are
//! sugar over the split halves: [`RegisterClient::issue`] sends the
//! invocation and returns an [`OpHandle`]; [`OpHandle::wait`] blocks for
//! the outcome. Splitting lets a caller pipeline operations across
//! *different* registers while each register stays sequential — the model's
//! requirement, now enforced at the API layer: a second `issue` on a busy
//! pair returns [`ClientError::OperationInFlight`] instead of the historic
//! behaviour of panicking the process thread.

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, TryRecvError};
use twobit_proto::{Automaton, OpId, OpOutcome, Operation, ProcessId, RegisterId};

use crate::cluster::{Incoming, Shared, Slot};

/// Errors surfaced by the blocking client API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The target process is crashed or shut down.
    ProcessUnavailable,
    /// The operation did not complete within the configured timeout —
    /// with more than `t` crashes the required quorum may never form.
    Timeout,
    /// The operation completed with an outcome of the wrong kind
    /// (indicates a bug in the automaton).
    ProtocolMismatch,
    /// This `(process, register)` pair already has an operation in flight;
    /// processes are sequential per register.
    OperationInFlight {
        /// The busy process.
        proc: ProcessId,
        /// The busy register.
        reg: RegisterId,
    },
    /// The cluster does not host this register.
    UnknownRegister(RegisterId),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::ProcessUnavailable => write!(f, "target process unavailable"),
            ClientError::Timeout => write!(f, "operation timed out"),
            ClientError::ProtocolMismatch => write!(f, "mismatched operation outcome"),
            ClientError::OperationInFlight { proc, reg } => {
                write!(f, "{proc} already has an operation in flight on {reg}")
            }
            ClientError::UnknownRegister(reg) => write!(f, "unknown register {reg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking handle to one register, bound to one process.
///
/// Clients are cheap to create and clone-free; make one per
/// `(process, register)` pair you drive. Concurrent operations on the same
/// pair — even through different clients — are rejected with
/// [`ClientError::OperationInFlight`].
pub struct RegisterClient<A: Automaton> {
    shared: Arc<Shared<A>>,
    proc: ProcessId,
    reg: RegisterId,
}

impl<A: Automaton> std::fmt::Debug for RegisterClient<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisterClient")
            .field("proc", &self.proc)
            .field("reg", &self.reg)
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> RegisterClient<A> {
    pub(crate) fn new(shared: Arc<Shared<A>>, proc: ProcessId, reg: RegisterId) -> Self {
        RegisterClient { shared, proc, reg }
    }

    /// The process this client drives.
    pub fn process(&self) -> ProcessId {
        self.proc
    }

    /// The register this client drives.
    pub fn register(&self) -> RegisterId {
        self.reg
    }

    /// Issues `op` without waiting for it, returning the wait half.
    ///
    /// A previously abandoned operation on this pair (handle dropped, or
    /// its `wait` timed out) is reaped here if its outcome has since
    /// arrived; if it is still running, `issue` reports
    /// [`ClientError::OperationInFlight`].
    ///
    /// # Errors
    ///
    /// [`ClientError::OperationInFlight`] if the pair is busy;
    /// [`ClientError::ProcessUnavailable`] if the process crashed or shut
    /// down.
    pub fn issue(&mut self, op: Operation<A::Value>) -> Result<OpHandle<A>, ClientError> {
        let key = (self.proc, self.reg);
        {
            let mut inflight = self.shared.inflight.lock();
            match inflight.get(&key) {
                Some(Slot::Busy) => {
                    return Err(ClientError::OperationInFlight {
                        proc: self.proc,
                        reg: self.reg,
                    })
                }
                Some(Slot::Abandoned(op_id, rx)) => match rx.try_recv() {
                    Ok(outcome) => {
                        // The abandoned op finally completed: record it so
                        // the history stays truthful, then free the slot.
                        self.shared
                            .recorder
                            .completed(*op_id, self.shared.recorder.now(), outcome);
                        inflight.remove(&key);
                    }
                    Err(TryRecvError::Empty) => {
                        return Err(ClientError::OperationInFlight {
                            proc: self.proc,
                            reg: self.reg,
                        })
                    }
                    Err(TryRecvError::Disconnected) => {
                        // Process died mid-op; the op can never complete.
                        inflight.remove(&key);
                    }
                },
                None => {}
            }
            inflight.insert(key, Slot::Busy);
        }

        let op_id = OpId::new(self.shared.op_ids.fetch_add(1, Ordering::Relaxed));
        let (reply_tx, reply_rx) = bounded(1);
        let invoked_at = self.shared.recorder.now();
        if self.shared.inbox_txs[self.proc.index()]
            .send(Incoming::Invoke {
                reg: self.reg,
                op_id,
                op: op.clone(),
                reply: reply_tx,
            })
            .is_err()
        {
            self.shared.inflight.lock().remove(&key);
            return Err(ClientError::ProcessUnavailable);
        }
        self.shared
            .recorder
            .invoked(op_id, self.proc, self.reg, op, invoked_at);
        Ok(OpHandle {
            shared: Arc::clone(&self.shared),
            proc: self.proc,
            reg: self.reg,
            op_id,
            rx: Some(reply_rx),
        })
    }

    /// Writes `v` to the register (only valid on the writer's client for
    /// SWMR algorithms; the process thread panics otherwise).
    ///
    /// # Errors
    ///
    /// [`ClientError::ProcessUnavailable`] if the process crashed or shut
    /// down; [`ClientError::Timeout`] if no quorum answered in time;
    /// [`ClientError::OperationInFlight`] if the pair is busy.
    pub fn write(&mut self, v: A::Value) -> Result<(), ClientError> {
        match self.issue(Operation::Write(v))?.wait()? {
            OpOutcome::Written => Ok(()),
            OpOutcome::ReadValue(_) => Err(ClientError::ProtocolMismatch),
        }
    }

    /// Reads the register.
    ///
    /// # Errors
    ///
    /// Same as [`RegisterClient::write`].
    pub fn read(&mut self) -> Result<A::Value, ClientError> {
        match self.issue(Operation::Read)?.wait()? {
            OpOutcome::ReadValue(v) => Ok(v),
            OpOutcome::Written => Err(ClientError::ProtocolMismatch),
        }
    }
}

/// The wait half of an issued operation.
///
/// Obtained from [`RegisterClient::issue`]. Dropping the handle without
/// waiting *abandons* the operation: it keeps running in the cluster, its
/// `(process, register)` pair stays busy, and the next
/// [`RegisterClient::issue`] on the pair reaps the outcome once it lands.
pub struct OpHandle<A: Automaton> {
    shared: Arc<Shared<A>>,
    proc: ProcessId,
    reg: RegisterId,
    op_id: OpId,
    rx: Option<Receiver<OpOutcome<A::Value>>>,
}

impl<A: Automaton> fmt::Debug for OpHandle<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpHandle")
            .field("proc", &self.proc)
            .field("reg", &self.reg)
            .field("op_id", &self.op_id)
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> OpHandle<A> {
    /// The operation id assigned at issue time.
    pub fn op_id(&self) -> OpId {
        self.op_id
    }

    /// The issuing process.
    pub fn process(&self) -> ProcessId {
        self.proc
    }

    /// The target register.
    pub fn register(&self) -> RegisterId {
        self.reg
    }

    /// Blocks until the operation completes (up to the cluster's configured
    /// operation timeout).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if no outcome arrived in time (the
    /// operation stays in flight and is reaped by the pair's next `issue`);
    /// [`ClientError::ProcessUnavailable`] if the process died.
    pub fn wait(mut self) -> Result<OpOutcome<A::Value>, ClientError> {
        let rx = self.rx.take().expect("wait consumes the receiver once");
        match rx.recv_timeout(self.shared.op_timeout) {
            Ok(outcome) => {
                self.shared.recorder.completed(
                    self.op_id,
                    self.shared.recorder.now(),
                    outcome.clone(),
                );
                self.shared.inflight.lock().remove(&(self.proc, self.reg));
                Ok(outcome)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                // Leave the pair busy; park the receiver for reaping.
                self.shared
                    .inflight
                    .lock()
                    .insert((self.proc, self.reg), Slot::Abandoned(self.op_id, rx));
                Err(ClientError::Timeout)
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                self.shared.inflight.lock().remove(&(self.proc, self.reg));
                Err(ClientError::ProcessUnavailable)
            }
        }
    }
}

impl<A: Automaton> Drop for OpHandle<A> {
    /// Parks the reply receiver so a later `issue` on the pair can reap the
    /// outcome (see the type docs).
    fn drop(&mut self) {
        if let Some(rx) = self.rx.take() {
            self.shared
                .inflight
                .lock()
                .insert((self.proc, self.reg), Slot::Abandoned(self.op_id, rx));
        }
    }
}
