//! The one batching state machine every real-time link shares.
//!
//! Before this module existed the pending/hold/gulp loop was written twice
//! — once in the chaos links (`crates/runtime/src/link.rs`) and once in the
//! TCP transport's socket writers — and the two copies had started to
//! drift. [`LinkBatcher`] is the single implementation both now drive:
//! items accumulate in a pending batch, a whole channel backlog is gulped
//! in one pass (coalescing without holding), and the batch flushes as one
//! frame when **either** bound of its [`FlushPolicy`] is hit — `max_batch`
//! items pending, or the oldest item having waited out the hold — or
//! unconditionally on shutdown so nothing is stranded. Each flush reports
//! *why* it happened ([`FlushReason`]) and how long the batch was actually
//! held, which the backends feed into
//! [`NetStats::record_flush`](twobit_proto::NetStats::record_flush).
//!
//! The hold itself is a policy: [`HoldPolicy::Static`] is the classic
//! fixed window, [`HoldPolicy::Adaptive`] is the Nagle/delayed-ack-style
//! auto-tuner the ROADMAP asked for. Adaptive mode EWMA-tracks the link's
//! inter-arrival gap and resolves the hold per batch between a configured
//! floor and ceiling: a lone message on an idle link (gap at or beyond the
//! ceiling — waiting for company is pointless) flushes after just the
//! floor, while a bursty link (small gaps — company is imminent) holds up
//! to the ceiling and in practice flushes by *size*, i.e. converges toward
//! maximum coalescing. A fixed hold cannot do both, which is exactly the
//! delayed-ack-vs-Nagle tension RFC 896-era batching ran into on
//! asymmetric traffic.
//!
//! The batcher never blocks and never sleeps — the owning loop does the
//! waiting, using [`LinkBatcher::flush_deadline`] as its timeout. With
//! nothing pending the deadline is `None`, so a well-behaved owner parks
//! in a blocking `recv` instead of spinning; the unit tests pin this down.

use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, TryRecvError};
use twobit_proto::{FlushReason, ProcessId};

/// How long a link holds a batch open for company.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HoldPolicy {
    /// Hold the oldest pending item at most this long, always.
    Static(Duration),
    /// Auto-tune the hold between `floor` and `ceil` from the link's
    /// observed (EWMA) inter-arrival gap: an idle link flushes after
    /// `floor` (immediately, with the default zero floor), a busy link
    /// holds toward `ceil` and lets the size bound do the flushing.
    Adaptive {
        /// Minimum hold, applied when the link looks idle. `ZERO` means a
        /// lone message flushes immediately.
        floor: Duration,
        /// Maximum hold, approached as the link gets bursty. Also the
        /// idleness threshold: an EWMA gap at or beyond `ceil` means the
        /// next message is not worth waiting for.
        ceil: Duration,
    },
}

/// When a link flushes its pending batch into one frame.
///
/// A batch flushes as soon as **either** bound is hit: it has `max_batch`
/// items, or its oldest item has waited out the [`HoldPolicy`]'s window.
/// Items already queued on the channel are drained into the batch in one
/// gulp before either bound is checked, so a burst coalesces without
/// paying the hold time; the hold only bounds how long a lone early
/// message waits for company.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush when this many items are pending (≥ 1 — validated by the
    /// builders via [`FlushPolicy::validate`]).
    pub max_batch: usize,
    /// Flush when the oldest pending item has waited out this hold.
    pub hold: HoldPolicy,
}

impl FlushPolicy {
    /// No coalescing: every item crosses the link alone, immediately.
    pub fn immediate() -> Self {
        FlushPolicy {
            max_batch: 1,
            hold: HoldPolicy::Static(Duration::ZERO),
        }
    }

    /// A fixed hold window (the pre-adaptive behaviour).
    pub fn fixed(max_batch: usize, max_hold: Duration) -> Self {
        FlushPolicy {
            max_batch,
            hold: HoldPolicy::Static(max_hold),
        }
    }

    /// An adaptive hold auto-tuned between `floor` and `ceil` (see
    /// [`HoldPolicy::Adaptive`]).
    pub fn adaptive(max_batch: usize, floor: Duration, ceil: Duration) -> Self {
        FlushPolicy {
            max_batch,
            hold: HoldPolicy::Adaptive { floor, ceil },
        }
    }

    /// Checks the policy is satisfiable — called by the cluster builders
    /// so a bad policy is a typed error at build time instead of a panic
    /// inside a spawned link thread (which would silently strand every
    /// message on that pair).
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroMaxBatch`] when `max_batch` is 0 (such a batch
    /// can never fill, so nothing would ever flush);
    /// [`ConfigError::HoldFloorAboveCeil`] when an adaptive hold's floor
    /// exceeds its ceiling.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.validate_for(None)
    }

    /// [`FlushPolicy::validate`] with the ordered link the policy applies
    /// to, for per-link override errors that name the pair.
    pub fn validate_for(&self, link: Option<(ProcessId, ProcessId)>) -> Result<(), ConfigError> {
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch { link });
        }
        if let HoldPolicy::Adaptive { floor, ceil } = self.hold {
            if floor > ceil {
                return Err(ConfigError::HoldFloorAboveCeil { floor, ceil, link });
            }
        }
        Ok(())
    }
}

impl Default for FlushPolicy {
    /// Coalesce up to 64 items, holding the batch at most 20µs — well under
    /// the default 50–500µs link delays it amortizes against.
    fn default() -> Self {
        FlushPolicy::fixed(64, Duration::from_micros(20))
    }
}

/// A flush-policy (or other configuration) rejected at build time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `FlushPolicy::max_batch` was 0: the size bound can never be hit,
    /// so the link would strand every message. `link` names the ordered
    /// pair when the policy was a per-link override.
    ZeroMaxBatch {
        /// The ordered pair the offending override applied to (`None` for
        /// the cluster-wide default policy).
        link: Option<(ProcessId, ProcessId)>,
    },
    /// An adaptive hold with `floor > ceil` has no valid resolution.
    HoldFloorAboveCeil {
        /// The configured minimum hold.
        floor: Duration,
        /// The configured maximum hold, smaller than the floor.
        ceil: Duration,
        /// The ordered pair the offending override applied to (`None` for
        /// the cluster-wide default policy).
        link: Option<(ProcessId, ProcessId)>,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let link = |l: &Option<(ProcessId, ProcessId)>| match l {
            Some((a, b)) => format!(" on link {a}→{b}"),
            None => String::new(),
        };
        match self {
            ConfigError::ZeroMaxBatch { link: l } => {
                write!(
                    f,
                    "flush policy{} has max_batch = 0 (can never flush; use ≥ 1)",
                    link(l)
                )
            }
            ConfigError::HoldFloorAboveCeil {
                floor,
                ceil,
                link: l,
            } => write!(
                f,
                "adaptive hold{} has floor {floor:?} above ceil {ceil:?}",
                link(l)
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A cluster failed to build: bad configuration or (for socket-backed
/// clusters) an I/O error while wiring the mesh.
#[derive(Debug)]
pub enum BuildError {
    /// Configuration rejected before any thread or socket was created.
    Config(ConfigError),
    /// A socket operation failed during setup.
    Io(std::io::Error),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "invalid cluster configuration: {e}"),
            BuildError::Io(e) => write!(f, "cluster setup I/O error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Config(e) => Some(e),
            BuildError::Io(e) => Some(e),
        }
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

impl From<std::io::Error> for BuildError {
    fn from(e: std::io::Error) -> Self {
        BuildError::Io(e)
    }
}

/// One flushed batch, with the decision that released it.
#[derive(Debug)]
pub struct Flush<M> {
    /// The coalesced items, in arrival order.
    pub batch: Vec<M>,
    /// Which bound released the batch.
    pub reason: FlushReason,
    /// How long the oldest item actually waited.
    pub held: Duration,
}

/// EWMA smoothing shift: new = old + (sample − old) / 2^K. K = 2 keeps a
/// quarter of each new sample — reactive enough that one long idle gap
/// immediately pushes an adaptive link back to flush-fast mode.
const EWMA_SHIFT: u32 = 2;

/// The shared batching state machine (see the module docs).
///
/// Owned by exactly one loop (a chaos-link thread or a socket-writer
/// thread); the owner alternates [`LinkBatcher::gulp`] /
/// [`LinkBatcher::take_due`] with blocking on the channel until
/// [`LinkBatcher::flush_deadline`].
pub struct LinkBatcher<M> {
    policy: FlushPolicy,
    pending: Vec<M>,
    /// When the oldest pending item arrived (`None` ⇔ `pending` empty).
    since: Option<Instant>,
    /// `since` + the hold resolved for the current batch; re-resolved on
    /// every arrival so adaptive mode reacts to fresh gap evidence.
    deadline: Option<Instant>,
    /// EWMA of inter-arrival gaps in nanoseconds (`None` until the second
    /// arrival ever — one message is no evidence of traffic, so adaptive
    /// mode starts in flush-fast mode).
    ewma_gap_ns: Option<u64>,
    last_arrival: Option<Instant>,
}

impl<M> std::fmt::Debug for LinkBatcher<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkBatcher")
            .field("policy", &self.policy)
            .field("pending", &self.pending.len())
            .field("since", &self.since)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl<M> LinkBatcher<M> {
    /// Creates an empty batcher. The policy must be valid
    /// ([`FlushPolicy::validate`]) — the builders guarantee this before
    /// any link thread exists.
    pub fn new(policy: FlushPolicy) -> Self {
        debug_assert!(policy.validate().is_ok(), "builders validate policies");
        LinkBatcher {
            policy,
            pending: Vec::new(),
            since: None,
            deadline: None,
            ewma_gap_ns: None,
            last_arrival: None,
        }
    }

    /// Adds one item, updating the adaptive gap estimate and the current
    /// batch's flush deadline.
    pub fn push(&mut self, item: M, now: Instant) {
        if let Some(last) = self.last_arrival {
            let gap = now
                .saturating_duration_since(last)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            self.ewma_gap_ns = Some(match self.ewma_gap_ns {
                None => gap,
                Some(ewma) => ewma + (gap >> EWMA_SHIFT) - (ewma >> EWMA_SHIFT),
            });
        }
        self.last_arrival = Some(now);
        if self.pending.is_empty() {
            self.since = Some(now);
        }
        self.pending.push(item);
        // Re-resolve with the freshest gap evidence; static holds resolve
        // to the same value every time.
        self.deadline = self.since.map(|s| s + self.resolve_hold());
    }

    /// Pulls whatever is already queued on `rx` (up to the batch bound) —
    /// coalescing without holding. Returns `true` once the channel has
    /// disconnected.
    pub fn gulp(&mut self, rx: &Receiver<M>) -> bool {
        while self.pending.len() < self.policy.max_batch {
            match rx.try_recv() {
                Ok(item) => self.push(item, Instant::now()),
                Err(TryRecvError::Empty) => return false,
                Err(TryRecvError::Disconnected) => return true,
            }
        }
        false
    }

    /// Takes the pending batch if a flush is due: the size bound is hit,
    /// the hold has expired, or `shutdown` forces the remainder out.
    pub fn take_due(&mut self, now: Instant, shutdown: bool) -> Option<Flush<M>> {
        if self.pending.is_empty() {
            return None;
        }
        let reason = if self.pending.len() >= self.policy.max_batch {
            FlushReason::Size
        } else if self.deadline.is_some_and(|d| now >= d) {
            FlushReason::Hold
        } else if shutdown {
            FlushReason::Shutdown
        } else {
            return None;
        };
        let held = self
            .since
            .map(|s| now.saturating_duration_since(s))
            .unwrap_or_default();
        self.since = None;
        self.deadline = None;
        Some(Flush {
            batch: std::mem::take(&mut self.pending),
            reason,
            held,
        })
    }

    /// When the current batch's hold expires — the owner's wait bound.
    /// `None` with nothing pending, so an idle owner blocks on its channel
    /// instead of busy-spinning.
    pub fn flush_deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The time remaining until [`LinkBatcher::flush_deadline`], saturated
    /// at zero — the timer form an event loop wants: a reactor registers
    /// this as its poll timeout instead of parking a dedicated thread per
    /// link (`None` still means "nothing pending, no timer needed").
    pub fn time_to_deadline(&self, now: Instant) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(now))
    }

    /// Whether any items are pending.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of pending items.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The hold the policy currently resolves to — static policies always
    /// answer the same, adaptive ones answer from the latest gap estimate.
    pub fn current_hold(&self) -> Duration {
        self.resolve_hold()
    }

    /// Takes whatever is pending without a flush decision — the failed-link
    /// path, where the owner accounts the items as abandoned rather than
    /// framing them.
    pub fn drain_remaining(&mut self) -> Vec<M> {
        self.since = None;
        self.deadline = None;
        std::mem::take(&mut self.pending)
    }

    fn resolve_hold(&self) -> Duration {
        match self.policy.hold {
            HoldPolicy::Static(d) => d,
            HoldPolicy::Adaptive { floor, ceil } => match self.ewma_gap_ns {
                // No gap evidence yet, or the link is idle (the expected
                // next arrival is past the ceiling): waiting is pointless.
                None => floor,
                Some(gap_ns) => {
                    let gap = Duration::from_nanos(gap_ns);
                    if gap >= ceil {
                        floor
                    } else {
                        // Busy link: wait long enough for a full batch's
                        // worth of arrivals at the observed rate, so the
                        // size bound does the flushing (max coalescing);
                        // the ceiling bounds the latency this can cost.
                        let fill = self.policy.max_batch.min(u32::MAX as usize) as u32;
                        gap.saturating_mul(fill).clamp(floor, ceil)
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn at(base: Instant, micros: u64) -> Instant {
        base + Duration::from_micros(micros)
    }

    #[test]
    fn size_bound_flushes_with_size_reason() {
        let mut b = LinkBatcher::new(FlushPolicy::fixed(3, Duration::from_millis(5)));
        let t0 = Instant::now();
        for i in 0..3 {
            b.push(i, at(t0, i));
        }
        let f = b.take_due(at(t0, 3), false).expect("size bound hit");
        assert_eq!(f.reason, FlushReason::Size);
        assert_eq!(f.batch, vec![0, 1, 2]);
        assert!(!b.has_pending());
    }

    #[test]
    fn hold_bound_flushes_with_hold_reason_and_observed_hold() {
        let mut b = LinkBatcher::new(FlushPolicy::fixed(64, Duration::from_micros(100)));
        let t0 = Instant::now();
        b.push(7u32, t0);
        assert!(b.take_due(at(t0, 50), false).is_none(), "hold not expired");
        let f = b.take_due(at(t0, 150), false).expect("hold expired");
        assert_eq!(f.reason, FlushReason::Hold);
        assert_eq!(f.held, Duration::from_micros(150), "observed, not nominal");
    }

    #[test]
    fn shutdown_flushes_the_remainder_unconditionally() {
        let mut b = LinkBatcher::new(FlushPolicy::fixed(64, Duration::from_secs(10)));
        let t0 = Instant::now();
        b.push(1u32, t0);
        assert!(b.take_due(at(t0, 1), false).is_none());
        let f = b.take_due(at(t0, 1), true).expect("shutdown flushes");
        assert_eq!(f.reason, FlushReason::Shutdown);
        assert_eq!(f.batch, vec![1]);
    }

    #[test]
    fn idle_batcher_reports_no_deadline_so_owners_block_instead_of_spinning() {
        // The no-busy-spin contract: with nothing pending there is nothing
        // to wait for, so the owning loop must land in a blocking recv.
        // All three owner loops (chaos link, socket writer) key their wait
        // on flush_deadline() — None means "block indefinitely".
        let b = LinkBatcher::<u32>::new(FlushPolicy::fixed(64, Duration::ZERO));
        assert!(b.flush_deadline().is_none());
        let mut b2 = LinkBatcher::<u32>::new(FlushPolicy::adaptive(
            64,
            Duration::ZERO,
            Duration::from_micros(500),
        ));
        let t0 = Instant::now();
        b2.push(1, t0);
        let _ = b2.take_due(at(t0, 1), false).expect("floor hold expired");
        assert!(
            b2.flush_deadline().is_none(),
            "a drained batcher leaves its owner parked, even mid-conversation"
        );
    }

    #[test]
    fn time_to_deadline_is_the_timer_form_of_the_flush_deadline() {
        let mut b = LinkBatcher::new(FlushPolicy::fixed(64, Duration::from_micros(100)));
        let t0 = Instant::now();
        assert_eq!(b.time_to_deadline(t0), None, "idle: no timer to arm");
        b.push(1u32, t0);
        assert_eq!(
            b.time_to_deadline(t0),
            Some(Duration::from_micros(100)),
            "the full hold remains at arrival time"
        );
        assert_eq!(
            b.time_to_deadline(at(t0, 150)),
            Some(Duration::ZERO),
            "past the deadline the timer saturates at zero (poll returns now)"
        );
    }

    #[test]
    fn adaptive_lone_message_on_idle_link_flushes_immediately() {
        let mut b = LinkBatcher::new(FlushPolicy::adaptive(
            64,
            Duration::ZERO,
            Duration::from_micros(500),
        ));
        let t0 = Instant::now();
        // First message ever: no gap evidence → floor (zero) hold.
        b.push(1u32, t0);
        assert_eq!(b.current_hold(), Duration::ZERO);
        let f = b.take_due(t0, false).expect("zero hold is already due");
        assert_eq!(f.reason, FlushReason::Hold);

        // Warm the link into burst mode, then let it idle: the huge gap
        // pushes the EWMA past the ceiling and the next lone message
        // flushes immediately again.
        let mut t = at(t0, 1_000);
        for i in 0..16u32 {
            b.push(i, t);
            t += Duration::from_micros(10);
        }
        let _ = b.take_due(t, true);
        assert!(b.current_hold() > Duration::ZERO, "bursty link holds");
        let idle_end = t + Duration::from_secs(1);
        b.push(99, idle_end);
        assert_eq!(
            b.current_hold(),
            Duration::ZERO,
            "one second of silence resets the link to flush-fast"
        );
    }

    #[test]
    fn adaptive_bursty_link_converges_toward_max_coalescing() {
        let floor = Duration::ZERO;
        let ceil = Duration::from_micros(500);
        let mut b = LinkBatcher::new(FlushPolicy::adaptive(8, floor, ceil));
        let t0 = Instant::now();
        let mut t = t0;
        let mut sizes = Vec::new();
        let mut batch_count = 0;
        // A steady 10µs-gap stream: the resolved hold (gap × max_batch =
        // 80µs) outlives the time a batch needs to fill, so after warmup
        // every flush is size-bound (maximum coalescing), none hold-bound.
        for i in 0..64u32 {
            b.push(i, t);
            t += Duration::from_micros(10);
            if let Some(f) = b.take_due(t, false) {
                sizes.push(f.batch.len());
                if batch_count > 0 {
                    assert_eq!(f.reason, FlushReason::Size, "converged to size flushes");
                }
                batch_count += 1;
            }
        }
        assert!(
            sizes.iter().skip(1).all(|&s| s == 8),
            "steady stream fills every batch: {sizes:?}"
        );
        // And the resolved hold sits inside the configured band.
        assert!(b.current_hold() > floor && b.current_hold() <= ceil);
    }

    #[test]
    fn gulp_coalesces_a_backlog_and_reports_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5u32 {
            tx.send(i).unwrap();
        }
        let mut b = LinkBatcher::new(FlushPolicy::fixed(3, Duration::from_millis(1)));
        assert!(!b.gulp(&rx), "channel still open");
        assert_eq!(b.pending_len(), 3, "gulp respects the size bound");
        let f = b.take_due(Instant::now(), false).unwrap();
        assert_eq!(f.reason, FlushReason::Size);
        drop(tx);
        assert!(
            b.gulp(&rx),
            "a closed channel drains its backlog, then reports disconnect"
        );
        assert_eq!(b.pending_len(), 2, "the backlog survived the disconnect");
    }

    #[test]
    fn drain_remaining_empties_without_a_flush_decision() {
        let mut b = LinkBatcher::new(FlushPolicy::fixed(64, Duration::from_secs(1)));
        let t0 = Instant::now();
        b.push(1u32, t0);
        b.push(2, t0);
        assert_eq!(b.drain_remaining(), vec![1, 2]);
        assert!(!b.has_pending());
        assert!(b.flush_deadline().is_none());
    }

    #[test]
    fn validation_catches_unsatisfiable_policies() {
        assert_eq!(
            FlushPolicy::fixed(0, Duration::ZERO).validate(),
            Err(ConfigError::ZeroMaxBatch { link: None })
        );
        let bad = FlushPolicy::adaptive(4, Duration::from_micros(10), Duration::from_micros(5));
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::HoldFloorAboveCeil { .. })
        ));
        let link = Some((ProcessId::new(0), ProcessId::new(2)));
        assert_eq!(
            FlushPolicy::fixed(0, Duration::ZERO).validate_for(link),
            Err(ConfigError::ZeroMaxBatch { link })
        );
        assert!(FlushPolicy::default().validate().is_ok());
        assert!(FlushPolicy::immediate().validate().is_ok());
        let msg = ConfigError::ZeroMaxBatch { link }.to_string();
        assert!(msg.contains("p0"), "error names the link: {msg}");
    }
}
