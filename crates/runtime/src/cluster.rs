//! Cluster assembly: process threads, chaos links, crash switches.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use twobit_proto::{
    Automaton, Effects, History, NetStats, OpId, OpOutcome, Operation, ProcessId, SystemConfig,
    WireMessage,
};
use twobit_simnet::DelayModel;

use crate::client::RegisterClient;
use crate::link::spawn_link;
use crate::recorder::Recorder;

/// Messages consumed by a process thread.
pub enum Incoming<A: Automaton> {
    /// A protocol message from a peer (already routed through its link).
    Msg {
        /// The sending process.
        from: ProcessId,
        /// The protocol message.
        msg: A::Msg,
    },
    /// An operation invocation from a client handle.
    Invoke {
        /// Operation id allocated by the client.
        op_id: OpId,
        /// The operation.
        op: Operation<A::Value>,
        /// Channel on which to deliver the outcome.
        reply: Sender<OpOutcome<A::Value>>,
    },
    /// Graceful shutdown request.
    Shutdown,
}

/// Builder for a [`Cluster`].
pub struct ClusterBuilder {
    cfg: SystemConfig,
    seed: u64,
    delay: DelayModel,
    op_timeout: Duration,
}

impl ClusterBuilder {
    /// Starts configuring a cluster of `cfg.n()` processes.
    pub fn new(cfg: SystemConfig) -> Self {
        ClusterBuilder {
            cfg,
            seed: 0,
            delay: DelayModel::Uniform { lo: 50, hi: 500 }, // 50–500µs
            op_timeout: Duration::from_secs(10),
        }
    }

    /// Seeds the per-link delay samplers.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the link delay model (ticks = microseconds).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the client-side operation timeout.
    pub fn op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Builds and starts the cluster: spawns `n` process threads and
    /// `n(n−1)` link threads.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility
    /// with transport-backed clusters.
    pub fn build<A, F>(
        self,
        initial: A::Value,
        mut make: F,
    ) -> Result<Cluster<A>, std::io::Error>
    where
        A: Automaton,
        F: FnMut(ProcessId) -> A,
    {
        let n = self.cfg.n();
        let crashed: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let recorder = Arc::new(Recorder::new(initial));
        let stats = Arc::new(Mutex::new(NetStats::new()));

        // Inboxes (one per process).
        let (inbox_txs, inbox_rxs): (Vec<_>, Vec<_>) =
            (0..n).map(|_| unbounded::<Incoming<A>>()).unzip();

        // Links: input channel per ordered pair (i → j).
        let mut link_txs: Vec<Vec<Option<Sender<A::Msg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut link_threads = Vec::new();
        #[allow(clippy::needless_range_loop)] // i indexes link_txs below
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (tx, rx) = unbounded::<A::Msg>();
                // Wrap delivery: the link forwards raw messages; a small
                // adapter channel tags them with the sender id.
                let (tagged_tx, tagged_rx) = unbounded::<A::Msg>();
                let inbox = inbox_txs[j].clone();
                let from = ProcessId::new(i);
                let stats_d = Arc::clone(&stats);
                // Adapter thread: raw → Incoming::Msg (kept separate from
                // the link so the link stays generic over M).
                let adapter = std::thread::spawn(move || {
                    while let Ok(msg) = tagged_rx.recv() {
                        stats_d.lock().record_delivery();
                        if inbox.send(Incoming::Msg { from, msg }).is_err() {
                            return;
                        }
                    }
                });
                let seed = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i * n + j) as u64);
                let link = spawn_link(rx, tagged_tx, self.delay, seed, Arc::clone(&crashed[j]));
                link_threads.push(link);
                link_threads.push(adapter);
                link_txs[i][j] = Some(tx);
            }
        }

        // Process threads.
        let mut proc_threads = Vec::new();
        for (i, inbox_rx) in inbox_rxs.into_iter().enumerate() {
            let automaton = make(ProcessId::new(i));
            assert_eq!(automaton.id().index(), i, "automaton id must match slot");
            let outs: Vec<Option<Sender<A::Msg>>> = link_txs[i].clone();
            let crashed = crashed.clone();
            let stats = Arc::clone(&stats);
            proc_threads.push(std::thread::spawn(move || {
                process_loop(automaton, inbox_rx, outs, crashed, stats);
            }));
        }

        Ok(Cluster {
            cfg: self.cfg,
            inbox_txs,
            crashed,
            recorder,
            stats,
            op_ids: Arc::new(AtomicU64::new(0)),
            op_timeout: self.op_timeout,
            proc_threads,
            link_threads,
        })
    }
}

fn process_loop<A: Automaton>(
    mut automaton: A,
    inbox: crossbeam::channel::Receiver<Incoming<A>>,
    outs: Vec<Option<Sender<A::Msg>>>,
    crashed: Vec<Arc<AtomicBool>>,
    stats: Arc<Mutex<NetStats>>,
) {
    let me = automaton.id().index();
    let mut replies: std::collections::HashMap<OpId, Sender<OpOutcome<A::Value>>> =
        std::collections::HashMap::new();
    while let Ok(incoming) = inbox.recv() {
        if crashed[me].load(Ordering::Relaxed) {
            return; // silently halt: crash semantics
        }
        let mut fx = Effects::new();
        match incoming {
            Incoming::Shutdown => return,
            Incoming::Msg { from, msg } => {
                automaton.on_message(from, msg, &mut fx);
            }
            Incoming::Invoke { op_id, op, reply } => {
                replies.insert(op_id, reply);
                automaton.on_invoke(op_id, op, &mut fx);
            }
        }
        // Apply effects: route sends through links, answer completions.
        for (to, msg) in fx.drain_sends() {
            stats.lock().record_send(msg.kind(), msg.cost());
            if crashed[to.index()].load(Ordering::Relaxed) {
                stats.lock().record_drop_to_crashed();
                continue;
            }
            if let Some(tx) = outs[to.index()].as_ref() {
                let _ = tx.send(msg);
            }
        }
        for (op_id, outcome) in fx.drain_completions() {
            if let Some(reply) = replies.remove(&op_id) {
                let _ = reply.send(outcome);
            }
        }
    }
}

/// A running cluster of register processes.
///
/// Obtain clients with [`Cluster::client`], crash processes with
/// [`Cluster::crash`], and tear down with [`Cluster::shutdown`] (which also
/// returns the recorded history for linearizability checking).
pub struct Cluster<A: Automaton> {
    cfg: SystemConfig,
    inbox_txs: Vec<Sender<Incoming<A>>>,
    crashed: Vec<Arc<AtomicBool>>,
    recorder: Arc<Recorder<A::Value>>,
    stats: Arc<Mutex<NetStats>>,
    op_ids: Arc<AtomicU64>,
    op_timeout: Duration,
    proc_threads: Vec<JoinHandle<()>>,
    link_threads: Vec<JoinHandle<()>>,
}

impl<A: Automaton> Cluster<A> {
    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// Creates a client handle bound to process `proc`.
    ///
    /// Use at most one client per process at a time (processes are
    /// sequential).
    pub fn client(&self, proc: impl Into<ProcessId>) -> RegisterClient<A> {
        let proc = proc.into();
        RegisterClient {
            proc,
            inbox: self.inbox_txs[proc.index()].clone(),
            recorder: Arc::clone(&self.recorder),
            op_ids: Arc::clone(&self.op_ids),
            timeout: self.op_timeout,
        }
    }

    /// Crashes process `proc`: it stops handling events; messages addressed
    /// to it are dropped. Irreversible.
    pub fn crash(&self, proc: impl Into<ProcessId>) {
        let proc = proc.into();
        self.crashed[proc.index()].store(true, Ordering::Relaxed);
        // Nudge the thread so it observes the flag even when idle.
        let _ = self.inbox_txs[proc.index()].send(Incoming::Shutdown);
    }

    /// Snapshot of the operation history recorded so far.
    pub fn history(&self) -> History<A::Value> {
        self.recorder.snapshot()
    }

    /// Snapshot of the network statistics.
    pub fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }

    /// Gracefully stops all threads and returns the final history and
    /// statistics.
    pub fn shutdown(mut self) -> (History<A::Value>, NetStats) {
        for tx in &self.inbox_txs {
            let _ = tx.send(Incoming::Shutdown);
        }
        for h in self.proc_threads.drain(..) {
            let _ = h.join();
        }
        // Links exit when their senders drop with the process threads.
        self.inbox_txs.clear();
        for h in self.link_threads.drain(..) {
            let _ = h.join();
        }
        (self.recorder.snapshot(), self.stats.lock().clone())
    }
}

impl<A: Automaton> Drop for Cluster<A> {
    /// Best-effort, non-blocking teardown signal (C-DTOR-BLOCK: the
    /// blocking variant is the explicit [`Cluster::shutdown`]).
    fn drop(&mut self) {
        for tx in &self.inbox_txs {
            let _ = tx.send(Incoming::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_baselines::AbdProcess;
    use twobit_core::TwoBitProcess;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    #[test]
    fn twobit_write_then_read() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(1)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(1);
        w.write(7).unwrap();
        assert_eq!(r.read().unwrap(), 7);
        let (history, stats) = cluster.shutdown();
        assert_eq!(history.records.len(), 2);
        assert!(history.records.iter().all(|r| r.is_complete()));
        assert!(stats.total_sent() > 0);
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn abd_cluster_works_too() {
        let c = cfg(5);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(2)
            .build(0u64, |id| AbdProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(4);
        for i in 1..=5u64 {
            w.write(i).unwrap();
            assert_eq!(r.read().unwrap(), i);
        }
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn crash_minority_still_live() {
        let c = cfg(5); // t = 2
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(3)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(1);
        w.write(1).unwrap();
        cluster.crash(3);
        cluster.crash(4);
        w.write(2).unwrap();
        assert_eq!(r.read().unwrap(), 2);
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn crash_majority_times_out() {
        let c = cfg(3); // t = 1, quorum 2
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(4)
            .op_timeout(Duration::from_millis(300))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        w.write(1).unwrap();
        cluster.crash(1);
        cluster.crash(2);
        // The writer alone cannot reach a quorum of 2.
        assert_eq!(w.write(2), Err(crate::ClientError::Timeout));
    }

    #[test]
    fn crashed_process_client_fails() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .op_timeout(Duration::from_millis(300))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        cluster.crash(1);
        let mut r = cluster.client(1);
        // Either the inbox is already closed or the op times out — the
        // operation must not succeed.
        assert!(r.read().is_err());
    }
}
