//! Cluster assembly: process threads, chaos links, crash switches, shards.
//!
//! Each process thread hosts a [`ShardSet`] — one automaton instance per
//! register — and every link carries [`Frame`]s of [`Envelope`]-wrapped
//! messages, so one cluster serves many independent registers (the paper's
//! protocol, once per register). Outbound sends are batched per destination
//! per handler execution, links coalesce batches under a [`FlushPolicy`],
//! and each frame crosses with one sampled delay and one shared routing
//! header — delivered atomically to a live process or dropped whole with a
//! crashed one. The cluster implements the backend-agnostic
//! [`Driver`] interface; blocking per-register handles come from
//! [`Cluster::client`] / [`Cluster::client_for`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use twobit_cache::{cache_pair, CacheDecision, CacheMode};
use twobit_proto::{
    Automaton, BufferPool, Driver, DriverError, Effects, Envelope, Frame, History, Lifecycle,
    LifecycleState, NetStats, OpId, OpOutcome, OpTicket, Operation, ProcessId, RegisterId,
    ShardSet, ShardedHistory, SystemConfig, WireMessage,
};
use twobit_simnet::DelayModel;

use crate::batcher::{BuildError, FlushPolicy};
use crate::client::{ClientError, OpHandle, RegisterClient};
use crate::link::{spawn_link, LinkConfig};
use crate::recorder::Recorder;

/// One recovery's worth of per-register snapshots, shared between the
/// coordinator, the recovering process, and every live peer (the same
/// values are installed at all of them — that is the barrier).
pub type RegisterSnapshots<V> = Arc<Vec<(RegisterId, Vec<V>)>>;

/// A donor's reply to [`Incoming::SnapshotReq`]: the confirmed snapshot
/// of every hosted register, `None` when the automaton has no recovery
/// hooks.
pub type DonorSnapshots<V> = Option<Vec<(RegisterId, Vec<V>)>>;

/// Messages consumed by a process thread.
pub enum Incoming<A: Automaton> {
    /// A frame of protocol messages from one peer (already routed through
    /// its link). Handled atomically: the crash flag is checked once for
    /// the whole frame.
    Frame {
        /// The sending process.
        from: ProcessId,
        /// The coalesced batch of enveloped protocol messages.
        frame: Frame<A::Msg>,
    },
    /// An operation invocation from a client handle.
    Invoke {
        /// The target register.
        reg: RegisterId,
        /// Operation id allocated by the client.
        op_id: OpId,
        /// The operation.
        op: Operation<A::Value>,
        /// Channel on which to deliver the outcome.
        reply: Sender<OpOutcome<A::Value>>,
    },
    /// Crash nudge: wakes an idle thread so it observes its crash flag.
    /// Carries no other meaning — a live process ignores it.
    Nudge,
    /// Recovery coordinator → live donor: report the confirmed snapshot of
    /// every hosted register (`None` if the automaton has no recovery
    /// hooks). Doubles as an inbox barrier: the reply proves every frame
    /// enqueued before this request has been handled.
    SnapshotReq {
        /// Where to deliver the per-register snapshots.
        reply: Sender<DonorSnapshots<A::Value>>,
    },
    /// Recovery coordinator → the crashed (parked) process: install the
    /// snapshot as the new local state of every register and rebuild the
    /// loop-local caches. Only handled while the process's crash flag is
    /// set; a live process treats it as a coordinator bug and ignores it.
    Install {
        /// The barrier state, one entry per hosted register.
        snapshots: RegisterSnapshots<A::Value>,
        /// Acked once the state is installed.
        reply: Sender<()>,
    },
    /// Recovery coordinator → every live peer: `rejoining` is back with
    /// the given barrier state; hard-reset per-peer protocol state to it
    /// (the automatons' `apply_rejoin` hook). Acked after the hook's
    /// effects have been applied, so a completion the barrier unblocks is
    /// answered before the coordinator proceeds.
    Rejoin {
        /// The recovered process.
        rejoining: ProcessId,
        /// The same barrier state installed at the recovered process.
        snapshots: RegisterSnapshots<A::Value>,
        /// Acked once the rejoin has been applied.
        reply: Sender<()>,
    },
    /// Graceful shutdown request.
    Shutdown,
}

impl<A: Automaton> std::fmt::Debug for Incoming<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Incoming::Frame { from, frame } => f
                .debug_struct("Frame")
                .field("from", from)
                .field("msgs", &frame.len())
                .finish(),
            Incoming::Invoke { reg, op_id, op, .. } => f
                .debug_struct("Invoke")
                .field("reg", reg)
                .field("op_id", op_id)
                .field("op", op)
                .finish_non_exhaustive(),
            Incoming::Nudge => f.write_str("Nudge"),
            Incoming::SnapshotReq { .. } => f.write_str("SnapshotReq"),
            Incoming::Install { snapshots, .. } => f
                .debug_struct("Install")
                .field("registers", &snapshots.len())
                .finish_non_exhaustive(),
            Incoming::Rejoin {
                rejoining,
                snapshots,
                ..
            } => f
                .debug_struct("Rejoin")
                .field("rejoining", rejoining)
                .field("registers", &snapshots.len())
                .finish_non_exhaustive(),
            Incoming::Shutdown => f.write_str("Shutdown"),
        }
    }
}

/// One `(process, register)` pair's client-side in-flight state. The API
/// layer enforces the model's per-register sequentiality with this table:
/// a second `issue` on a busy pair gets [`ClientError::OperationInFlight`]
/// instead of panicking the process thread.
pub(crate) enum Slot<V> {
    /// An [`OpHandle`] holds the reply receiver.
    Busy,
    /// The handle was dropped or timed out with the operation still
    /// running; the receiver is parked here so a later `issue` can reap the
    /// outcome once it lands.
    Abandoned(OpId, Receiver<OpOutcome<V>>),
}

/// The per-pair in-flight table guarded by [`Shared::inflight`].
pub(crate) type InflightMap<V> = HashMap<(ProcessId, RegisterId), Slot<V>>;

/// One process's outbound channels, one envelope per link item so the
/// links' [`FlushPolicy`] counts real messages (`None` on the self slot).
/// Public alias because [`process_loop`] — shared with the TCP transport
/// backend — takes one.
pub type OutboundLinks<M> = Vec<Option<Sender<Envelope<M>>>>;

/// Where a process loop hands its outbound envelopes, one ordered link per
/// sink. [`process_loop`] is generic over this so every live backend keeps
/// the same loop body while feeding different machinery: the in-process
/// cluster and the thread-per-link TCP transport implement it with a plain
/// crossbeam [`Sender`] (a parked link/writer thread on the other end);
/// the reactor transport implements it with a channel-plus-waker pair that
/// nudges an event loop instead of waking a dedicated thread.
pub trait OutboundSink<M> {
    /// Hands one enveloped message to the ordered link. Delivery is
    /// best-effort: a sink whose far side is gone drops the envelope (the
    /// backend accounts it as abandoned or dropped on its own path).
    fn deliver(&self, env: Envelope<M>);
}

impl<M> OutboundSink<M> for Sender<Envelope<M>> {
    fn deliver(&self, env: Envelope<M>) {
        let _ = self.send(env);
    }
}

/// The full link-channel matrix, indexed `[src][dst]`.
type LinkTxs<M> = Vec<OutboundLinks<M>>;

/// Latest polled driver outcome per `(process, register)` pair.
type CompletedMap<V> = HashMap<(ProcessId, RegisterId), (OpId, OpOutcome<V>)>;

/// State shared between the cluster, its clients, and its handles.
pub(crate) struct Shared<A: Automaton> {
    pub(crate) cfg: SystemConfig,
    pub(crate) registers: Vec<RegisterId>,
    pub(crate) inbox_txs: Vec<Sender<Incoming<A>>>,
    pub(crate) crashed: Vec<Arc<AtomicBool>>,
    /// Lifecycle records (state + incarnation) behind the hot-path
    /// `crashed` flags; the driver surface validates transitions here.
    pub(crate) life: Mutex<Vec<LifecycleState>>,
    pub(crate) recorder: Recorder<A::Value>,
    /// Shared with the process and adapter threads, which update it.
    pub(crate) stats: Arc<Mutex<NetStats>>,
    pub(crate) op_ids: AtomicU64,
    pub(crate) op_timeout: Duration,
    pub(crate) inflight: Mutex<InflightMap<A::Value>>,
}

/// Builder for a [`Cluster`].
#[derive(Debug)]
pub struct ClusterBuilder {
    cfg: SystemConfig,
    seed: u64,
    delay: DelayModel,
    op_timeout: Duration,
    registers: Vec<RegisterId>,
    flush: FlushPolicy,
    flush_overrides: HashMap<(ProcessId, ProcessId), FlushPolicy>,
    wire_codec: bool,
    cache_mode: CacheMode,
}

impl ClusterBuilder {
    /// Starts configuring a cluster of `cfg.n()` processes hosting a single
    /// register (use [`ClusterBuilder::registers`] for more).
    pub fn new(cfg: SystemConfig) -> Self {
        ClusterBuilder {
            cfg,
            seed: 0,
            delay: DelayModel::Uniform { lo: 50, hi: 500 }, // 50–500µs
            op_timeout: Duration::from_secs(10),
            registers: vec![RegisterId::ZERO],
            flush: FlushPolicy::default(),
            flush_overrides: HashMap::new(),
            wire_codec: false,
            cache_mode: CacheMode::Off,
        }
    }

    /// Sets the local read-cache mode (default [`CacheMode::Off`]). Under
    /// [`CacheMode::Safe`] each process thread serves a read from its own
    /// confirmed snapshot — zero frames, zero wire bytes — when it is the
    /// register's SWMR writer (`Automaton::swmr_writer`); decisions are
    /// counted in `NetStats::cache_hits` / `cache_misses` /
    /// `cache_fallbacks`. [`CacheMode::UnsafeAblated`] drops the gate — a
    /// deliberately unsound negative control.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Routes every flushed frame through the byte-level codec
    /// ([`Frame::encode`] → [`Frame::decode`]) on its link: the cluster
    /// then delivers the *decoded* bytes, proving serialization fidelity on
    /// the live runtime, and
    /// [`NetStats::wire_bytes`](twobit_proto::NetStats::wire_bytes) reports
    /// the bytes a socket would carry. Requires a codec-capable message
    /// type — a cost-model-only message panics the link thread on the
    /// first flush (operations then time out).
    pub fn wire_codec(mut self, on: bool) -> Self {
        self.wire_codec = on;
        self
    }

    /// Sets the links' default frame flush policy (how aggressively
    /// envelopes coalesce; [`FlushPolicy::immediate`] disables batching,
    /// [`FlushPolicy::adaptive`] auto-tunes the hold per link). Validated
    /// at build time — an unsatisfiable policy is a typed
    /// [`BuildError::Config`], not a panic inside a link thread.
    pub fn flush_policy(mut self, flush: FlushPolicy) -> Self {
        self.flush = flush;
        self
    }

    /// Overrides the flush policy for one ordered link `src → dst`,
    /// leaving every other link on the cluster-wide default — the
    /// asymmetric-topology knob (e.g. coalesce hard toward a write-heavy
    /// hub while keeping reader links latency-lean). Also validated at
    /// build time.
    pub fn flush_policy_for(
        mut self,
        src: impl Into<ProcessId>,
        dst: impl Into<ProcessId>,
        flush: FlushPolicy,
    ) -> Self {
        self.flush_overrides.insert((src.into(), dst.into()), flush);
        self
    }

    /// Seeds the per-link delay samplers.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the link delay model (ticks = microseconds).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the client-side operation timeout.
    pub fn op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Hosts registers `r0 .. r(count-1)`.
    pub fn registers(mut self, count: usize) -> Self {
        self.registers = RegisterId::first(count);
        self
    }

    /// Hosts exactly the given registers.
    pub fn register_ids(mut self, registers: Vec<RegisterId>) -> Self {
        self.registers = registers;
        self
    }

    /// Builds and starts the cluster with one automaton per process (all
    /// hosted registers get identical per-process instances).
    ///
    /// # Errors
    ///
    /// [`BuildError::Config`] for an unsatisfiable flush policy (default
    /// or per-link override); I/O never fails on this in-process backend.
    pub fn build<A, F>(self, initial: A::Value, mut make: F) -> Result<Cluster<A>, BuildError>
    where
        A: Automaton,
        F: FnMut(ProcessId) -> A,
    {
        self.build_sharded(initial, move |_reg, id| make(id))
    }

    /// Builds and starts the cluster: spawns `n` process threads (each
    /// hosting one automaton per register, created by `make`) and `n(n−1)`
    /// link threads.
    ///
    /// # Errors
    ///
    /// [`BuildError::Config`] for an unsatisfiable flush policy (default
    /// or per-link override) — caught here, before any thread exists,
    /// because a policy that panics a spawned link thread would silently
    /// strand every message on that pair instead.
    pub fn build_sharded<A, F>(
        self,
        initial: A::Value,
        mut make: F,
    ) -> Result<Cluster<A>, BuildError>
    where
        A: Automaton,
        F: FnMut(RegisterId, ProcessId) -> A,
    {
        let n = self.cfg.n();
        assert!(
            !self.registers.is_empty(),
            "cluster needs at least one register"
        );
        self.flush.validate()?;
        for (link, policy) in &self.flush_overrides {
            policy.validate_for(Some(*link))?;
        }
        let crashed: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let stats = Arc::new(Mutex::new(NetStats::new()));

        // Inboxes (one per process).
        let (inbox_txs, inbox_rxs): (Vec<_>, Vec<_>) =
            (0..n).map(|_| unbounded::<Incoming<A>>()).unzip();

        // Links: input channel per ordered pair (i → j). Items are single
        // envelopes — the link's flush policy decides how many coalesce
        // into a frame, so `max_batch` caps envelopes per frame and
        // `FlushPolicy::immediate` really sends each message alone.
        let tag_bits = RegisterId::routing_bits(self.registers.len());
        let mut link_txs: LinkTxs<A::Msg> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut link_threads = Vec::new();
        #[allow(clippy::needless_range_loop)] // i indexes link_txs below
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (tx, rx) = unbounded::<Envelope<A::Msg>>();
                // Wrap delivery: the link forwards whole frames; a small
                // adapter channel tags them with the sender id.
                let (framed_tx, framed_rx) = unbounded::<Frame<A::Msg>>();
                let inbox = inbox_txs[j].clone();
                let from = ProcessId::new(i);
                let stats_d = Arc::clone(&stats);
                // Adapter thread: frame → Incoming::Frame (kept separate
                // from the link so the link stays generic over its items).
                let adapter = std::thread::spawn(move || {
                    while let Ok(frame) = framed_rx.recv() {
                        stats_d.lock().record_deliveries(frame.len() as u64);
                        if inbox.send(Incoming::Frame { from, frame }).is_err() {
                            return;
                        }
                    }
                });
                let seed = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i * n + j) as u64);
                // The flush closure is where batches become frames — and
                // where the shared-header routing cost, the flush reason,
                // and the observed hold are accounted, plus the byte-codec
                // round trip under `wire_codec`.
                let stats_f = Arc::clone(&stats);
                let wire_codec = self.wire_codec;
                // Per-link buffer pool: encode reuses the link's last flush
                // buffers instead of allocating fresh ones per frame.
                let pool = BufferPool::new();
                let build_frame =
                    move |batch: Vec<Envelope<A::Msg>>,
                          reason: twobit_proto::FlushReason,
                          held: std::time::Duration| {
                        let frame = Frame::from_envelopes(batch);
                        {
                            let mut st = stats_f.lock();
                            st.record_frame(frame.cost(tag_bits));
                            st.record_flush(
                                reason,
                                held.as_nanos().min(u128::from(u64::MAX)) as u64,
                            );
                        }
                        if !wire_codec {
                            return frame;
                        }
                        let blob = frame
                            .encode_pooled(&pool)
                            .expect("wire_codec requires a codec-capable message type");
                        stats_f.lock().record_wire_bytes(blob.len() as u64);
                        // Zero-copy receive: decoded payloads are `Bytes`
                        // views into `blob` where the layout byte-aligns.
                        Frame::decode_shared(&blob).expect("frame byte codec must round-trip")
                    };
                // Frames reaching their deadline after the destination
                // crashed drop whole — and must still be accounted, so
                // delivered + dropped reconciles with sent like on the
                // deterministic backend.
                let stats_x = Arc::clone(&stats);
                let drop_frame = move |frame: Frame<A::Msg>| {
                    stats_x
                        .lock()
                        .record_frame_drop_to_crashed(frame.len() as u64);
                };
                let policy = self
                    .flush_overrides
                    .get(&(from, ProcessId::new(j)))
                    .copied()
                    .unwrap_or(self.flush);
                let link = spawn_link(
                    rx,
                    framed_tx,
                    LinkConfig {
                        policy,
                        delay: self.delay,
                        seed,
                        dest_crashed: Arc::clone(&crashed[j]),
                    },
                    build_frame,
                    drop_frame,
                );
                link_threads.push(link);
                link_threads.push(adapter);
                link_txs[i][j] = Some(tx);
            }
        }

        // Process threads.
        let mut proc_threads = Vec::new();
        for (i, inbox_rx) in inbox_rxs.into_iter().enumerate() {
            let shards = ShardSet::new(ProcessId::new(i), &self.registers, &mut make);
            let outs: OutboundLinks<A::Msg> = link_txs[i].clone();
            let crashed = crashed.clone();
            let stats = Arc::clone(&stats);
            let cache_mode = self.cache_mode;
            proc_threads.push(std::thread::spawn(move || {
                process_loop(shards, inbox_rx, outs, crashed, stats, cache_mode);
            }));
        }

        Ok(Cluster {
            shared: Arc::new(Shared {
                cfg: self.cfg,
                registers: self.registers,
                inbox_txs,
                crashed,
                life: Mutex::new(vec![LifecycleState::new(); n]),
                recorder: Recorder::new(initial),
                stats,
                op_ids: AtomicU64::new(0),
                op_timeout: self.op_timeout,
                inflight: Mutex::new(HashMap::new()),
            }),
            driver_pending: HashMap::new(),
            driver_completed: HashMap::new(),
            proc_threads,
            link_threads,
        })
    }
}

/// One in-flight invocation's loop-side state: the reply channel, plus
/// what the cache needs at completion time (the target register and, for a
/// write, the value being written — `OpOutcome::Written` does not carry
/// it).
struct PendingOp<A: Automaton> {
    reply: Sender<OpOutcome<A::Value>>,
    reg: RegisterId,
    written: Option<A::Value>,
}

/// The body of one process thread: drain the inbox, run handlers
/// atomically, batch outbound envelopes per destination, answer
/// completions. Public because every live backend shares it — the
/// in-process cluster hands `outs` to chaos-link threads, the TCP
/// transport to socket-writer threads; the protocol semantics (crash
/// checks, send accounting with the deployment's tag width, per-frame drop
/// recording for crashed destinations) are identical by construction.
///
/// A crashed process *parks* instead of exiting: the thread keeps draining
/// its inbox but discards everything except a recovery
/// [`Incoming::Install`] from the coordinator (see
/// [`recover_process`](crate::recover_process)) or a teardown
/// [`Incoming::Shutdown`] — so [`Driver::recover`] can bring the process
/// back without respawning threads.
///
/// `cache_mode` wires the local read cache (`twobit-cache`): the loop owns
/// one writer/reader pair, publishes every locally-completed operation's
/// value *before* answering the client, and serves a read invocation from
/// the snapshot — zero protocol messages — when the gate admits it. The
/// publish-before-reply order is what makes hit counts deterministic for
/// sequential workloads, and therefore comparable across backends.
pub fn process_loop<A: Automaton, S: OutboundSink<A::Msg>>(
    mut shards: ShardSet<A>,
    inbox: crossbeam::channel::Receiver<Incoming<A>>,
    outs: Vec<Option<S>>,
    crashed: Vec<Arc<AtomicBool>>,
    stats: Arc<Mutex<NetStats>>,
    cache_mode: CacheMode,
) {
    let me = shards.id();
    // Unframed-equivalent tag width, derived from the hosted register count
    // (the tag is a per-deployment constant, not per-message state).
    let tag_bits = shards.routing_bits();
    let reg_slot: HashMap<RegisterId, usize> = shards
        .registers()
        .enumerate()
        .map(|(slot, reg)| (reg, slot))
        .collect();
    let (mut cache_w, mut cache_r) = cache_pair::<A::Value>(reg_slot.len(), cache_mode);
    let mut pending: HashMap<OpId, PendingOp<A>> = HashMap::new();
    while let Ok(incoming) = inbox.recv() {
        if crashed[me.index()].load(Ordering::Relaxed) {
            // Parked: crash semantics without losing the thread. Every
            // in-flight client reply is dropped (ops died with the crash;
            // waiting clients observe the disconnect), frames and fresh
            // invocations vanish unprocessed, and the only ways out are a
            // recovery installation from the coordinator — which hands the
            // thread a fresh barrier state to resume from — or teardown.
            pending.clear();
            match incoming {
                Incoming::Shutdown => return,
                Incoming::Install { snapshots, reply } => {
                    for (reg, snap) in snapshots.iter() {
                        let _ = shards.install_recovery(*reg, snap);
                    }
                    // The pre-crash cache could serve a value older than
                    // the barrier; start from cold like a rebooted process.
                    let (w, r) = cache_pair::<A::Value>(reg_slot.len(), cache_mode);
                    cache_w = w;
                    cache_r = r;
                    let _ = reply.send(());
                }
                _ => {}
            }
            continue;
        }
        let mut fx = Effects::new();
        // A rejoin is acked only after its effects (barrier completions)
        // have been applied below.
        let mut rejoin_ack: Option<Sender<()>> = None;
        match incoming {
            Incoming::Shutdown => return,
            Incoming::Nudge => continue,
            Incoming::SnapshotReq { reply } => {
                let regs: Vec<RegisterId> = shards.registers().collect();
                let mut snaps = Vec::with_capacity(regs.len());
                let mut supported = true;
                for reg in regs {
                    match shards.recovery_snapshot(reg) {
                        Some(s) => snaps.push((reg, s)),
                        None => {
                            supported = false;
                            break;
                        }
                    }
                }
                let _ = reply.send(supported.then_some(snaps));
                continue;
            }
            Incoming::Install { .. } => continue, // not crashed: stray, ignore
            Incoming::Rejoin {
                rejoining,
                snapshots,
                reply,
            } => {
                for (reg, snap) in snapshots.iter() {
                    let _ = shards.apply_rejoin(*reg, rejoining, snap, &mut fx);
                }
                rejoin_ack = Some(reply);
            }
            Incoming::Frame { from, frame } => {
                // Atomic handling: every message of the frame runs at this
                // point of the process's timeline (crash checked above,
                // once for the whole frame).
                for env in frame.into_envelopes() {
                    shards.on_message(from, env, &mut fx);
                }
            }
            Incoming::Invoke {
                reg,
                op_id,
                op,
                reply,
            } => {
                if matches!(op, Operation::Read) && cache_mode != CacheMode::Off {
                    if let Some(&slot) = reg_slot.get(&reg) {
                        match cache_r.try_read(slot) {
                            CacheDecision::Hit(v) => {
                                // Served locally: no automaton invocation,
                                // no frames, no wire bytes.
                                stats.lock().record_cache_hit();
                                let _ = reply.send(OpOutcome::ReadValue(v));
                                continue;
                            }
                            CacheDecision::Miss => stats.lock().record_cache_miss(),
                            CacheDecision::Fallback => stats.lock().record_cache_fallback(),
                        }
                    }
                }
                let written = match &op {
                    Operation::Write(v) => Some(v.clone()),
                    Operation::Read => None,
                };
                pending.insert(
                    op_id,
                    PendingOp {
                        reply,
                        reg,
                        written,
                    },
                );
                if shards.on_invoke(reg, op_id, op, &mut fx).is_err() {
                    // Unknown register: validated at the client layer, so
                    // this is unreachable in practice; dropping the reply
                    // surfaces as ProcessUnavailable there.
                    pending.remove(&op_id);
                    continue;
                }
            }
        }
        // Apply effects: batch sends per destination (one stats lock per
        // handler execution, one burst per link — the link's flush policy
        // coalesces the burst into frames), answer completions.
        let mut batches: BTreeMap<ProcessId, Vec<Envelope<A::Msg>>> = BTreeMap::new();
        for (to, env) in fx.drain_sends() {
            batches.entry(to).or_default().push(env);
        }
        if !batches.is_empty() {
            let mut st = stats.lock();
            for batch in batches.values() {
                for env in batch {
                    st.record_send_for(env.reg, env.kind(), env.cost().with_routing(tag_bits));
                }
            }
            drop(st);
            for (to, batch) in batches {
                if crashed[to.index()].load(Ordering::Relaxed) {
                    stats
                        .lock()
                        .record_frame_drop_to_crashed(batch.len() as u64);
                    continue;
                }
                if let Some(tx) = outs[to.index()].as_ref() {
                    for env in batch {
                        tx.deliver(env);
                    }
                }
            }
        }
        for (op_id, outcome) in fx.drain_completions() {
            if let Some(p) = pending.remove(&op_id) {
                // Publish the confirmed snapshot BEFORE the reply: once
                // the client observes completion, the cache entry exists.
                if cache_mode != CacheMode::Off {
                    let value = match (&outcome, p.written) {
                        (OpOutcome::ReadValue(v), _) => Some(v.clone()),
                        (OpOutcome::Written, w) => w,
                    };
                    if let (Some(v), Some(&slot)) = (value, reg_slot.get(&p.reg)) {
                        let writer_here =
                            shards.shard(p.reg).and_then(Automaton::swmr_writer) == Some(me);
                        cache_w.publish(slot, v, writer_here);
                    }
                }
                let _ = p.reply.send(outcome);
            }
        }
        if let Some(ack) = rejoin_ack {
            let _ = ack.send(());
        }
    }
}

/// A running cluster of register processes (one [`ShardSet`] each).
///
/// Obtain blocking clients with [`Cluster::client`] /
/// [`Cluster::client_for`], crash processes with [`Cluster::crash`], drive
/// it backend-agnostically through [`Driver`], and tear down with
/// [`Cluster::shutdown`] (which also returns the recorded history for
/// linearizability checking).
pub struct Cluster<A: Automaton> {
    pub(crate) shared: Arc<Shared<A>>,
    /// Tickets issued through [`Driver::invoke`] and not yet polled.
    driver_pending: HashMap<(ProcessId, RegisterId), OpHandle<A>>,
    /// The most recently polled outcome per pair (so re-polling the latest
    /// ticket is idempotent; bounded at one entry per pair, evicted by the
    /// pair's next poll).
    driver_completed: CompletedMap<A::Value>,
    proc_threads: Vec<JoinHandle<()>>,
    link_threads: Vec<JoinHandle<()>>,
}

impl<A: Automaton> std::fmt::Debug for Cluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("proc_threads", &self.proc_threads.len())
            .field("link_threads", &self.link_threads.len())
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> Cluster<A> {
    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.shared.cfg
    }

    /// The registers this cluster hosts.
    pub fn hosted_registers(&self) -> &[RegisterId] {
        &self.shared.registers
    }

    /// Creates a client handle bound to process `proc` on the default
    /// register `r0`.
    ///
    /// # Panics
    ///
    /// Panics if `r0` is not hosted (custom
    /// [`ClusterBuilder::register_ids`] without it).
    pub fn client(&self, proc: impl Into<ProcessId>) -> RegisterClient<A> {
        self.client_for(proc, RegisterId::ZERO)
            .expect("default register r0 not hosted")
    }

    /// Creates a client handle bound to process `proc` on register `reg`.
    ///
    /// # Errors
    ///
    /// [`ClientError::UnknownRegister`] if the cluster does not host `reg`.
    pub fn client_for(
        &self,
        proc: impl Into<ProcessId>,
        reg: RegisterId,
    ) -> Result<RegisterClient<A>, ClientError> {
        if !self.shared.registers.contains(&reg) {
            return Err(ClientError::UnknownRegister(reg));
        }
        Ok(RegisterClient::new(
            Arc::clone(&self.shared),
            proc.into(),
            reg,
        ))
    }

    /// Crashes process `proc`: it stops handling events; messages addressed
    /// to it are dropped. Reversible only through [`Cluster::recover`].
    ///
    /// # Errors
    ///
    /// [`DriverError::AlreadyCrashed`] when `proc` is not up;
    /// [`DriverError::UnknownProcess`] for an out-of-range id.
    pub fn crash(&self, proc: impl Into<ProcessId>) -> Result<(), DriverError> {
        let proc = proc.into();
        let pi = proc.index();
        if pi >= self.shared.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        self.shared.life.lock()[pi]
            .crash()
            .map_err(|_| DriverError::AlreadyCrashed(proc))?;
        self.shared.crashed[pi].store(true, Ordering::Relaxed);
        // Nudge the thread so it observes the flag even when idle (the
        // parked thread ignores the nudge itself).
        let _ = self.shared.inbox_txs[pi].send(Incoming::Nudge);
        Ok(())
    }

    /// Recovers a crashed process: quiesces the cluster, transfers a
    /// frame-aligned snapshot from the live peers, rejoins the quorums and
    /// bumps the incarnation — the shared live-backend recipe, see
    /// [`recover_process`](crate::recover_process).
    ///
    /// Requires a quiet cluster: no operation may be in flight on any
    /// process (blocking clients included), or the quiesce phase times
    /// out.
    ///
    /// # Errors
    ///
    /// See [`recover_process`](crate::recover_process).
    pub fn recover(&self, proc: impl Into<ProcessId>) -> Result<(), DriverError> {
        let proc = proc.into();
        let inboxes: Vec<Option<Sender<Incoming<A>>>> =
            self.shared.inbox_txs.iter().cloned().map(Some).collect();
        crate::recovery::recover_process(
            proc,
            &crate::recovery::RecoveryParts {
                cfg: self.shared.cfg,
                registers: &self.shared.registers,
                inboxes: &inboxes,
                life: &self.shared.life,
                crashed: &self.shared.crashed,
                stats: &self.shared.stats,
                recorder: &self.shared.recorder,
                quiesce_timeout: self.shared.op_timeout,
            },
        )
    }

    /// The current lifecycle state of `proc` (out-of-range ids report
    /// [`Lifecycle::Crashed`], matching the [`Driver`] contract).
    pub fn lifecycle(&self, proc: impl Into<ProcessId>) -> Lifecycle {
        let proc = proc.into();
        self.shared
            .life
            .lock()
            .get(proc.index())
            .map_or(Lifecycle::Crashed, |l| l.state)
    }

    /// Snapshot of the flat operation history recorded so far (all
    /// registers interleaved; use [`Cluster::sharded_history`] for the
    /// per-register projection the checker wants).
    pub fn history(&self) -> History<A::Value> {
        self.shared.recorder.snapshot()
    }

    /// Snapshot of the per-register operation histories recorded so far.
    pub fn sharded_history(&self) -> ShardedHistory<A::Value> {
        self.shared
            .recorder
            .snapshot_sharded(&self.shared.registers)
    }

    /// Snapshot of the network statistics.
    pub fn stats(&self) -> NetStats {
        self.shared.stats.lock().clone()
    }

    /// Gracefully stops all threads and returns the final (flat) history
    /// and statistics. Take [`Cluster::sharded_history`] first if you need
    /// the per-register projection.
    pub fn shutdown(mut self) -> (History<A::Value>, NetStats) {
        for tx in &self.shared.inbox_txs {
            let _ = tx.send(Incoming::Shutdown);
        }
        for h in self.proc_threads.drain(..) {
            let _ = h.join();
        }
        for h in self.link_threads.drain(..) {
            let _ = h.join();
        }
        (
            self.shared.recorder.snapshot(),
            self.shared.stats.lock().clone(),
        )
    }
}

impl<A: Automaton> Drop for Cluster<A> {
    /// Best-effort, non-blocking teardown signal (C-DTOR-BLOCK: the
    /// blocking variant is the explicit [`Cluster::shutdown`]).
    fn drop(&mut self) {
        for tx in &self.shared.inbox_txs {
            let _ = tx.send(Incoming::Shutdown);
        }
    }
}

fn to_driver_error(e: ClientError, proc: ProcessId) -> DriverError {
    match e {
        ClientError::ProcessUnavailable => DriverError::ProcessUnavailable(proc),
        ClientError::Timeout => DriverError::Timeout,
        ClientError::ProtocolMismatch => DriverError::ProtocolMismatch,
        ClientError::OperationInFlight { proc, reg } => {
            DriverError::OperationInFlight { proc, reg }
        }
        ClientError::UnknownRegister(r) => DriverError::UnknownRegister(r),
    }
}

/// Backend-agnostic driving of the live cluster. `invoke` issues through
/// the same per-register in-flight accounting as the blocking clients;
/// `poll` blocks (up to the configured operation timeout) for the reply.
///
/// A ticket whose `poll` timed out cannot be re-polled — its outcome, if
/// the quorum eventually answers, is reaped by the next `invoke` on the
/// same `(process, register)` pair.
impl<A: Automaton> Driver for Cluster<A> {
    type Value = A::Value;

    fn config(&self) -> SystemConfig {
        self.shared.cfg
    }

    fn registers(&self) -> Vec<RegisterId> {
        self.shared.registers.clone()
    }

    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
    ) -> Result<OpTicket, DriverError> {
        if proc.index() >= self.shared.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if self.shared.crashed[proc.index()].load(Ordering::Relaxed) {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        let mut client = self
            .client_for(proc, reg)
            .map_err(|e| to_driver_error(e, proc))?;
        // An unpolled driver ticket on this pair counts as in flight.
        if self.driver_pending.contains_key(&(proc, reg)) {
            return Err(DriverError::OperationInFlight { proc, reg });
        }
        let handle = client.issue(op).map_err(|e| to_driver_error(e, proc))?;
        let ticket = OpTicket {
            proc,
            reg,
            op_id: handle.op_id(),
        };
        self.driver_pending.insert((proc, reg), handle);
        Ok(ticket)
    }

    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<A::Value>, DriverError> {
        let key = (ticket.proc, ticket.reg);
        if let Some((op_id, outcome)) = self.driver_completed.get(&key) {
            if *op_id == ticket.op_id {
                return Ok(outcome.clone());
            }
        }
        let handle = self
            .driver_pending
            .remove(&key)
            .ok_or(DriverError::Stalled(ticket.op_id))?;
        if handle.op_id() != ticket.op_id {
            // A newer ticket superseded this one; put it back.
            let op_id = handle.op_id();
            self.driver_pending.insert(key, handle);
            return Err(DriverError::Backend(format!(
                "ticket {} superseded by {op_id}",
                ticket.op_id
            )));
        }
        let outcome = handle.wait().map_err(|e| to_driver_error(e, ticket.proc))?;
        // Replaces the pair's previous cached outcome, keeping the cache
        // bounded at one entry per (process, register) pair.
        self.driver_completed
            .insert(key, (ticket.op_id, outcome.clone()));
        Ok(outcome)
    }

    fn crash(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        Cluster::crash(self, proc)
    }

    fn recover(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        // Driver-issued operations must all be polled first: an unpolled
        // ticket is in flight and would defeat the quiesce.
        if let Some((p, r)) = self.driver_pending.keys().next() {
            return Err(DriverError::OperationInFlight { proc: *p, reg: *r });
        }
        Cluster::recover(self, proc)
    }

    fn lifecycle(&self, proc: ProcessId) -> Lifecycle {
        Cluster::lifecycle(self, proc)
    }

    fn history(&self) -> ShardedHistory<A::Value> {
        self.sharded_history()
    }

    fn stats(&self) -> NetStats {
        Cluster::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{ConfigError, HoldPolicy};
    use twobit_baselines::AbdProcess;
    use twobit_core::TwoBitProcess;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    #[test]
    fn builder_rejects_zero_max_batch_as_typed_error() {
        // Regression: a zero max_batch used to be caught by an assert!
        // inside each spawned link thread — the panic stranded every
        // message on that pair while the cluster looked healthy.
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let err = ClusterBuilder::new(c)
            .flush_policy(FlushPolicy {
                max_batch: 0,
                hold: HoldPolicy::Static(Duration::ZERO),
            })
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64));
        let Err(err) = err else {
            panic!("a zero max_batch must fail the build")
        };
        assert!(
            matches!(
                err,
                BuildError::Config(ConfigError::ZeroMaxBatch { link: None })
            ),
            "expected a typed config error, got {err}"
        );
    }

    #[test]
    fn builder_rejects_bad_per_link_override_naming_the_link() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let err = ClusterBuilder::new(c)
            .flush_policy_for(0, 2, FlushPolicy::fixed(0, Duration::ZERO))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64));
        let Err(err) = err else {
            panic!("a zero max_batch override must fail the build")
        };
        match err {
            BuildError::Config(ConfigError::ZeroMaxBatch { link: Some((a, b)) }) => {
                assert_eq!((a, b), (ProcessId::new(0), ProcessId::new(2)));
            }
            other => panic!("expected a link-naming config error, got {other}"),
        }
        let err = ClusterBuilder::new(c)
            .flush_policy_for(
                1,
                0,
                FlushPolicy::adaptive(8, Duration::from_micros(50), Duration::from_micros(10)),
            )
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64));
        let Err(err) = err else {
            panic!("an inverted adaptive band must fail the build")
        };
        assert!(matches!(
            err,
            BuildError::Config(ConfigError::HoldFloorAboveCeil { .. })
        ));
    }

    #[test]
    fn per_link_overrides_and_adaptive_default_serve_reads_and_writes() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(31)
            .flush_policy(FlushPolicy::adaptive(
                64,
                Duration::ZERO,
                Duration::from_micros(200),
            ))
            // One asymmetric link kept latency-lean.
            .flush_policy_for(0, 1, FlushPolicy::immediate())
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(1);
        for i in 1..=5u64 {
            w.write(i).unwrap();
            assert_eq!(r.read().unwrap(), i);
        }
        let (history, stats) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
        assert_eq!(
            stats.flushes_total(),
            stats.frames_sent(),
            "every frame carries exactly one flush reason"
        );
    }

    #[test]
    fn twobit_write_then_read() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(1)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(1);
        w.write(7).unwrap();
        assert_eq!(r.read().unwrap(), 7);
        let (history, stats) = cluster.shutdown();
        assert_eq!(history.records.len(), 2);
        assert!(history
            .records
            .iter()
            .all(twobit_proto::OpRecord::is_complete));
        assert!(stats.total_sent() > 0);
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn abd_cluster_works_too() {
        let c = cfg(5);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(2)
            .build(0u64, |id| AbdProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(4);
        for i in 1..=5u64 {
            w.write(i).unwrap();
            assert_eq!(r.read().unwrap(), i);
        }
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn crash_minority_still_live() {
        let c = cfg(5); // t = 2
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(3)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(1);
        w.write(1).unwrap();
        cluster.crash(3).unwrap();
        cluster.crash(4).unwrap();
        w.write(2).unwrap();
        assert_eq!(r.read().unwrap(), 2);
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn crash_majority_times_out() {
        let c = cfg(3); // t = 1, quorum 2
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(4)
            .op_timeout(Duration::from_millis(300))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        w.write(1).unwrap();
        cluster.crash(1).unwrap();
        cluster.crash(2).unwrap();
        // The writer alone cannot reach a quorum of 2.
        assert_eq!(w.write(2), Err(crate::ClientError::Timeout));
    }

    #[test]
    fn crashed_process_client_fails() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .op_timeout(Duration::from_millis(300))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        cluster.crash(1).unwrap();
        let mut r = cluster.client(1);
        // Either the inbox is already closed or the op times out — the
        // operation must not succeed.
        assert!(r.read().is_err());
    }

    #[test]
    fn sharded_cluster_serves_independent_registers() {
        let c = cfg(3);
        let cluster = ClusterBuilder::new(c)
            .seed(5)
            .registers(4)
            // Register rk's writer is process k mod n.
            .build_sharded(0u64, |reg, id| {
                TwoBitProcess::new(id, c, ProcessId::new(reg.index() % 3), 0u64)
            })
            .unwrap();
        for k in 0..4usize {
            let reg = RegisterId::new(k);
            let mut w = cluster.client_for(k % 3, reg).unwrap();
            let mut r = cluster.client_for((k + 1) % 3, reg).unwrap();
            w.write(100 + k as u64).unwrap();
            assert_eq!(r.read().unwrap(), 100 + k as u64);
        }
        let sharded = cluster.sharded_history();
        assert_eq!(sharded.len(), 4);
        for (_, h) in sharded.iter() {
            assert_eq!(h.len(), 2);
            twobit_lincheck::check_swmr(h).unwrap();
        }
        // Per-shard wire accounting adds up to the aggregate.
        let stats = cluster.stats();
        let shard_sum: u64 = stats.shards().map(|(_, t)| t.sent).sum();
        assert_eq!(shard_sum, stats.total_sent());
        assert!(stats.routing_bits() > 0, "4 registers need shard tags");
    }

    #[test]
    fn concurrent_issue_on_same_register_is_typed_error() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(6)
            // Slow links so the first op is still in flight when the second
            // is issued.
            .delay(DelayModel::Fixed(50_000))
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut a = cluster.client(0);
        let mut b = cluster.client(0);
        let handle = a.issue(Operation::Write(1)).unwrap();
        // A clone of the same process's client cannot sneak a concurrent op
        // in — the old footgun that panicked the process thread.
        match b.issue(Operation::Write(2)) {
            Err(ClientError::OperationInFlight { proc, reg }) => {
                assert_eq!(proc, ProcessId::new(0));
                assert_eq!(reg, RegisterId::ZERO);
            }
            other => panic!("expected OperationInFlight, got {other:?}"),
        }
        assert_eq!(handle.wait().unwrap(), OpOutcome::Written);
        // After completion the pair is free again.
        b.write(2).unwrap();
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn pipelined_handles_across_registers() {
        let c = cfg(3);
        let cluster = ClusterBuilder::new(c)
            .seed(7)
            .registers(3)
            .build_sharded(0u64, |_reg, id| {
                TwoBitProcess::new(id, c, ProcessId::new(0), 0u64)
            })
            .unwrap();
        // One client per register, all bound to p0: issue all three writes
        // before waiting on any (pipelining across shards).
        let mut clients: Vec<_> = (0..3)
            .map(|k| cluster.client_for(0, RegisterId::new(k)).unwrap())
            .collect();
        let handles: Vec<_> = clients
            .iter_mut()
            .enumerate()
            .map(|(k, cl)| cl.issue(Operation::Write(k as u64 + 1)).unwrap())
            .collect();
        for h in handles {
            assert_eq!(h.wait().unwrap(), OpOutcome::Written);
        }
        let sharded = cluster.sharded_history();
        for (_, h) in sharded.iter() {
            twobit_lincheck::check_swmr(h).unwrap();
        }
    }

    #[test]
    fn abandoned_handle_outcome_is_reaped() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(8)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let handle = w.issue(Operation::Write(1)).unwrap();
        drop(handle); // abandon without waiting
                      // The next issue either reaps the landed outcome and proceeds, or
                      // reports the op as still in flight — never a thread panic.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match w.issue(Operation::Write(2)) {
                Ok(h) => {
                    assert_eq!(h.wait().unwrap(), OpOutcome::Written);
                    break;
                }
                Err(ClientError::OperationInFlight { .. }) => {
                    assert!(std::time::Instant::now() < deadline, "op never landed");
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn safe_cache_serves_writer_co_located_reads_with_zero_traffic() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(c)
            .seed(23)
            .cache_mode(CacheMode::Safe)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let mut w = cluster.client(0);
        let mut r = cluster.client(1);
        w.write(7).unwrap();
        let sent_after_write = cluster.stats().total_sent();
        // The writer's own read is served from its confirmed snapshot.
        assert_eq!(w.read().unwrap(), 7);
        let stats = cluster.stats();
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(
            stats.total_sent(),
            sent_after_write,
            "a gated hit sends no protocol messages"
        );
        // A non-writer's read runs the protocol (fallback, not a hit).
        assert_eq!(r.read().unwrap(), 7);
        let stats = cluster.stats();
        assert_eq!(stats.cache_hits(), 1, "p1's read was not served locally");
        assert!(stats.total_sent() > sent_after_write);
        let (history, _) = cluster.shutdown();
        twobit_lincheck::check_swmr(&history).unwrap();
    }

    #[test]
    fn driver_interface_drives_the_cluster() {
        let c = cfg(3);
        let writer = ProcessId::new(0);
        let mut cluster = ClusterBuilder::new(c)
            .seed(9)
            .build(0u64, |id| TwoBitProcess::new(id, c, writer, 0u64))
            .unwrap();
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        Driver::write(&mut cluster, p0, RegisterId::ZERO, 7).unwrap();
        assert_eq!(Driver::read(&mut cluster, p1, RegisterId::ZERO).unwrap(), 7);
        let sharded = Driver::history(&cluster);
        twobit_lincheck::check_swmr(sharded.shard(RegisterId::ZERO).unwrap()).unwrap();
    }
}
