//! The stop-the-world recovery coordinator shared by every live backend.
//!
//! The deterministic simulator recovers a process by running the event
//! queue to quiescence and then transferring state synchronously — there
//! is nothing in flight by construction. The live backends (in-process
//! cluster, TCP transport, reactor transport) reproduce the same recipe
//! against real threads and sockets:
//!
//! 1. **Quiesce**: wait until the wire books balance
//!    (`delivered + dropped + stale + abandoned == sent`) *and* a barrier
//!    round-trip through every live process confirms the balance is
//!    stable — i.e. no frame is in a socket buffer, link queue, or
//!    unprocessed inbox, and handling the last of them produced no new
//!    sends. The [`Incoming::SnapshotReq`] doubles as that barrier
//!    (inboxes are FIFO), so the snapshots it returns are exactly the
//!    frame-aligned state the paper's recovery argument needs.
//! 2. **Select**: per register, take the longest confirmed snapshot among
//!    the live peers (a quiesced cluster agrees on a prefix; the writer's
//!    copy is the longest — Lemma 3's `w_sync[me] = max` shape).
//! 3. **Fidelity**: round-trip each snapshot through the `SNAPSHOT` byte
//!    codec ([`Snapshot::encode`] / [`Snapshot::decode`]) and account the
//!    blob in `NetStats::snapshot_frames` / `snapshot_bytes` — state
//!    transfer is accounted *separately* from protocol messages, so the
//!    `delivered + dropped + stale + abandoned == sent` reconciliation is
//!    untouched by recoveries.
//! 4. **Install** the barrier state at the parked process
//!    ([`Incoming::Install`]), then un-crash it, then have every live peer
//!    **rejoin** it ([`Incoming::Rejoin`] → the automatons' `apply_rejoin`
//!    hook, which may complete operations the barrier unblocks).
//! 5. **Bump the incarnation** and record the recovery (stats ledger +
//!    history [`RecoveryRecord`](twobit_proto::RecoveryRecord)).
//!
//! Because step 1 proves the network empty, no frame from the previous
//! incarnation can ever be delivered after the rejoin — the quiesce *is*
//! the incarnation fence on these backends. The deterministic simulator
//! (`SimSpace`) additionally exercises the adversarial case where stale
//! frames survive into the rejoin (its negative-control knob skips the
//! fence), which is where the model checker proves the fence necessary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use twobit_proto::{
    Automaton, DriverError, LifecycleState, NetStats, ProcessId, RegisterId, Snapshot, SystemConfig,
};

use crate::cluster::{Incoming, RegisterSnapshots};
use crate::recorder::Recorder;

/// How long each individual control round-trip (snapshot request, install,
/// rejoin ack) may take before the recovery is abandoned.
const STEP_TIMEOUT: Duration = Duration::from_secs(5);

/// Everything the shared coordinator needs from a backend. All three live
/// backends own these pieces already — this struct just borrows them for
/// the duration of one [`recover_process`] call.
#[allow(missing_debug_implementations)]
pub struct RecoveryParts<'a, A: Automaton> {
    /// The system configuration.
    pub cfg: SystemConfig,
    /// The hosted registers, in id order.
    pub registers: &'a [RegisterId],
    /// Inbox senders, one per process (`None` for processes hosted on
    /// another node — the reactor's multi-host case).
    pub inboxes: &'a [Option<Sender<Incoming<A>>>],
    /// The per-process lifecycle records (state + incarnation).
    pub life: &'a Mutex<Vec<LifecycleState>>,
    /// The hot-path crash flags the links and process loops consult.
    pub crashed: &'a [Arc<AtomicBool>],
    /// The shared wire statistics.
    pub stats: &'a Mutex<NetStats>,
    /// The history recorder (recoveries are appended here).
    pub recorder: &'a Recorder<A::Value>,
    /// Overall deadline budget for the quiesce phase.
    pub quiesce_timeout: Duration,
}

/// Returns `true` when every sent message is accounted as delivered,
/// dropped (to a crashed process or as stale), or abandoned — i.e. nothing
/// is in flight on any link.
fn books_balance(st: &NetStats) -> bool {
    st.total_sent()
        == st.total_delivered()
            + st.dropped_to_crashed()
            + st.dropped_stale()
            + st.messages_abandoned()
}

/// Recovers `proc` on a live backend: quiesce, snapshot, install, rejoin,
/// bump. See the module docs for the full recipe and its safety argument.
///
/// The caller must hold no operation in flight anywhere in the cluster —
/// the driver surfaces enforce this for driver-issued operations and
/// document it for raw blocking clients.
///
/// # Errors
///
/// [`DriverError::UnknownProcess`] / [`DriverError::NotCrashed`] for bad
/// targets; [`DriverError::RecoveryUnsupported`] when the automaton has no
/// recovery hooks; [`DriverError::Backend`] when no live donor exists or
/// the cluster does not quiesce within the budget. On any error the
/// process is left `Crashed` (never half-recovered).
pub fn recover_process<A: Automaton>(
    proc: ProcessId,
    parts: &RecoveryParts<'_, A>,
) -> Result<(), DriverError> {
    let pi = proc.index();
    if pi >= parts.cfg.n() {
        return Err(DriverError::UnknownProcess(proc));
    }
    if parts.inboxes[pi].is_none() {
        return Err(DriverError::Backend(format!(
            "process {proc} is not hosted on this node"
        )));
    }
    parts.life.lock()[pi]
        .begin_recovery()
        .map_err(|_| DriverError::NotCrashed(proc))?;
    match run_recovery(proc, parts) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Never half-recovered: back to Crashed, flag re-set (it may
            // have been cleared between install and a failed rejoin).
            parts.crashed[pi].store(true, Ordering::Relaxed);
            parts.life.lock()[pi].abort_recovery();
            Err(e)
        }
    }
}

fn run_recovery<A: Automaton>(
    proc: ProcessId,
    parts: &RecoveryParts<'_, A>,
) -> Result<(), DriverError> {
    let pi = proc.index();
    let n = parts.cfg.n();
    let live: Vec<usize> = (0..n)
        .filter(|&q| {
            q != pi && !parts.crashed[q].load(Ordering::Relaxed) && parts.inboxes[q].is_some()
        })
        .collect();
    if live.is_empty() {
        return Err(DriverError::Backend(
            "no live donor process to recover from".into(),
        ));
    }

    // Phase 1+2: quiesce with barrier, collecting the donors' snapshots.
    // Each round: wait for the books to balance, barrier through every
    // live process (the snapshot request), then confirm nothing moved —
    // handling a backlog frame can emit fresh sends, which reopen the
    // books and force another round.
    let deadline = Instant::now() + parts.quiesce_timeout;
    let donor_snaps: Vec<Vec<(RegisterId, Vec<A::Value>)>> = loop {
        while !books_balance(&parts.stats.lock()) {
            if Instant::now() >= deadline {
                return Err(DriverError::Backend(
                    "recovery quiesce timed out: messages still in flight".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let sent_before = parts.stats.lock().total_sent();
        let mut replies = Vec::with_capacity(live.len());
        for &q in &live {
            let (tx, rx) = bounded(1);
            let inbox = parts.inboxes[q].as_ref().expect("live peers have inboxes");
            if inbox.send(Incoming::SnapshotReq { reply: tx }).is_err() {
                return Err(DriverError::Backend(format!(
                    "donor process p{q} is gone (node shutting down?)"
                )));
            }
            match rx.recv_timeout(STEP_TIMEOUT) {
                Ok(Some(snaps)) => replies.push(snaps),
                Ok(None) => return Err(DriverError::RecoveryUnsupported),
                Err(_) => {
                    return Err(DriverError::Backend(format!(
                        "donor process p{q} did not answer the snapshot request"
                    )))
                }
            }
        }
        let st = parts.stats.lock();
        if books_balance(&st) && st.total_sent() == sent_before {
            break replies;
        }
        drop(st);
        if Instant::now() >= deadline {
            return Err(DriverError::Backend(
                "recovery quiesce timed out: the cluster kept generating traffic".into(),
            ));
        }
    };

    // Phase 2: per register, the longest confirmed snapshot wins.
    let mut barrier: Vec<(RegisterId, Vec<A::Value>)> = Vec::with_capacity(parts.registers.len());
    for &reg in parts.registers {
        let mut best: Option<Vec<A::Value>> = None;
        for donor in &donor_snaps {
            if let Some((_, s)) = donor.iter().find(|(r, _)| *r == reg) {
                if best.as_ref().is_none_or(|b| s.len() > b.len()) {
                    best = Some(s.clone());
                }
            }
        }
        let Some(best) = best else {
            return Err(DriverError::RecoveryUnsupported);
        };
        barrier.push((reg, best));
    }

    // Phase 3: codec fidelity + accounting. The live backends all speak
    // the byte codec (sockets leave no choice; the in-process cluster
    // proves fidelity the same way), so the installed values are the ones
    // that survived encode → decode.
    let mut installed: Vec<(RegisterId, Vec<A::Value>)> = Vec::with_capacity(barrier.len());
    {
        let mut st = parts.stats.lock();
        for (reg, values) in barrier {
            let snap = Snapshot::new(reg, values);
            let blob = snap.encode().map_err(|e| {
                DriverError::Backend(format!("snapshot encode failed for {reg}: {e}"))
            })?;
            st.record_snapshot_frame(blob.len() as u64);
            let decoded = Snapshot::<A::Value>::decode(&blob).map_err(|e| {
                DriverError::Backend(format!("snapshot codec round-trip failed for {reg}: {e}"))
            })?;
            installed.push((decoded.reg, decoded.values));
        }
    }
    let snapshots: RegisterSnapshots<A::Value> = Arc::new(installed);

    // Phase 4a: install at the parked process.
    {
        let (tx, rx) = bounded(1);
        let inbox = parts.inboxes[pi].as_ref().expect("checked above");
        if inbox
            .send(Incoming::Install {
                snapshots: Arc::clone(&snapshots),
                reply: tx,
            })
            .is_err()
        {
            return Err(DriverError::Backend(format!(
                "process {proc} thread is gone (node shutting down?)"
            )));
        }
        rx.recv_timeout(STEP_TIMEOUT).map_err(|_| {
            DriverError::Backend(format!("process {proc} did not ack the snapshot install"))
        })?;
    }

    // Phase 4b: un-crash (links deliver to it again; the network is empty,
    // so the first frame it sees is post-barrier), then rejoin the peers.
    parts.crashed[pi].store(false, Ordering::Relaxed);
    for &q in &live {
        let (tx, rx) = bounded(1);
        let inbox = parts.inboxes[q].as_ref().expect("live peers have inboxes");
        if inbox
            .send(Incoming::Rejoin {
                rejoining: proc,
                snapshots: Arc::clone(&snapshots),
                reply: tx,
            })
            .is_err()
        {
            return Err(DriverError::Backend(format!(
                "peer process p{q} is gone (node shutting down?)"
            )));
        }
        rx.recv_timeout(STEP_TIMEOUT).map_err(|_| {
            DriverError::Backend(format!("peer process p{q} did not ack the rejoin"))
        })?;
    }

    // Phase 5: bump the incarnation, open a fresh stats ledger, record the
    // recovery in the history.
    let incarnation = {
        let mut life = parts.life.lock();
        life[pi].complete_recovery(true);
        life[pi].incarnation
    };
    parts.stats.lock().record_recovery();
    parts
        .recorder
        .recovered(proc, parts.recorder.now(), incarnation);
    Ok(())
}
