//! Crash-failure injection.
//!
//! "A process may halt prematurely (crash failure), but executes correctly
//! its local algorithm until it possibly crashes" (§2.1). A crashed process
//! stops taking steps: it handles no further events and sends no further
//! messages. Messages already handed to the network stay in flight (channels
//! are reliable); messages *addressed to* a crashed process are silently
//! dropped at delivery.
//!
//! Two crash triggers are supported:
//!
//! * [`CrashPoint::AtTime`] — crash at a virtual-time instant;
//! * [`CrashPoint::OnStep`] — crash while executing the process's k-th
//!   handler, after only a prefix of that handler's sends has reached the
//!   network. This reproduces the paper's "crashes during this broadcast ⇒
//!   the message is received by an arbitrary subset of processes" (§3.5)
//!   deterministically.

use twobit_proto::ProcessId;

use crate::SimTime;

/// When (and how abruptly) a process crashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash at the given virtual time (before handling any event scheduled
    /// at a strictly later time).
    AtTime(SimTime),
    /// Crash during the process's `step`-th handler execution (1-based,
    /// counting both invocations and message deliveries): the handler runs,
    /// but only its first `sends_allowed` outgoing messages are released to
    /// the network, and any operation completion it produced is suppressed
    /// (the process died before returning to its caller).
    OnStep {
        /// 1-based index of the fatal handler execution.
        step: u64,
        /// How many of that handler's sends escape before the crash.
        sends_allowed: usize,
    },
}

/// A per-run crash schedule: at most one crash point per process.
///
/// # Examples
///
/// ```
/// use twobit_simnet::{CrashPlan, CrashPoint};
///
/// let plan = CrashPlan::none()
///     .with_crash(2, CrashPoint::AtTime(5_000))
///     .with_crash(4, CrashPoint::OnStep { step: 3, sends_allowed: 1 });
/// assert_eq!(plan.crash_count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    entries: Vec<(ProcessId, CrashPoint)>,
}

impl CrashPlan {
    /// A plan in which no process crashes (failure-free run).
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Adds a crash for `proc` (builder style). A later entry for the same
    /// process replaces the earlier one.
    pub fn with_crash(mut self, proc: impl Into<ProcessId>, point: CrashPoint) -> Self {
        let proc = proc.into();
        self.entries.retain(|(p, _)| *p != proc);
        self.entries.push((proc, point));
        self
    }

    /// Looks up the crash point for `proc`, if any.
    pub fn point_for(&self, proc: ProcessId) -> Option<CrashPoint> {
        self.entries
            .iter()
            .find(|(p, _)| *p == proc)
            .map(|(_, c)| *c)
    }

    /// Number of processes scheduled to crash.
    pub fn crash_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over all scheduled crashes.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, CrashPoint)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan() {
        let plan = CrashPlan::none();
        assert_eq!(plan.crash_count(), 0);
        assert_eq!(plan.point_for(ProcessId::new(0)), None);
    }

    #[test]
    fn with_crash_replaces() {
        let plan = CrashPlan::none()
            .with_crash(1, CrashPoint::AtTime(10))
            .with_crash(1, CrashPoint::AtTime(20));
        assert_eq!(plan.crash_count(), 1);
        assert_eq!(
            plan.point_for(ProcessId::new(1)),
            Some(CrashPoint::AtTime(20))
        );
    }

    #[test]
    fn iter_yields_all() {
        let plan = CrashPlan::none()
            .with_crash(0, CrashPoint::AtTime(1))
            .with_crash(
                3,
                CrashPoint::OnStep {
                    step: 2,
                    sends_allowed: 0,
                },
            );
        let got: Vec<_> = plan.iter().collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&(
            ProcessId::new(3),
            CrashPoint::OnStep {
                step: 2,
                sends_allowed: 0
            }
        )));
    }
}
