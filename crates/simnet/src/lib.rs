//! Deterministic discrete-event simulator for crash-prone asynchronous
//! message-passing systems (`CAMP_{n,t}` — paper §2.1).
//!
//! The paper's model has: `n` sequential asynchronous processes; a complete
//! network of reliable, not-necessarily-FIFO, asynchronous channels; and up
//! to `t` crash failures. This crate realizes that model as a seeded,
//! fully-deterministic event simulation so that:
//!
//! * every run is replayable from its seed (failures found by property tests
//!   shrink to a reproducible counterexample);
//! * *virtual time* lets us measure the paper's Δ-based time complexities
//!   exactly (write ≤ 2Δ, read ≤ 4Δ in the failure-free case);
//! * message counts and wire bits are observable per message kind, which is
//!   what Table 1 reports;
//! * crash injection is precise to a single send within a broadcast
//!   ("if `p_i` crashes during this broadcast, the message `READ()` is
//!   received by an arbitrary subset of processes" — §3.5).
//!
//! The entry point is [`SimBuilder`]; an [`Automaton`](twobit_proto::Automaton)
//! supplies the protocol logic.
//!
//! # Examples
//!
//! ```
//! use twobit_proto::{Operation, SystemConfig};
//! use twobit_simnet::{ClientPlan, DelayModel, SimBuilder};
//! # use twobit_simnet::testutil::NullRegister;
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let mut sim = SimBuilder::new(cfg)
//!     .seed(7)
//!     .delay(DelayModel::Fixed(1_000))
//!     .build(|id| NullRegister::new(id, cfg));
//! sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64), Operation::Read]));
//! let report = sim.run()?;
//! assert_eq!(report.history.completed().count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod delay;
pub mod invariant;
pub mod sim;
pub mod space;
pub mod testutil;
pub mod workload;

pub use crash::{CrashPlan, CrashPoint};
pub use delay::DelayModel;
pub use invariant::{InFlightMsg, InvariantViolation, SimInvariant, SimView};
pub use sim::{SimBuilder, SimError, SimReport, Simulation};
pub use space::{SimSpace, SpaceBuilder, VirtualHold};
pub use twobit_proto::stats::{NetStats, StatsSnapshot};
pub use workload::{ClientPlan, PlannedOp};

/// Virtual time unit used by the simulator (dimensionless "ticks").
///
/// Experiments conventionally set the message-delay bound Δ to
/// [`DEFAULT_DELTA`] ticks so latencies read directly in Δ units.
pub type SimTime = u64;

/// Conventional value of the paper's message-delay bound Δ, in ticks.
pub const DEFAULT_DELTA: SimTime = 1_000;
