//! The discrete-event simulation engine.
//!
//! Executes a set of [`Automaton`] processes under the `CAMP_{n,t}` model:
//! events (operation invocations, message deliveries, crashes) are processed
//! in virtual-time order; handlers run atomically and instantaneously (the
//! paper's time-complexity analysis assumes instantaneous local computation);
//! message delays are sampled from a [`DelayModel`]; ties are broken by a
//! global sequence number, making every run a deterministic function of the
//! seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use twobit_proto::{
    Automaton, Driver, DriverError, Effects, History, Lifecycle, OpId, OpOutcome, OpRecord,
    OpTicket, Operation, ProcessId, RegisterId, ShardedHistory, SystemConfig, WireMessage,
};

use crate::crash::{CrashPlan, CrashPoint};
use crate::delay::DelayModel;
use crate::invariant::{InFlightMsg, InvariantViolation, SimInvariant, SimView};
use crate::workload::{ClientPlan, PlannedOp};
use crate::SimTime;
use twobit_proto::stats::NetStats;

/// Errors terminating a simulation abnormally.
#[derive(Debug)]
pub enum SimError {
    /// A registered invariant failed.
    InvariantViolated(InvariantViolation),
    /// The protocol misbehaved at the harness level (e.g. completed an
    /// operation twice, or an operation that was never invoked).
    ProtocolError(String),
    /// The event budget was exhausted — almost certainly a livelock or a
    /// runaway message storm.
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// Virtual time ran past the configured horizon.
    TimeLimitExceeded {
        /// The configured limit.
        limit: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvariantViolated(v) => write!(f, "{v}"),
            SimError::ProtocolError(d) => write!(f, "protocol error: {d}"),
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit exceeded ({limit} events)")
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "virtual time limit exceeded (t={limit})")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<InvariantViolation> for SimError {
    fn from(v: InvariantViolation) -> Self {
        SimError::InvariantViolated(v)
    }
}

/// Outcome of a completed simulation run.
#[derive(Debug)]
pub struct SimReport<A: Automaton> {
    /// The operation history of the run (input to `twobit-lincheck`).
    pub history: History<A::Value>,
    /// Network statistics.
    pub stats: NetStats,
    /// Virtual time at which the run went quiescent.
    pub final_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Operations of *live* processes that never completed. Non-empty means
    /// the protocol stalled — expected only when more than `t` processes
    /// crashed (quorum unreachable), a liveness bug otherwise.
    pub stalled_ops: Vec<OpId>,
    /// Final automaton states (for post-mortem inspection).
    pub procs: Vec<A>,
    /// Final crash flags.
    pub crashed: Vec<bool>,
}

impl<A: Automaton> SimReport<A> {
    /// Convenience: `true` if every operation by a live process completed.
    pub fn all_live_ops_completed(&self) -> bool {
        self.stalled_ops.is_empty()
    }
}

/// Builder for a [`Simulation`].
#[derive(Debug)]
pub struct SimBuilder {
    cfg: SystemConfig,
    seed: u64,
    delay: DelayModel,
    crashes: CrashPlan,
    check_every: u64,
    max_events: u64,
    max_time: SimTime,
}

impl SimBuilder {
    /// Starts configuring a simulation of `cfg.n()` processes.
    pub fn new(cfg: SystemConfig) -> Self {
        SimBuilder {
            cfg,
            seed: 0,
            delay: DelayModel::Fixed(crate::DEFAULT_DELTA),
            crashes: CrashPlan::none(),
            check_every: 1,
            max_events: 50_000_000,
            max_time: SimTime::MAX / 4,
        }
    }

    /// Sets the RNG seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the crash schedule.
    pub fn crashes(mut self, crashes: CrashPlan) -> Self {
        self.crashes = crashes;
        self
    }

    /// Checks registered invariants every `k` events (`0` disables checks;
    /// default `1` = after every event).
    pub fn check_every(mut self, k: u64) -> Self {
        self.check_every = k;
        self
    }

    /// Sets the runaway guard on the number of events.
    pub fn max_events(mut self, limit: u64) -> Self {
        self.max_events = limit;
        self
    }

    /// Sets the runaway guard on virtual time.
    pub fn max_time(mut self, limit: SimTime) -> Self {
        self.max_time = limit;
        self
    }

    /// Instantiates the processes via `make` and returns the simulation.
    ///
    /// The initial register value is taken from the automatons themselves;
    /// `initial` records it in the history for the checker.
    pub fn build_with_initial<A, F>(self, initial: A::Value, mut make: F) -> Simulation<A>
    where
        A: Automaton,
        F: FnMut(ProcessId) -> A,
    {
        let n = self.cfg.n();
        let procs: Vec<A> = (0..n).map(|i| make(ProcessId::new(i))).collect();
        for (i, p) in procs.iter().enumerate() {
            assert_eq!(p.id().index(), i, "automaton id must match its slot");
        }
        let mut sim = Simulation {
            cfg: self.cfg,
            procs,
            crashed: vec![false; n],
            fatal_step: vec![None; n],
            steps_taken: vec![0; n],
            now: 0,
            queue: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(self.seed),
            delay: self.delay,
            history: History::new(initial),
            stats: NetStats::new(),
            plans: (0..n).map(|_| Vec::new()).collect(),
            plan_cursor: vec![0; n],
            plan_start: vec![0; n],
            started: false,
            outstanding: vec![None; n],
            invariants: Vec::new(),
            check_every: self.check_every,
            events: 0,
            max_events: self.max_events,
            max_time: self.max_time,
        };
        // Schedule time-based crashes now so they sort before same-instant
        // deliveries (lower seq). Step-based crashes arm `fatal_step`.
        for (p, point) in self.crashes.iter() {
            match point {
                CrashPoint::AtTime(t) => {
                    sim.push_event(t, p, EventKind::Crash);
                }
                CrashPoint::OnStep {
                    step,
                    sends_allowed,
                } => {
                    sim.fatal_step[p.index()] = Some((step, sends_allowed));
                }
            }
        }
        sim
    }

    /// Instantiates the processes via `make`, using `V::default()` as the
    /// recorded initial register value.
    pub fn build<A, F>(self, make: F) -> Simulation<A>
    where
        A: Automaton,
        A::Value: Default,
        F: FnMut(ProcessId) -> A,
    {
        self.build_with_initial(A::Value::default(), make)
    }
}

enum EventKind<A: Automaton> {
    Deliver {
        from: ProcessId,
        msg: A::Msg,
        sent_at: SimTime,
    },
    Invoke {
        op: Operation<A::Value>,
        /// `Some(op_id)` for interactively-driven invocations (the record
        /// and the outstanding slot were created at [`Driver::invoke`]
        /// time); `None` for plan-scripted ones, which allocate on
        /// processing.
        pre_allocated: Option<OpId>,
    },
    Crash,
}

struct QueuedEvent<A: Automaton> {
    at: SimTime,
    seq: u64,
    proc: ProcessId,
    kind: EventKind<A>,
}

// Total order on events: `(at, seq)` ascending — virtual time first, then
// the birth sequence number as the same-instant tie-break. Every `seq` is
// allocated at a point determined by the configuration and prior events
// (time-based crashes at build, first plan invocations at start in
// process-id order, handler sends in handler order), never by the order
// test code happened to call the builder — so two identically-configured
// simulations replay identically, whatever the insertion order.
// `BinaryHeap` is a max-heap; the comparison is reversed to pop the
// minimum.
impl<A: Automaton> PartialEq for QueuedEvent<A> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<A: Automaton> Eq for QueuedEvent<A> {}
impl<A: Automaton> PartialOrd for QueuedEvent<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: Automaton> Ord for QueuedEvent<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A configured, runnable simulation.
///
/// Construct with [`SimBuilder`], add [`ClientPlan`]s and invariants, then
/// call [`Simulation::run`].
pub struct Simulation<A: Automaton> {
    cfg: SystemConfig,
    procs: Vec<A>,
    crashed: Vec<bool>,
    fatal_step: Vec<Option<(u64, usize)>>,
    steps_taken: Vec<u64>,
    now: SimTime,
    queue: BinaryHeap<QueuedEvent<A>>,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    history: History<A::Value>,
    stats: NetStats,
    plans: Vec<Vec<PlannedOp<A::Value>>>,
    plan_cursor: Vec<usize>,
    /// Virtual instant of each process's first scripted invocation
    /// (start offset + the first op's delay).
    plan_start: Vec<SimTime>,
    /// Whether the first event has been processed. First plan invocations
    /// are scheduled lazily at that point, in process-id order, so the
    /// order of `client_plan` calls never leaks into event sequence
    /// numbers (a prerequisite for byte-stable schedule replay).
    started: bool,
    /// Per process: the outstanding op and whether it came from a plan
    /// (plan-issued completions schedule the next scripted op).
    outstanding: Vec<Option<(OpId, bool)>>,
    invariants: Vec<Box<dyn SimInvariant<A>>>,
    check_every: u64,
    events: u64,
    max_events: u64,
    max_time: SimTime,
}

impl<A: Automaton> std::fmt::Debug for Simulation<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("cfg", &self.cfg)
            .field("now", &self.now)
            .field("crashed", &self.crashed)
            .field("queued_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> Simulation<A> {
    /// Assigns a client plan to a process. First invocations are scheduled
    /// when the simulation starts stepping, in process-id order — the
    /// order of `client_plan` calls is immaterial to the run.
    ///
    /// # Panics
    ///
    /// Panics if the process already has a plan (a replacement would break
    /// per-process sequentiality) or if the simulation has already started
    /// stepping (the new plan's first invocation would be silently late).
    pub fn client_plan(&mut self, proc: impl Into<ProcessId>, plan: ClientPlan<A::Value>) {
        let proc = proc.into();
        assert!(
            !self.started,
            "client plans must be assigned before the simulation steps"
        );
        assert!(
            self.plans[proc.index()].is_empty(),
            "process {proc} already has a client plan"
        );
        let (ops, start_at) = plan.into_parts();
        if let Some(first) = ops.first() {
            self.plan_start[proc.index()] = start_at + first.delay_before;
        }
        self.plans[proc.index()] = ops;
        self.plan_cursor[proc.index()] = 0;
    }

    /// Registers a global invariant, checked every `check_every` events.
    pub fn add_invariant(&mut self, inv: Box<dyn SimInvariant<A>>) {
        self.invariants.push(inv);
    }

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn push_event(&mut self, at: SimTime, proc: ProcessId, kind: EventKind<A>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent {
            at,
            seq,
            proc,
            kind,
        });
    }

    /// Schedules every plan's first invocation, in process-id order, the
    /// first time the simulation steps. Deferring this to start makes the
    /// invocation events' sequence numbers (the same-instant tie-break) a
    /// function of the process ids alone, not of `client_plan` call order.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.plans.len() {
            if !self.plans[i].is_empty() {
                self.schedule_invoke(ProcessId::new(i), self.plan_start[i]);
            }
        }
    }

    fn schedule_invoke(&mut self, proc: ProcessId, at: SimTime) {
        let cursor = self.plan_cursor[proc.index()];
        let op = self.plans[proc.index()][cursor].op.clone();
        self.push_event(
            at,
            proc,
            EventKind::Invoke {
                op,
                pre_allocated: None,
            },
        );
    }

    /// Processes the next queued event. Returns `Ok(false)` when the queue
    /// is empty (quiescence).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on invariant violation, protocol misbehaviour,
    /// or when the event/time guards trip.
    pub fn step(&mut self) -> Result<bool, SimError> {
        self.ensure_started();
        let Some(ev) = self.queue.pop() else {
            return Ok(false);
        };
        debug_assert!(ev.at >= self.now, "time must be monotone");
        self.now = ev.at;
        if self.now > self.max_time {
            return Err(SimError::TimeLimitExceeded {
                limit: self.max_time,
            });
        }
        self.events += 1;
        if self.events > self.max_events {
            return Err(SimError::EventLimitExceeded {
                limit: self.max_events,
            });
        }

        let p = ev.proc;
        let pi = p.index();
        match ev.kind {
            EventKind::Crash => {
                self.crashed[pi] = true;
            }
            EventKind::Deliver { from, msg, .. } => {
                if self.crashed[pi] {
                    self.stats.record_drop_to_crashed();
                } else {
                    self.stats.record_delivery();
                    let mut fx = Effects::new();
                    self.procs[pi].on_message(from, msg, &mut fx);
                    self.finish_step(p, fx)?;
                }
            }
            EventKind::Invoke { op, pre_allocated } => {
                if !self.crashed[pi] {
                    let op_id = match pre_allocated {
                        // Interactive invocation: record and outstanding slot
                        // were created at `Driver::invoke` time.
                        Some(op_id) => op_id,
                        None => {
                            let op_id = OpId::new(self.history.records.len() as u64);
                            if let Some((prev, _)) = self.outstanding[pi] {
                                return Err(SimError::ProtocolError(format!(
                                    "process {p} invoked {op_id} while {prev} is outstanding"
                                )));
                            }
                            self.outstanding[pi] = Some((op_id, true));
                            self.history.records.push(OpRecord {
                                op_id,
                                proc: p,
                                op: op.clone(),
                                invoked_at: self.now,
                                completed: None,
                            });
                            op_id
                        }
                    };
                    let mut fx = Effects::new();
                    self.procs[pi].on_invoke(op_id, op, &mut fx);
                    self.finish_step(p, fx)?;
                }
            }
        }

        if self.check_every > 0 && self.events.is_multiple_of(self.check_every) {
            self.check_invariants()?;
        }
        Ok(true)
    }

    /// Processes events until the queue drains.
    ///
    /// # Errors
    ///
    /// As for [`Simulation::step`].
    pub fn run_to_quiescence(&mut self) -> Result<(), SimError> {
        while self.step()? {}
        Ok(())
    }

    /// Consumes the (quiescent or abandoned) simulation into its report.
    pub fn into_report(self) -> SimReport<A> {
        // Collect ops of live processes that never completed.
        let stalled_ops = self
            .history
            .records
            .iter()
            .filter(|r| !r.is_complete() && !self.crashed[r.proc.index()])
            .map(|r| r.op_id)
            .collect();

        SimReport {
            history: self.history,
            stats: self.stats,
            final_time: self.now,
            events: self.events,
            stalled_ops,
            procs: self.procs,
            crashed: self.crashed,
        }
    }

    /// Runs the simulation to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on invariant violation, protocol misbehaviour,
    /// or when the event/time guards trip.
    pub fn run(mut self) -> Result<SimReport<A>, SimError> {
        self.run_to_quiescence()?;
        Ok(self.into_report())
    }

    /// Applies the effects of one handler execution at process `p`,
    /// honouring a step-based crash point if armed.
    fn finish_step(
        &mut self,
        p: ProcessId,
        mut fx: Effects<A::Msg, A::Value>,
    ) -> Result<(), SimError> {
        let pi = p.index();
        self.steps_taken[pi] += 1;
        let mut sends_allowed = usize::MAX;
        let mut dies_now = false;
        if let Some((step, allowed)) = self.fatal_step[pi] {
            if self.steps_taken[pi] == step {
                sends_allowed = allowed;
                dies_now = true;
            }
        }

        for (idx, (to, msg)) in fx.drain_sends().enumerate() {
            if idx >= sends_allowed {
                break;
            }
            debug_assert!(to != p, "protocols must not send to self");
            self.stats.record_send(msg.kind(), msg.cost());
            let delay = self.delay.sample(&mut self.rng);
            let sent_at = self.now;
            self.push_event(
                self.now + delay,
                to,
                EventKind::Deliver {
                    from: p,
                    msg,
                    sent_at,
                },
            );
        }

        if dies_now {
            // The process dies inside this handler: its completions are
            // suppressed (the caller never sees a response).
            self.crashed[pi] = true;
            return Ok(());
        }

        for (op_id, outcome) in fx.drain_completions() {
            let rec = self
                .history
                .records
                .get_mut(op_id.raw() as usize)
                .ok_or_else(|| {
                    SimError::ProtocolError(format!("completion for unknown op {op_id}"))
                })?;
            if rec.completed.is_some() {
                return Err(SimError::ProtocolError(format!(
                    "op {op_id} completed twice"
                )));
            }
            if rec.proc != p {
                return Err(SimError::ProtocolError(format!(
                    "op {op_id} of {} completed by {p}",
                    rec.proc
                )));
            }
            rec.completed = Some((self.now, outcome));
            let Some((outstanding_op, from_plan)) = self.outstanding[pi] else {
                return Err(SimError::ProtocolError(format!(
                    "op {op_id} completed but was not outstanding at {p}"
                )));
            };
            if outstanding_op != op_id {
                return Err(SimError::ProtocolError(format!(
                    "op {op_id} completed but was not outstanding at {p}"
                )));
            }
            self.outstanding[pi] = None;
            if from_plan {
                // Closed loop: schedule the next scripted op, if any.
                self.plan_cursor[pi] += 1;
                let cursor = self.plan_cursor[pi];
                if cursor < self.plans[pi].len() {
                    let at = self.now + self.plans[pi][cursor].delay_before;
                    self.schedule_invoke(p, at);
                }
            }
        }
        Ok(())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Snapshot of the network statistics so far.
    pub fn net_stats(&self) -> NetStats {
        self.stats.clone()
    }

    fn check_invariants(&mut self) -> Result<(), SimError> {
        if self.invariants.is_empty() {
            return Ok(());
        }
        let inflight: Vec<InFlightMsg<'_, A::Msg>> = self
            .queue
            .iter()
            .filter_map(|ev| match &ev.kind {
                EventKind::Deliver { from, msg, sent_at } => Some(InFlightMsg {
                    from: *from,
                    to: ev.proc,
                    msg,
                    sent_at: *sent_at,
                    deliver_at: ev.at,
                    send_seq: ev.seq,
                }),
                _ => None,
            })
            .collect();
        let view = SimView {
            now: self.now,
            procs: &self.procs,
            crashed: &self.crashed,
            inflight: &inflight,
        };
        let mut invariants = std::mem::take(&mut self.invariants);
        let mut failure = None;
        for inv in &mut invariants {
            if let Err(detail) = inv.check(&view) {
                failure = Some(InvariantViolation {
                    invariant: inv.name(),
                    at: self.now,
                    detail,
                });
                break;
            }
        }
        // Also run each automaton's local invariant checks.
        if failure.is_none() {
            for (i, a) in self.procs.iter().enumerate() {
                if self.crashed[i] {
                    continue;
                }
                if let Err(detail) = a.check_local_invariants() {
                    failure = Some(InvariantViolation {
                        invariant: "local",
                        at: self.now,
                        detail: format!("{}: {detail}", a.id()),
                    });
                    break;
                }
            }
        }
        // `view` and `inflight` borrow `self.procs`/`self.queue`; both end
        // here, freeing `self` for the reassignment below.
        let _ = view;
        drop(inflight);
        self.invariants = invariants;
        match failure {
            Some(v) => Err(v.into()),
            None => Ok(()),
        }
    }
}

/// Interactive, backend-agnostic driving of a **single-register**
/// simulation (the paper's original setting) — the sharded analogue is
/// [`SimSpace`](crate::SimSpace).
///
/// `invoke` schedules the invocation at the current virtual time; `poll`
/// advances the event loop until the ticket's operation completes.
/// Interactive invocations and scripted [`ClientPlan`]s must not target the
/// same process (the engine rejects overlapping invocations as a protocol
/// error, as the model's sequential processes require).
impl<A: Automaton> Driver for Simulation<A> {
    type Value = A::Value;

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn registers(&self) -> Vec<RegisterId> {
        vec![RegisterId::ZERO]
    }

    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
    ) -> Result<OpTicket, DriverError> {
        if reg != RegisterId::ZERO {
            return Err(DriverError::UnknownRegister(reg));
        }
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if self.crashed[pi] {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        if self.outstanding[pi].is_some() {
            return Err(DriverError::OperationInFlight { proc, reg });
        }
        let op_id = OpId::new(self.history.records.len() as u64);
        self.outstanding[pi] = Some((op_id, false));
        self.history.records.push(OpRecord {
            op_id,
            proc,
            op: op.clone(),
            invoked_at: self.now,
            completed: None,
        });
        self.push_event(
            self.now,
            proc,
            EventKind::Invoke {
                op,
                pre_allocated: Some(op_id),
            },
        );
        Ok(OpTicket { proc, reg, op_id })
    }

    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<A::Value>, DriverError> {
        loop {
            let rec = self
                .history
                .records
                .get(ticket.op_id.raw() as usize)
                .ok_or(DriverError::Stalled(ticket.op_id))?;
            if let Some((_, outcome)) = &rec.completed {
                return Ok(outcome.clone());
            }
            let advanced = self
                .step()
                .map_err(|e| DriverError::Backend(e.to_string()))?;
            if !advanced {
                return if self.crashed[ticket.proc.index()] {
                    Err(DriverError::ProcessUnavailable(ticket.proc))
                } else {
                    Err(DriverError::Stalled(ticket.op_id))
                };
            }
        }
    }

    fn crash(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if self.crashed[pi] {
            return Err(DriverError::AlreadyCrashed(proc));
        }
        self.crashed[pi] = true;
        Ok(())
    }

    fn recover(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if !self.crashed[pi] {
            return Err(DriverError::NotCrashed(proc));
        }
        Err(DriverError::Backend(
            "the scripted Simulation backend does not support recovery; \
             drive recovery workloads through SimSpace"
                .into(),
        ))
    }

    fn lifecycle(&self, proc: ProcessId) -> Lifecycle {
        match self.crashed.get(proc.index()) {
            Some(false) => Lifecycle::Up,
            _ => Lifecycle::Crashed,
        }
    }

    fn history(&self) -> ShardedHistory<A::Value> {
        ShardedHistory::from_tagged(
            self.history.initial.clone(),
            [RegisterId::ZERO],
            self.history
                .records
                .iter()
                .map(|r| (RegisterId::ZERO, r.clone())),
        )
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{EchoMsg, MajorityEcho, NullRegister};
    use crate::{ClientPlan, CrashPlan, CrashPoint, DelayModel, PlannedOp};

    fn cfg5() -> SystemConfig {
        SystemConfig::new(5, 2).unwrap()
    }

    #[test]
    fn null_register_runs_to_quiescence() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut sim = SimBuilder::new(cfg).build(|id| NullRegister::new(id, cfg));
        sim.client_plan(
            0,
            ClientPlan::ops([Operation::Write(7u64), Operation::Read]),
        );
        let report = sim.run().unwrap();
        assert!(report.all_live_ops_completed());
        assert_eq!(report.history.len(), 2);
        let read = &report.history.records[1];
        assert_eq!(read.read_result(), Some(&7));
        assert_eq!(report.stats.total_sent(), 0);
    }

    #[test]
    fn majority_echo_write_takes_two_delta_and_2n_minus_2_msgs() {
        let cfg = cfg5();
        let mut sim = SimBuilder::new(cfg)
            .delay(DelayModel::Fixed(1_000))
            .build(|id| MajorityEcho::new(id, cfg));
        sim.client_plan(1, ClientPlan::ops([Operation::Write(9u64)]));
        let report = sim.run().unwrap();
        assert!(report.all_live_ops_completed());
        let w = &report.history.records[0];
        // Broadcast (Δ) + echo (Δ): the quorum is reached at exactly 2Δ.
        assert_eq!(w.latency(), Some(2_000));
        // 4 PINGs + 4 PONGs (all peers eventually echo).
        assert_eq!(report.stats.sent_of_kind("PING"), 4);
        assert_eq!(report.stats.sent_of_kind("PONG"), 4);
        assert_eq!(report.stats.total_delivered(), 8);
    }

    #[test]
    fn plan_insertion_order_does_not_change_the_run() {
        // Two same-instant invocations on different processes: whatever
        // order the plans are assigned in, the event tie-break is the
        // process id, so the histories are identical — the byte-stability
        // schedule replay depends on.
        let run = |flipped: bool| {
            let cfg = cfg5();
            let mut sim = SimBuilder::new(cfg)
                .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
                .seed(17)
                .build(|id| MajorityEcho::new(id, cfg));
            let plans = [
                (0usize, ClientPlan::ops([Operation::Write(1u64)])),
                (1usize, ClientPlan::ops([Operation::Write(2u64)])),
            ];
            let order: Vec<usize> = if flipped { vec![1, 0] } else { vec![0, 1] };
            for i in order {
                let (p, plan) = &plans[i];
                sim.client_plan(*p, plan.clone());
            }
            let report = sim.run().unwrap();
            (
                format!("{:?}", report.history.records),
                report.final_time,
                report.events,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "before the simulation steps")]
    fn late_plan_assignment_is_rejected() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut sim = SimBuilder::new(cfg).build(|id| NullRegister::new(id, cfg));
        sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
        sim.run_to_quiescence().unwrap();
        sim.client_plan(1, ClientPlan::ops([Operation::Write(2u64)]));
    }

    #[test]
    fn crash_at_time_silences_process() {
        let cfg = cfg5();
        let mut sim = SimBuilder::new(cfg)
            .delay(DelayModel::Fixed(1_000))
            .crashes(CrashPlan::none().with_crash(2, CrashPoint::AtTime(500)))
            .build(|id| MajorityEcho::new(id, cfg));
        sim.client_plan(1, ClientPlan::ops([Operation::Write(9u64)]));
        let report = sim.run().unwrap();
        // p2 is dead before the PING arrives: only 3 PONGs, still a quorum.
        assert!(report.all_live_ops_completed());
        assert_eq!(report.stats.sent_of_kind("PONG"), 3);
        assert_eq!(report.stats.dropped_to_crashed(), 1);
        assert!(report.crashed[2]);
    }

    #[test]
    fn write_stalls_without_quorum() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        // Crash both peers: the writer can never gather n-t = 2 acks.
        let mut sim = SimBuilder::new(cfg)
            .crashes(
                CrashPlan::none()
                    .with_crash(1, CrashPoint::AtTime(1))
                    .with_crash(2, CrashPoint::AtTime(1)),
            )
            .build(|id| MajorityEcho::new(id, cfg));
        sim.client_plan(0, ClientPlan::ops([Operation::Write(3u64)]).starting_at(10));
        let report = sim.run().unwrap();
        assert_eq!(report.stalled_ops.len(), 1);
        assert!(!report.all_live_ops_completed());
    }

    #[test]
    fn on_step_crash_cuts_broadcast() {
        let cfg = cfg5();
        // The writer's first handler execution is the write invocation,
        // which broadcasts 4 PINGs; allow only 2 to escape.
        let mut sim = SimBuilder::new(cfg)
            .crashes(CrashPlan::none().with_crash(
                1,
                CrashPoint::OnStep {
                    step: 1,
                    sends_allowed: 2,
                },
            ))
            .build(|id| MajorityEcho::new(id, cfg));
        sim.client_plan(1, ClientPlan::ops([Operation::Write(9u64)]));
        let report = sim.run().unwrap();
        assert_eq!(report.stats.sent_of_kind("PING"), 2);
        // The write never completes, but its process crashed, so it is not
        // counted as stalled.
        assert!(report.all_live_ops_completed());
        assert!(report.crashed[1]);
        assert!(!report.history.records[0].is_complete());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = cfg5();
        let run = |seed: u64| {
            let mut sim = SimBuilder::new(cfg)
                .seed(seed)
                .delay(DelayModel::Uniform { lo: 10, hi: 2_000 })
                .build(|id| MajorityEcho::new(id, cfg));
            sim.client_plan(
                1,
                ClientPlan::ops((0..20).map(|i| Operation::Write(i as u64))),
            );
            sim.client_plan(3, ClientPlan::ops((0..20).map(|_| Operation::<u64>::Read)));
            let r = sim.run().unwrap();
            (
                r.final_time,
                r.events,
                r.stats.total_sent(),
                r.history
                    .records
                    .iter()
                    .map(|rec| (rec.invoked_at, rec.response_at()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn closed_loop_respects_delays() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut sim = SimBuilder::new(cfg).build(|id| NullRegister::new(id, cfg));
        sim.client_plan(
            0,
            ClientPlan::new(vec![
                PlannedOp::after(100, Operation::Write(1u64)),
                PlannedOp::after(50, Operation::Read),
            ])
            .starting_at(1_000),
        );
        let report = sim.run().unwrap();
        assert_eq!(report.history.records[0].invoked_at, 1_100);
        // NullRegister completes instantly, so the read fires 50 later.
        assert_eq!(report.history.records[1].invoked_at, 1_150);
    }

    #[test]
    fn invariant_violation_aborts() {
        let cfg = cfg5();
        let mut sim = SimBuilder::new(cfg)
            .delay(DelayModel::Fixed(100))
            .build(|id| MajorityEcho::new(id, cfg));
        sim.client_plan(1, ClientPlan::ops([Operation::Write(9u64)]));
        sim.add_invariant(Box::new((
            "no-pings-please",
            |view: &SimView<'_, MajorityEcho>| {
                if view
                    .inflight
                    .iter()
                    .any(|m| matches!(m.msg, EchoMsg::Ping(_)))
                {
                    Err("saw a PING in flight".to_string())
                } else {
                    Ok(())
                }
            },
        )));
        let err = sim.run().unwrap_err();
        match err {
            SimError::InvariantViolated(v) => {
                assert_eq!(v.invariant, "no-pings-please");
                assert!(v.detail.contains("PING"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn event_limit_guards_runaway() {
        let cfg = cfg5();
        let mut sim = SimBuilder::new(cfg)
            .max_events(3)
            .build(|id| MajorityEcho::new(id, cfg));
        sim.client_plan(1, ClientPlan::ops([Operation::Write(1u64)]));
        match sim.run() {
            Err(SimError::EventLimitExceeded { limit: 3 }) => {}
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn channel_view_orders_by_send_seq() {
        // Verified indirectly: the invariant sees both PINGs on p1->p0? No —
        // one PING per destination. Instead check the channel() helper over
        // a two-writes run where WRITE+WRITE pings stack up on a channel.
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut sim = SimBuilder::new(cfg)
            .delay(DelayModel::Fixed(10_000))
            .build(|id| MajorityEcho::new(id, cfg));
        // Two processes write concurrently: both send a PING to p2.
        sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
        sim.client_plan(1, ClientPlan::ops([Operation::Write(2u64)]).starting_at(1));
        let seen = std::rc::Rc::new(std::cell::Cell::new(false));
        let seen2 = seen.clone();
        sim.add_invariant(Box::new((
            "channel-order",
            move |view: &SimView<'_, MajorityEcho>| {
                let ch = view.channel(ProcessId::new(0), ProcessId::new(2));
                if !ch.is_empty() {
                    seen2.set(true);
                    for w in ch.windows(2) {
                        if w[0].send_seq >= w[1].send_seq {
                            return Err("channel not sorted".into());
                        }
                    }
                }
                Ok(())
            },
        )));
        sim.run().unwrap();
        assert!(seen.get(), "invariant should have observed the channel");
    }
}
