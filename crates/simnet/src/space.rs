//! Deterministic sharded simulator: many registers over one simulated
//! cluster, driven interactively through the [`Driver`] interface.
//!
//! Where [`Simulation`](crate::Simulation) hosts the paper's single register
//! under scripted client plans, `SimSpace` hosts a whole
//! [`ShardSet`] per process — one automaton instance per register, wire
//! messages wrapped in [`Envelope`]s — and is driven one operation at a
//! time: [`Driver::invoke`] runs the invocation handler at the current
//! virtual instant, [`Driver::poll`] advances the delivery queue until the
//! operation completes. Runs are a deterministic function of the seed, like
//! every simulation in this workspace.
//!
//! The transport unit is the [`Frame`]: all envelopes staged on one ordered
//! link `(src, dst)` at the same virtual instant coalesce into a single
//! frame that crosses the network as one delivery event — one sampled
//! delay, one shared routing header, delivered atomically (all messages or,
//! when the destination crashed, none). Per-message control/data bits are
//! unchanged by framing; the routing saving is visible in
//! [`NetStats::frame_header_bits`](twobit_proto::NetStats::frame_header_bits)
//! versus the per-message figure in
//! [`NetStats::routing_bits`](twobit_proto::NetStats::routing_bits).
//!
//! # Examples
//!
//! ```
//! use twobit_proto::{Driver, ProcessId, RegisterId, SystemConfig};
//! use twobit_simnet::SpaceBuilder;
//! # use twobit_simnet::testutil::NullRegister;
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let mut space = SpaceBuilder::new(cfg)
//!     .seed(7)
//!     .registers(8)
//!     .build(0u64, |_reg, id| NullRegister::new(id, cfg));
//! let p0 = ProcessId::new(0);
//! space.write(p0, RegisterId::new(3), 42)?;
//! assert_eq!(space.read(p0, RegisterId::new(3))?, 42);
//! assert_eq!(space.history().len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use twobit_cache::{cache_pair, CacheDecision, CacheMode, CacheReader, CacheWriter};

/// One process's local read cache: the writer half fed by completions,
/// the reader half consulted on read invocations.
type CachePair<V> = (CacheWriter<V>, CacheReader<V>);
use twobit_proto::{
    Automaton, Driver, DriverError, Effects, EnabledEvent, Envelope, FlushReason, Frame, Lifecycle,
    LifecycleState, NetStats, OpId, OpOutcome, OpRecord, OpTicket, Operation, ProcessId,
    RecoveryRecord, RegisterId, SchedDecision, Schedule, ScheduleStep, Scheduler, ShardSet,
    ShardedHistory, Snapshot, SystemConfig, WireMessage,
};

use crate::delay::DelayModel;
use crate::SimTime;

/// How long a staged link waits for company before flushing, in virtual
/// ticks — the engine-side counterpart of the runtime links'
/// `HoldPolicy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VirtualHold {
    /// A fixed hold window (0 coalesces exactly the sends of one virtual
    /// instant — the historical `flush_hold` behaviour).
    Static(SimTime),
    /// Auto-tune the hold between `floor` and `ceil` from the link's
    /// observed (EWMA) inter-arrival gap in virtual ticks: an idle link
    /// flushes after `floor`, a busy link holds toward `ceil` so staggered
    /// operations coalesce. The same idle/busy EWMA rule as the live
    /// runtime's adaptive `FlushPolicy`, with one deliberate difference:
    /// the virtual engine has no `max_batch` size bound, so a busy link's
    /// hold stretches toward a fixed few arrivals' worth
    /// (`VIRTUAL_GAP_MULTIPLIER` × gap, clamped by `ceil`) instead of the
    /// live batcher's time-to-fill-a-batch (`gap × max_batch`).
    Adaptive {
        /// Minimum hold, applied when the link looks idle.
        floor: SimTime,
        /// Maximum hold, approached as the link gets bursty; also the
        /// idleness threshold (an EWMA gap at or beyond `ceil` means the
        /// next arrival is not worth waiting for).
        ceil: SimTime,
    },
}

impl VirtualHold {
    fn validate(&self) {
        if let VirtualHold::Adaptive { floor, ceil } = self {
            assert!(
                floor <= ceil,
                "adaptive virtual hold has floor {floor} above ceil {ceil}"
            );
        }
    }
}

/// Per-link adaptive state: the EWMA inter-arrival gap and the last
/// arrival instant, in virtual ticks (`None` before the link's first
/// arrival, matching the live batcher: one message is no evidence).
#[derive(Clone, Copy, Debug, Default)]
struct LinkGap {
    ewma: Option<SimTime>,
    last_arrival: Option<SimTime>,
}

/// How many arrivals' worth a busy adaptive link holds for, in the
/// absence of a size bound (the virtual engine frames whatever is staged
/// when the marker fires — there is no `max_batch` whose fill time the
/// hold could target, so a fixed small multiple stands in).
const VIRTUAL_GAP_MULTIPLIER: u64 = 4;

/// Builder for a [`SimSpace`].
#[derive(Debug)]
pub struct SpaceBuilder {
    cfg: SystemConfig,
    seed: u64,
    delay: DelayModel,
    registers: Vec<RegisterId>,
    max_events: u64,
    flush_hold: VirtualHold,
    hold_overrides: BTreeMap<(ProcessId, ProcessId), VirtualHold>,
    wire_codec: bool,
    scheduled: bool,
    cache_mode: CacheMode,
    recovery: bool,
    recovery_skip_incarnation_bump: bool,
}

impl SpaceBuilder {
    /// Starts configuring a sharded simulation of `cfg.n()` processes
    /// hosting a single register (use [`SpaceBuilder::registers`] for more).
    pub fn new(cfg: SystemConfig) -> Self {
        SpaceBuilder {
            cfg,
            seed: 0,
            delay: DelayModel::Fixed(crate::DEFAULT_DELTA),
            registers: vec![RegisterId::ZERO],
            max_events: 50_000_000,
            flush_hold: VirtualHold::Static(0),
            hold_overrides: BTreeMap::new(),
            wire_codec: false,
            scheduled: false,
            cache_mode: CacheMode::Off,
            recovery: false,
            recovery_skip_incarnation_bump: false,
        }
    }

    /// Enables crash-recovery (default off — the paper's base model, where
    /// crashes are permanent). When on, [`Driver::recover`] and (in
    /// scheduled mode) [`ScheduleStep::Recover`] bring a crashed process
    /// back: the space fetches the longest confirmed prefix from the live
    /// peers as a [`Snapshot`], installs it
    /// ([`Automaton::install_recovery`]), hard-resets every live peer to
    /// the snapshot barrier ([`Automaton::apply_rejoin`]), bumps the
    /// process's incarnation and fences every pre-recovery in-flight frame
    /// as stale. When off, `recover` is a typed error and no behaviour
    /// changes — a recovery-enabled space produces byte-identical traffic
    /// to a disabled one as long as no recovery actually fires.
    pub fn recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// **Negative-control ablation**: recoveries skip the incarnation bump
    /// and with it the stale-frame fence, so frames sent to (or among) the
    /// peers before the crash can still be delivered after everyone reset
    /// to the snapshot barrier. This is deliberately broken — the model
    /// checker uses it to demonstrate that the fence is load-bearing (a
    /// rejoin without it produces checkable atomicity violations). Never
    /// enable outside experiments.
    pub fn recovery_skip_incarnation_bump(mut self, on: bool) -> Self {
        self.recovery_skip_incarnation_bump = on;
        self
    }

    /// Sets the local read-cache mode (default [`CacheMode::Off`]). Under
    /// [`CacheMode::Safe`] a read is served with zero communication when
    /// the invoking process is the register's SWMR writer
    /// ([`Automaton::swmr_writer`]) and holds a confirmed snapshot; every
    /// decision is counted in
    /// [`NetStats::cache_hits`](twobit_proto::NetStats::cache_hits) /
    /// `cache_misses` / `cache_fallbacks`.
    /// [`CacheMode::UnsafeAblated`] serves any confirmed entry blindly — a
    /// deliberately unsound negative control for the model checker.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Puts the space in **scheduled mode**: no event fires until a
    /// [`Scheduler`] (or an explicit [`SimSpace::fire`]) picks it. The
    /// event heap is replaced by an open set of enabled events; operations
    /// are scripted with [`SimSpace::plan_op`] and their invocations and
    /// responses become schedulable events of their own, so a controlling
    /// scheduler decides the *real-time order* of the run's observable
    /// endpoints as well as its message interleaving. This is the surface
    /// `twobit-check` explores exhaustively; interactive
    /// [`Driver::invoke`]/[`Driver::poll`] are rejected in this mode.
    ///
    /// Scheduled-mode semantics (deliberate differences from the default
    /// event loop):
    ///
    /// * Each handler execution's sends flush immediately, one frame per
    ///   ordered link per handler — hold windows never merge two handlers'
    ///   sends, so the frame structure is a deterministic function of the
    ///   schedule alone.
    /// * Virtual time advances by exactly 1 tick per fired event, giving
    ///   every invocation/response a unique instant; sampled delays only
    ///   order the [`VirtualTimeScheduler`](twobit_proto::VirtualTimeScheduler)'s
    ///   default replay.
    /// * Crashes fire *between* events ([`ScheduleStep::Crash`]) and drop
    ///   the in-flight frames addressed to the crashed process.
    pub fn scheduled(mut self, on: bool) -> Self {
        self.scheduled = on;
        self
    }

    /// Routes every flushed frame through the byte-level codec
    /// ([`Frame::encode`] → [`Frame::decode`]): the simulation then runs on
    /// the *decoded* bytes, proving serialization fidelity end to end, and
    /// [`NetStats::wire_bytes`](twobit_proto::NetStats::wire_bytes) reports
    /// the actual bytes a socket would carry. Requires a codec-capable
    /// message type (one overriding the `WireMessage` codec methods) — a
    /// cost-model-only message surfaces as a
    /// [`DriverError::Backend`](twobit_proto::DriverError::Backend) on the
    /// first flush.
    pub fn wire_codec(mut self, on: bool) -> Self {
        self.wire_codec = on;
        self
    }

    /// Sets the RNG seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Hosts registers `r0 .. r(count-1)`.
    pub fn registers(mut self, count: usize) -> Self {
        self.registers = RegisterId::first(count);
        self
    }

    /// Hosts exactly the given registers.
    pub fn register_ids(mut self, registers: Vec<RegisterId>) -> Self {
        self.registers = registers;
        self
    }

    /// Sets the runaway guard on the number of delivery events.
    pub fn max_events(mut self, limit: u64) -> Self {
        self.max_events = limit;
        self
    }

    /// Sets a static flush hold window, in virtual ticks — the engine-side
    /// counterpart of the runtime links' `FlushPolicy`:
    /// envelopes staged on a link wait
    /// up to this long for company before flushing as one frame. The
    /// default of 0 coalesces exactly the sends of one virtual instant;
    /// a window of a fraction of the mean delay batches staggered
    /// operations too, amortizing the routing header much harder. Either
    /// way the channel stays a legal asynchronous channel — the hold is
    /// just extra (bounded) delay.
    pub fn flush_hold(mut self, ticks: SimTime) -> Self {
        self.flush_hold = VirtualHold::Static(ticks);
        self
    }

    /// Sets the flush hold policy, including the adaptive variant
    /// ([`VirtualHold::Adaptive`]) that auto-tunes each link's hold from
    /// its observed inter-arrival gaps — the virtual-time analogue of the
    /// runtime's adaptive `FlushPolicy`.
    ///
    /// # Panics
    ///
    /// Panics on an adaptive hold with `floor > ceil` (this builder has no
    /// fallible build step; the live builders return a typed error for the
    /// same mistake).
    pub fn flush_hold_policy(mut self, hold: VirtualHold) -> Self {
        hold.validate();
        self.flush_hold = hold;
        self
    }

    /// Overrides the hold policy for one ordered link `src → dst`,
    /// leaving every other link on the space-wide default — the
    /// asymmetric-topology knob, mirrored on the live builders as
    /// `flush_policy_for`.
    ///
    /// # Panics
    ///
    /// Panics on an adaptive hold with `floor > ceil`.
    pub fn flush_hold_for(
        mut self,
        src: impl Into<ProcessId>,
        dst: impl Into<ProcessId>,
        hold: VirtualHold,
    ) -> Self {
        hold.validate();
        self.hold_overrides.insert((src.into(), dst.into()), hold);
        self
    }

    /// Instantiates one automaton per `(register, process)` pair via `make`
    /// and returns the space. `initial` is the recorded initial value of
    /// every register.
    pub fn build<A, F>(self, initial: A::Value, mut make: F) -> SimSpace<A>
    where
        A: Automaton,
        F: FnMut(RegisterId, ProcessId) -> A,
    {
        let n = self.cfg.n();
        let nodes: Vec<ShardSet<A>> = (0..n)
            .map(|i| ShardSet::new(ProcessId::new(i), &self.registers, &mut make))
            .collect();
        let caches = (0..n)
            .map(|_| cache_pair(self.registers.len(), self.cache_mode))
            .collect();
        let reg_slot = self
            .registers
            .iter()
            .enumerate()
            .map(|(slot, reg)| (*reg, slot))
            .collect();
        SimSpace {
            cfg: self.cfg,
            tag_bits: RegisterId::routing_bits(self.registers.len()),
            registers: self.registers,
            nodes,
            life: vec![LifecycleState::new(); n],
            recovery: self.recovery,
            skip_inc_bump: self.recovery_skip_incarnation_bump,
            recovery_records: Vec::new(),
            now: 0,
            queue: BinaryHeap::new(),
            staged: BTreeMap::new(),
            flush_hold: self.flush_hold,
            hold_overrides: self.hold_overrides,
            link_gap: BTreeMap::new(),
            wire_codec: self.wire_codec,
            seq: 0,
            rng: StdRng::seed_from_u64(self.seed),
            delay: self.delay,
            initial,
            records: Vec::new(),
            outstanding: HashMap::new(),
            stats: NetStats::new(),
            events: 0,
            max_events: self.max_events,
            scheduled: self.scheduled,
            open: Vec::new(),
            plan: Vec::new(),
            created_scratch: Vec::new(),
            ready_scratch: Vec::new(),
            cache_mode: self.cache_mode,
            caches,
            reg_slot,
        }
    }
}

enum SpaceEventKind<M> {
    /// A frame crossing link `from → to`, due at `at`.
    Deliver {
        from: ProcessId,
        to: ProcessId,
        frame: Frame<M>,
    },
    /// A staged link's hold window expires: coalesce its envelopes into
    /// one frame and launch it. Exactly one marker is in flight per staged
    /// link.
    Flush { from: ProcessId, to: ProcessId },
}

struct SpaceEvent<M> {
    at: SimTime,
    seq: u64,
    kind: SpaceEventKind<M>,
}

// Total order on events: `(at, seq)` ascending — virtual time first, then
// the *birth* sequence number as the same-instant tie-break. `seq` is
// allocated when the event is created, and creation order is itself a
// deterministic function of the configuration and the schedule (handler
// sends flush in ascending destination order via the staged `BTreeMap`),
// never of builder-call or map-insertion order. This stability is what
// makes a recorded `Schedule` replayable byte-for-byte. `BinaryHeap` is a
// max-heap, so the comparison below is reversed to pop the minimum.
impl<M> PartialEq for SpaceEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for SpaceEvent<M> {}
impl<M> PartialOrd for SpaceEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for SpaceEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One ordered link's staged batch: when staging began, and the envelopes
/// waiting for the link's flush marker.
type StagedBatch<M> = (SimTime, Vec<Envelope<M>>);

/// Lifecycle of one scheduled-mode plan step. Invocation and response are
/// *separate schedulable events*: the register's external interface is a
/// single real-time line, so the order in which completions become visible
/// relative to later invocations is itself a scheduling choice the model
/// checker must control (it decides which real-time precedences the
/// linearizability checker gets to assume).
#[derive(Clone, Debug)]
enum PlanState<V> {
    /// Not yet invoked.
    Pending,
    /// Invocation fired; the automaton is working on it.
    Invoked,
    /// The automaton completed the operation internally; the response has
    /// not yet been observed by the client.
    Ready(OpOutcome<V>),
    /// The response fired; the operation is complete in the history.
    Responded,
    /// The invoking process crashed while the operation was in flight
    /// (Invoked or Ready): the record stays incomplete in the history —
    /// the paper's consistency clause exempts, for each faulty process,
    /// its last invoked operation — and the step counts as settled so a
    /// later recovery of the process does not deadlock the plan.
    Died,
}

/// One scripted operation of a scheduled-mode run.
#[derive(Clone, Debug)]
struct PlanEntry<V> {
    proc: ProcessId,
    reg: RegisterId,
    op: Operation<V>,
    /// Plan index whose response must fire before this step may be
    /// invoked (cross-process sequencing; same-process steps are already
    /// sequential by program order).
    after: Option<usize>,
    op_id: Option<OpId>,
    state: PlanState<V>,
}

/// What one [`SimSpace::fire`] call did, for the explorer's happens-before
/// bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct FireOutcome {
    /// Birth sequence numbers of the frames the fired handler created.
    pub created: Vec<u64>,
    /// Plan steps whose operations completed internally during this fire
    /// (their [`ScheduleStep::Respond`] events are now enabled).
    pub became_ready: Vec<u64>,
}

/// A sharded, interactively-driven deterministic simulation.
///
/// Construct with [`SpaceBuilder`]; drive through the [`Driver`] trait
/// (possibly behind a [`RegisterSpace`](twobit_proto::RegisterSpace) for
/// named registers).
pub struct SimSpace<A: Automaton> {
    cfg: SystemConfig,
    registers: Vec<RegisterId>,
    /// Shard-tag width of the deployment (`⌈log₂ k⌉`), derived once at
    /// build time and used only for routing accounting.
    tag_bits: u64,
    nodes: Vec<ShardSet<A>>,
    /// Per-process lifecycle (`Up → Crashed → Recovering → Up`) and
    /// incarnation counter — the refactor of the old `crashed: Vec<bool>`.
    life: Vec<LifecycleState>,
    /// Whether [`SpaceBuilder::recovery`] enabled crash-recovery.
    recovery: bool,
    /// Negative-control ablation
    /// ([`SpaceBuilder::recovery_skip_incarnation_bump`]).
    skip_inc_bump: bool,
    /// Completed recoveries, in rejoin order (threaded into the history).
    recovery_records: Vec<RecoveryRecord>,
    now: SimTime,
    queue: BinaryHeap<SpaceEvent<A::Msg>>,
    /// Envelopes staged per ordered link (with the instant staging began),
    /// waiting for the link's flush marker to coalesce them into one
    /// [`Frame`].
    staged: BTreeMap<(ProcessId, ProcessId), StagedBatch<A::Msg>>,
    /// How long a staged link waits for more envelopes before flushing.
    flush_hold: VirtualHold,
    /// Per-link hold overrides (asymmetric topologies).
    hold_overrides: BTreeMap<(ProcessId, ProcessId), VirtualHold>,
    /// Per-link EWMA inter-arrival state driving the adaptive hold.
    link_gap: BTreeMap<(ProcessId, ProcessId), LinkGap>,
    /// Encode–decode fidelity mode: every flushed frame crosses the
    /// byte-level codec and the *decoded* copy is what gets delivered.
    wire_codec: bool,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    initial: A::Value,
    /// All operation records, tagged with their register; `OpId` = index.
    records: Vec<(RegisterId, OpRecord<A::Value>)>,
    outstanding: HashMap<(ProcessId, RegisterId), OpId>,
    stats: NetStats,
    events: u64,
    max_events: u64,
    /// Scheduled mode (see [`SpaceBuilder::scheduled`]): events fire only
    /// when chosen.
    scheduled: bool,
    /// Scheduled mode's open event set (replaces the heap; kept in birth
    /// order, i.e. ascending `seq`).
    open: Vec<SpaceEvent<A::Msg>>,
    /// Scheduled mode's scripted operations.
    plan: Vec<PlanEntry<A::Value>>,
    /// Frames created by the currently-firing handler (drained into the
    /// [`FireOutcome`]).
    created_scratch: Vec<u64>,
    /// Plan steps readied by the currently-firing handler.
    ready_scratch: Vec<u64>,
    /// Local read-cache mode (see [`SpaceBuilder::cache_mode`]).
    cache_mode: CacheMode,
    /// One cache pair per process: the writer half fed by completions in
    /// [`SimSpace::apply_effects`], the reader half consulted on read
    /// invocations.
    caches: Vec<CachePair<A::Value>>,
    /// Register → cache-slot index (position in `registers`).
    reg_slot: HashMap<RegisterId, usize>,
}

impl<A: Automaton> std::fmt::Debug for SimSpace<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSpace")
            .field("cfg", &self.cfg)
            .field("registers", &self.registers)
            .field("now", &self.now)
            .field("life", &self.life)
            .field("scheduled", &self.scheduled)
            .field("open_frames", &self.open.len())
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> SimSpace<A> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Delivery events processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Immutable access to one `(process, register)` automaton.
    pub fn automaton(&self, proc: ProcessId, reg: RegisterId) -> Option<&A> {
        self.nodes.get(proc.index()).and_then(|n| n.shard(reg))
    }

    /// Delivers queued messages until the network is silent.
    ///
    /// # Errors
    ///
    /// [`DriverError::Backend`] on protocol misbehaviour or when the event
    /// guard trips.
    pub fn run_to_quiescence(&mut self) -> Result<(), DriverError> {
        while self.step()? {}
        Ok(())
    }

    /// Checks every live automaton's local invariants.
    ///
    /// # Errors
    ///
    /// The first violation, prefixed with the process id.
    pub fn check_local_invariants(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            if !self.life[i].state.is_up() {
                continue;
            }
            node.check_local_invariants()
                .map_err(|e| format!("p{i}: {e}"))?;
        }
        Ok(())
    }

    /// Coalesces one staged link's envelopes into a [`Frame`] and queues it
    /// as a single delivery event with one sampled delay — everything the
    /// link accumulated during its hold window shares the routing header.
    /// Under [`SpaceBuilder::wire_codec`] the frame additionally round-trips
    /// the byte codec here, and the decoded copy is what crosses the link.
    fn flush_link(&mut self, from: ProcessId, to: ProcessId) -> Result<(), DriverError> {
        let Some((staged_at, envs)) = self.staged.remove(&(from, to)) else {
            return Ok(());
        };
        let mut frame = Frame::from_envelopes(envs);
        self.stats.record_frame(frame.cost(self.tag_bits));
        // Every simulator flush is the link's hold marker firing; the
        // observed hold is the marker's window (ticks = µs → ns ×1000).
        self.stats.record_flush(
            FlushReason::Hold,
            self.now.saturating_sub(staged_at).saturating_mul(1_000),
        );
        if self.wire_codec {
            let blob = frame
                .encode()
                .map_err(|e| DriverError::Backend(format!("wire codec encode: {e}")))?;
            self.stats.record_wire_bytes(blob.len() as u64);
            // Zero-copy receive path: decoded payloads are `Bytes` views
            // into `blob` wherever the bit layout byte-aligns them.
            frame = Frame::decode_shared(&blob)
                .map_err(|e| DriverError::Backend(format!("wire codec decode: {e}")))?;
        }
        let delay = self.delay.sample(&mut self.rng);
        let seq = self.seq;
        self.seq += 1;
        if self.scheduled && !self.life[to.index()].state.is_up() {
            // Scheduled mode drops frames to a dead destination at birth:
            // there is no delivery event left to do it later, and an
            // undeliverable frame must not linger in the enabled set.
            self.stats.record_frame_drop_to_crashed(frame.len() as u64);
            return Ok(());
        }
        let ev = SpaceEvent {
            at: self.now + delay,
            seq,
            kind: SpaceEventKind::Deliver { from, to, frame },
        };
        if self.scheduled {
            // The frame joins the open set (in birth order) and waits for
            // a scheduler to pick it; its sampled delay only orders the
            // default virtual-time replay.
            self.created_scratch.push(seq);
            self.open.push(ev);
        } else {
            self.queue.push(ev);
        }
        Ok(())
    }

    /// Processes the next queued event (a flush marker or a frame
    /// delivery). Returns `Ok(false)` at quiescence. A staged link always
    /// has its flush marker in the queue, so quiescence implies nothing is
    /// staged either.
    fn step(&mut self) -> Result<bool, DriverError> {
        let Some(ev) = self.queue.pop() else {
            debug_assert!(self.staged.is_empty(), "staged links keep a marker queued");
            return Ok(false);
        };
        debug_assert!(ev.at >= self.now, "time must be monotone");
        self.now = ev.at;
        match ev.kind {
            SpaceEventKind::Flush { from, to } => {
                self.flush_link(from, to)?;
            }
            SpaceEventKind::Deliver { from, to, frame } => {
                self.events += 1;
                if self.events > self.max_events {
                    return Err(DriverError::Backend(format!(
                        "event limit exceeded ({} events)",
                        self.max_events
                    )));
                }
                let pi = to.index();
                if !self.life[pi].state.is_up() {
                    // Atomic non-delivery: the whole frame is lost with its
                    // target.
                    self.stats.record_frame_drop_to_crashed(frame.len() as u64);
                } else {
                    // Atomic delivery: every message in the frame is
                    // handled at this instant, in wire order.
                    self.stats.record_deliveries(frame.len() as u64);
                    let mut fx = Effects::new();
                    for env in frame.into_envelopes() {
                        self.nodes[pi].on_message(from, env, &mut fx);
                    }
                    self.apply_effects(to, fx)?;
                }
            }
        }
        Ok(true)
    }

    /// Stages one handler execution's sends on their links (arming each
    /// link's flush marker) and applies its completions to the records.
    fn apply_effects(
        &mut self,
        p: ProcessId,
        mut fx: Effects<Envelope<A::Msg>, A::Value>,
    ) -> Result<(), DriverError> {
        for (to, env) in fx.drain_sends() {
            debug_assert!(to != p, "protocols must not send to self");
            // Per-message cost with the unframed-equivalent tag; the bits
            // actually on the wire are the frame header, recorded at flush.
            self.stats
                .record_send_for(env.reg, env.kind(), env.cost().with_routing(self.tag_bits));
            if self.scheduled {
                // Scheduled mode has no hold windows: stage the envelope
                // and flush every touched link right after this loop, so
                // one handler execution = one frame per ordered link.
                self.staged
                    .entry((p, to))
                    .or_insert_with(|| (self.now, Vec::new()))
                    .1
                    .push(env);
                continue;
            }
            // Feed the link's gap estimate on every arrival — same-instant
            // envelopes are gap-0 samples, which is what drives a bursty
            // link toward its hold ceiling.
            let now = self.now;
            let gap_state = self.link_gap.entry((p, to)).or_default();
            if let Some(last) = gap_state.last_arrival {
                let gap = now.saturating_sub(last);
                gap_state.ewma = Some(match gap_state.ewma {
                    None => gap,
                    // Keep a quarter of each new sample (EWMA α = 1/4),
                    // mirroring the live batcher.
                    Some(ewma) => ewma + (gap >> 2) - (ewma >> 2),
                });
            }
            gap_state.last_arrival = Some(now);
            let ewma = gap_state.ewma;
            let (staged_at, staged) = self
                .staged
                .entry((p, to))
                .or_insert_with(|| (now, Vec::new()));
            if staged.is_empty() {
                *staged_at = now;
                // First envelope on this link: arm its flush marker at the
                // end of the hold window the link's policy resolves to.
                let hold = match self
                    .hold_overrides
                    .get(&(p, to))
                    .unwrap_or(&self.flush_hold)
                {
                    VirtualHold::Static(ticks) => *ticks,
                    VirtualHold::Adaptive { floor, ceil } => match ewma {
                        // No gap evidence, or an idle link (the expected
                        // next arrival is past the ceiling): flush fast.
                        None => *floor,
                        Some(gap) if gap >= *ceil => *floor,
                        // Busy link: wait a few arrivals' worth, clamped
                        // into the configured band (see the constant for
                        // why this is not the live gap × max_batch rule).
                        Some(gap) => gap
                            .saturating_mul(VIRTUAL_GAP_MULTIPLIER)
                            .clamp(*floor, *ceil),
                    },
                };
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(SpaceEvent {
                    at: now + hold,
                    seq,
                    kind: SpaceEventKind::Flush { from: p, to },
                });
            }
            staged.push(env);
        }
        if self.scheduled {
            // Immediate flush, ascending destination order (`staged` is a
            // `BTreeMap`), so frame birth order is schedule-determined.
            let links: Vec<(ProcessId, ProcessId)> = self.staged.keys().copied().collect();
            for (from, to) in links {
                self.flush_link(from, to)?;
            }
        }
        for (op_id, outcome) in fx.drain_completions() {
            if self.scheduled {
                // Completion makes the plan step's *response* schedulable;
                // the record is finalized only when that response fires.
                let idx = self
                    .plan
                    .iter()
                    .position(|e| e.op_id == Some(op_id))
                    .ok_or_else(|| {
                        DriverError::Backend(format!("completion for unknown {op_id}"))
                    })?;
                let entry = &mut self.plan[idx];
                if entry.proc != p {
                    return Err(DriverError::Backend(format!(
                        "{op_id} of p{} completed by p{}",
                        entry.proc.index(),
                        p.index()
                    )));
                }
                if !matches!(entry.state, PlanState::Invoked) {
                    return Err(DriverError::Backend(format!("{op_id} completed twice")));
                }
                let (reg, op) = (entry.reg, entry.op.clone());
                entry.state = PlanState::Ready(outcome.clone());
                self.ready_scratch.push(idx as u64);
                // The automaton finished the operation at this fire: the
                // snapshot is confirmed now, even though its response event
                // has not been scheduled yet.
                self.publish_completion(p, reg, &op, &outcome);
                continue;
            }
            let (reg, rec) = self
                .records
                .get_mut(op_id.raw() as usize)
                .ok_or_else(|| DriverError::Backend(format!("completion for unknown {op_id}")))?;
            if rec.completed.is_some() {
                return Err(DriverError::Backend(format!("{op_id} completed twice")));
            }
            if rec.proc != p {
                return Err(DriverError::Backend(format!(
                    "{op_id} of {} completed by {p}",
                    rec.proc
                )));
            }
            rec.completed = Some((self.now, outcome.clone()));
            let (reg, op) = (*reg, rec.op.clone());
            self.outstanding.remove(&(p, reg));
            self.publish_completion(p, reg, &op, &outcome);
        }
        Ok(())
    }

    /// Publishes a locally-completed operation's value into `p`'s cache: a
    /// completed write confirms the written value, a completed read the
    /// value it returned. `writer_here` is captured from the shard
    /// automaton's [`Automaton::swmr_writer`] at publish time.
    fn publish_completion(
        &mut self,
        p: ProcessId,
        reg: RegisterId,
        op: &Operation<A::Value>,
        outcome: &OpOutcome<A::Value>,
    ) {
        if self.cache_mode == CacheMode::Off {
            return;
        }
        let Some(&slot) = self.reg_slot.get(&reg) else {
            return;
        };
        let value = match (outcome, op) {
            (OpOutcome::ReadValue(v), _) | (OpOutcome::Written, Operation::Write(v)) => v.clone(),
            (OpOutcome::Written, Operation::Read) => return,
        };
        let writer_here = self.nodes[p.index()]
            .shard(reg)
            .and_then(Automaton::swmr_writer)
            == Some(p);
        self.caches[p.index()].0.publish(slot, value, writer_here);
    }

    /// Consults `proc`'s cache for a read on `reg`, counting the decision.
    /// Returns the cached value when the read may be served locally.
    fn try_serve_cached(&mut self, proc: ProcessId, reg: RegisterId) -> Option<A::Value> {
        if self.cache_mode == CacheMode::Off {
            return None;
        }
        let slot = *self.reg_slot.get(&reg)?;
        match self.caches[proc.index()].1.try_read(slot) {
            CacheDecision::Hit(v) => {
                self.stats.record_cache_hit();
                Some(v)
            }
            CacheDecision::Miss => {
                self.stats.record_cache_miss();
                None
            }
            CacheDecision::Fallback => {
                self.stats.record_cache_fallback();
                None
            }
        }
    }
}

/// Scheduled-mode surface (see [`SpaceBuilder::scheduled`]): plan
/// operations, inspect the enabled-event set, fire chosen steps, or hand
/// the whole loop to a [`Scheduler`].
impl<A: Automaton> SimSpace<A> {
    /// Scripts one operation for a scheduled run and returns its plan
    /// index. Steps of one process run in program (plan) order; use
    /// [`SimSpace::plan_op_after`] for cross-process sequencing.
    ///
    /// # Panics
    ///
    /// Panics outside scheduled mode, or on an unknown process/register —
    /// plans are authored by test code, so mistakes are programming
    /// errors, not run outcomes.
    pub fn plan_op(&mut self, proc: ProcessId, reg: RegisterId, op: Operation<A::Value>) -> usize {
        self.plan_entry(proc, reg, op, None)
    }

    /// Like [`SimSpace::plan_op`], but the step's invocation stays
    /// disabled until plan step `after`'s *response* has fired — the
    /// scenario-level way to demand real-time precedence between
    /// operations of different processes.
    ///
    /// # Panics
    ///
    /// As [`SimSpace::plan_op`]; additionally if `after` is not an
    /// existing plan index.
    pub fn plan_op_after(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
        after: usize,
    ) -> usize {
        self.plan_entry(proc, reg, op, Some(after))
    }

    fn plan_entry(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
        after: Option<usize>,
    ) -> usize {
        assert!(self.scheduled, "plan_op requires scheduled mode");
        assert!(
            proc.index() < self.cfg.n(),
            "plan_op: unknown process {proc:?}"
        );
        assert!(
            self.registers.contains(&reg),
            "plan_op: unknown register {reg:?}"
        );
        if let Some(a) = after {
            assert!(a < self.plan.len(), "plan_op_after: unknown plan step {a}");
        }
        self.plan.push(PlanEntry {
            proc,
            reg,
            op,
            after,
            op_id: None,
            state: PlanState::Pending,
        });
        self.plan.len() - 1
    }

    /// Whether plan step `idx`'s invocation may fire: still pending, its
    /// process live and done with every earlier plan step, and its
    /// explicit dependency (if any) responded.
    fn invoke_enabled(&self, idx: usize) -> bool {
        let e = &self.plan[idx];
        if !matches!(e.state, PlanState::Pending) || !self.life[e.proc.index()].state.is_up() {
            return false;
        }
        // Program order counts a died step as done: its process crashed
        // mid-operation, and after a recovery the remaining steps become
        // invokable again.
        if self.plan[..idx]
            .iter()
            .any(|o| o.proc == e.proc && !matches!(o.state, PlanState::Responded | PlanState::Died))
        {
            return false;
        }
        match e.after {
            // A died dependency can never respond; the precedence it was
            // meant to enforce is vacuous, so the dependent step unblocks.
            Some(a) => matches!(self.plan[a].state, PlanState::Responded | PlanState::Died),
            None => true,
        }
    }

    fn plan_label(e: &PlanEntry<A::Value>) -> String {
        let what = match &e.op {
            Operation::Read => "read".to_string(),
            Operation::Write(v) => format!("write({v:?})"),
        };
        format!("p{}:{what}", e.proc.index())
    }

    /// The currently fireable events: responses (ready plan steps, plan
    /// order), then invocations (enabled plan steps, plan order), then
    /// deliveries (open frames, birth order). Crashes never appear — the
    /// crash choice belongs to the scheduler ([`ScheduleStep::Crash`] is
    /// always fireable against a live process).
    ///
    /// # Panics
    ///
    /// Panics outside scheduled mode.
    pub fn enabled_events(&self) -> Vec<EnabledEvent> {
        assert!(self.scheduled, "enabled_events requires scheduled mode");
        let mut out = Vec::new();
        for (idx, e) in self.plan.iter().enumerate() {
            if matches!(e.state, PlanState::Ready(_)) && self.life[e.proc.index()].state.is_up() {
                out.push(EnabledEvent::Respond {
                    plan: idx as u64,
                    proc: e.proc,
                    label: Self::plan_label(e),
                });
            }
        }
        for (idx, e) in self.plan.iter().enumerate() {
            if self.invoke_enabled(idx) {
                out.push(EnabledEvent::Invoke {
                    plan: idx as u64,
                    proc: e.proc,
                    label: Self::plan_label(e),
                });
            }
        }
        for ev in &self.open {
            let SpaceEventKind::Deliver { from, to, frame } = &ev.kind else {
                continue;
            };
            let mut kinds: Vec<&'static str> = frame.iter().map(|(_, m)| m.kind()).collect();
            kinds.dedup();
            out.push(EnabledEvent::Deliver {
                seq: ev.seq,
                from: *from,
                to: *to,
                msgs: frame.len() as u64,
                due: ev.at,
                label: kinds.join("+"),
            });
        }
        out
    }

    /// Fires one schedule step. Each fire advances virtual time by one
    /// tick, so every invocation, response and delivery has a unique
    /// instant and the history's real-time order is exactly the firing
    /// order.
    ///
    /// # Errors
    ///
    /// [`DriverError::Backend`] outside scheduled mode, when the step is
    /// not currently fireable (strict-replay contract), or when the event
    /// guard trips.
    pub fn fire(&mut self, step: ScheduleStep) -> Result<FireOutcome, DriverError> {
        if !self.scheduled {
            return Err(DriverError::Backend(
                "fire requires scheduled mode (SpaceBuilder::scheduled)".into(),
            ));
        }
        self.events += 1;
        if self.events > self.max_events {
            return Err(DriverError::Backend(format!(
                "event limit exceeded ({} events)",
                self.max_events
            )));
        }
        self.now += 1;
        self.created_scratch.clear();
        self.ready_scratch.clear();
        match step {
            ScheduleStep::Deliver(seq) => {
                let pos = self
                    .open
                    .iter()
                    .position(|ev| ev.seq == seq)
                    .ok_or_else(|| {
                        DriverError::Backend(format!("delivery d{seq} is not enabled"))
                    })?;
                // `Vec::remove` keeps the rest of the open set in birth
                // order.
                let ev = self.open.remove(pos);
                let SpaceEventKind::Deliver { from, to, frame } = ev.kind else {
                    unreachable!("the open set holds only deliveries");
                };
                let pi = to.index();
                debug_assert!(self.life[pi].state.is_up(), "crash pruned frames to p{pi}");
                self.stats.record_deliveries(frame.len() as u64);
                let mut fx = Effects::new();
                for env in frame.into_envelopes() {
                    self.nodes[pi].on_message(from, env, &mut fx);
                }
                self.apply_effects(to, fx)?;
            }
            ScheduleStep::Invoke(plan) => {
                let idx = plan as usize;
                if idx >= self.plan.len() || !self.invoke_enabled(idx) {
                    return Err(DriverError::Backend(format!(
                        "invocation i{plan} is not enabled"
                    )));
                }
                let (proc, reg, op) = {
                    let e = &self.plan[idx];
                    (e.proc, e.reg, e.op.clone())
                };
                let op_id = OpId::new(self.records.len() as u64);
                self.records.push((
                    reg,
                    OpRecord {
                        op_id,
                        proc,
                        op: op.clone(),
                        invoked_at: self.now,
                        completed: None,
                    },
                ));
                self.outstanding.insert((proc, reg), op_id);
                {
                    let e = &mut self.plan[idx];
                    e.op_id = Some(op_id);
                    e.state = PlanState::Invoked;
                }
                let cached = if matches!(op, Operation::Read) {
                    self.try_serve_cached(proc, reg)
                } else {
                    None
                };
                if let Some(v) = cached {
                    // Cache hit: the operation is internally complete the
                    // instant it is invoked — its *response* still fires as
                    // a separate schedulable event, so the checker controls
                    // exactly when the cached value becomes visible.
                    self.plan[idx].state = PlanState::Ready(OpOutcome::ReadValue(v));
                    self.ready_scratch.push(idx as u64);
                } else {
                    let mut fx = Effects::new();
                    self.nodes[proc.index()]
                        .on_invoke(reg, op_id, op, &mut fx)
                        .expect("plan_entry checked register presence");
                    self.apply_effects(proc, fx)?;
                }
            }
            ScheduleStep::Respond(plan) => {
                let idx = plan as usize;
                let enabled = self.plan.get(idx).is_some_and(|e| {
                    matches!(e.state, PlanState::Ready(_))
                        && self.life[e.proc.index()].state.is_up()
                });
                if !enabled {
                    return Err(DriverError::Backend(format!(
                        "response r{plan} is not enabled"
                    )));
                }
                let e = &mut self.plan[idx];
                let PlanState::Ready(outcome) =
                    std::mem::replace(&mut e.state, PlanState::Responded)
                else {
                    unreachable!("checked Ready above");
                };
                let op_id = e.op_id.expect("Ready implies invoked");
                let (proc, reg) = (e.proc, e.reg);
                let rec = &mut self.records[op_id.raw() as usize].1;
                debug_assert!(rec.completed.is_none());
                rec.completed = Some((self.now, outcome));
                self.outstanding.remove(&(proc, reg));
            }
            ScheduleStep::Crash(p) => {
                self.do_crash(p)?;
            }
            ScheduleStep::Recover(p) => {
                self.do_recover(p)?;
            }
        }
        Ok(FireOutcome {
            created: std::mem::take(&mut self.created_scratch),
            became_ready: std::mem::take(&mut self.ready_scratch),
        })
    }

    /// Drops every open frame addressed to `p` (atomic non-delivery with
    /// the crash), keeping `delivered + dropped == sent` accounting exact.
    fn drop_open_frames_to(&mut self, p: ProcessId) {
        let mut dropped = 0u64;
        self.open.retain(|ev| match &ev.kind {
            SpaceEventKind::Deliver { to, frame, .. } if *to == p => {
                dropped += frame.len() as u64;
                false
            }
            _ => true,
        });
        if dropped > 0 {
            self.stats.record_frame_drop_to_crashed(dropped);
        }
    }

    /// The incarnation fence, applied eagerly: at a completed recovery
    /// every in-flight frame was staged under the previous incarnation and
    /// would be rejected on receipt, so it is dropped here instead of at
    /// its delivery event — equivalent semantics, and it keeps the model
    /// checker's enabled set free of dead choices.
    fn purge_open_frames_as_stale(&mut self) {
        let mut stale = 0u64;
        self.open.retain(|ev| match &ev.kind {
            SpaceEventKind::Deliver { frame, .. } => {
                stale += frame.len() as u64;
                false
            }
            SpaceEventKind::Flush { .. } => true,
        });
        if stale > 0 {
            self.stats.record_dropped_stale(stale);
        }
    }

    /// Shared crash path of [`Driver::crash`] and
    /// [`ScheduleStep::Crash`]: lifecycle transition, atomic frame drop,
    /// and (scheduled mode) plan-step death for the operations the crash
    /// interrupted.
    fn do_crash(&mut self, p: ProcessId) -> Result<(), DriverError> {
        let pi = p.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(p));
        }
        self.life[pi]
            .crash()
            .map_err(|_| DriverError::AlreadyCrashed(p))?;
        if self.scheduled {
            self.drop_open_frames_to(p);
            for e in &mut self.plan {
                if e.proc == p && matches!(e.state, PlanState::Invoked | PlanState::Ready(_)) {
                    e.state = PlanState::Died;
                    self.outstanding.remove(&(p, e.reg));
                }
            }
        }
        Ok(())
    }

    /// Shared recovery path of [`Driver::recover`] and
    /// [`ScheduleStep::Recover`] — one atomic rejoin:
    ///
    /// 1. (event mode only) run to quiescence, so the transfer happens on
    ///    an empty network;
    /// 2. per register, adopt the longest confirmed prefix among the live
    ///    donors as the [`Snapshot`] (round-tripping the byte codec under
    ///    [`SpaceBuilder::wire_codec`], and accounting its size as
    ///    `snapshot_bytes` either way);
    /// 3. install it at `p` and hard-reset every live peer to the barrier
    ///    ([`Automaton::apply_rejoin`] — its effects flow as ordinary
    ///    new-epoch traffic);
    /// 4. bump `p`'s incarnation and fence all pre-recovery frames as
    ///    stale (skipped together by the negative-control ablation).
    fn do_recover(&mut self, p: ProcessId) -> Result<(), DriverError> {
        let pi = p.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(p));
        }
        if !self.recovery {
            return Err(DriverError::Backend(
                "recovery is disabled for this space (enable SpaceBuilder::recovery)".into(),
            ));
        }
        if !self.life[pi].state.is_crashed() {
            return Err(DriverError::NotCrashed(p));
        }
        if !self.scheduled {
            // Quiescing first empties the network (frames to the crashed
            // process drop), so no pre-recovery frame survives the rejoin.
            self.run_to_quiescence()?;
        }
        if !(0..self.cfg.n()).any(|q| q != pi && self.life[q].state.is_up()) {
            return Err(DriverError::Backend(format!(
                "recover {p}: no live donor process"
            )));
        }
        self.life[pi]
            .begin_recovery()
            .expect("checked Crashed above");
        let registers = self.registers.clone();
        for reg in registers {
            let mut best: Option<Vec<A::Value>> = None;
            for q in 0..self.cfg.n() {
                if q == pi || !self.life[q].state.is_up() {
                    continue;
                }
                if let Some(s) = self.nodes[q].recovery_snapshot(reg) {
                    if best.as_ref().is_none_or(|b| s.len() > b.len()) {
                        best = Some(s);
                    }
                }
            }
            let Some(values) = best else {
                self.life[pi].abort_recovery();
                return Err(DriverError::RecoveryUnsupported);
            };
            let wrapped = Snapshot::new(reg, values);
            let snap = if self.wire_codec {
                let blob = wrapped
                    .encode()
                    .map_err(|e| DriverError::Backend(format!("snapshot encode: {e}")))?;
                self.stats.record_snapshot_frame(blob.len() as u64);
                Snapshot::<A::Value>::decode(&blob)
                    .map_err(|e| DriverError::Backend(format!("snapshot decode: {e}")))?
                    .values
            } else {
                self.stats
                    .record_snapshot_frame(wrapped.encoded_len_bytes());
                wrapped.values
            };
            self.nodes[pi]
                .install_recovery(reg, &snap)
                .expect("the space hosts all of its registers");
            for q in 0..self.cfg.n() {
                if q == pi || !self.life[q].state.is_up() {
                    continue;
                }
                let mut fx = Effects::new();
                self.nodes[q]
                    .apply_rejoin(reg, p, &snap, &mut fx)
                    .expect("the space hosts all of its registers");
                self.apply_effects(ProcessId::new(q), fx)?;
            }
        }
        // Operations the crash orphaned are gone for good; the rejoined
        // process starts clean (its pre-crash cache must not serve either:
        // peers may have adopted a value it never confirmed).
        self.outstanding.retain(|(proc, _), _| *proc != p);
        self.caches[pi] = cache_pair(self.registers.len(), self.cache_mode);
        let bump = !self.skip_inc_bump;
        self.life[pi].complete_recovery(bump);
        if bump {
            self.purge_open_frames_as_stale();
        }
        self.stats.record_recovery();
        self.recovery_records.push(RecoveryRecord {
            proc: p,
            at: self.now,
            incarnation: self.life[pi].incarnation,
        });
        Ok(())
    }

    /// Hands the scheduling loop to `sched` until it stops (a
    /// [`Scheduler`] must stop on an empty enabled set). Returns the fired
    /// schedule — replaying it with [`ReplayScheduler::strict`] on a fresh
    /// identically-built space reproduces this run exactly.
    ///
    /// # Errors
    ///
    /// The first [`SimSpace::fire`] error (a scheduler prescribing an
    /// unfireable step, or the event guard tripping).
    ///
    /// [`ReplayScheduler::strict`]: twobit_proto::ReplayScheduler::strict
    pub fn run_scheduled(&mut self, sched: &mut dyn Scheduler) -> Result<Schedule, DriverError> {
        let mut fired = Schedule::new();
        loop {
            let enabled = self.enabled_events();
            match sched.decide(&enabled) {
                SchedDecision::Stop => return Ok(fired),
                SchedDecision::Fire(step) => {
                    self.fire(step)?;
                    fired.push(step);
                }
            }
        }
    }

    /// Checks that a *terminal* scheduled run (empty enabled set) starved
    /// no live process: an operation that was invoked but never completed,
    /// with no messages left to deliver, means a live process lost its
    /// quorum — impossible under the paper's `t < n/2` crash bound, so a
    /// violation of the algorithm's termination claim.
    ///
    /// # Errors
    ///
    /// A description of the starved plan step.
    pub fn check_schedule_liveness(&self) -> Result<(), String> {
        for (idx, e) in self.plan.iter().enumerate() {
            if !self.life[e.proc.index()].state.is_up() {
                continue;
            }
            // Died steps are exempt: their process crashed mid-operation
            // (and possibly recovered since) — the op is gone by rule, not
            // by starvation.
            if matches!(e.state, PlanState::Invoked) {
                return Err(format!(
                    "plan step {idx} ({}) invoked but never completed: the \
                     terminal schedule starved a live process",
                    Self::plan_label(e)
                ));
            }
        }
        Ok(())
    }

    /// Whether `p` is currently crashed (recovered processes are up again).
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.life[p.index()].state.is_crashed()
    }

    /// Whether [`SpaceBuilder::recovery`] enabled crash-recovery (a
    /// [`ScheduleStep::Recover`] on a space built without it is a typed
    /// error, so schedulers ask first).
    pub fn recovery_enabled(&self) -> bool {
        self.recovery
    }

    /// `p`'s incarnation number (0 until its first completed recovery).
    pub fn incarnation(&self, p: ProcessId) -> u64 {
        self.life[p.index()].incarnation
    }

    /// Whether every plan step has run to completion or died with its
    /// process. Once this holds, no future delivery can change the
    /// operation history — frames still in flight only touch automaton
    /// state — so a model checker may soundly cut the schedule here
    /// instead of draining the network.
    pub fn plan_settled(&self) -> bool {
        assert!(self.scheduled, "plan_settled requires scheduled mode");
        self.plan.iter().all(|e| {
            matches!(e.state, PlanState::Responded | PlanState::Died)
                || !self.life[e.proc.index()].state.is_up()
        })
    }

    /// Whether some scripted operation is still waiting but its process is
    /// down — the one situation where a future [`ScheduleStep::Recover`]
    /// re-opens a settled plan ([`SimSpace::plan_settled`] counts steps on
    /// crashed processes as settled because, absent recovery, they can
    /// never run).
    pub fn plan_waiting_on_crashed(&self) -> bool {
        assert!(
            self.scheduled,
            "plan_waiting_on_crashed requires scheduled mode"
        );
        self.plan.iter().any(|e| {
            !matches!(e.state, PlanState::Responded | PlanState::Died)
                && !self.life[e.proc.index()].state.is_up()
        })
    }
}

impl<A: Automaton> Driver for SimSpace<A> {
    type Value = A::Value;

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn registers(&self) -> Vec<RegisterId> {
        self.registers.clone()
    }

    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
    ) -> Result<OpTicket, DriverError> {
        if self.scheduled {
            return Err(DriverError::Backend(
                "scheduled mode: script operations with plan_op and fire them \
                 through a Scheduler, not Driver::invoke"
                    .into(),
            ));
        }
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if !self.registers.contains(&reg) {
            return Err(DriverError::UnknownRegister(reg));
        }
        if !self.life[pi].state.is_up() {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        if self.outstanding.contains_key(&(proc, reg)) {
            return Err(DriverError::OperationInFlight { proc, reg });
        }
        if matches!(op, Operation::Read) {
            if let Some(v) = self.try_serve_cached(proc, reg) {
                // Cache hit: the read completes at this very instant with
                // zero communication — no automaton invocation, no sends.
                let op_id = OpId::new(self.records.len() as u64);
                self.records.push((
                    reg,
                    OpRecord {
                        op_id,
                        proc,
                        op,
                        invoked_at: self.now,
                        completed: Some((self.now, OpOutcome::ReadValue(v))),
                    },
                ));
                return Ok(OpTicket { proc, reg, op_id });
            }
        }
        let op_id = OpId::new(self.records.len() as u64);
        self.records.push((
            reg,
            OpRecord {
                op_id,
                proc,
                op: op.clone(),
                invoked_at: self.now,
                completed: None,
            },
        ));
        self.outstanding.insert((proc, reg), op_id);
        let mut fx = Effects::new();
        self.nodes[pi]
            .on_invoke(reg, op_id, op, &mut fx)
            .expect("register presence checked above");
        self.apply_effects(proc, fx)?;
        Ok(OpTicket { proc, reg, op_id })
    }

    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<A::Value>, DriverError> {
        loop {
            let (_, rec) = self
                .records
                .get(ticket.op_id.raw() as usize)
                .ok_or(DriverError::Stalled(ticket.op_id))?;
            if let Some((_, outcome)) = &rec.completed {
                return Ok(outcome.clone());
            }
            if !self.step()? {
                return if self.life[ticket.proc.index()].state.is_up() {
                    Err(DriverError::Stalled(ticket.op_id))
                } else {
                    Err(DriverError::ProcessUnavailable(ticket.proc))
                };
            }
        }
    }

    fn crash(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        self.do_crash(proc)
    }

    fn recover(&mut self, proc: ProcessId) -> Result<(), DriverError> {
        self.do_recover(proc)
    }

    fn lifecycle(&self, proc: ProcessId) -> Lifecycle {
        self.life
            .get(proc.index())
            .map_or(Lifecycle::Crashed, |l| l.state)
    }

    fn history(&self) -> ShardedHistory<A::Value> {
        ShardedHistory::from_tagged(
            self.initial.clone(),
            self.registers.iter().copied(),
            self.records.iter().cloned(),
        )
        .with_recoveries(&self.recovery_records)
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MajorityEcho;
    use twobit_proto::{ReplayScheduler, VirtualTimeScheduler};

    fn cfg5() -> SystemConfig {
        SystemConfig::new(5, 2).unwrap()
    }

    fn space(regs: usize, seed: u64) -> SimSpace<MajorityEcho> {
        let cfg = cfg5();
        SpaceBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Fixed(1_000))
            .registers(regs)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg))
    }

    #[test]
    fn shards_are_independent() {
        let mut s = space(4, 1);
        let p1 = ProcessId::new(1);
        s.write(p1, RegisterId::new(2), 9).unwrap();
        // Only r2 saw traffic: 4 PINGs + 4 PONGs.
        assert_eq!(s.stats().shard(RegisterId::new(2)).sent, 8);
        assert_eq!(s.stats().shard(RegisterId::new(0)).sent, 0);
        assert_eq!(s.stats().total_sent(), 8);
        // Unframed-equivalent routing: ⌈log₂ 4⌉ = 2 bits per message;
        // control stays intact. On the wire, each message travelled in a
        // frame whose header is recorded separately.
        assert_eq!(s.stats().routing_bits(), 16);
        assert_eq!(s.stats().frames_sent(), 8, "one frame per link crossing");
        assert_eq!(s.stats().framed_messages(), 8);
        assert!(s.stats().frame_header_bits() > 0);
        let h = s.history();
        assert_eq!(h.shard(RegisterId::new(2)).unwrap().len(), 1);
        assert_eq!(h.shard(RegisterId::new(0)).unwrap().len(), 0);
    }

    #[test]
    fn same_instant_same_link_sends_coalesce_into_one_frame() {
        let mut s = space(2, 9);
        let p0 = ProcessId::new(0);
        // Two writes on different registers issued at the same virtual
        // instant: each peer link carries both PINGs in ONE frame.
        let t0 = s
            .invoke(p0, RegisterId::new(0), Operation::Write(1))
            .unwrap();
        let t1 = s
            .invoke(p0, RegisterId::new(1), Operation::Write(2))
            .unwrap();
        s.poll(&t0).unwrap();
        s.poll(&t1).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        // 4 peers × (1 PING frame out + 1 PONG frame back), 2 messages each.
        assert_eq!(stats.total_sent(), 16);
        assert_eq!(stats.frames_sent(), 8);
        assert_eq!(stats.max_frame_messages(), 2);
        assert!((stats.messages_per_frame() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn frames_drop_atomically_to_crashed_destination() {
        let mut s = space(2, 12);
        let p0 = ProcessId::new(0);
        let p4 = ProcessId::new(4);
        let t0 = s
            .invoke(p0, RegisterId::new(0), Operation::Write(1))
            .unwrap();
        let t1 = s
            .invoke(p0, RegisterId::new(1), Operation::Write(2))
            .unwrap();
        // Crash p4 while the two-message frame to it is still in flight:
        // both messages vanish together, none is half-delivered.
        s.crash(p4).unwrap();
        s.poll(&t0).unwrap();
        s.poll(&t1).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(stats.dropped_to_crashed(), 2, "whole frame dropped");
        // 8 PINGs + the 3 live peers' 2 PONGs each; p4 never replies.
        assert_eq!(stats.total_sent(), 14);
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed(),
            stats.total_sent(),
            "every sent message is delivered or dropped whole-frame"
        );
    }

    #[test]
    fn pipelining_across_shards_sequential_per_shard() {
        let mut s = space(2, 2);
        let p0 = ProcessId::new(0);
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);
        let t0 = s.invoke(p0, r0, Operation::Write(1)).unwrap();
        // Same process, different register: pipelines.
        let t1 = s.invoke(p0, r1, Operation::Write(2)).unwrap();
        // Same register: rejected with a typed error.
        let err = s.invoke(p0, r0, Operation::Read).unwrap_err();
        assert_eq!(err, DriverError::OperationInFlight { proc: p0, reg: r0 });
        assert_eq!(s.poll(&t0).unwrap(), OpOutcome::Written);
        assert_eq!(s.poll(&t1).unwrap(), OpOutcome::Written);
        // Both writes overlapped in virtual time.
        let h = s.history();
        let w0 = &h.shard(r0).unwrap().records[0];
        let w1 = &h.shard(r1).unwrap().records[0];
        assert_eq!(w0.invoked_at, w1.invoked_at);
    }

    #[test]
    fn wire_codec_mode_runs_on_decoded_bytes() {
        let cfg = cfg5();
        let mut s = SpaceBuilder::new(cfg)
            .seed(21)
            .delay(DelayModel::Fixed(1_000))
            .registers(4)
            .wire_codec(true)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
        let p0 = ProcessId::new(0);
        s.write(p0, RegisterId::new(1), 77).unwrap();
        assert_eq!(s.read(p0, RegisterId::new(1)).unwrap(), 77);
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert!(stats.wire_bytes() > 0, "every frame crossed as bytes");
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed(),
            stats.total_sent(),
            "decoded frames deliver exactly the encoded messages"
        );
        // The protocol made progress on decoded bytes, so fidelity held.
        assert!(stats.frames_sent() > 0);
    }

    #[test]
    fn wire_codec_mode_is_deterministic_and_equivalent() {
        // Same seed, codec on vs off: identical timings, events and
        // traffic — the codec is a pass-through for semantics.
        let run = |codec: bool| {
            let cfg = cfg5();
            let mut s = SpaceBuilder::new(cfg)
                .seed(11)
                .delay(DelayModel::Fixed(1_000))
                .registers(3)
                .wire_codec(codec)
                .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
            for i in 0..3usize {
                s.write(ProcessId::new(i), RegisterId::new(i), 7).unwrap();
            }
            s.run_to_quiescence().unwrap();
            (s.now(), s.events(), s.stats().total_sent())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn every_simnet_frame_carries_a_hold_flush_reason() {
        let mut s = space(4, 6);
        let p1 = ProcessId::new(1);
        s.write(p1, RegisterId::new(2), 9).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.flushes(twobit_proto::FlushReason::Hold),
            stats.frames_sent(),
            "the simulator's flushes are all hold-marker firings"
        );
        assert_eq!(stats.flushes_total(), stats.frames_sent());
    }

    #[test]
    fn static_hold_window_is_observed_in_the_stats() {
        let cfg = cfg5();
        let mut s = SpaceBuilder::new(cfg)
            .seed(4)
            .delay(DelayModel::Fixed(1_000))
            .flush_hold(250)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
        s.write(ProcessId::new(0), RegisterId::ZERO, 1).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.max_observed_hold_ns(),
            250 * 1_000,
            "250 virtual ticks = 250µs of observed hold"
        );
    }

    #[test]
    fn adaptive_hold_is_deterministic_and_equivalent_to_itself() {
        let run = || {
            let cfg = cfg5();
            let mut s = SpaceBuilder::new(cfg)
                .seed(13)
                .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
                .flush_hold_policy(VirtualHold::Adaptive {
                    floor: 0,
                    ceil: 1_500,
                })
                .registers(3)
                .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
            for round in 0..4u64 {
                for i in 0..3usize {
                    s.write(ProcessId::new(i), RegisterId::new(i), round)
                        .unwrap();
                }
            }
            s.run_to_quiescence().unwrap();
            (
                s.now(),
                s.events(),
                s.stats().total_sent(),
                s.stats().frames_sent(),
                s.stats().observed_hold_ns(),
            )
        };
        assert_eq!(run(), run(), "adaptive holds stay a function of the seed");
    }

    #[test]
    fn adaptive_hold_coalesces_staggered_traffic_at_least_as_well_as_zero_hold() {
        let run = |hold: VirtualHold| {
            let cfg = cfg5();
            let mut s = SpaceBuilder::new(cfg)
                .seed(29)
                .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
                .flush_hold_policy(hold)
                .registers(8)
                .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
            // Staggered, busy traffic: issue every register's write and let
            // replies overlap so links see a stream, not lone messages.
            let mut tickets = Vec::new();
            for k in 0..8usize {
                tickets.push(
                    s.invoke(
                        ProcessId::new(k % 5),
                        RegisterId::new(k),
                        Operation::Write(1),
                    )
                    .unwrap(),
                );
            }
            for t in &tickets {
                s.poll(t).unwrap();
            }
            s.run_to_quiescence().unwrap();
            s.stats().frames_sent()
        };
        let zero = run(VirtualHold::Static(0));
        let adaptive = run(VirtualHold::Adaptive {
            floor: 0,
            ceil: 1_500,
        });
        assert!(
            adaptive <= zero,
            "adaptive ({adaptive} frames) must coalesce at least as hard as zero hold ({zero})"
        );
    }

    #[test]
    fn per_link_hold_override_applies_to_that_link() {
        let cfg = cfg5();
        let mut s = SpaceBuilder::new(cfg)
            .seed(3)
            .delay(DelayModel::Fixed(1_000))
            .flush_hold(0)
            // p0 → p1 holds long; every other link flushes per instant.
            .flush_hold_for(0, 1, VirtualHold::Static(400))
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
        s.write(ProcessId::new(0), RegisterId::ZERO, 5).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.max_observed_hold_ns(),
            400 * 1_000,
            "only the overridden link held its batch"
        );
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn inverted_adaptive_band_panics_at_the_builder() {
        let cfg = cfg5();
        let _ = SpaceBuilder::new(cfg).flush_hold_policy(VirtualHold::Adaptive {
            floor: 100,
            ceil: 50,
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = space(3, seed);
            for i in 0..3usize {
                s.write(ProcessId::new(i), RegisterId::new(i), 7).unwrap();
            }
            s.run_to_quiescence().unwrap();
            (s.now(), s.events(), s.stats().total_sent())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn crash_is_observed() {
        let mut s = space(1, 3);
        s.crash(ProcessId::new(2)).unwrap();
        let err = s
            .invoke(ProcessId::new(2), RegisterId::ZERO, Operation::Read)
            .unwrap_err();
        assert_eq!(err, DriverError::ProcessUnavailable(ProcessId::new(2)));
        // Minority crash: others still make progress.
        s.write(ProcessId::new(0), RegisterId::ZERO, 5).unwrap();
    }

    fn scheduled_space(cfg: SystemConfig, seed: u64) -> SimSpace<MajorityEcho> {
        SpaceBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Fixed(1_000))
            .scheduled(true)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg))
    }

    #[test]
    fn scheduled_mode_virtual_time_run_completes_the_plan() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut s = scheduled_space(cfg, 1);
        let w = s.plan_op(ProcessId::new(0), RegisterId::ZERO, Operation::Write(7));
        let r = s.plan_op_after(ProcessId::new(1), RegisterId::ZERO, Operation::Read, w);
        let fired = s.run_scheduled(&mut VirtualTimeScheduler).unwrap();
        assert!(s.enabled_events().is_empty(), "run is terminal");
        s.check_schedule_liveness().unwrap();
        // Both plan steps invoked and responded, in dependency order.
        let h = s.history();
        let recs = &h.shard(RegisterId::ZERO).unwrap().records;
        assert_eq!(recs.len(), 2);
        assert!(recs[0].completed.as_ref().unwrap().0 < recs[1].invoked_at);
        // The fired schedule starts by invoking the write (the only
        // enabled event at the start) and fires every step exactly once.
        assert_eq!(fired.steps()[0], ScheduleStep::Invoke(w as u64));
        assert!(fired.steps().contains(&ScheduleStep::Respond(r as u64)));
    }

    #[test]
    fn scheduled_runs_replay_bit_identically() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let run = |sched: &mut dyn Scheduler| {
            let mut s = scheduled_space(cfg, 5);
            s.plan_op(ProcessId::new(0), RegisterId::ZERO, Operation::Write(3));
            s.plan_op(ProcessId::new(1), RegisterId::ZERO, Operation::Read);
            let fired = s.run_scheduled(sched).unwrap();
            (fired, format!("{:?}", s.history()), s.stats().total_sent())
        };
        let (fired, hist, sent) = run(&mut VirtualTimeScheduler);
        // Strict replay of the recorded schedule reproduces the run.
        let (fired2, hist2, sent2) = run(&mut ReplayScheduler::strict(&fired));
        assert_eq!(fired, fired2);
        assert_eq!(hist, hist2);
        assert_eq!(sent, sent2);
        // And the schedule string round-trips through its text form.
        let reparsed: Schedule = fired.to_string().parse().unwrap();
        let (fired3, hist3, _) = run(&mut ReplayScheduler::strict(&reparsed));
        assert_eq!(fired, fired3);
        assert_eq!(hist, hist3);
    }

    #[test]
    fn scheduled_crash_drops_open_frames_atomically() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut s = scheduled_space(cfg, 2);
        let w = s.plan_op(ProcessId::new(0), RegisterId::ZERO, Operation::Write(1));
        s.fire(ScheduleStep::Invoke(w as u64)).unwrap();
        // The write's PINGs to p1 and p2 are open; crash p2.
        let before = s.enabled_events().len();
        s.fire(ScheduleStep::Crash(ProcessId::new(2))).unwrap();
        assert_eq!(s.enabled_events().len(), before - 1);
        assert!(s.is_crashed(ProcessId::new(2)));
        let stats = s.stats();
        assert!(stats.dropped_to_crashed() > 0);
        // A second crash of the same process is rejected.
        assert!(s.fire(ScheduleStep::Crash(ProcessId::new(2))).is_err());
        // Majority alive: the write still completes.
        let mut rest = VirtualTimeScheduler;
        s.run_scheduled(&mut rest).unwrap();
        s.check_schedule_liveness().unwrap();
        // At quiescence every sent message was delivered or dropped whole.
        let end = s.stats();
        assert_eq!(
            end.total_delivered() + end.dropped_to_crashed(),
            end.total_sent()
        );
    }

    #[test]
    fn scheduled_mode_rejects_unfireable_steps_and_interactive_driving() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut s = scheduled_space(cfg, 3);
        let w = s.plan_op(ProcessId::new(0), RegisterId::ZERO, Operation::Write(1));
        // Nothing delivered yet: no response, no such frame.
        assert!(s.fire(ScheduleStep::Respond(w as u64)).is_err());
        assert!(s.fire(ScheduleStep::Deliver(99)).is_err());
        // Interactive invoke is a different driving mode.
        assert!(s
            .invoke(ProcessId::new(0), RegisterId::ZERO, Operation::Read)
            .is_err());
    }

    #[test]
    fn scheduled_liveness_check_flags_a_starved_operation() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut s = scheduled_space(cfg, 4);
        let w = s.plan_op(ProcessId::new(0), RegisterId::ZERO, Operation::Write(1));
        s.fire(ScheduleStep::Invoke(w as u64)).unwrap();
        // Invoked, nothing delivered: a (non-terminal) stall.
        let err = s.check_schedule_liveness().unwrap_err();
        assert!(err.contains("plan step 0"), "{err}");
    }

    fn cached_space(mode: CacheMode, seed: u64) -> SimSpace<MajorityEcho> {
        let cfg = cfg5();
        SpaceBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Fixed(1_000))
            .registers(2)
            .cache_mode(mode)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg))
    }

    #[test]
    fn cache_off_counts_nothing() {
        let mut s = space(2, 8);
        let p0 = ProcessId::new(0);
        s.write(p0, RegisterId::ZERO, 3).unwrap();
        s.read(p0, RegisterId::ZERO).unwrap();
        let stats = s.stats();
        assert_eq!(stats.cache_hits(), 0);
        assert_eq!(stats.cache_misses(), 0);
        assert_eq!(stats.cache_fallbacks(), 0);
    }

    #[test]
    fn safe_cache_without_a_swmr_writer_never_serves() {
        // MajorityEcho is multi-writer (`swmr_writer` is None), so the
        // safety gate refuses every confirmed entry: reads after a local
        // completion are fallbacks, never hits.
        let mut s = cached_space(CacheMode::Safe, 17);
        let p0 = ProcessId::new(0);
        assert_eq!(s.read(p0, RegisterId::ZERO).unwrap(), 0);
        s.write(p0, RegisterId::ZERO, 5).unwrap();
        assert_eq!(s.read(p0, RegisterId::ZERO).unwrap(), 5);
        let stats = s.stats();
        assert_eq!(stats.cache_hits(), 0, "the gate must refuse");
        assert_eq!(stats.cache_misses(), 1, "first read found nothing");
        assert_eq!(stats.cache_fallbacks(), 1, "second read was gated");
    }

    #[test]
    fn ablated_cache_serves_blindly_with_zero_traffic() {
        let mut s = cached_space(CacheMode::UnsafeAblated, 17);
        let p0 = ProcessId::new(0);
        s.write(p0, RegisterId::ZERO, 5).unwrap();
        let sent_after_write = s.stats().total_sent();
        assert_eq!(s.read(p0, RegisterId::ZERO).unwrap(), 5);
        let stats = s.stats();
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(
            stats.total_sent(),
            sent_after_write,
            "a cache hit sends nothing"
        );
        // The hit left a completed record at a single instant.
        let h = s.history();
        let rec = &h.shard(RegisterId::ZERO).unwrap().records[1];
        assert_eq!(rec.completed.as_ref().unwrap().0, rec.invoked_at);
    }

    #[test]
    fn scheduled_cache_hit_still_fires_a_separate_response() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut s = SpaceBuilder::new(cfg)
            .seed(6)
            .delay(DelayModel::Fixed(1_000))
            .scheduled(true)
            .cache_mode(CacheMode::UnsafeAblated)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
        let w = s.plan_op(ProcessId::new(0), RegisterId::ZERO, Operation::Write(4));
        let r1 = s.plan_op_after(ProcessId::new(0), RegisterId::ZERO, Operation::Read, w);
        let r2 = s.plan_op_after(ProcessId::new(0), RegisterId::ZERO, Operation::Read, r1);
        s.run_scheduled(&mut VirtualTimeScheduler).unwrap();
        s.check_schedule_liveness().unwrap();
        let h = s.history();
        let recs = &h.shard(RegisterId::ZERO).unwrap().records;
        assert_eq!(recs.len(), 3);
        for rec in recs {
            assert!(rec.completed.is_some());
        }
        // The second read hit the cache (the first one's completion
        // confirmed the entry), and its response fired as its own event:
        // completion strictly after invocation in scheduled time.
        assert!(s.stats().cache_hits() >= 1);
        let hit = &recs[2];
        assert!(hit.completed.as_ref().unwrap().0 > hit.invoked_at);
        let _ = r2;
    }

    #[test]
    fn bad_addresses_are_typed() {
        let mut s = space(2, 4);
        assert_eq!(
            s.invoke(ProcessId::new(9), RegisterId::ZERO, Operation::Read)
                .unwrap_err(),
            DriverError::UnknownProcess(ProcessId::new(9))
        );
        assert_eq!(
            s.invoke(ProcessId::new(0), RegisterId::new(7), Operation::Read)
                .unwrap_err(),
            DriverError::UnknownRegister(RegisterId::new(7))
        );
    }
}
